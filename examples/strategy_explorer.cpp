// Strategy explorer: the paper exposes three run-time knobs — the
// ungapped-extension strategy (§3.4), the scoring structure (§3.5), and
// the bins-per-warp count (§3.2) — whose best settings depend on the query
// and database. This tool sweeps them on the user's workload and prints a
// recommendation, the way a practitioner would tune cuBLASTP.
//
//   ./strategy_explorer [--query_len=N] [--seqs=N] [--env_nr]
#include <cstdio>
#include <limits>

#include "bio/generator.hpp"
#include "common.hpp"
#include "core/cublastp.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace repro;
  util::Options options(argc, argv);
  const auto query_len =
      static_cast<std::size_t>(options.get_int("query_len", 517));
  const auto num_seqs = static_cast<std::size_t>(options.get_int("seqs", 400));

  const auto query = bio::make_benchmark_query(query_len);
  const auto profile = options.has("env_nr")
                           ? bio::DatabaseProfile::env_nr_like(num_seqs)
                           : bio::DatabaseProfile::swissprot_like(num_seqs);
  bio::DatabaseGenerator gen(profile, 7);
  const auto db = gen.generate(query.residues);
  std::printf("workload: %s (%zu residues) vs %s (%zu seqs)\n\n",
              query.id.c_str(), query.length(), profile.name.c_str(),
              db.size());

  struct Candidate {
    std::string name;
    core::Config config;
  };
  std::vector<Candidate> candidates;
  for (const auto& [sname, strategy] :
       {std::pair<const char*, core::ExtensionStrategy>{
            "diagonal", core::ExtensionStrategy::kDiagonal},
        {"hit", core::ExtensionStrategy::kHit},
        {"window", core::ExtensionStrategy::kWindow}}) {
    for (const auto& [mname, mode] :
         {std::pair<const char*, core::ScoringMode>{
              "pssm", core::ScoringMode::kPssm},
          {"blosum62", core::ScoringMode::kBlosum}}) {
      for (const int bins : {64, 128, 256}) {
        core::Config config;
        config.strategy = strategy;
        config.scoring = mode;
        config.num_bins_per_warp = bins;
        candidates.push_back(
            {std::string(sname) + " / " + mname + " / " +
                 std::to_string(bins) + " bins",
             config});
      }
    }
  }

  util::Table table({"configuration", "GPU kernels (ms)",
                     "overlapped total (ms)", "alignments"});
  std::string best_name;
  double best_ms = std::numeric_limits<double>::infinity();
  std::size_t reference_alignments = 0;
  bool all_identical = true;
  std::vector<blast::Alignment> reference;
  for (const auto& candidate : candidates) {
    const auto report =
        core::CuBlastp(candidate.config).search(query.residues, db);
    if (reference.empty() && !report.result.alignments.empty()) {
      reference = report.result.alignments;
      reference_alignments = reference.size();
    } else if (report.result.alignments != reference) {
      all_identical = false;
    }
    table.add_row({candidate.name,
                   util::Table::num(report.gpu_critical_ms(), 2),
                   util::Table::num(report.overlapped_total_seconds * 1e3, 2),
                   std::to_string(report.result.alignments.size())});
    if (report.gpu_critical_ms() < best_ms) {
      best_ms = report.gpu_critical_ms();
      best_name = candidate.name;
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("all %zu configurations returned identical output (%zu "
              "alignments): %s\n",
              candidates.size(), reference_alignments,
              all_identical ? "yes" : "NO — please file a bug");
  std::printf("recommended configuration for this workload: %s "
              "(%.2f ms GPU kernels)\n",
              best_name.c_str(), best_ms);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return repro::examples::run_tool("strategy_explorer",
                                   [&] { return run(argc, argv); });
}
