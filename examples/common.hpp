// Shared plumbing for the example tools: FASTA loading with the --lenient
// policy and warning report, the engine-config flags every tool accepts,
// and the common top-level exception handler. Each example used to
// hand-roll these; keeping them here means the tools agree on flag names
// and error output.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "bio/database.hpp"
#include "bio/fasta.hpp"
#include "core/config.hpp"
#include "util/options.hpp"

namespace repro::examples {

/// Reads a FASTA file under the shared policy flag (--lenient maps unknown
/// residues to X instead of throwing) and reports any parse warnings to
/// stderr, prefixed with the tool name.
std::vector<bio::Sequence> load_fasta(const std::string& path, bool lenient,
                                      const char* tool);

/// load_fasta, packed into a SequenceDatabase.
bio::SequenceDatabase load_database(const std::string& path, bool lenient,
                                    const char* tool);

/// The engine-config flags shared by the tools: --evalue, --threads,
/// --engine_workers, --strategy=window|diagonal|hit, --simtcheck,
/// --svccheck,
/// --prefilter=off|on|auto, --prefilter-threshold.
/// Flags a tool doesn't pass keep the paper defaults.
core::Config config_from_options(const util::Options& options);

/// Runs `body` under the shared top-level handler: any std::exception is
/// printed as "<tool>: error: ..." and the process exits 1.
int run_tool(const char* tool, const std::function<int()>& body);

}  // namespace repro::examples
