// Quickstart: the smallest end-to-end cuBLASTP search.
//
//   ./quickstart [--query=FASTA] [--db=FASTA] [--lenient]
//
// Without arguments it generates a small synthetic database with planted
// homologs of a synthetic query, runs the fine-grained cuBLASTP engine,
// verifies the result against the FSA-BLAST reference, and prints the top
// alignments in blastp-style output.
#include <cstdio>

#include "baselines/cpu.hpp"
#include "bio/generator.hpp"
#include "blast/results.hpp"
#include "common.hpp"
#include "core/cublastp.hpp"
#include "util/options.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace repro;
  util::Options options(argc, argv);

  // 1. Get a query and a database (from FASTA files, or synthetic).
  bio::Sequence query;
  bio::SequenceDatabase db;
  if (options.has("query") && options.has("db")) {
    const bool lenient = options.has("lenient");
    query = examples::load_fasta(options.get("query", ""), lenient,
                                 "quickstart")
                .at(0);
    db = examples::load_database(options.get("db", ""), lenient,
                                 "quickstart");
  } else {
    query = bio::make_benchmark_query(127);
    auto profile = bio::DatabaseProfile::swissprot_like(500);
    profile.homolog_fraction = 0.03;
    db = bio::DatabaseGenerator(profile, 42).generate(query.residues);
    std::printf("(no --query/--db given: generated %zu synthetic sequences "
                "with planted homologs)\n\n",
                db.size());
  }

  // 2. Configure and run the search.
  core::Config config;                              // paper defaults
  config.strategy = core::ExtensionStrategy::kWindow;
  core::CuBlastp engine(config);
  const auto report = engine.search(query.residues, db);

  // 3. Cross-check against the sequential FSA-BLAST reference
  //    (paper §4.3: outputs must be identical).
  const auto reference =
      baselines::fsa_blast_search(query.residues, db, config.params);
  std::printf("cuBLASTP found %zu alignments; identical to FSA-BLAST: %s\n\n",
              report.result.alignments.size(),
              reference.alignments == report.result.alignments ? "yes"
                                                               : "NO!");

  // 4. Print the top hits.
  const std::size_t top =
      std::min<std::size_t>(3, report.result.alignments.size());
  for (std::size_t i = 0; i < top; ++i)
    std::printf("%s\n",
                blast::format_alignment(query.residues, db,
                                        report.result.alignments[i])
                    .c_str());

  // 5. Phase summary.
  std::printf("GPU kernels (modeled): %.2f ms  |  CPU gapped+traceback: "
              "%.2f ms  |  overlapped total: %.2f ms\n",
              report.gpu_critical_ms(),
              (report.gapped_seconds + report.traceback_seconds) * 1e3,
              report.overlapped_total_seconds * 1e3);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return repro::examples::run_tool("quickstart",
                                   [&] { return run(argc, argv); });
}
