// blastp_cli: a blastp-like command-line tool over the cuBLASTP engine —
// FASTA query(ies) vs FASTA database, ranked hits with alignments.
//
//   ./blastp_cli --query=queries.fasta --db=database.fasta
//                [--evalue=10] [--engine=cublastp|fsa|ncbi]
//                [--strategy=window|diagonal|hit] [--threads=4]
//                [--engine_workers=1] [--max_alignments=5]
//                [--prefilter=off|on|auto] [--prefilter-threshold=N]
//                [--lenient] [--simtcheck]
//                [--trace=out.json] [--metrics=out.prom]
//                [--report] [--report-json=out.json]
//
// --prefilter enables the lossless SSV pre-filter (results stay
// bit-identical; DESIGN.md §13); auto additionally routes dense blocks to
// the coarse backend. --prefilter-threshold overrides the calibrated
// cutoff (0 = derive from Karlin statistics; raising it above the derived
// value voids the losslessness guarantee).
//
// Batch mode: --batch=queries.fasta (instead of --query) answers every
// query through one core::SearchSession::search_batch — the database is
// uploaded once and query q+1's GPU phases overlap query q's CPU stage.
// --report-json then writes ONE cublastp.batch_report.v2 document instead
// of an array of per-query reports.
//
// Observability: --trace records one Chrome-trace session spanning every
// query (load in chrome://tracing or Perfetto); --metrics exports the
// process metrics registry (.prom/.txt = Prometheus text, else JSON);
// --report prints the per-query phase/counter tables; --report-json writes
// the structured run report(s) (schema cublastp.search_report.v2).
//
// Try it end to end with the synthetic generator:
//   ./database_tools generate --out=db.fasta --seqs=1000 --plant_query_len=517
//   printf '>q\n...' > q.fasta   (or use database_tools + your own FASTA)
//   ./blastp_cli --query=q.fasta --db=db.fasta
#include <cstdio>
#include <fstream>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "baselines/cpu.hpp"
#include "bio/fasta.hpp"
#include "blast/results.hpp"
#include "common.hpp"
#include "core/cublastp.hpp"
#include "core/search_session.hpp"
#include "util/metrics.hpp"
#include "util/options.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace {

using namespace repro;

/// Per-query hazard/degradation warnings; returns true when the analyzer
/// found hazards (the CLI then exits 3, like cuda-memcheck).
bool report_query_health(const std::string& query_id, bool simtcheck,
                         const core::SearchReport& report) {
  if (simtcheck || report.hazards.total != 0)
    std::fprintf(stderr, "%s\n", report.hazards.summary().c_str());
  if (report.degraded())
    std::fprintf(stderr,
                 "blastp_cli: query %s degraded: %llu of %zu blocks fell "
                 "back to the CPU, %llu cache-off retries, %llu injected "
                 "faults absorbed (results stay complete)\n",
                 query_id.c_str(),
                 static_cast<unsigned long long>(report.degraded_blocks),
                 report.retry_counts.size(),
                 static_cast<unsigned long long>(report.cache_off_retries),
                 static_cast<unsigned long long>(report.faults_encountered));
  if (report.prefilter_degraded_blocks != 0)
    std::fprintf(
        stderr,
        "blastp_cli: query %s: pre-filter skipped on %llu blocks (served "
        "unfiltered; results stay complete)\n",
        query_id.c_str(),
        static_cast<unsigned long long>(report.prefilter_degraded_blocks));
  return report.hazards.total != 0;
}

/// blastp-style output for one query's result.
void print_query_result(const bio::Sequence& query,
                        const bio::SequenceDatabase& db,
                        const blast::SearchResult& result, double elapsed,
                        std::size_t max_alignments) {
  if (result.alignments.empty()) {
    std::printf("***** No hits found *****\n\n");
    return;
  }
  std::printf("Sequences producing significant alignments:  "
              "(bits)  (e-value)\n");
  for (std::size_t i = 0;
       i < std::min<std::size_t>(20, result.alignments.size()); ++i) {
    const auto& a = result.alignments[i];
    std::printf("  %-40s %7.1f   %8.1e\n", db.id(a.seq).c_str(), a.bit_score,
                a.evalue);
  }
  std::printf("\n");
  for (std::size_t i = 0;
       i < std::min(max_alignments, result.alignments.size()); ++i)
    std::printf("%s\n",
                blast::format_alignment(query.residues, db,
                                        result.alignments[i])
                    .c_str());
  std::printf("[%zu hits in %.3f s host wall-clock; %llu hits detected, "
              "%llu ungapped extensions, %llu gapped]\n\n",
              result.alignments.size(), elapsed,
              static_cast<unsigned long long>(result.counters.hits_detected),
              static_cast<unsigned long long>(
                  result.counters.ungapped_extensions),
              static_cast<unsigned long long>(
                  result.counters.gapped_extensions));
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "blastp_cli: cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

int run(int argc, char** argv) {
  util::Options options(argc, argv);
  const bool batch_mode = options.has("batch");
  if ((!options.has("query") && !batch_mode) || !options.has("db")) {
    std::fprintf(stderr,
                 "usage: blastp_cli (--query=FASTA | --batch=FASTA) "
                 "--db=FASTA "
                 "[--evalue=E] [--engine=cublastp|fsa|ncbi] "
                 "[--strategy=window|diagonal|hit] [--threads=T] "
                 "[--engine_workers=W] "
                 "[--prefilter=off|on|auto] [--prefilter-threshold=N] "
                 "[--max_alignments=N] [--lenient] [--simtcheck] "
                 "[--trace=PATH] [--metrics=PATH] [--report] "
                 "[--report-json=PATH]\n");
    return 2;
  }

  const bool lenient = options.has("lenient");
  const std::string query_path =
      batch_mode ? options.get("batch", "") : options.get("query", "");
  const auto queries = examples::load_fasta(query_path, lenient, "blastp_cli");
  const auto db = examples::load_database(options.get("db", ""), lenient,
                                          "blastp_cli");
  std::printf("Database: %zu sequences; %llu total letters\n\n", db.size(),
              static_cast<unsigned long long>(db.total_residues()));

  const core::Config config = examples::config_from_options(options);
  const std::string engine_name = options.get("engine", "cublastp");
  const auto max_alignments =
      static_cast<std::size_t>(options.get_int("max_alignments", 5));
  if (batch_mode && engine_name != "cublastp") {
    std::fprintf(stderr,
                 "blastp_cli: --batch requires --engine=cublastp (the "
                 "baseline engines have no batch mode)\n");
    return 2;
  }

  // One Chrome-trace session spanning every query; search() sees it active
  // and joins rather than starting per-query sessions.
  const std::string trace_path = options.get("trace", "");
  std::optional<util::TraceSession> trace_session;
  if (!trace_path.empty()) trace_session.emplace(trace_path);
  const std::string metrics_path = options.get("metrics", "");
  const std::string report_json_path = options.get("report-json", "");
  const bool print_report = options.has("report");

  bool hazards_found = false;

  if (batch_mode) {
    // One session, one batch: the database uploads once, and each query's
    // CPU stage overlaps the next query's GPU phases.
    std::vector<std::span<const std::uint8_t>> spans;
    spans.reserve(queries.size());
    for (const auto& query : queries) spans.emplace_back(query.residues);

    core::SearchSession session(config, db);
    const core::BatchReport batch = session.search_batch(spans);

    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      const auto& report = batch.reports[qi];
      std::printf("Query= %s (%zu letters)\n\n", queries[qi].id.c_str(),
                  queries[qi].length());
      hazards_found |=
          report_query_health(queries[qi].id, config.simtcheck, report);
      if (print_report) std::printf("%s\n", report.to_table().c_str());
      print_query_result(queries[qi], db, report.result,
                         batch.per_query_wall_seconds[qi], max_alignments);
    }
    std::printf(
        "Batch: %zu queries in %.3f s (%.1f queries/s); database uploaded "
        "once (%llu of %llu bytes; %.0f amortized bytes/query); modeled "
        "pipeline %.2f ms batched vs %.2f ms sequential (%.2fx)\n",
        batch.reports.size(), batch.batch_wall_seconds,
        batch.queries_per_second(),
        static_cast<unsigned long long>(batch.h2d_block_bytes),
        static_cast<unsigned long long>(batch.db_device_bytes),
        batch.amortized_h2d_bytes_per_query(),
        batch.modeled_batch_seconds * 1e3,
        batch.modeled_sequential_seconds * 1e3, batch.modeled_speedup());
    if (!report_json_path.empty() &&
        !write_text_file(report_json_path, batch.to_json() + "\n"))
      return 1;
  } else {
    std::vector<std::string> report_jsons;
    for (const auto& query : queries) {
      std::printf("Query= %s (%zu letters)\n\n", query.id.c_str(),
                  query.length());
      util::Timer timer;
      blast::SearchResult result;
      core::SearchReport report;
      if (engine_name == "fsa") {
        result =
            baselines::fsa_blast_search(query.residues, db, config.params);
      } else if (engine_name == "ncbi") {
        result = baselines::ncbi_mt_search(query.residues, db, config.params,
                                           config.cpu_threads);
      } else {
        report = core::CuBlastp(config).search(query.residues, db);
        if (print_report) std::printf("%s\n", report.to_table().c_str());
        if (!report_json_path.empty())
          report_jsons.push_back(report.to_json());
        result = std::move(report.result);
      }
      const double elapsed = timer.seconds();
      if (engine_name == "cublastp")
        hazards_found |=
            report_query_health(query.id, config.simtcheck, report);
      print_query_result(query, db, result, elapsed, max_alignments);
    }
    if (!report_json_path.empty()) {
      // One object per cublastp query, as a JSON array for stability even
      // with a single query.
      std::string doc = "[";
      for (std::size_t i = 0; i < report_jsons.size(); ++i) {
        if (i) doc += ',';
        doc += report_jsons[i];
      }
      doc += "]\n";
      if (!write_text_file(report_json_path, doc)) return 1;
    }
  }

  if (!metrics_path.empty() &&
      !util::metrics::Registry::instance().write_file(metrics_path)) {
    std::fprintf(stderr, "blastp_cli: cannot write %s\n",
                 metrics_path.c_str());
    return 1;
  }

  // Like cuda-memcheck: correct-looking output still fails the run when
  // the analyzer found hazards.
  return hazards_found ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  return examples::run_tool("blastp_cli", [&] { return run(argc, argv); });
}
