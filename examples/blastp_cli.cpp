// blastp_cli: a blastp-like command-line tool over the cuBLASTP engine —
// FASTA query(ies) vs FASTA database, ranked hits with alignments.
//
//   ./blastp_cli --query=queries.fasta --db=database.fasta
//                [--evalue=10] [--engine=cublastp|fsa|ncbi]
//                [--strategy=window|diagonal|hit] [--threads=4]
//                [--engine_workers=1] [--max_alignments=5]
//                [--lenient] [--simtcheck]
//                [--trace=out.json] [--metrics=out.prom]
//                [--report] [--report-json=out.json]
//
// Observability: --trace records one Chrome-trace session spanning every
// query (load in chrome://tracing or Perfetto); --metrics exports the
// process metrics registry (.prom/.txt = Prometheus text, else JSON);
// --report prints the per-query phase/counter tables; --report-json writes
// the structured run report(s) (schema cublastp.search_report.v1).
//
// Try it end to end with the synthetic generator:
//   ./database_tools generate --out=db.fasta --seqs=1000 --plant_query_len=517
//   printf '>q\n...' > q.fasta   (or use database_tools + your own FASTA)
//   ./blastp_cli --query=q.fasta --db=db.fasta
#include <cstdio>
#include <exception>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "baselines/cpu.hpp"
#include "bio/fasta.hpp"
#include "blast/results.hpp"
#include "core/cublastp.hpp"
#include "util/metrics.hpp"
#include "util/options.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace repro;
  util::Options options(argc, argv);
  if (!options.has("query") || !options.has("db")) {
    std::fprintf(stderr,
                 "usage: blastp_cli --query=FASTA --db=FASTA "
                 "[--evalue=E] [--engine=cublastp|fsa|ncbi] "
                 "[--strategy=window|diagonal|hit] [--threads=T] "
                 "[--engine_workers=W] "
                 "[--max_alignments=N] [--lenient] [--simtcheck] "
                 "[--trace=PATH] [--metrics=PATH] [--report] "
                 "[--report-json=PATH]\n");
    return 2;
  }

  const auto policy = options.has("lenient")
                          ? bio::FastaPolicy::kLenient
                          : bio::FastaPolicy::kStrict;
  bio::FastaWarnings warnings;
  const auto queries =
      bio::read_fasta_file(options.get("query", ""), policy, &warnings);
  const bio::SequenceDatabase db(
      bio::read_fasta_file(options.get("db", ""), policy, &warnings));
  if (warnings.total() != 0)
    std::fprintf(stderr,
                 "blastp_cli: lenient FASTA parse: %llu unknown residues "
                 "mapped to X, %llu empty records skipped, %llu empty ids\n",
                 static_cast<unsigned long long>(warnings.unknown_residues),
                 static_cast<unsigned long long>(
                     warnings.empty_records_skipped),
                 static_cast<unsigned long long>(warnings.empty_ids));
  std::printf("Database: %zu sequences; %llu total letters\n\n", db.size(),
              static_cast<unsigned long long>(db.total_residues()));

  core::Config config;
  config.params.max_evalue = options.get_double("evalue", 10.0);
  config.cpu_threads =
      static_cast<std::size_t>(options.get_int("threads", 4));
  config.engine_workers =
      static_cast<int>(options.get_int("engine_workers", 1));
  const std::string strategy = options.get("strategy", "window");
  if (strategy == "diagonal")
    config.strategy = core::ExtensionStrategy::kDiagonal;
  else if (strategy == "hit")
    config.strategy = core::ExtensionStrategy::kHit;
  else
    config.strategy = core::ExtensionStrategy::kWindow;

  // --simtcheck runs every kernel under the hazard analyzer (racecheck/
  // synccheck/memcheck; env REPRO_SIMTCHECK=1 does the same).
  config.simtcheck = options.has("simtcheck");

  const std::string engine_name = options.get("engine", "cublastp");
  const auto max_alignments =
      static_cast<std::size_t>(options.get_int("max_alignments", 5));

  // One Chrome-trace session spanning every query; search() sees it active
  // and joins rather than starting per-query sessions.
  const std::string trace_path = options.get("trace", "");
  std::optional<util::TraceSession> trace_session;
  if (!trace_path.empty()) trace_session.emplace(trace_path);
  const std::string metrics_path = options.get("metrics", "");
  const std::string report_json_path = options.get("report-json", "");
  const bool print_report = options.has("report");

  bool hazards_found = false;
  std::vector<std::string> report_jsons;
  for (const auto& query : queries) {
    std::printf("Query= %s (%zu letters)\n\n", query.id.c_str(),
                query.length());
    util::Timer timer;
    blast::SearchResult result;
    core::SearchReport report;
    if (engine_name == "fsa") {
      result = baselines::fsa_blast_search(query.residues, db,
                                           config.params);
    } else if (engine_name == "ncbi") {
      result = baselines::ncbi_mt_search(query.residues, db, config.params,
                                         config.cpu_threads);
    } else {
      report = core::CuBlastp(config).search(query.residues, db);
      if (print_report) std::printf("%s\n", report.to_table().c_str());
      if (!report_json_path.empty())
        report_jsons.push_back(report.to_json());
      result = std::move(report.result);
    }
    const double elapsed = timer.seconds();
    if (engine_name == "cublastp" &&
        (config.simtcheck || report.hazards.total != 0)) {
      std::fprintf(stderr, "%s\n", report.hazards.summary().c_str());
      hazards_found |= report.hazards.total != 0;
    }
    if (report.degraded())
      std::fprintf(stderr,
                   "blastp_cli: query %s degraded: %llu of %zu blocks fell "
                   "back to the CPU, %llu cache-off retries, %llu injected "
                   "faults absorbed (results stay complete)\n",
                   query.id.c_str(),
                   static_cast<unsigned long long>(report.degraded_blocks),
                   report.retry_counts.size(),
                   static_cast<unsigned long long>(report.cache_off_retries),
                   static_cast<unsigned long long>(
                       report.faults_encountered));

    if (result.alignments.empty()) {
      std::printf("***** No hits found *****\n\n");
      continue;
    }
    std::printf("Sequences producing significant alignments:  "
                "(bits)  (e-value)\n");
    for (std::size_t i = 0;
         i < std::min<std::size_t>(20, result.alignments.size()); ++i) {
      const auto& a = result.alignments[i];
      std::printf("  %-40s %7.1f   %8.1e\n", db.id(a.seq).c_str(),
                  a.bit_score, a.evalue);
    }
    std::printf("\n");
    for (std::size_t i = 0;
         i < std::min(max_alignments, result.alignments.size()); ++i)
      std::printf("%s\n", blast::format_alignment(query.residues, db,
                                                  result.alignments[i])
                              .c_str());
    std::printf("[%zu hits in %.3f s host wall-clock; %llu hits detected, "
                "%llu ungapped extensions, %llu gapped]\n\n",
                result.alignments.size(), elapsed,
                static_cast<unsigned long long>(
                    result.counters.hits_detected),
                static_cast<unsigned long long>(
                    result.counters.ungapped_extensions),
                static_cast<unsigned long long>(
                    result.counters.gapped_extensions));
  }
  if (!report_json_path.empty()) {
    std::ofstream out(report_json_path);
    if (!out) {
      std::fprintf(stderr, "blastp_cli: cannot write %s\n",
                   report_json_path.c_str());
      return 1;
    }
    // One object per cublastp query, as a JSON array for stability even
    // with a single query.
    out << '[';
    for (std::size_t i = 0; i < report_jsons.size(); ++i) {
      if (i) out << ',';
      out << report_jsons[i];
    }
    out << "]\n";
  }
  if (!metrics_path.empty() &&
      !util::metrics::Registry::instance().write_file(metrics_path)) {
    std::fprintf(stderr, "blastp_cli: cannot write %s\n",
                 metrics_path.c_str());
    return 1;
  }

  // Like cuda-memcheck: correct-looking output still fails the run when
  // the analyzer found hazards.
  return hazards_found ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "blastp_cli: error: %s\n", e.what());
    return 1;
  }
}
