// blastp_cli: a blastp-like command-line tool over the cuBLASTP engine —
// FASTA query(ies) vs FASTA database, ranked hits with alignments.
//
//   ./blastp_cli --query=queries.fasta --db=database.fasta
//                [--evalue=10] [--engine=cublastp|fsa|ncbi]
//                [--strategy=window|diagonal|hit] [--threads=4]
//                [--engine_workers=1] [--max_alignments=5]
//                [--prefilter=off|on|auto] [--prefilter-threshold=N]
//                [--lenient] [--simtcheck] [--svccheck]
//                [--trace=out.json] [--metrics=out.prom]
//                [--report] [--report-json=out.json]
//
// --prefilter enables the lossless SSV pre-filter (results stay
// bit-identical; DESIGN.md §13); auto additionally routes dense blocks to
// the coarse backend. --prefilter-threshold overrides the calibrated
// cutoff (0 = derive from Karlin statistics; raising it above the derived
// value voids the losslessness guarantee).
//
// Batch mode: --batch=queries.fasta (instead of --query) answers every
// query through one core::ShardedSession::search_batch — the database is
// uploaded once and each query is scattered across the --shards=K fleet.
// --report-json then writes ONE cublastp.batch_report.v4 document instead
// of an array of per-query reports.
//
// Sharding: --shards=K partitions the database blocks across a modeled
// K-GPU scatter–gather fleet (DESIGN.md §17). Results are bit-identical
// at every K; K=1 (the default) is the classic single-engine layout.
//
// All-vs-all mode: --all-vs-all (with --db, no query file) searches every
// database sequence as a query against the whole database through one
// batch; --all-vs-all-limit=N caps it to the first N sequences.
//
// Service mode: --serve --batch=queries.fasta answers the query list
// through a core::SearchService (DESIGN.md §14) — a bounded admission
// queue in front of one resident session — with N concurrent submitter
// threads (--serve-clients, default 2) each submitting the list
// --serve-repeat times. Deadlines and cancellation:
//   --deadline-ms=X            relative deadline for every request
//   --deadline-queries=i:ms,…  per-query-index deadline overrides
//   --cancel-queries=i,j       submit those indices pre-cancelled
//   --queue-capacity=N         admission queue bound (default 16)
//   --per-priority-limit=N     per-class cap (default 0 = none)
// Serve-mode observability (DESIGN.md §16):
//   --slo-ms=X                 latency objective; slower requests burn
//                              service.slo.violations and trigger dumps
//   --flight-dir=DIR           per-query flight recorder; queries that end
//                              degraded/failed/cancelled/expired or past
//                              the SLO dump flight_<seq>_<status>.json
//   --statusz=PATH             periodic live-status JSON rewrite
//   --statusz-period-ms=X      statusz rewrite period (default 500)
//   --log=PATH                 structured JSONL event log (admission,
//                              dispatch, completion, drain, ...)
// Serve mode prints a per-status summary and exits 0 even when requests
// were rejected or expired — backpressure is the service working as
// designed, not a tool failure.
//
// Without --serve, --deadline-ms=X on a plain --query run routes each
// query through a one-off service; a query that misses its deadline (or
// is cancelled) exits 4.
//
// Observability: --trace records one Chrome-trace session spanning every
// query (load in chrome://tracing or Perfetto); --metrics exports the
// process metrics registry (.prom/.txt = Prometheus text, .json = JSON;
// anything else is an error); --profile=out.json writes the continuous
// profiler's cumulative per-phase document (schema cublastp.profile.v1);
// --report prints the per-query phase/counter tables; --report-json writes
// the structured run report(s) (schema cublastp.search_report.v4).
//
// Try it end to end with the synthetic generator:
//   ./database_tools generate --out=db.fasta --seqs=1000 --plant_query_len=517
//   printf '>q\n...' > q.fasta   (or use database_tools + your own FASTA)
//   ./blastp_cli --query=q.fasta --db=db.fasta
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baselines/cpu.hpp"
#include "bio/fasta.hpp"
#include "blast/results.hpp"
#include "common.hpp"
#include "core/cublastp.hpp"
#include "core/search_session.hpp"
#include "core/service.hpp"
#include "core/sharded_session.hpp"
#include "util/metrics.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace {

using namespace repro;

/// Per-query hazard/degradation warnings; returns true when the analyzer
/// found hazards (the CLI then exits 3, like cuda-memcheck).
bool report_query_health(const std::string& query_id, bool simtcheck,
                         const core::SearchReport& report) {
  if (simtcheck || report.hazards.total != 0)
    std::fprintf(stderr, "%s\n", report.hazards.summary().c_str());
  if (report.degraded())
    std::fprintf(stderr,
                 "blastp_cli: query %s degraded: %llu of %zu blocks fell "
                 "back to the CPU, %llu cache-off retries, %llu injected "
                 "faults absorbed (results stay complete)\n",
                 query_id.c_str(),
                 static_cast<unsigned long long>(report.degraded_blocks),
                 report.retry_counts.size(),
                 static_cast<unsigned long long>(report.cache_off_retries),
                 static_cast<unsigned long long>(report.faults_encountered));
  if (report.prefilter_degraded_blocks != 0)
    std::fprintf(
        stderr,
        "blastp_cli: query %s: pre-filter skipped on %llu blocks (served "
        "unfiltered; results stay complete)\n",
        query_id.c_str(),
        static_cast<unsigned long long>(report.prefilter_degraded_blocks));
  return report.hazards.total != 0;
}

/// blastp-style output for one query's result.
void print_query_result(const bio::Sequence& query,
                        const bio::SequenceDatabase& db,
                        const blast::SearchResult& result, double elapsed,
                        std::size_t max_alignments) {
  if (result.alignments.empty()) {
    std::printf("***** No hits found *****\n\n");
    return;
  }
  std::printf("Sequences producing significant alignments:  "
              "(bits)  (e-value)\n");
  for (std::size_t i = 0;
       i < std::min<std::size_t>(20, result.alignments.size()); ++i) {
    const auto& a = result.alignments[i];
    std::printf("  %-40s %7.1f   %8.1e\n", db.id(a.seq).c_str(), a.bit_score,
                a.evalue);
  }
  std::printf("\n");
  for (std::size_t i = 0;
       i < std::min(max_alignments, result.alignments.size()); ++i)
    std::printf("%s\n",
                blast::format_alignment(query.residues, db,
                                        result.alignments[i])
                    .c_str());
  std::printf("[%zu hits in %.3f s host wall-clock; %llu hits detected, "
              "%llu ungapped extensions, %llu gapped]\n\n",
              result.alignments.size(), elapsed,
              static_cast<unsigned long long>(result.counters.hits_detected),
              static_cast<unsigned long long>(
                  result.counters.ungapped_extensions),
              static_cast<unsigned long long>(
                  result.counters.gapped_extensions));
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "blastp_cli: cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

/// Parses "i,j,k" into indices (ignores malformed entries).
std::vector<std::size_t> parse_index_list(const std::string& csv) {
  std::vector<std::size_t> out;
  std::stringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ','))
    if (!item.empty()) out.push_back(std::stoul(item));
  return out;
}

/// Parses "i:ms,j:ms" into {index -> deadline_ms}.
std::map<std::size_t, double> parse_deadline_map(const std::string& csv) {
  std::map<std::size_t, double> out;
  std::stringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    const auto colon = item.find(':');
    if (colon == std::string::npos || colon == 0) continue;
    out[std::stoul(item.substr(0, colon))] =
        std::stod(item.substr(colon + 1));
  }
  return out;
}

/// --serve: the query list through a SearchService under concurrent
/// submitters. Prints a per-status summary; rejected/expired requests are
/// the service doing its job, so this never fails the tool.
int run_serve(const util::Options& options, const core::Config& config,
              const std::vector<bio::Sequence>& queries,
              const bio::SequenceDatabase& db) {
  core::ServiceConfig service_config;
  service_config.queue_capacity =
      static_cast<std::size_t>(options.get_int("queue-capacity", 16));
  service_config.per_priority_limit =
      static_cast<std::size_t>(options.get_int("per-priority-limit", 0));
  service_config.slo_ms = options.get_double("slo-ms", 0.0);
  service_config.flight_dir = options.get("flight-dir", "");
  service_config.statusz_path = options.get("statusz", "");
  service_config.statusz_period_ms =
      options.get_double("statusz-period-ms", 500.0);
  service_config.event_log_path = options.get("log", "");
  const auto clients = static_cast<std::size_t>(
      std::max<std::int64_t>(1, options.get_int("serve-clients", 2)));
  const auto repeat = static_cast<std::size_t>(
      std::max<std::int64_t>(1, options.get_int("serve-repeat", 1)));
  const double global_deadline_ms = options.get_double("deadline-ms", 0.0);
  const auto deadline_overrides =
      parse_deadline_map(options.get("deadline-queries", ""));
  const auto cancel_indices =
      parse_index_list(options.get("cancel-queries", ""));

  // Pre-cancelled source for --cancel-queries: those requests resolve
  // kCancelled deterministically (at dequeue, before any work).
  core::CancellationSource cancelled_source;
  cancelled_source.cancel();

  core::SearchService service(config, db, service_config);

  std::mutex agg_mutex;
  std::map<std::string, std::size_t> status_counts;
  double wall_ms_sum = 0.0;
  std::size_t resolved = 0;

  util::Timer serve_timer;
  std::vector<std::thread> submitters;
  submitters.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    submitters.emplace_back([&, c] {
      std::vector<std::future<core::ServiceResult>> futures;
      for (std::size_t r = 0; r < repeat; ++r)
        for (std::size_t qi = 0; qi < queries.size(); ++qi) {
          core::SearchRequest request;
          request.query.assign(queries[qi].residues.begin(),
                               queries[qi].residues.end());
          // Spread priorities so the per-class caps see traffic: client 0
          // is interactive, the rest alternate normal/batch.
          request.priority =
              c == 0 ? core::RequestPriority::kInteractive
                     : (c % 2 != 0 ? core::RequestPriority::kNormal
                                   : core::RequestPriority::kBatch);
          const auto it = deadline_overrides.find(qi);
          request.deadline_ms =
              it != deadline_overrides.end() ? it->second : global_deadline_ms;
          if (std::find(cancel_indices.begin(), cancel_indices.end(), qi) !=
              cancel_indices.end())
            request.cancel = cancelled_source.token();
          futures.push_back(service.submit(std::move(request)));
        }
      for (auto& future : futures) {
        core::ServiceResult result = future.get();
        std::lock_guard<std::mutex> lock(agg_mutex);
        status_counts[core::request_status_name(result.status)] += 1;
        wall_ms_sum += result.wall_ms;
        resolved += 1;
      }
    });
  }
  for (auto& t : submitters) t.join();
  service.drain();
  const double serve_seconds = serve_timer.seconds();

  // Whole-service hazard aggregate: per-request simtcheck/leakcheck/
  // checkpoint findings, the svccheck host-concurrency log, and (the
  // service is idle now) a session leak scan. Like cuda-memcheck, hazards
  // fail the run with exit 3 even when every request resolved.
  const simt::HazardReport hazards = service.hazard_report();
  if (config.simtcheck || config.svccheck || hazards.total != 0)
    std::fprintf(stderr, "%s\n", hazards.summary().c_str());

  const core::ServiceStats stats = service.stats();
  util::Table table({"status", "count"});
  for (const auto& [status, count] : status_counts)
    table.add_row({status, std::to_string(count)});
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Service: %llu submitted, %llu admitted, %llu rejected; %llu "
      "completed, %llu cancelled, %llu deadline-exceeded, %llu failed; "
      "%llu transient retries; %zu requests in %.3f s (%.1f req/s)\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.admitted),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.cancelled),
      static_cast<unsigned long long>(stats.deadline_exceeded),
      static_cast<unsigned long long>(stats.failed),
      static_cast<unsigned long long>(stats.transient_retries), resolved,
      serve_seconds,
      serve_seconds > 0.0 ? static_cast<double>(resolved) / serve_seconds
                          : 0.0);
  return hazards.total != 0 ? 3 : 0;
}

int run(int argc, char** argv) {
  util::Options options(argc, argv);
  const bool batch_mode = options.has("batch");
  const bool all_vs_all = options.has("all-vs-all");
  if ((!options.has("query") && !batch_mode && !all_vs_all) ||
      !options.has("db")) {
    std::fprintf(stderr,
                 "usage: blastp_cli (--query=FASTA | --batch=FASTA | "
                 "--all-vs-all [--all-vs-all-limit=N]) "
                 "--db=FASTA "
                 "[--evalue=E] [--engine=cublastp|fsa|ncbi] "
                 "[--strategy=window|diagonal|hit] [--threads=T] "
                 "[--engine_workers=W] [--shards=K] "
                 "[--prefilter=off|on|auto] [--prefilter-threshold=N] "
                 "[--max_alignments=N] [--lenient] [--simtcheck] "
                 "[--svccheck] "
                 "[--trace=PATH] [--metrics=PATH] [--profile=PATH] "
                 "[--report] [--report-json=PATH]\n"
                 "       blastp_cli --serve --batch=FASTA --db=FASTA "
                 "[--serve-clients=N] [--serve-repeat=N] [--deadline-ms=X] "
                 "[--deadline-queries=i:ms,...] [--cancel-queries=i,...] "
                 "[--queue-capacity=N] [--per-priority-limit=N] "
                 "[--slo-ms=X] [--flight-dir=DIR] [--statusz=PATH] "
                 "[--statusz-period-ms=X] [--log=PATH]\n");
    return 2;
  }

  const bool lenient = options.has("lenient");
  const std::string query_path =
      batch_mode ? options.get("batch", "") : options.get("query", "");
  std::vector<bio::Sequence> queries;
  if (!all_vs_all)
    queries = examples::load_fasta(query_path, lenient, "blastp_cli");
  const auto db = examples::load_database(options.get("db", ""), lenient,
                                          "blastp_cli");
  std::printf("Database: %zu sequences; %llu total letters\n\n", db.size(),
              static_cast<unsigned long long>(db.total_residues()));

  core::Config config = examples::config_from_options(options);
  config.profile_path = options.get("profile", "");
  const std::string engine_name = options.get("engine", "cublastp");
  const auto max_alignments =
      static_cast<std::size_t>(options.get_int("max_alignments", 5));
  if ((batch_mode || all_vs_all) && engine_name != "cublastp") {
    std::fprintf(stderr,
                 "blastp_cli: --batch/--all-vs-all require --engine=cublastp "
                 "(the baseline engines have no batch mode)\n");
    return 2;
  }

  // One Chrome-trace session spanning every query; search() sees it active
  // and joins rather than starting per-query sessions.
  const std::string trace_path = options.get("trace", "");
  std::optional<util::TraceSession> trace_session;
  if (!trace_path.empty()) trace_session.emplace(trace_path);
  const std::string metrics_path = options.get("metrics", "");
  const std::string report_json_path = options.get("report-json", "");
  const bool print_report = options.has("report");
  const double deadline_ms = options.get_double("deadline-ms", 0.0);

  if (options.has("serve")) {
    if (!batch_mode || engine_name != "cublastp") {
      std::fprintf(stderr,
                   "blastp_cli: --serve requires --batch=FASTA and "
                   "--engine=cublastp\n");
      return 2;
    }
    const int rc = run_serve(options, config, queries, db);
    if (!metrics_path.empty() &&
        !util::metrics::Registry::instance().write_file(metrics_path)) {
      std::fprintf(stderr, "blastp_cli: cannot write %s\n",
                   metrics_path.c_str());
      return 1;
    }
    return rc;
  }

  bool hazards_found = false;
  bool deadline_missed = false;

  if (batch_mode || all_vs_all) {
    // One fleet session, one batch: each shard's database slice uploads
    // once and every query is scattered across the --shards=K fleet
    // (K=1 = the classic single-engine session).
    core::ShardedSession session(config, db);
    core::BatchReport batch;
    if (all_vs_all) {
      const auto limit = static_cast<std::size_t>(
          std::max<std::int64_t>(0, options.get_int("all-vs-all-limit", 0)));
      batch = session.search_all_vs_all(limit);
      queries.reserve(batch.reports.size());
      for (std::size_t i = 0; i < batch.reports.size(); ++i)
        queries.push_back(db.sequence(i));
    } else {
      std::vector<std::span<const std::uint8_t>> spans;
      spans.reserve(queries.size());
      for (const auto& query : queries) spans.emplace_back(query.residues);
      batch = session.search_batch(spans);
    }

    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      const auto& report = batch.reports[qi];
      std::printf("Query= %s (%zu letters)\n\n", queries[qi].id.c_str(),
                  queries[qi].length());
      hazards_found |=
          report_query_health(queries[qi].id, config.simtcheck || config.svccheck, report);
      if (print_report) std::printf("%s\n", report.to_table().c_str());
      print_query_result(queries[qi], db, report.result,
                         batch.per_query_wall_seconds[qi], max_alignments);
    }
    std::printf(
        "Batch: %zu queries across %zu shard(s) in %.3f s (%.1f queries/s); "
        "database uploaded "
        "once (%llu of %llu bytes; %.0f amortized bytes/query); modeled "
        "pipeline %.2f ms batched vs %.2f ms sequential (%.2fx)\n",
        batch.reports.size(), batch.shards, batch.batch_wall_seconds,
        batch.queries_per_second(),
        static_cast<unsigned long long>(batch.h2d_block_bytes),
        static_cast<unsigned long long>(batch.db_device_bytes),
        batch.amortized_h2d_bytes_per_query(),
        batch.modeled_batch_seconds * 1e3,
        batch.modeled_sequential_seconds * 1e3, batch.modeled_speedup());
    if (!report_json_path.empty() &&
        !write_text_file(report_json_path, batch.to_json() + "\n"))
      return 1;
  } else {
    std::vector<std::string> report_jsons;
    // With a deadline, queries route through a one-off service in front of
    // one resident session, so deadline misses surface as statuses instead
    // of exceptions.
    std::optional<core::SearchService> service;
    if (engine_name == "cublastp" && deadline_ms > 0.0)
      service.emplace(config, db);
    // With --profile or --shards>1 (and no service), queries go through
    // one resident ShardedSession (K=1 behaves exactly like the old
    // SearchSession) so the continuous profiler accumulates across the run
    // and sharded queries scatter across the fleet.
    std::optional<core::ShardedSession> session;
    if (engine_name == "cublastp" && !service.has_value() &&
        (!config.profile_path.empty() || config.shards > 1))
      session.emplace(config, db);
    for (const auto& query : queries) {
      std::printf("Query= %s (%zu letters)\n\n", query.id.c_str(),
                  query.length());
      util::Timer timer;
      blast::SearchResult result;
      core::SearchReport report;
      if (engine_name == "fsa") {
        result =
            baselines::fsa_blast_search(query.residues, db, config.params);
      } else if (engine_name == "ncbi") {
        result = baselines::ncbi_mt_search(query.residues, db, config.params,
                                           config.cpu_threads);
      } else {
        if (service.has_value()) {
          core::ServiceResult sres = service->search(
              std::vector<std::uint8_t>(query.residues.begin(),
                                        query.residues.end()),
              deadline_ms);
          if (sres.status != core::RequestStatus::kOk &&
              sres.status != core::RequestStatus::kDegraded) {
            std::fprintf(stderr, "blastp_cli: query %s %s: %s\n",
                         query.id.c_str(),
                         core::request_status_name(sres.status),
                         sres.message.c_str());
            deadline_missed = true;
            continue;
          }
          report = std::move(sres.report);
        } else if (session.has_value()) {
          report = session->search(query.residues);
        } else {
          report = core::CuBlastp(config).search(query.residues, db);
        }
        if (print_report) std::printf("%s\n", report.to_table().c_str());
        if (!report_json_path.empty())
          report_jsons.push_back(report.to_json());
        result = std::move(report.result);
      }
      const double elapsed = timer.seconds();
      if (engine_name == "cublastp")
        hazards_found |=
            report_query_health(query.id, config.simtcheck || config.svccheck, report);
      print_query_result(query, db, result, elapsed, max_alignments);
    }
    if (!report_json_path.empty()) {
      // One object per cublastp query, as a JSON array for stability even
      // with a single query.
      std::string doc = "[";
      for (std::size_t i = 0; i < report_jsons.size(); ++i) {
        if (i) doc += ',';
        doc += report_jsons[i];
      }
      doc += "]\n";
      if (!write_text_file(report_json_path, doc)) return 1;
    }
  }

  if (!metrics_path.empty() &&
      !util::metrics::Registry::instance().write_file(metrics_path)) {
    std::fprintf(stderr, "blastp_cli: cannot write %s\n",
                 metrics_path.c_str());
    return 1;
  }

  // Like cuda-memcheck: correct-looking output still fails the run when
  // the analyzer found hazards. A missed deadline outranks hazards (4).
  if (deadline_missed) return 4;
  return hazards_found ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  return examples::run_tool("blastp_cli", [&] { return run(argc, argv); });
}
