// blastp_cli: a blastp-like command-line tool over the cuBLASTP engine —
// FASTA query(ies) vs FASTA database, ranked hits with alignments.
//
//   ./blastp_cli --query=queries.fasta --db=database.fasta
//                [--evalue=10] [--engine=cublastp|fsa|ncbi]
//                [--strategy=window|diagonal|hit] [--threads=4]
//                [--max_alignments=5] [--lenient] [--simtcheck]
//
// Try it end to end with the synthetic generator:
//   ./database_tools generate --out=db.fasta --seqs=1000 --plant_query_len=517
//   printf '>q\n...' > q.fasta   (or use database_tools + your own FASTA)
//   ./blastp_cli --query=q.fasta --db=db.fasta
#include <cstdio>
#include <exception>
#include <string>

#include "baselines/cpu.hpp"
#include "bio/fasta.hpp"
#include "blast/results.hpp"
#include "core/cublastp.hpp"
#include "util/options.hpp"
#include "util/timer.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace repro;
  util::Options options(argc, argv);
  if (!options.has("query") || !options.has("db")) {
    std::fprintf(stderr,
                 "usage: blastp_cli --query=FASTA --db=FASTA "
                 "[--evalue=E] [--engine=cublastp|fsa|ncbi] "
                 "[--strategy=window|diagonal|hit] [--threads=T] "
                 "[--max_alignments=N] [--lenient] [--simtcheck]\n");
    return 2;
  }

  const auto policy = options.has("lenient")
                          ? bio::FastaPolicy::kLenient
                          : bio::FastaPolicy::kStrict;
  bio::FastaWarnings warnings;
  const auto queries =
      bio::read_fasta_file(options.get("query", ""), policy, &warnings);
  const bio::SequenceDatabase db(
      bio::read_fasta_file(options.get("db", ""), policy, &warnings));
  if (warnings.total() != 0)
    std::fprintf(stderr,
                 "blastp_cli: lenient FASTA parse: %llu unknown residues "
                 "mapped to X, %llu empty records skipped, %llu empty ids\n",
                 static_cast<unsigned long long>(warnings.unknown_residues),
                 static_cast<unsigned long long>(
                     warnings.empty_records_skipped),
                 static_cast<unsigned long long>(warnings.empty_ids));
  std::printf("Database: %zu sequences; %llu total letters\n\n", db.size(),
              static_cast<unsigned long long>(db.total_residues()));

  core::Config config;
  config.params.max_evalue = options.get_double("evalue", 10.0);
  config.cpu_threads =
      static_cast<std::size_t>(options.get_int("threads", 4));
  const std::string strategy = options.get("strategy", "window");
  if (strategy == "diagonal")
    config.strategy = core::ExtensionStrategy::kDiagonal;
  else if (strategy == "hit")
    config.strategy = core::ExtensionStrategy::kHit;
  else
    config.strategy = core::ExtensionStrategy::kWindow;

  // --simtcheck runs every kernel under the hazard analyzer (racecheck/
  // synccheck/memcheck; env REPRO_SIMTCHECK=1 does the same).
  config.simtcheck = options.has("simtcheck");

  const std::string engine_name = options.get("engine", "cublastp");
  const auto max_alignments =
      static_cast<std::size_t>(options.get_int("max_alignments", 5));

  bool hazards_found = false;
  for (const auto& query : queries) {
    std::printf("Query= %s (%zu letters)\n\n", query.id.c_str(),
                query.length());
    util::Timer timer;
    blast::SearchResult result;
    core::SearchReport report;
    if (engine_name == "fsa") {
      result = baselines::fsa_blast_search(query.residues, db,
                                           config.params);
    } else if (engine_name == "ncbi") {
      result = baselines::ncbi_mt_search(query.residues, db, config.params,
                                         config.cpu_threads);
    } else {
      report = core::CuBlastp(config).search(query.residues, db);
      result = std::move(report.result);
    }
    const double elapsed = timer.seconds();
    if (engine_name == "cublastp" &&
        (config.simtcheck || report.hazards.total != 0)) {
      std::fprintf(stderr, "%s\n", report.hazards.summary().c_str());
      hazards_found |= report.hazards.total != 0;
    }
    if (report.degraded())
      std::fprintf(stderr,
                   "blastp_cli: query %s degraded: %llu of %zu blocks fell "
                   "back to the CPU, %llu cache-off retries, %llu injected "
                   "faults absorbed (results stay complete)\n",
                   query.id.c_str(),
                   static_cast<unsigned long long>(report.degraded_blocks),
                   report.retry_counts.size(),
                   static_cast<unsigned long long>(report.cache_off_retries),
                   static_cast<unsigned long long>(
                       report.faults_encountered));

    if (result.alignments.empty()) {
      std::printf("***** No hits found *****\n\n");
      continue;
    }
    std::printf("Sequences producing significant alignments:  "
                "(bits)  (e-value)\n");
    for (std::size_t i = 0;
         i < std::min<std::size_t>(20, result.alignments.size()); ++i) {
      const auto& a = result.alignments[i];
      std::printf("  %-40s %7.1f   %8.1e\n", db.id(a.seq).c_str(),
                  a.bit_score, a.evalue);
    }
    std::printf("\n");
    for (std::size_t i = 0;
         i < std::min(max_alignments, result.alignments.size()); ++i)
      std::printf("%s\n", blast::format_alignment(query.residues, db,
                                                  result.alignments[i])
                              .c_str());
    std::printf("[%zu hits in %.3f s host wall-clock; %llu hits detected, "
                "%llu ungapped extensions, %llu gapped]\n\n",
                result.alignments.size(), elapsed,
                static_cast<unsigned long long>(
                    result.counters.hits_detected),
                static_cast<unsigned long long>(
                    result.counters.ungapped_extensions),
                static_cast<unsigned long long>(
                    result.counters.gapped_extensions));
  }
  // Like cuda-memcheck: correct-looking output still fails the run when
  // the analyzer found hazards.
  return hazards_found ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "blastp_cli: error: %s\n", e.what());
    return 1;
  }
}
