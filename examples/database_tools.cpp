// Database tools: generate a synthetic protein database to FASTA, or
// inspect an existing FASTA database (length distribution, residue
// composition) — the utilities used to stand in for the NCBI downloads
// this reproduction cannot fetch.
//
//   ./database_tools generate --out=db.fasta [--seqs=N] [--env_nr]
//                             [--plant_query_len=N]
//   ./database_tools query    --out=q.fasta [--len=N]
//   ./database_tools inspect --in=db.fasta [--lenient]
//
// "query" writes the deterministic benchmark query of the given length —
// the same sequence `generate --plant_query_len=N` plants homologs of, so
// the pair gives an end-to-end search with guaranteed hits.
#include <cstdio>

#include <array>
#include <exception>

#include "bio/alphabet.hpp"
#include "bio/fasta.hpp"
#include "bio/generator.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace repro;
  util::Options options(argc, argv);
  const auto& positional = options.positional();
  const std::string mode = positional.empty() ? "generate" : positional[0];

  if (mode == "generate") {
    const auto seqs = static_cast<std::size_t>(options.get_int("seqs", 1000));
    auto profile = options.has("env_nr")
                       ? bio::DatabaseProfile::env_nr_like(seqs)
                       : bio::DatabaseProfile::swissprot_like(seqs);
    bio::DatabaseGenerator gen(
        profile, static_cast<std::uint64_t>(options.get_int("seed", 1)));
    std::vector<std::uint8_t> query;
    if (options.has("plant_query_len")) {
      query = bio::make_benchmark_query(static_cast<std::size_t>(
                                            options.get_int(
                                                "plant_query_len", 517)))
                  .residues;
    }
    const auto db = gen.generate(query);
    std::vector<bio::Sequence> records;
    records.reserve(db.size());
    for (std::size_t i = 0; i < db.size(); ++i)
      records.push_back(db.sequence(i));
    const std::string out = options.get("out", "db.fasta");
    bio::write_fasta_file(out, records);
    std::printf("wrote %zu sequences (%.2f MB of residues) to %s\n",
                db.size(), static_cast<double>(db.total_residues()) / 1e6,
                out.c_str());
    return 0;
  }

  if (mode == "query") {
    const auto len =
        static_cast<std::size_t>(options.get_int("len", 517));
    const bio::Sequence query = bio::make_benchmark_query(len);
    const std::string out = options.get("out", "query.fasta");
    bio::write_fasta_file(out, {query});
    std::printf("wrote query %s (%zu letters) to %s\n", query.id.c_str(),
                query.length(), out.c_str());
    return 0;
  }

  if (mode == "inspect") {
    const std::string in = options.get("in", "db.fasta");
    const auto policy = options.has("lenient") ? bio::FastaPolicy::kLenient
                                               : bio::FastaPolicy::kStrict;
    bio::FastaWarnings warnings;
    const bio::SequenceDatabase db(
        bio::read_fasta_file(in, policy, &warnings));
    if (warnings.total() != 0)
      std::fprintf(stderr,
                   "database_tools: lenient parse: %llu unknown residues "
                   "mapped to X, %llu empty records skipped, %llu empty "
                   "ids\n",
                   static_cast<unsigned long long>(warnings.unknown_residues),
                   static_cast<unsigned long long>(
                       warnings.empty_records_skipped),
                   static_cast<unsigned long long>(warnings.empty_ids));
    std::printf("%s: %zu sequences, %llu residues, average length %.1f, "
                "max %zu\n\n",
                in.c_str(), db.size(),
                static_cast<unsigned long long>(db.total_residues()),
                db.average_length(), db.max_length());

    util::Histogram lengths(0, 2000, 20);
    std::array<double, bio::kAlphabetSize> composition{};
    for (std::size_t i = 0; i < db.size(); ++i) {
      lengths.add(static_cast<double>(db.length(i)));
      for (const auto r : db.residues(i)) composition[r] += 1.0;
    }
    std::printf("length distribution:\n%s\n", lengths.render(40).c_str());
    std::printf("residue composition (top rows):\n");
    for (int aa = 0; aa < bio::kNumRealAminoAcids; ++aa)
      std::printf("  %c: %5.2f%%\n", bio::decode_letter(
                                         static_cast<std::uint8_t>(aa)),
                  100.0 * composition[static_cast<std::size_t>(aa)] /
                      static_cast<double>(db.total_residues()));
    return 0;
  }

  std::fprintf(stderr,
               "usage: database_tools generate|query|inspect [options]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "database_tools: error: %s\n", e.what());
    return 1;
  }
}
