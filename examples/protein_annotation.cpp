// Metagenome annotation scenario (the paper's env_nr motivation): search a
// batch of query proteins against a large collection of environmental
// reads and report, for each query, its best annotated match — the bread-
// and-butter downstream use of BLASTP.
//
// The whole batch runs through one core::SearchSession::search_batch, so
// the read collection is uploaded to the device once and each query's CPU
// gapped stage overlaps the next query's GPU phases (the paper's Fig. 12
// overlap, generalized across queries).
//
//   ./protein_annotation [--reads=N] [--queries=N] [--threads=T]
#include <cstdio>
#include <span>
#include <vector>

#include "bio/generator.hpp"
#include "common.hpp"
#include "core/search_session.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace repro;
  util::Options options(argc, argv);
  const auto num_reads =
      static_cast<std::size_t>(options.get_int("reads", 2000));
  const auto num_queries =
      static_cast<std::size_t>(options.get_int("queries", 8));

  // Build the "sequenced environment": env_nr-like reads, a fraction of
  // which carry fragments of our query proteins (so annotation can work).
  std::printf("generating %zu environmental reads...\n", num_reads);
  std::vector<bio::Sequence> queries;
  for (std::size_t i = 0; i < num_queries; ++i)
    queries.push_back(
        bio::make_benchmark_query(120 + 60 * (i % 5), 777 + i));

  auto profile = bio::DatabaseProfile::env_nr_like(num_reads);
  profile.homolog_fraction = 0.01;
  // Plant fragments of every query by generating per-query shards.
  std::vector<bio::Sequence> reads;
  for (std::size_t i = 0; i < num_queries; ++i) {
    bio::DatabaseGenerator gen(
        bio::DatabaseProfile::env_nr_like(num_reads / num_queries),
        1000 + i);
    auto shard = gen.generate(queries[i].residues);
    for (std::size_t s = 0; s < shard.size(); ++s)
      reads.push_back(shard.sequence(s));
  }
  const bio::SequenceDatabase db(std::move(reads));
  std::printf("database: %zu reads, %.1f average length, %.2f MB\n\n",
              db.size(), db.average_length(),
              static_cast<double>(db.total_residues()) / 1e6);

  const core::Config config = examples::config_from_options(options);
  core::SearchSession session(config, db);
  std::vector<std::span<const std::uint8_t>> spans;
  spans.reserve(queries.size());
  for (const auto& query : queries) spans.emplace_back(query.residues);
  const core::BatchReport batch = session.search_batch(spans);

  util::Table table({"query", "len", "hits", "best read", "bit score",
                     "e-value", "coverage"});
  double gpu_ms = 0.0;
  std::uint64_t degraded_blocks = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto& query = queries[i];
    const auto& report = batch.reports[i];
    gpu_ms += report.gpu_critical_ms();
    degraded_blocks += report.degraded_blocks;
    if (report.result.alignments.empty()) {
      table.add_row({query.id, std::to_string(query.length()), "0", "-",
                     "-", "-", "-"});
      continue;
    }
    const auto& best = report.result.alignments.front();
    const double coverage =
        100.0 * static_cast<double>(best.q_end - best.q_start + 1) /
        static_cast<double>(query.length());
    char evalue[32];
    std::snprintf(evalue, sizeof evalue, "%.1e", best.evalue);
    table.add_row({query.id, std::to_string(query.length()),
                   std::to_string(report.result.alignments.size()),
                   db.id(best.seq), util::Table::num(best.bit_score, 1),
                   evalue,
                   util::Table::num(coverage, 0) + "%"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("annotated %zu queries in %.2f s host wall-clock, %.1f "
              "queries/s (modeled GPU critical time: %.2f ms; database "
              "uploaded once: %llu bytes, %.0f amortized bytes/query)\n",
              queries.size(), batch.batch_wall_seconds,
              batch.queries_per_second(), gpu_ms,
              static_cast<unsigned long long>(batch.h2d_block_bytes),
              batch.amortized_h2d_bytes_per_query());
  if (degraded_blocks != 0)
    std::fprintf(stderr,
                 "protein_annotation: %llu database blocks were served by "
                 "the CPU fallback (results stay complete)\n",
                 static_cast<unsigned long long>(degraded_blocks));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return repro::examples::run_tool("protein_annotation",
                                   [&] { return run(argc, argv); });
}
