#include "common.hpp"

#include <cstdio>
#include <exception>
#include <utility>

namespace repro::examples {

std::vector<bio::Sequence> load_fasta(const std::string& path, bool lenient,
                                      const char* tool) {
  const auto policy =
      lenient ? bio::FastaPolicy::kLenient : bio::FastaPolicy::kStrict;
  bio::FastaWarnings warnings;
  auto sequences = bio::read_fasta_file(path, policy, &warnings);
  if (warnings.total() != 0)
    std::fprintf(stderr,
                 "%s: lenient FASTA parse of %s: %llu unknown residues "
                 "mapped to X, %llu empty records skipped, %llu empty ids\n",
                 tool, path.c_str(),
                 static_cast<unsigned long long>(warnings.unknown_residues),
                 static_cast<unsigned long long>(
                     warnings.empty_records_skipped),
                 static_cast<unsigned long long>(warnings.empty_ids));
  return sequences;
}

bio::SequenceDatabase load_database(const std::string& path, bool lenient,
                                    const char* tool) {
  return bio::SequenceDatabase(load_fasta(path, lenient, tool));
}

core::Config config_from_options(const util::Options& options) {
  core::Config config;
  config.params.max_evalue = options.get_double("evalue", 10.0);
  config.cpu_threads = static_cast<std::size_t>(options.get_int("threads", 4));
  config.engine_workers =
      static_cast<int>(options.get_int("engine_workers", 1));
  const std::string strategy = options.get("strategy", "window");
  if (strategy == "diagonal")
    config.strategy = core::ExtensionStrategy::kDiagonal;
  else if (strategy == "hit")
    config.strategy = core::ExtensionStrategy::kHit;
  else
    config.strategy = core::ExtensionStrategy::kWindow;
  // --simtcheck runs every kernel under the hazard analyzer (racecheck/
  // synccheck/memcheck; env REPRO_SIMTCHECK=1 does the same).
  config.simtcheck = options.has("simtcheck");
  return config;
}

int run_tool(const char* tool, const std::function<int()>& body) {
  try {
    return body();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: error: %s\n", tool, e.what());
    return 1;
  }
}

}  // namespace repro::examples
