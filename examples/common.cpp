#include "common.hpp"

#include <cstdio>
#include <exception>
#include <stdexcept>
#include <utility>

namespace repro::examples {

std::vector<bio::Sequence> load_fasta(const std::string& path, bool lenient,
                                      const char* tool) {
  const auto policy =
      lenient ? bio::FastaPolicy::kLenient : bio::FastaPolicy::kStrict;
  bio::FastaWarnings warnings;
  auto sequences = bio::read_fasta_file(path, policy, &warnings);
  if (warnings.total() != 0)
    std::fprintf(stderr,
                 "%s: lenient FASTA parse of %s: %llu unknown residues "
                 "mapped to X, %llu empty records skipped, %llu empty ids\n",
                 tool, path.c_str(),
                 static_cast<unsigned long long>(warnings.unknown_residues),
                 static_cast<unsigned long long>(
                     warnings.empty_records_skipped),
                 static_cast<unsigned long long>(warnings.empty_ids));
  return sequences;
}

bio::SequenceDatabase load_database(const std::string& path, bool lenient,
                                    const char* tool) {
  return bio::SequenceDatabase(load_fasta(path, lenient, tool));
}

core::Config config_from_options(const util::Options& options) {
  core::Config config;
  config.params.max_evalue = options.get_double("evalue", 10.0);
  config.cpu_threads = static_cast<std::size_t>(options.get_int("threads", 4));
  config.engine_workers =
      static_cast<int>(options.get_int("engine_workers", 1));
  // --shards=K scatters each query across a modeled K-GPU fleet (clamped
  // to the block count; results are bit-identical at every K).
  config.shards = static_cast<std::size_t>(
      std::max<std::int64_t>(1, options.get_int("shards", 1)));
  const std::string strategy = options.get("strategy", "window");
  if (strategy == "diagonal")
    config.strategy = core::ExtensionStrategy::kDiagonal;
  else if (strategy == "hit")
    config.strategy = core::ExtensionStrategy::kHit;
  else
    config.strategy = core::ExtensionStrategy::kWindow;
  // --simtcheck runs every kernel under the hazard analyzer (racecheck/
  // synccheck/memcheck; env REPRO_SIMTCHECK=1 does the same).
  config.simtcheck = options.has("simtcheck");
  // --svccheck runs the host-side concurrency analyzer (lock-order graph,
  // blocked-while-locked waits, cancellation checkpoint coverage; env
  // REPRO_SVCCHECK=1 does the same).
  config.svccheck = options.has("svccheck");
  // --prefilter=off|on|auto: the lossless SSV pre-filter stage; auto also
  // routes dense blocks to the coarse backend (DESIGN.md §13).
  const std::string prefilter = options.get("prefilter", "off");
  if (prefilter == "on")
    config.prefilter = core::PrefilterMode::kOn;
  else if (prefilter == "auto")
    config.prefilter = core::PrefilterMode::kAuto;
  else if (prefilter == "off")
    config.prefilter = core::PrefilterMode::kOff;
  else
    throw std::invalid_argument("--prefilter must be off, on, or auto (got " +
                                prefilter + ")");
  // --prefilter-threshold overrides the calibrated score cutoff (0 keeps
  // the Karlin-derived lossless threshold).
  config.prefilter_threshold =
      static_cast<int>(options.get_int("prefilter-threshold", 0));
  return config;
}

int run_tool(const char* tool, const std::function<int()>& body) {
  try {
    return body();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: error: %s\n", tool, e.what());
    return 1;
  }
}

}  // namespace repro::examples
