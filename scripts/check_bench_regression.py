#!/usr/bin/env python3
"""Gate bench results against committed baselines.

Compares the "deterministic" section of fresh cublastp.bench.v1 JSON
files against the committed baselines in bench_results/. Integer values
(counters, alignment counts, run-list shapes) must match exactly. Float
values carry a relative tolerance band: most of the modeled cost model
is bit-stable for a given scale/seed, but the read-only-cache simulation
hashes heap addresses, so cache hit ratios — and the modeled times and
derived ratios that fold them in — drift a few percent between processes
(observed up to ~7% on the smallest workloads). The default band covers
that variance; a real perf-model regression shows up as a much larger
shift or as integer/shape changes.

The "measured" section (host wall clock, speedup ratios folding CPU
time) is never gated — it varies run to run on shared CI runners.

Exit codes: 0 all benches within tolerance, 1 regression or structural
mismatch, 2 usage/IO error.
"""

import argparse
import json
import math
import sys
from pathlib import Path

SCHEMA = "cublastp.bench.v1"


def load_bench(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"error: cannot read {path}: {e}")
    if doc.get("schema") != SCHEMA:
        return None
    return doc


def compare(base, fresh, tolerance, path=""):
    """Recursively compare baseline vs fresh values.

    Returns a list of human-readable mismatch strings. Numbers compare
    with relative tolerance; ints, strings, bools exactly; containers
    must match in shape.
    """
    diffs = []
    if isinstance(base, dict) and isinstance(fresh, dict):
        for key in sorted(set(base) | set(fresh)):
            sub = f"{path}.{key}" if path else key
            if key not in base:
                diffs.append(f"{sub}: new key (absent from baseline)")
            elif key not in fresh:
                diffs.append(f"{sub}: missing from fresh run")
            else:
                diffs += compare(base[key], fresh[key], tolerance, sub)
        return diffs
    if isinstance(base, list) and isinstance(fresh, list):
        if len(base) != len(fresh):
            diffs.append(
                f"{path}: length {len(base)} -> {len(fresh)}")
            return diffs
        for i, (b, f) in enumerate(zip(base, fresh)):
            diffs += compare(b, f, tolerance, f"{path}[{i}]")
        return diffs
    # bool is an int subclass; compare it exactly, before the numeric path.
    if isinstance(base, bool) or isinstance(fresh, bool):
        if base is not fresh:
            diffs.append(f"{path}: {base} -> {fresh}")
        return diffs
    if isinstance(base, (int, float)) and isinstance(fresh, (int, float)):
        if isinstance(base, int) and isinstance(fresh, int):
            if base != fresh:
                diffs.append(f"{path}: {base} -> {fresh}")
            return diffs
        if math.isclose(base, fresh, rel_tol=tolerance, abs_tol=1e-12):
            return diffs
        rel = abs(fresh - base) / max(abs(base), 1e-300)
        diffs.append(
            f"{path}: {base!r} -> {fresh!r} (rel diff {rel:.3e} > "
            f"{tolerance:.1e})")
        return diffs
    if base != fresh:
        diffs.append(f"{path}: {base!r} -> {fresh!r}")
    return diffs


def main():
    parser = argparse.ArgumentParser(
        description="Gate fresh bench JSON against committed baselines.")
    parser.add_argument("--baseline", default="bench_results",
                        help="directory of committed baseline JSON")
    parser.add_argument("--fresh", required=True,
                        help="directory of freshly generated JSON")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="relative tolerance band for float "
                             "comparisons (default 0.20 — absorbs the "
                             "address-hashed cache model's variance)")
    args = parser.parse_args()

    baseline_dir = Path(args.baseline)
    fresh_dir = Path(args.fresh)
    if not fresh_dir.is_dir():
        raise SystemExit(f"error: fresh dir {fresh_dir} does not exist")

    fresh_files = sorted(fresh_dir.glob("*.json"))
    if not fresh_files:
        raise SystemExit(f"error: no *.json files in {fresh_dir}")

    failed = []
    checked = 0
    for fresh_path in fresh_files:
        fresh_doc = load_bench(fresh_path)
        if fresh_doc is None:
            print(f"SKIP  {fresh_path.name}: not a {SCHEMA} document")
            continue
        base_path = baseline_dir / fresh_path.name
        if not base_path.exists():
            print(f"WARN  {fresh_path.name}: no committed baseline "
                  f"(new bench — commit it to start gating)")
            continue
        base_doc = load_bench(base_path)
        if base_doc is None:
            failed.append(fresh_path.name)
            print(f"FAIL  {fresh_path.name}: baseline is not {SCHEMA}")
            continue

        # Scale/seed must match or the comparison is meaningless.
        diffs = compare(base_doc.get("scale", {}),
                        fresh_doc.get("scale", {}), 0.0, "scale")
        diffs += compare(base_doc.get("deterministic", {}),
                         fresh_doc.get("deterministic", {}),
                         args.tolerance, "deterministic")
        checked += 1
        if diffs:
            failed.append(fresh_path.name)
            print(f"FAIL  {fresh_path.name}: "
                  f"{len(diffs)} mismatch(es)")
            for d in diffs[:20]:
                print(f"        {d}")
            if len(diffs) > 20:
                print(f"        ... and {len(diffs) - 20} more")
        else:
            print(f"OK    {fresh_path.name}")

    if checked == 0:
        raise SystemExit("error: no benches were actually gated "
                         "(all skipped or missing baselines)")
    if failed:
        print(f"\n{len(failed)}/{checked} bench(es) regressed: "
              f"{', '.join(failed)}")
        return 1
    print(f"\nall {checked} gated bench(es) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
