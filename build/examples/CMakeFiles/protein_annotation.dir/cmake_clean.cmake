file(REMOVE_RECURSE
  "CMakeFiles/protein_annotation.dir/protein_annotation.cpp.o"
  "CMakeFiles/protein_annotation.dir/protein_annotation.cpp.o.d"
  "protein_annotation"
  "protein_annotation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protein_annotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
