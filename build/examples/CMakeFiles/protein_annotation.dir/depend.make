# Empty dependencies file for protein_annotation.
# This may be replaced when dependencies are built.
