# Empty dependencies file for database_tools.
# This may be replaced when dependencies are built.
