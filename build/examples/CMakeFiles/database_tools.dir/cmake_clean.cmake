file(REMOVE_RECURSE
  "CMakeFiles/database_tools.dir/database_tools.cpp.o"
  "CMakeFiles/database_tools.dir/database_tools.cpp.o.d"
  "database_tools"
  "database_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
