file(REMOVE_RECURSE
  "CMakeFiles/blastp_cli.dir/blastp_cli.cpp.o"
  "CMakeFiles/blastp_cli.dir/blastp_cli.cpp.o.d"
  "blastp_cli"
  "blastp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blastp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
