# Empty dependencies file for blastp_cli.
# This may be replaced when dependencies are built.
