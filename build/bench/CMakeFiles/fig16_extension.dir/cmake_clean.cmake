file(REMOVE_RECURSE
  "CMakeFiles/fig16_extension.dir/fig16_extension.cpp.o"
  "CMakeFiles/fig16_extension.dir/fig16_extension.cpp.o.d"
  "fig16_extension"
  "fig16_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
