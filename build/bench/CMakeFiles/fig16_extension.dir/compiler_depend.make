# Empty compiler generated dependencies file for fig16_extension.
# This may be replaced when dependencies are built.
