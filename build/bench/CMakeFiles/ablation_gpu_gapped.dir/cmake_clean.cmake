file(REMOVE_RECURSE
  "CMakeFiles/ablation_gpu_gapped.dir/ablation_gpu_gapped.cpp.o"
  "CMakeFiles/ablation_gpu_gapped.dir/ablation_gpu_gapped.cpp.o.d"
  "ablation_gpu_gapped"
  "ablation_gpu_gapped.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gpu_gapped.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
