# Empty compiler generated dependencies file for ablation_gpu_gapped.
# This may be replaced when dependencies are built.
