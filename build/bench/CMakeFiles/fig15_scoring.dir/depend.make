# Empty dependencies file for fig15_scoring.
# This may be replaced when dependencies are built.
