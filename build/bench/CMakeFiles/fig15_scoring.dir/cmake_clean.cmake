file(REMOVE_RECURSE
  "CMakeFiles/fig15_scoring.dir/fig15_scoring.cpp.o"
  "CMakeFiles/fig15_scoring.dir/fig15_scoring.cpp.o.d"
  "fig15_scoring"
  "fig15_scoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_scoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
