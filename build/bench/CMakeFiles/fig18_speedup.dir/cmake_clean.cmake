file(REMOVE_RECURSE
  "CMakeFiles/fig18_speedup.dir/fig18_speedup.cpp.o"
  "CMakeFiles/fig18_speedup.dir/fig18_speedup.cpp.o.d"
  "fig18_speedup"
  "fig18_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
