file(REMOVE_RECURSE
  "CMakeFiles/fig17_rocache.dir/fig17_rocache.cpp.o"
  "CMakeFiles/fig17_rocache.dir/fig17_rocache.cpp.o.d"
  "fig17_rocache"
  "fig17_rocache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_rocache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
