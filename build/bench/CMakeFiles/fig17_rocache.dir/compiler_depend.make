# Empty compiler generated dependencies file for fig17_rocache.
# This may be replaced when dependencies are built.
