file(REMOVE_RECURSE
  "CMakeFiles/fig14_bins.dir/fig14_bins.cpp.o"
  "CMakeFiles/fig14_bins.dir/fig14_bins.cpp.o.d"
  "fig14_bins"
  "fig14_bins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_bins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
