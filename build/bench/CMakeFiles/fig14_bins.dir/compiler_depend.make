# Empty compiler generated dependencies file for fig14_bins.
# This may be replaced when dependencies are built.
