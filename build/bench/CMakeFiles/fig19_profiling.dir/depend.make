# Empty dependencies file for fig19_profiling.
# This may be replaced when dependencies are built.
