file(REMOVE_RECURSE
  "CMakeFiles/fig19_profiling.dir/fig19_profiling.cpp.o"
  "CMakeFiles/fig19_profiling.dir/fig19_profiling.cpp.o.d"
  "fig19_profiling"
  "fig19_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
