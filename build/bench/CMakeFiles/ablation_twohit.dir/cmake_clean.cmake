file(REMOVE_RECURSE
  "CMakeFiles/ablation_twohit.dir/ablation_twohit.cpp.o"
  "CMakeFiles/ablation_twohit.dir/ablation_twohit.cpp.o.d"
  "ablation_twohit"
  "ablation_twohit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_twohit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
