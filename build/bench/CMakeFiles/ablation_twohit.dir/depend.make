# Empty dependencies file for ablation_twohit.
# This may be replaced when dependencies are built.
