file(REMOVE_RECURSE
  "CMakeFiles/blast_ungapped_test.dir/blast_ungapped_test.cpp.o"
  "CMakeFiles/blast_ungapped_test.dir/blast_ungapped_test.cpp.o.d"
  "blast_ungapped_test"
  "blast_ungapped_test.pdb"
  "blast_ungapped_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blast_ungapped_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
