# Empty dependencies file for blast_ungapped_test.
# This may be replaced when dependencies are built.
