# Empty dependencies file for blast_seeding_test.
# This may be replaced when dependencies are built.
