file(REMOVE_RECURSE
  "CMakeFiles/blast_seeding_test.dir/blast_seeding_test.cpp.o"
  "CMakeFiles/blast_seeding_test.dir/blast_seeding_test.cpp.o.d"
  "blast_seeding_test"
  "blast_seeding_test.pdb"
  "blast_seeding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blast_seeding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
