file(REMOVE_RECURSE
  "CMakeFiles/baselines_gpu_test.dir/baselines_gpu_test.cpp.o"
  "CMakeFiles/baselines_gpu_test.dir/baselines_gpu_test.cpp.o.d"
  "baselines_gpu_test"
  "baselines_gpu_test.pdb"
  "baselines_gpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_gpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
