# Empty compiler generated dependencies file for baselines_gpu_test.
# This may be replaced when dependencies are built.
