file(REMOVE_RECURSE
  "CMakeFiles/smith_waterman_test.dir/smith_waterman_test.cpp.o"
  "CMakeFiles/smith_waterman_test.dir/smith_waterman_test.cpp.o.d"
  "smith_waterman_test"
  "smith_waterman_test.pdb"
  "smith_waterman_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smith_waterman_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
