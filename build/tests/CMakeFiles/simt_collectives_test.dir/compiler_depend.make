# Empty compiler generated dependencies file for simt_collectives_test.
# This may be replaced when dependencies are built.
