file(REMOVE_RECURSE
  "CMakeFiles/simt_collectives_test.dir/simt_collectives_test.cpp.o"
  "CMakeFiles/simt_collectives_test.dir/simt_collectives_test.cpp.o.d"
  "simt_collectives_test"
  "simt_collectives_test.pdb"
  "simt_collectives_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simt_collectives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
