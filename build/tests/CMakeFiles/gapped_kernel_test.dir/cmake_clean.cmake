file(REMOVE_RECURSE
  "CMakeFiles/gapped_kernel_test.dir/gapped_kernel_test.cpp.o"
  "CMakeFiles/gapped_kernel_test.dir/gapped_kernel_test.cpp.o.d"
  "gapped_kernel_test"
  "gapped_kernel_test.pdb"
  "gapped_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gapped_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
