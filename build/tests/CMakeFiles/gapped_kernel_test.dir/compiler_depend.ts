# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for gapped_kernel_test.
