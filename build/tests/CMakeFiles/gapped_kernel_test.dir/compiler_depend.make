# Empty compiler generated dependencies file for gapped_kernel_test.
# This may be replaced when dependencies are built.
