file(REMOVE_RECURSE
  "CMakeFiles/blast_gapped_test.dir/blast_gapped_test.cpp.o"
  "CMakeFiles/blast_gapped_test.dir/blast_gapped_test.cpp.o.d"
  "blast_gapped_test"
  "blast_gapped_test.pdb"
  "blast_gapped_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blast_gapped_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
