# Empty dependencies file for blast_gapped_test.
# This may be replaced when dependencies are built.
