# Empty dependencies file for baselines_cpu_test.
# This may be replaced when dependencies are built.
