file(REMOVE_RECURSE
  "CMakeFiles/baselines_cpu_test.dir/baselines_cpu_test.cpp.o"
  "CMakeFiles/baselines_cpu_test.dir/baselines_cpu_test.cpp.o.d"
  "baselines_cpu_test"
  "baselines_cpu_test.pdb"
  "baselines_cpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_cpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
