file(REMOVE_RECURSE
  "CMakeFiles/blast_results_test.dir/blast_results_test.cpp.o"
  "CMakeFiles/blast_results_test.dir/blast_results_test.cpp.o.d"
  "blast_results_test"
  "blast_results_test.pdb"
  "blast_results_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blast_results_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
