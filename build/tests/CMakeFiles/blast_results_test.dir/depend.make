# Empty dependencies file for blast_results_test.
# This may be replaced when dependencies are built.
