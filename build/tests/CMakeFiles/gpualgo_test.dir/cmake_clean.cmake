file(REMOVE_RECURSE
  "CMakeFiles/gpualgo_test.dir/gpualgo_test.cpp.o"
  "CMakeFiles/gpualgo_test.dir/gpualgo_test.cpp.o.d"
  "gpualgo_test"
  "gpualgo_test.pdb"
  "gpualgo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpualgo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
