# Empty compiler generated dependencies file for gpualgo_test.
# This may be replaced when dependencies are built.
