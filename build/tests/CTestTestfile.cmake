# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/bio_test[1]_include.cmake")
include("/root/repo/build/tests/blast_seeding_test[1]_include.cmake")
include("/root/repo/build/tests/blast_ungapped_test[1]_include.cmake")
include("/root/repo/build/tests/blast_gapped_test[1]_include.cmake")
include("/root/repo/build/tests/smith_waterman_test[1]_include.cmake")
include("/root/repo/build/tests/simt_test[1]_include.cmake")
include("/root/repo/build/tests/simt_collectives_test[1]_include.cmake")
include("/root/repo/build/tests/gpualgo_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_cpu_test[1]_include.cmake")
include("/root/repo/build/tests/core_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_gpu_test[1]_include.cmake")
include("/root/repo/build/tests/core_kernels_test[1]_include.cmake")
include("/root/repo/build/tests/blast_results_test[1]_include.cmake")
include("/root/repo/build/tests/gapped_kernel_test[1]_include.cmake")
