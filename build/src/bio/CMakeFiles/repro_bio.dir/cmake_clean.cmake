file(REMOVE_RECURSE
  "CMakeFiles/repro_bio.dir/alphabet.cpp.o"
  "CMakeFiles/repro_bio.dir/alphabet.cpp.o.d"
  "CMakeFiles/repro_bio.dir/blosum.cpp.o"
  "CMakeFiles/repro_bio.dir/blosum.cpp.o.d"
  "CMakeFiles/repro_bio.dir/database.cpp.o"
  "CMakeFiles/repro_bio.dir/database.cpp.o.d"
  "CMakeFiles/repro_bio.dir/fasta.cpp.o"
  "CMakeFiles/repro_bio.dir/fasta.cpp.o.d"
  "CMakeFiles/repro_bio.dir/generator.cpp.o"
  "CMakeFiles/repro_bio.dir/generator.cpp.o.d"
  "CMakeFiles/repro_bio.dir/karlin.cpp.o"
  "CMakeFiles/repro_bio.dir/karlin.cpp.o.d"
  "CMakeFiles/repro_bio.dir/pssm.cpp.o"
  "CMakeFiles/repro_bio.dir/pssm.cpp.o.d"
  "librepro_bio.a"
  "librepro_bio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_bio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
