
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bio/alphabet.cpp" "src/bio/CMakeFiles/repro_bio.dir/alphabet.cpp.o" "gcc" "src/bio/CMakeFiles/repro_bio.dir/alphabet.cpp.o.d"
  "/root/repo/src/bio/blosum.cpp" "src/bio/CMakeFiles/repro_bio.dir/blosum.cpp.o" "gcc" "src/bio/CMakeFiles/repro_bio.dir/blosum.cpp.o.d"
  "/root/repo/src/bio/database.cpp" "src/bio/CMakeFiles/repro_bio.dir/database.cpp.o" "gcc" "src/bio/CMakeFiles/repro_bio.dir/database.cpp.o.d"
  "/root/repo/src/bio/fasta.cpp" "src/bio/CMakeFiles/repro_bio.dir/fasta.cpp.o" "gcc" "src/bio/CMakeFiles/repro_bio.dir/fasta.cpp.o.d"
  "/root/repo/src/bio/generator.cpp" "src/bio/CMakeFiles/repro_bio.dir/generator.cpp.o" "gcc" "src/bio/CMakeFiles/repro_bio.dir/generator.cpp.o.d"
  "/root/repo/src/bio/karlin.cpp" "src/bio/CMakeFiles/repro_bio.dir/karlin.cpp.o" "gcc" "src/bio/CMakeFiles/repro_bio.dir/karlin.cpp.o.d"
  "/root/repo/src/bio/pssm.cpp" "src/bio/CMakeFiles/repro_bio.dir/pssm.cpp.o" "gcc" "src/bio/CMakeFiles/repro_bio.dir/pssm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
