# Empty compiler generated dependencies file for repro_bio.
# This may be replaced when dependencies are built.
