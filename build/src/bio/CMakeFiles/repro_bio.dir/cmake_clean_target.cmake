file(REMOVE_RECURSE
  "librepro_bio.a"
)
