file(REMOVE_RECURSE
  "CMakeFiles/repro_baselines.dir/coarse_gpu.cpp.o"
  "CMakeFiles/repro_baselines.dir/coarse_gpu.cpp.o.d"
  "CMakeFiles/repro_baselines.dir/cpu.cpp.o"
  "CMakeFiles/repro_baselines.dir/cpu.cpp.o.d"
  "librepro_baselines.a"
  "librepro_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
