# Empty dependencies file for repro_baselines.
# This may be replaced when dependencies are built.
