file(REMOVE_RECURSE
  "CMakeFiles/repro_util.dir/makespan.cpp.o"
  "CMakeFiles/repro_util.dir/makespan.cpp.o.d"
  "CMakeFiles/repro_util.dir/options.cpp.o"
  "CMakeFiles/repro_util.dir/options.cpp.o.d"
  "CMakeFiles/repro_util.dir/stats.cpp.o"
  "CMakeFiles/repro_util.dir/stats.cpp.o.d"
  "CMakeFiles/repro_util.dir/table.cpp.o"
  "CMakeFiles/repro_util.dir/table.cpp.o.d"
  "CMakeFiles/repro_util.dir/thread_pool.cpp.o"
  "CMakeFiles/repro_util.dir/thread_pool.cpp.o.d"
  "librepro_util.a"
  "librepro_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
