file(REMOVE_RECURSE
  "librepro_gpualgo.a"
)
