file(REMOVE_RECURSE
  "CMakeFiles/repro_gpualgo.dir/scan.cpp.o"
  "CMakeFiles/repro_gpualgo.dir/scan.cpp.o.d"
  "CMakeFiles/repro_gpualgo.dir/segsort.cpp.o"
  "CMakeFiles/repro_gpualgo.dir/segsort.cpp.o.d"
  "librepro_gpualgo.a"
  "librepro_gpualgo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_gpualgo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
