
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpualgo/scan.cpp" "src/gpualgo/CMakeFiles/repro_gpualgo.dir/scan.cpp.o" "gcc" "src/gpualgo/CMakeFiles/repro_gpualgo.dir/scan.cpp.o.d"
  "/root/repo/src/gpualgo/segsort.cpp" "src/gpualgo/CMakeFiles/repro_gpualgo.dir/segsort.cpp.o" "gcc" "src/gpualgo/CMakeFiles/repro_gpualgo.dir/segsort.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simt/CMakeFiles/repro_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
