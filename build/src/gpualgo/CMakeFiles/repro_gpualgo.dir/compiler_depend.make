# Empty compiler generated dependencies file for repro_gpualgo.
# This may be replaced when dependencies are built.
