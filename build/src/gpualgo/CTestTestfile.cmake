# CMake generated Testfile for 
# Source directory: /root/repo/src/gpualgo
# Build directory: /root/repo/build/src/gpualgo
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
