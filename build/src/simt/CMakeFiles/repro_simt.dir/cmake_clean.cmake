file(REMOVE_RECURSE
  "CMakeFiles/repro_simt.dir/cost_model.cpp.o"
  "CMakeFiles/repro_simt.dir/cost_model.cpp.o.d"
  "CMakeFiles/repro_simt.dir/engine.cpp.o"
  "CMakeFiles/repro_simt.dir/engine.cpp.o.d"
  "CMakeFiles/repro_simt.dir/metrics.cpp.o"
  "CMakeFiles/repro_simt.dir/metrics.cpp.o.d"
  "CMakeFiles/repro_simt.dir/occupancy.cpp.o"
  "CMakeFiles/repro_simt.dir/occupancy.cpp.o.d"
  "CMakeFiles/repro_simt.dir/rocache.cpp.o"
  "CMakeFiles/repro_simt.dir/rocache.cpp.o.d"
  "librepro_simt.a"
  "librepro_simt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
