
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simt/cost_model.cpp" "src/simt/CMakeFiles/repro_simt.dir/cost_model.cpp.o" "gcc" "src/simt/CMakeFiles/repro_simt.dir/cost_model.cpp.o.d"
  "/root/repo/src/simt/engine.cpp" "src/simt/CMakeFiles/repro_simt.dir/engine.cpp.o" "gcc" "src/simt/CMakeFiles/repro_simt.dir/engine.cpp.o.d"
  "/root/repo/src/simt/metrics.cpp" "src/simt/CMakeFiles/repro_simt.dir/metrics.cpp.o" "gcc" "src/simt/CMakeFiles/repro_simt.dir/metrics.cpp.o.d"
  "/root/repo/src/simt/occupancy.cpp" "src/simt/CMakeFiles/repro_simt.dir/occupancy.cpp.o" "gcc" "src/simt/CMakeFiles/repro_simt.dir/occupancy.cpp.o.d"
  "/root/repo/src/simt/rocache.cpp" "src/simt/CMakeFiles/repro_simt.dir/rocache.cpp.o" "gcc" "src/simt/CMakeFiles/repro_simt.dir/rocache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
