file(REMOVE_RECURSE
  "librepro_blast.a"
)
