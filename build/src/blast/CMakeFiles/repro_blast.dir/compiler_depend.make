# Empty compiler generated dependencies file for repro_blast.
# This may be replaced when dependencies are built.
