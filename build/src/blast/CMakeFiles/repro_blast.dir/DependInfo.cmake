
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blast/gapped.cpp" "src/blast/CMakeFiles/repro_blast.dir/gapped.cpp.o" "gcc" "src/blast/CMakeFiles/repro_blast.dir/gapped.cpp.o.d"
  "/root/repo/src/blast/results.cpp" "src/blast/CMakeFiles/repro_blast.dir/results.cpp.o" "gcc" "src/blast/CMakeFiles/repro_blast.dir/results.cpp.o.d"
  "/root/repo/src/blast/seeding.cpp" "src/blast/CMakeFiles/repro_blast.dir/seeding.cpp.o" "gcc" "src/blast/CMakeFiles/repro_blast.dir/seeding.cpp.o.d"
  "/root/repo/src/blast/smith_waterman.cpp" "src/blast/CMakeFiles/repro_blast.dir/smith_waterman.cpp.o" "gcc" "src/blast/CMakeFiles/repro_blast.dir/smith_waterman.cpp.o.d"
  "/root/repo/src/blast/ungapped.cpp" "src/blast/CMakeFiles/repro_blast.dir/ungapped.cpp.o" "gcc" "src/blast/CMakeFiles/repro_blast.dir/ungapped.cpp.o.d"
  "/root/repo/src/blast/wordlookup.cpp" "src/blast/CMakeFiles/repro_blast.dir/wordlookup.cpp.o" "gcc" "src/blast/CMakeFiles/repro_blast.dir/wordlookup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bio/CMakeFiles/repro_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
