file(REMOVE_RECURSE
  "CMakeFiles/repro_blast.dir/gapped.cpp.o"
  "CMakeFiles/repro_blast.dir/gapped.cpp.o.d"
  "CMakeFiles/repro_blast.dir/results.cpp.o"
  "CMakeFiles/repro_blast.dir/results.cpp.o.d"
  "CMakeFiles/repro_blast.dir/seeding.cpp.o"
  "CMakeFiles/repro_blast.dir/seeding.cpp.o.d"
  "CMakeFiles/repro_blast.dir/smith_waterman.cpp.o"
  "CMakeFiles/repro_blast.dir/smith_waterman.cpp.o.d"
  "CMakeFiles/repro_blast.dir/ungapped.cpp.o"
  "CMakeFiles/repro_blast.dir/ungapped.cpp.o.d"
  "CMakeFiles/repro_blast.dir/wordlookup.cpp.o"
  "CMakeFiles/repro_blast.dir/wordlookup.cpp.o.d"
  "librepro_blast.a"
  "librepro_blast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_blast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
