file(REMOVE_RECURSE
  "CMakeFiles/repro_core.dir/cublastp.cpp.o"
  "CMakeFiles/repro_core.dir/cublastp.cpp.o.d"
  "CMakeFiles/repro_core.dir/device_data.cpp.o"
  "CMakeFiles/repro_core.dir/device_data.cpp.o.d"
  "CMakeFiles/repro_core.dir/gapped_kernel.cpp.o"
  "CMakeFiles/repro_core.dir/gapped_kernel.cpp.o.d"
  "CMakeFiles/repro_core.dir/kernels.cpp.o"
  "CMakeFiles/repro_core.dir/kernels.cpp.o.d"
  "CMakeFiles/repro_core.dir/scoring.cpp.o"
  "CMakeFiles/repro_core.dir/scoring.cpp.o.d"
  "CMakeFiles/repro_core.dir/window_kernel.cpp.o"
  "CMakeFiles/repro_core.dir/window_kernel.cpp.o.d"
  "librepro_core.a"
  "librepro_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
