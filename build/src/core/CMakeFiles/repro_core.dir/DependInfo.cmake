
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cublastp.cpp" "src/core/CMakeFiles/repro_core.dir/cublastp.cpp.o" "gcc" "src/core/CMakeFiles/repro_core.dir/cublastp.cpp.o.d"
  "/root/repo/src/core/device_data.cpp" "src/core/CMakeFiles/repro_core.dir/device_data.cpp.o" "gcc" "src/core/CMakeFiles/repro_core.dir/device_data.cpp.o.d"
  "/root/repo/src/core/gapped_kernel.cpp" "src/core/CMakeFiles/repro_core.dir/gapped_kernel.cpp.o" "gcc" "src/core/CMakeFiles/repro_core.dir/gapped_kernel.cpp.o.d"
  "/root/repo/src/core/kernels.cpp" "src/core/CMakeFiles/repro_core.dir/kernels.cpp.o" "gcc" "src/core/CMakeFiles/repro_core.dir/kernels.cpp.o.d"
  "/root/repo/src/core/scoring.cpp" "src/core/CMakeFiles/repro_core.dir/scoring.cpp.o" "gcc" "src/core/CMakeFiles/repro_core.dir/scoring.cpp.o.d"
  "/root/repo/src/core/window_kernel.cpp" "src/core/CMakeFiles/repro_core.dir/window_kernel.cpp.o" "gcc" "src/core/CMakeFiles/repro_core.dir/window_kernel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blast/CMakeFiles/repro_blast.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/repro_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/gpualgo/CMakeFiles/repro_gpualgo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bio/CMakeFiles/repro_bio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
