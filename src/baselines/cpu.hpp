// CPU comparators from the paper's evaluation:
//
//  * fsa_blast_search — single-threaded FSA-BLAST: the interleaved
//    column-major hit-detection + ungapped-extension loop of paper
//    Algorithm 1 / Fig. 3, then gapped extension and traceback. This is the
//    reproduction's correctness anchor: every other engine must produce an
//    identical SearchResult (paper §4.3: "the output of cuBLASTP is
//    identical to the output of FSA-BLAST").
//
//  * ncbi_mt_search — NCBI-BLAST-style multithreading: the same algorithm
//    with the database sharded dynamically across a thread pool. Phase
//    timings are the T-worker makespan of the measured per-task costs (see
//    util/makespan.hpp for why wall-clock cannot scale on this machine).
#pragma once

#include <cstdint>
#include <span>

#include "bio/database.hpp"
#include "blast/types.hpp"

namespace repro::baselines {

[[nodiscard]] blast::SearchResult fsa_blast_search(
    std::span<const std::uint8_t> query, const bio::SequenceDatabase& db,
    const blast::SearchParams& params);

[[nodiscard]] blast::SearchResult ncbi_mt_search(
    std::span<const std::uint8_t> query, const bio::SequenceDatabase& db,
    const blast::SearchParams& params, std::size_t threads);

}  // namespace repro::baselines
