// Coarse-grained GPU comparators (paper §5, Fig. 18e-h, Fig. 19):
//
//  * CudaBlastpSim — models CUDA-BLASTP [29]: one thread per subject
//    sequence runs the fused, interleaved hit-detection + ungapped-
//    extension loop of Algorithm 1 (per-thread lasthit arrays in global
//    memory); the database is pre-sorted by descending length, its
//    load-balancing trick.
//
//  * GpuBlastpSim — models GPU-BLASTP [26]: the same coarse kernel, but
//    sequences are claimed from a runtime work queue (global atomic
//    ticket), its improvement over static assignment.
//
// Both produce output identical to FSA-BLAST (each lane executes the same
// per-sequence semantics), so the comparison isolates the execution-shape
// differences the paper measures: branch divergence from the one-thread-
// per-alignment mapping and uncoalesced per-thread memory access.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "bio/database.hpp"
#include "blast/types.hpp"
#include "core/coarse_block.hpp"
#include "core/device_data.hpp"
#include "simt/engine.hpp"
#include "simt/metrics.hpp"
#include "simt/simtcheck.hpp"

namespace repro::baselines {

struct CoarseConfig {
  blast::SearchParams params;
  int grid_blocks = 8;
  int block_threads = 128;
  /// Per-block output-buffer capacity (extensions); grows on overflow.
  std::uint32_t block_output_capacity = 4096;
  /// Database blocks (transfers modeled per block, no CPU/GPU overlap —
  /// neither baseline pipelines the way cuBLASTP does).
  std::size_t db_blocks = 4;
  /// Runs the fused kernel under the simtcheck hazard analyzer and fills
  /// CoarseReport::hazards (REPRO_SIMTCHECK also enables it).
  bool simtcheck = false;
};

/// Report mirroring core::SearchReport's fields relevant to the baselines.
struct CoarseReport {
  blast::SearchResult result;
  double kernel_ms = 0.0;  ///< the single fused coarse kernel
  double h2d_ms = 0.0;
  double d2h_ms = 0.0;
  double gapped_seconds = 0.0;
  double traceback_seconds = 0.0;
  double other_seconds = 0.0;
  double total_seconds = 0.0;  ///< serial: kernel + transfers + CPU phases
  std::uint64_t output_overflow_retries = 0;
  simt::ProfileRegistry profile;
  simt::HazardReport hazards;  ///< simtcheck findings (when enabled)

  [[nodiscard]] double critical_ms() const { return kernel_ms; }
};

/// Kernel name in the profile registry. The fused kernel itself lives in
/// core/coarse_block.hpp so the adaptive pre-filter router can reuse it;
/// both callers share one profile row.
inline constexpr const char* kCoarseKernel = core::kKernelCoarse;

/// Long-lived baseline session — the coarse-grained counterpart of
/// core::SearchSession, so throughput comparisons against the session API
/// stay apples-to-apples: the engine, the (optionally length-sorted)
/// database view, and the device-resident blocks persist across queries,
/// and each block is uploaded exactly once, lazily, by the first search
/// that touches it. Per-query reports attribute only that query's kernel
/// launches and transfers (profile snapshot diff).
class CoarseSession {
 public:
  /// `sort_by_length` is CUDA-BLASTP's load-balancing trick (the sorted
  /// copy is built once here, amortized like the residency);
  /// `dynamic_queue` is GPU-BLASTP's runtime work queue.
  CoarseSession(const bio::SequenceDatabase& db, CoarseConfig config,
                bool sort_by_length, bool dynamic_queue);

  CoarseSession(const CoarseSession&) = delete;
  CoarseSession& operator=(const CoarseSession&) = delete;

  [[nodiscard]] CoarseReport search(std::span<const std::uint8_t> query);

  [[nodiscard]] const CoarseConfig& config() const { return config_; }
  /// h2d_block bytes uploaded so far (fault-free: the full image, once).
  [[nodiscard]] std::uint64_t resident_bytes() const {
    return uploaded_bytes_;
  }
  [[nodiscard]] std::uint64_t block_uploads() const { return uploads_; }

 private:
  const core::BlockDevice& ensure_resident(std::size_t bi);

  CoarseConfig config_;
  const bio::SequenceDatabase* original_db_;
  bool dynamic_queue_;

  // CUDA-BLASTP's sorted view (empty permutation when sorting is off).
  bio::SequenceDatabase sorted_storage_;
  const bio::SequenceDatabase* db_;  ///< the view kernels scan
  std::vector<std::uint32_t> to_original_;
  double sort_seconds_ = 0.0;  ///< one-time view build, charged to the
                               ///< first search's "other" phase

  simt::Engine engine_;
  std::vector<std::pair<std::size_t, std::size_t>> blocks_;
  std::vector<std::optional<core::BlockDevice>> resident_;
  std::uint64_t uploaded_bytes_ = 0;
  std::uint64_t uploads_ = 0;
  bool first_search_ = true;
};

[[nodiscard]] CoarseReport cuda_blastp_search(
    std::span<const std::uint8_t> query, const bio::SequenceDatabase& db,
    const CoarseConfig& config);

[[nodiscard]] CoarseReport gpu_blastp_search(
    std::span<const std::uint8_t> query, const bio::SequenceDatabase& db,
    const CoarseConfig& config);

}  // namespace repro::baselines
