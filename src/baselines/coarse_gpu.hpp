// Coarse-grained GPU comparators (paper §5, Fig. 18e-h, Fig. 19):
//
//  * CudaBlastpSim — models CUDA-BLASTP [29]: one thread per subject
//    sequence runs the fused, interleaved hit-detection + ungapped-
//    extension loop of Algorithm 1 (per-thread lasthit arrays in global
//    memory); the database is pre-sorted by descending length, its
//    load-balancing trick.
//
//  * GpuBlastpSim — models GPU-BLASTP [26]: the same coarse kernel, but
//    sequences are claimed from a runtime work queue (global atomic
//    ticket), its improvement over static assignment.
//
// Both produce output identical to FSA-BLAST (each lane executes the same
// per-sequence semantics), so the comparison isolates the execution-shape
// differences the paper measures: branch divergence from the one-thread-
// per-alignment mapping and uncoalesced per-thread memory access.
#pragma once

#include <cstdint>
#include <span>

#include "bio/database.hpp"
#include "blast/types.hpp"
#include "simt/metrics.hpp"
#include "simt/simtcheck.hpp"

namespace repro::baselines {

struct CoarseConfig {
  blast::SearchParams params;
  int grid_blocks = 8;
  int block_threads = 128;
  /// Per-block output-buffer capacity (extensions); grows on overflow.
  std::uint32_t block_output_capacity = 4096;
  /// Database blocks (transfers modeled per block, no CPU/GPU overlap —
  /// neither baseline pipelines the way cuBLASTP does).
  std::size_t db_blocks = 4;
  /// Runs the fused kernel under the simtcheck hazard analyzer and fills
  /// CoarseReport::hazards (REPRO_SIMTCHECK also enables it).
  bool simtcheck = false;
};

/// Report mirroring core::SearchReport's fields relevant to the baselines.
struct CoarseReport {
  blast::SearchResult result;
  double kernel_ms = 0.0;  ///< the single fused coarse kernel
  double h2d_ms = 0.0;
  double d2h_ms = 0.0;
  double gapped_seconds = 0.0;
  double traceback_seconds = 0.0;
  double other_seconds = 0.0;
  double total_seconds = 0.0;  ///< serial: kernel + transfers + CPU phases
  std::uint64_t output_overflow_retries = 0;
  simt::ProfileRegistry profile;
  simt::HazardReport hazards;  ///< simtcheck findings (when enabled)

  [[nodiscard]] double critical_ms() const { return kernel_ms; }
};

/// Kernel name in the profile registry.
inline constexpr const char* kCoarseKernel = "coarse_fused";

[[nodiscard]] CoarseReport cuda_blastp_search(
    std::span<const std::uint8_t> query, const bio::SequenceDatabase& db,
    const CoarseConfig& config);

[[nodiscard]] CoarseReport gpu_blastp_search(
    std::span<const std::uint8_t> query, const bio::SequenceDatabase& db,
    const CoarseConfig& config);

}  // namespace repro::baselines
