#include "baselines/coarse_gpu.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "bio/karlin.hpp"
#include "bio/pssm.hpp"
#include "blast/results.hpp"
#include "blast/wordlookup.hpp"
#include "core/coarse_block.hpp"
#include "core/device_data.hpp"
#include "simt/engine.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace repro::baselines {

namespace {

/// Translates the baseline config for the shared per-block kernel (the
/// kernel itself moved to core/coarse_block.cpp so the adaptive pre-filter
/// router can reuse it; behaviour here is unchanged).
core::CoarseBlockConfig block_config(const CoarseConfig& config,
                                     bool dynamic_queue) {
  core::CoarseBlockConfig out;
  out.params = config.params;
  out.grid_blocks = config.grid_blocks;
  out.block_threads = config.block_threads;
  out.dynamic_queue = dynamic_queue;
  return out;
}

}  // namespace

CoarseSession::CoarseSession(const bio::SequenceDatabase& db,
                             CoarseConfig config, bool sort_by_length,
                             bool dynamic_queue)
    : config_(config),
      original_db_(&db),
      dynamic_queue_(dynamic_queue),
      db_(&db) {
  // These baselines predate Kepler's read-only cache.
  engine_.set_readonly_cache_enabled(false);
  if (config_.simtcheck) engine_.set_simtcheck_enabled(true);

  // CUDA-BLASTP sorts the database by descending length for load balance;
  // keep the permutation so extensions map back to original ids. Built
  // once per session; the cost is charged to the first search's "other"
  // phase, where the one-shot wrappers used to account it.
  if (sort_by_length && !db.empty()) {
    util::Timer sort_timer;
    std::vector<std::size_t> order(db.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return db.length(a) > db.length(b);
                     });
    std::vector<bio::Sequence> seqs;
    seqs.reserve(order.size());
    to_original_.reserve(order.size());
    for (const auto i : order) {
      seqs.push_back(db.sequence(i));
      to_original_.push_back(static_cast<std::uint32_t>(i));
    }
    sorted_storage_ = bio::SequenceDatabase(std::move(seqs));
    db_ = &sorted_storage_;
    sort_seconds_ = sort_timer.seconds();
  }
  blocks_ = db_->split_blocks(config_.db_blocks);
  resident_.resize(blocks_.size());
}

const core::BlockDevice& CoarseSession::ensure_resident(std::size_t bi) {
  if (!resident_[bi].has_value()) {
    const auto [begin, end] = blocks_[bi];
    resident_[bi].emplace(*db_, begin, end);
    try {
      engine_.transfer("h2d_block", resident_[bi]->h2d_bytes());
    } catch (...) {
      resident_[bi].reset();
      throw;
    }
    uploaded_bytes_ += resident_[bi]->h2d_bytes();
    ++uploads_;
  }
  return *resident_[bi];
}

CoarseReport CoarseSession::search(std::span<const std::uint8_t> query) {
  util::TraceSpan search_span(
      dynamic_queue_ ? "gpu_blastp.search" : "cuda_blastp.search", "baseline");
  if (search_span.active()) {
    search_span.arg("query_length", static_cast<std::uint64_t>(query.size()));
    search_span.arg("db_sequences",
                    static_cast<std::uint64_t>(original_db_->size()));
  }
  CoarseReport report;
  const simt::ProfileRegistry profile_before = engine_.profile();
  engine_.clear_hazards();

  util::Timer other_timer;
  util::TraceSpan prep_span("query_prep", "baseline");
  blast::WordLookup lookup(query, bio::Blosum62::instance(), config_.params);
  bio::Pssm pssm(query, bio::Blosum62::instance());
  bio::EvalueCalculator evalue(bio::blosum62_gapped_11_1(), query.size(),
                               original_db_->total_residues(),
                               original_db_->size());
  core::QueryDevice device_query(query, lookup, pssm);
  prep_span.end();
  report.other_seconds += other_timer.seconds();
  if (first_search_) {
    report.other_seconds += sort_seconds_;
    first_search_ = false;
  }
  engine_.transfer("h2d_query", device_query.h2d_bytes());

  const core::CoarseBlockConfig kernel_config =
      block_config(config_, dynamic_queue_);
  std::vector<blast::UngappedExtension> extensions;
  for (std::size_t bi = 0; bi < blocks_.size(); ++bi) {
    const auto [begin, end] = blocks_[bi];
    util::TraceSpan block_span;
    if (util::trace_enabled()) {
      block_span.open("db_block " + std::to_string(bi), "baseline");
      block_span.arg("first_seq", static_cast<std::uint64_t>(begin));
      block_span.arg("end_seq", static_cast<std::uint64_t>(end));
    }
    const core::BlockDevice& device_block = ensure_resident(bi);

    std::uint32_t capacity = config_.block_output_capacity;
    for (;;) {
      core::CoarseBlockOutput out = core::run_coarse_block(
          engine_, kernel_config, device_query, device_block, capacity);
      if (!out.overflowed) {
        engine_.transfer("d2h_extensions", out.d2h_bytes);
        report.result.counters.hits_detected += out.hits_detected;
        for (auto& ext : out.extensions) {
          ext.seq += device_block.first_seq;
          if (!to_original_.empty()) ext.seq = to_original_[ext.seq];
          extensions.push_back(ext);
        }
        break;
      }
      ++report.output_overflow_retries;
      capacity *= 2;
    }

    for (std::size_t s = begin; s < end; ++s)
      if (db_->length(s) >= 3)
        report.result.counters.words_scanned += db_->length(s) - 2;
  }

  report.result.counters.ungapped_extensions = extensions.size();

  // CPU phases: single-threaded, not overlapped (neither baseline
  // pipelines CPU work against the GPU).
  util::TraceSpan gapped_span("gapped_stage", "baseline");
  auto stage = blast::process_gapped_stage(pssm, *original_db_, extensions,
                                           config_.params, evalue);
  gapped_span.end();
  report.gapped_seconds = stage.gapped_seconds;
  report.traceback_seconds = stage.traceback_seconds;
  report.result.counters.gapped_extensions = stage.gapped_extensions;
  report.result.counters.tracebacks = stage.tracebacks;

  {
    util::TraceSpan finalize_span("finalize", "baseline");
    util::ScopedAccumulator finalize_time(report.other_seconds);
    report.result.alignments = std::move(stage.alignments);
    blast::finalize_results(report.result.alignments, config_.params, evalue);
  }

  // Attribute only this query's launches and transfers: the engine is
  // shared across the session's searches.
  report.profile = engine_.profile().diff(profile_before);
  report.hazards = engine_.hazards();
  report.kernel_ms = report.profile.has(kCoarseKernel)
                         ? report.profile.at(kCoarseKernel).time_ms
                         : 0.0;
  const auto transfer_ms = [&](const char* name) {
    return report.profile.has(name) ? report.profile.at(name).time_ms : 0.0;
  };
  report.h2d_ms = transfer_ms("h2d_query") + transfer_ms("h2d_block");
  report.d2h_ms = transfer_ms("d2h_extensions");
  report.total_seconds = (report.kernel_ms + report.h2d_ms + report.d2h_ms) /
                             1e3 +
                         report.gapped_seconds + report.traceback_seconds +
                         report.other_seconds;

  report.result.timings.hit_detection = report.kernel_ms / 1e3;
  report.result.timings.gapped_extension = report.gapped_seconds;
  report.result.timings.traceback = report.traceback_seconds;
  report.result.timings.other =
      report.other_seconds + (report.h2d_ms + report.d2h_ms) / 1e3;
  return report;
}

CoarseReport cuda_blastp_search(std::span<const std::uint8_t> query,
                                const bio::SequenceDatabase& db,
                                const CoarseConfig& config) {
  CoarseSession session(db, config, /*sort_by_length=*/true,
                        /*dynamic_queue=*/false);
  return session.search(query);
}

CoarseReport gpu_blastp_search(std::span<const std::uint8_t> query,
                               const bio::SequenceDatabase& db,
                               const CoarseConfig& config) {
  CoarseSession session(db, config, /*sort_by_length=*/false,
                        /*dynamic_queue=*/true);
  return session.search(query);
}

}  // namespace repro::baselines
