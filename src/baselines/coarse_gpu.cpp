#include "baselines/coarse_gpu.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "bio/karlin.hpp"
#include "bio/pssm.hpp"
#include "blast/results.hpp"
#include "blast/wordlookup.hpp"
#include "core/device_data.hpp"
#include "core/lane_extend.hpp"
#include "core/scoring.hpp"
#include "simt/engine.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace repro::baselines {

namespace {

using simt::BlockCtx;
using simt::LaneArray;
using simt::WarpExec;

constexpr std::uint32_t kNoSeq = 0xffffffffu;

/// Per-launch extension output (SoA) with per-block regions.
struct CoarseRecords {
  simt::DeviceVector<std::uint32_t> seq;
  simt::DeviceVector<std::uint32_t> q_start;
  simt::DeviceVector<std::uint32_t> q_end;
  simt::DeviceVector<std::int32_t> diag;
  simt::DeviceVector<std::int32_t> score;
  simt::DeviceVector<std::uint32_t> counts;    ///< per block
  simt::DeviceVector<std::uint32_t> overflow;  ///< single counter
  std::uint32_t capacity;

  CoarseRecords(int blocks, std::uint32_t cap)
      : seq(static_cast<std::size_t>(blocks) * cap),
        q_start(seq.size()),
        q_end(seq.size()),
        diag(seq.size()),
        score(seq.size()),
        counts(static_cast<std::size_t>(blocks)),
        overflow(1),
        capacity(cap) {}
};

struct KernelOutput {
  std::vector<blast::UngappedExtension> extensions;  ///< block-local seq ids
  std::uint64_t d2h_bytes = 0;
  bool overflowed = false;
};

/// The fused coarse kernel: one lane = one subject sequence, running the
/// interleaved Algorithm 1 (hit detection + two-hit logic + inline
/// ungapped extension) to completion. `dynamic_queue` selects GPU-BLASTP's
/// atomic work queue over CUDA-BLASTP's static assignment.
KernelOutput run_coarse_kernel(simt::Engine& engine,
                               const CoarseConfig& config,
                               const core::QueryDevice& query,
                               const core::BlockDevice& block,
                               bool dynamic_queue,
                               std::uint32_t output_capacity,
                               std::uint64_t& hits_detected) {
  const auto& params = config.params;
  const std::uint32_t qlen = query.query_length;
  const auto window = static_cast<std::uint32_t>(params.two_hit_window);
  const std::uint32_t diag_span = qlen + block.max_seq_len + 2;
  const int total_threads = config.grid_blocks * config.block_threads;

  // Per-thread diagonal state in global memory ("each thread has its own
  // lasthit_arr", paper §3.1). Values are block-global subject positions
  // + 1, so the arrays never need per-sequence resets.
  simt::DeviceVector<std::uint32_t> lasthit(
      static_cast<std::size_t>(total_threads) * diag_span, 0);
  simt::DeviceVector<std::uint32_t> ext_reach(lasthit.size(), 0);
  simt::DeviceVector<std::uint32_t> ticket(1, 0);

  CoarseRecords records(config.grid_blocks, output_capacity);
  const core::DeviceScoring scoring =
      core::DeviceScoring::plain_global_pssm(query);

  simt::LaunchConfig cfg;
  cfg.name = kCoarseKernel;
  cfg.grid_blocks = config.grid_blocks;
  cfg.block_threads = config.block_threads;
  cfg.regs_per_thread = 56;  // the fused kernel is register-hungry

  engine.launch(cfg, [&](BlockCtx& ctx) {
    auto block_cursor = ctx.shared().alloc<std::uint32_t>(1);
    const std::uint32_t out_region =
        static_cast<std::uint32_t>(ctx.block_id()) * records.capacity;

    ctx.par([&](WarpExec& w) {
      LaneArray<std::uint32_t> seq{};
      LaneArray<std::uint32_t> seq_off{};
      LaneArray<std::uint32_t> nwords{};
      LaneArray<std::uint32_t> seq_len{};
      LaneArray<std::uint32_t> j{};
      LaneArray<std::uint8_t> fresh{};

      // Initial assignment.
      if (dynamic_queue) {
        LaneArray<std::uint32_t> zero{};
        LaneArray<std::uint32_t> one{};
        LaneArray<std::uint32_t> got{};
        w.vec([&](int lane) { one[lane] = 1; });
        w.atomic_add_global(ticket.data(), zero, one, got);
        w.vec([&](int lane) {
          seq[lane] = got[lane] < block.num_seqs ? got[lane] : kNoSeq;
          fresh[lane] = 1;
        });
      } else {
        w.vec([&](int lane) {
          const auto tid = static_cast<std::uint32_t>(w.thread_id(lane));
          seq[lane] = tid < block.num_seqs ? tid : kNoSeq;
          fresh[lane] = 1;
        });
      }

      auto advance = [&] {
        // Claim the next sequence for lanes whose sequence is finished.
        if (dynamic_queue) {
          LaneArray<std::uint32_t> zero{};
          LaneArray<std::uint32_t> one{};
          LaneArray<std::uint32_t> got{};
          w.vec([&](int lane) { one[lane] = 1; });
          w.atomic_add_global(ticket.data(), zero, one, got);
          w.vec([&](int lane) {
            seq[lane] = got[lane] < block.num_seqs ? got[lane] : kNoSeq;
            fresh[lane] = 1;
          });
        } else {
          w.vec([&](int lane) {
            const std::uint32_t next =
                seq[lane] + static_cast<std::uint32_t>(total_threads);
            seq[lane] = next < block.num_seqs ? next : kNoSeq;
            fresh[lane] = 1;
          });
        }
      };

      w.loop_while(
          [&](int lane) { return seq[lane] != kNoSeq; },
          [&] {
            // Load the extent of freshly-claimed sequences.
            w.if_then(
                [&](int lane) { return fresh[lane] != 0; },
                [&] {
                  LaneArray<std::uint32_t> lo{}, hi{}, idx1{};
                  w.gather(block.offsets.data(), seq, lo);
                  w.vec([&](int lane) { idx1[lane] = seq[lane] + 1; });
                  w.gather(block.offsets.data(), idx1, hi);
                  w.vec([&](int lane) {
                    seq_off[lane] = lo[lane];
                    seq_len[lane] = hi[lane] - lo[lane];
                    nwords[lane] = seq_len[lane] >= 3
                                       ? seq_len[lane] - 2
                                       : 0;
                    j[lane] = 0;
                    fresh[lane] = 0;
                  });
                });

            // Process word j of each lane's sequence.
            w.if_then(
                [&](int lane) { return j[lane] < nwords[lane]; },
                [&] {
                  LaneArray<std::uint32_t> sidx{};
                  LaneArray<std::uint8_t> c0{}, c1{}, c2{};
                  w.vec([&](int lane) {
                    sidx[lane] = seq_off[lane] + j[lane];
                  });
                  w.gather(block.residues.data(), sidx, c0);
                  w.vec([&](int lane) { ++sidx[lane]; });
                  w.gather(block.residues.data(), sidx, c1);
                  w.vec([&](int lane) { ++sidx[lane]; });
                  w.gather(block.residues.data(), sidx, c2);

                  LaneArray<std::uint32_t> word{};
                  LaneArray<std::uint32_t> start{}, stop{};
                  w.vec([&](int lane) {
                    word[lane] = (static_cast<std::uint32_t>(c0[lane]) *
                                      bio::kAlphabetSize +
                                  c1[lane]) *
                                     bio::kAlphabetSize +
                                 c2[lane];
                  });
                  // Plain global DFA loads: the coarse baselines predate
                  // the hierarchical buffering of §3.5.
                  w.gather(query.word_offsets.data(), word, start);
                  LaneArray<std::uint32_t> word1{};
                  w.vec([&](int lane) { word1[lane] = word[lane] + 1; });
                  w.gather(query.word_offsets.data(), word1, stop);

                  LaneArray<std::uint32_t> cursor = start;
                  w.loop_while(
                      [&](int lane) { return cursor[lane] < stop[lane]; },
                      [&] {
                        LaneArray<std::uint32_t> qpos{};
                        w.gather(query.word_positions.data(), cursor, qpos);
                        hits_detected +=
                            static_cast<std::uint64_t>(w.active_lanes());

                        // Two-hit bookkeeping in the per-thread arrays.
                        LaneArray<std::uint32_t> slot{};
                        LaneArray<std::uint32_t> last{}, reach{};
                        LaneArray<std::uint32_t> gpos{};
                        w.vec([&](int lane) {
                          const std::uint32_t diag_idx =
                              j[lane] - qpos[lane] + qlen - 1;
                          slot[lane] = static_cast<std::uint32_t>(
                                           w.thread_id(lane)) *
                                           diag_span +
                                       diag_idx;
                          gpos[lane] = seq_off[lane] + j[lane];
                        });
                        w.gather(lasthit.data(), slot, last);
                        w.gather(ext_reach.data(), slot, reach);
                        // Update lasthit to this hit.
                        LaneArray<std::uint32_t> stored{};
                        w.vec([&](int lane) {
                          stored[lane] = gpos[lane] + 1;
                        });
                        w.scatter(lasthit.data(), slot, stored);

                        LaneArray<std::uint8_t> trigger{};
                        w.vec([&](int lane) {
                          const bool covered = reach[lane] > seq_off[lane] &&
                                               gpos[lane] + 1 <= reach[lane];
                          const bool paired =
                              params.one_hit ||
                              (last[lane] > seq_off[lane] &&
                               gpos[lane] + 1 - last[lane] <= window);
                          trigger[lane] = (!covered && paired) ? 1 : 0;
                        });

                        w.if_then(
                            [&](int lane) { return trigger[lane] != 0; },
                            [&] {
                              core::LaneExtendIo io;
                              w.vec([&](int lane) {
                                io.qpos[lane] = qpos[lane];
                                io.spos[lane] = j[lane];
                                io.seq_off[lane] = seq_off[lane];
                                io.seq_len[lane] = seq_len[lane];
                              });
                              core::lane_extend_ungapped(
                                  w, scoring, block.residues.data(), qlen,
                                  params, io);

                              // Record coverage.
                              LaneArray<std::uint32_t> new_reach{};
                              w.vec([&](int lane) {
                                const std::uint32_t s_end =
                                    io.q_end[lane] + j[lane] - qpos[lane];
                                new_reach[lane] =
                                    seq_off[lane] + s_end + 1;
                              });
                              w.scatter(ext_reach.data(), slot, new_reach);

                              // Emit qualifying extensions to the block's
                              // output region (shared-counter slots).
                              w.if_then(
                                  [&](int lane) {
                                    return io.score[lane] >=
                                           params.ungapped_cutoff;
                                  },
                                  [&] {
                                    LaneArray<std::uint32_t> zero{};
                                    LaneArray<std::uint32_t> one{};
                                    LaneArray<std::uint32_t> pos{};
                                    w.vec([&](int lane) { one[lane] = 1; });
                                    w.atomic_add_shared(block_cursor, zero,
                                                        one, pos);
                                    w.if_then_else(
                                        [&](int lane) {
                                          return pos[lane] <
                                                 records.capacity;
                                        },
                                        [&] {
                                          LaneArray<std::uint32_t> dst{};
                                          LaneArray<std::int32_t> dg{};
                                          LaneArray<std::int32_t> sc{};
                                          w.vec([&](int lane) {
                                            dst[lane] =
                                                out_region + pos[lane];
                                            dg[lane] =
                                                static_cast<std::int32_t>(
                                                    j[lane]) -
                                                static_cast<std::int32_t>(
                                                    qpos[lane]);
                                            sc[lane] = io.score[lane];
                                          });
                                          w.scatter(records.seq.data(), dst,
                                                    seq);
                                          w.scatter(records.q_start.data(),
                                                    dst, io.q_start);
                                          w.scatter(records.q_end.data(),
                                                    dst, io.q_end);
                                          w.scatter(records.diag.data(),
                                                    dst, dg);
                                          w.scatter(records.score.data(),
                                                    dst, sc);
                                        },
                                        [&] {
                                          LaneArray<std::uint32_t> zero2{};
                                          LaneArray<std::uint32_t> one2{};
                                          LaneArray<std::uint32_t> prev{};
                                          w.vec([&](int lane) {
                                            one2[lane] = 1;
                                          });
                                          w.atomic_add_global(
                                              records.overflow.data(),
                                              zero2, one2, prev);
                                        });
                                  });
                            });
                        w.vec([&](int lane) { ++cursor[lane]; });
                      });
                });

            // Advance: next word, or next sequence when done.
            w.vec([&](int lane) { ++j[lane]; });
            w.if_then([&](int lane) { return j[lane] >= nwords[lane]; },
                      advance);
          });
    });
    records.counts[static_cast<std::size_t>(ctx.block_id())] =
        block_cursor[0];
  });

  KernelOutput out;
  out.overflowed = records.overflow[0] != 0;
  if (out.overflowed) return out;
  for (int b = 0; b < config.grid_blocks; ++b) {
    const std::uint32_t n = records.counts[static_cast<std::size_t>(b)];
    for (std::uint32_t r = 0; r < n; ++r) {
      const std::uint32_t slot =
          static_cast<std::uint32_t>(b) * records.capacity + r;
      blast::UngappedExtension ext;
      ext.seq = records.seq[slot];
      ext.q_start = records.q_start[slot];
      ext.q_end = records.q_end[slot];
      const std::int32_t diag = records.diag[slot];
      ext.s_start = static_cast<std::uint32_t>(
          static_cast<std::int32_t>(ext.q_start) + diag);
      ext.s_end = static_cast<std::uint32_t>(
          static_cast<std::int32_t>(ext.q_end) + diag);
      ext.score = records.score[slot];
      out.extensions.push_back(ext);
      out.d2h_bytes += 20;
    }
  }
  return out;
}

}  // namespace

CoarseSession::CoarseSession(const bio::SequenceDatabase& db,
                             CoarseConfig config, bool sort_by_length,
                             bool dynamic_queue)
    : config_(config),
      original_db_(&db),
      dynamic_queue_(dynamic_queue),
      db_(&db) {
  // These baselines predate Kepler's read-only cache.
  engine_.set_readonly_cache_enabled(false);
  if (config_.simtcheck) engine_.set_simtcheck_enabled(true);

  // CUDA-BLASTP sorts the database by descending length for load balance;
  // keep the permutation so extensions map back to original ids. Built
  // once per session; the cost is charged to the first search's "other"
  // phase, where the one-shot wrappers used to account it.
  if (sort_by_length && !db.empty()) {
    util::Timer sort_timer;
    std::vector<std::size_t> order(db.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return db.length(a) > db.length(b);
                     });
    std::vector<bio::Sequence> seqs;
    seqs.reserve(order.size());
    to_original_.reserve(order.size());
    for (const auto i : order) {
      seqs.push_back(db.sequence(i));
      to_original_.push_back(static_cast<std::uint32_t>(i));
    }
    sorted_storage_ = bio::SequenceDatabase(std::move(seqs));
    db_ = &sorted_storage_;
    sort_seconds_ = sort_timer.seconds();
  }
  blocks_ = db_->split_blocks(config_.db_blocks);
  resident_.resize(blocks_.size());
}

const core::BlockDevice& CoarseSession::ensure_resident(std::size_t bi) {
  if (!resident_[bi].has_value()) {
    const auto [begin, end] = blocks_[bi];
    resident_[bi].emplace(*db_, begin, end);
    try {
      engine_.transfer("h2d_block", resident_[bi]->h2d_bytes());
    } catch (...) {
      resident_[bi].reset();
      throw;
    }
    uploaded_bytes_ += resident_[bi]->h2d_bytes();
    ++uploads_;
  }
  return *resident_[bi];
}

CoarseReport CoarseSession::search(std::span<const std::uint8_t> query) {
  util::TraceSpan search_span(
      dynamic_queue_ ? "gpu_blastp.search" : "cuda_blastp.search", "baseline");
  if (search_span.active()) {
    search_span.arg("query_length", static_cast<std::uint64_t>(query.size()));
    search_span.arg("db_sequences",
                    static_cast<std::uint64_t>(original_db_->size()));
  }
  CoarseReport report;
  const simt::ProfileRegistry profile_before = engine_.profile();
  engine_.clear_hazards();

  util::Timer other_timer;
  util::TraceSpan prep_span("query_prep", "baseline");
  blast::WordLookup lookup(query, bio::Blosum62::instance(), config_.params);
  bio::Pssm pssm(query, bio::Blosum62::instance());
  bio::EvalueCalculator evalue(bio::blosum62_gapped_11_1(), query.size(),
                               original_db_->total_residues(),
                               original_db_->size());
  core::QueryDevice device_query(query, lookup, pssm);
  prep_span.end();
  report.other_seconds += other_timer.seconds();
  if (first_search_) {
    report.other_seconds += sort_seconds_;
    first_search_ = false;
  }
  engine_.transfer("h2d_query", device_query.h2d_bytes());

  std::vector<blast::UngappedExtension> extensions;
  for (std::size_t bi = 0; bi < blocks_.size(); ++bi) {
    const auto [begin, end] = blocks_[bi];
    util::TraceSpan block_span;
    if (util::trace_enabled()) {
      block_span.open("db_block " + std::to_string(bi), "baseline");
      block_span.arg("first_seq", static_cast<std::uint64_t>(begin));
      block_span.arg("end_seq", static_cast<std::uint64_t>(end));
    }
    const core::BlockDevice& device_block = ensure_resident(bi);

    std::uint32_t capacity = config_.block_output_capacity;
    for (;;) {
      std::uint64_t hits_detected = 0;
      KernelOutput out = run_coarse_kernel(engine_, config_, device_query,
                                           device_block, dynamic_queue_,
                                           capacity, hits_detected);
      if (!out.overflowed) {
        engine_.transfer("d2h_extensions", out.d2h_bytes);
        report.result.counters.hits_detected += hits_detected;
        for (auto& ext : out.extensions) {
          ext.seq += device_block.first_seq;
          if (!to_original_.empty()) ext.seq = to_original_[ext.seq];
          extensions.push_back(ext);
        }
        break;
      }
      ++report.output_overflow_retries;
      capacity *= 2;
    }

    for (std::size_t s = begin; s < end; ++s)
      if (db_->length(s) >= 3)
        report.result.counters.words_scanned += db_->length(s) - 2;
  }

  report.result.counters.ungapped_extensions = extensions.size();

  // CPU phases: single-threaded, not overlapped (neither baseline
  // pipelines CPU work against the GPU).
  util::TraceSpan gapped_span("gapped_stage", "baseline");
  auto stage = blast::process_gapped_stage(pssm, *original_db_, extensions,
                                           config_.params, evalue);
  gapped_span.end();
  report.gapped_seconds = stage.gapped_seconds;
  report.traceback_seconds = stage.traceback_seconds;
  report.result.counters.gapped_extensions = stage.gapped_extensions;
  report.result.counters.tracebacks = stage.tracebacks;

  {
    util::TraceSpan finalize_span("finalize", "baseline");
    util::ScopedAccumulator finalize_time(report.other_seconds);
    report.result.alignments = std::move(stage.alignments);
    blast::finalize_results(report.result.alignments, config_.params, evalue);
  }

  // Attribute only this query's launches and transfers: the engine is
  // shared across the session's searches.
  report.profile = engine_.profile().diff(profile_before);
  report.hazards = engine_.hazards();
  report.kernel_ms = report.profile.has(kCoarseKernel)
                         ? report.profile.at(kCoarseKernel).time_ms
                         : 0.0;
  const auto transfer_ms = [&](const char* name) {
    return report.profile.has(name) ? report.profile.at(name).time_ms : 0.0;
  };
  report.h2d_ms = transfer_ms("h2d_query") + transfer_ms("h2d_block");
  report.d2h_ms = transfer_ms("d2h_extensions");
  report.total_seconds = (report.kernel_ms + report.h2d_ms + report.d2h_ms) /
                             1e3 +
                         report.gapped_seconds + report.traceback_seconds +
                         report.other_seconds;

  report.result.timings.hit_detection = report.kernel_ms / 1e3;
  report.result.timings.gapped_extension = report.gapped_seconds;
  report.result.timings.traceback = report.traceback_seconds;
  report.result.timings.other =
      report.other_seconds + (report.h2d_ms + report.d2h_ms) / 1e3;
  return report;
}

CoarseReport cuda_blastp_search(std::span<const std::uint8_t> query,
                                const bio::SequenceDatabase& db,
                                const CoarseConfig& config) {
  CoarseSession session(db, config, /*sort_by_length=*/true,
                        /*dynamic_queue=*/false);
  return session.search(query);
}

CoarseReport gpu_blastp_search(std::span<const std::uint8_t> query,
                               const bio::SequenceDatabase& db,
                               const CoarseConfig& config) {
  CoarseSession session(db, config, /*sort_by_length=*/false,
                        /*dynamic_queue=*/true);
  return session.search(query);
}

}  // namespace repro::baselines
