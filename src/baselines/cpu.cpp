#include "baselines/cpu.hpp"

#include <algorithm>
#include <mutex>
#include <vector>

#include "bio/karlin.hpp"
#include "bio/pssm.hpp"
#include "blast/results.hpp"
#include "blast/ungapped.hpp"
#include "blast/wordlookup.hpp"
#include "util/makespan.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace repro::baselines {

namespace {

struct PreparedQuery {
  blast::WordLookup lookup;
  bio::Pssm pssm;
  bio::EvalueCalculator evalue;
  double build_seconds;
};

PreparedQuery prepare(std::span<const std::uint8_t> query,
                      const bio::SequenceDatabase& db,
                      const blast::SearchParams& params) {
  util::Timer timer;
  blast::WordLookup lookup(query, bio::Blosum62::instance(), params);
  bio::Pssm pssm(query, bio::Blosum62::instance());
  bio::EvalueCalculator evalue(bio::blosum62_gapped_11_1(), query.size(),
                               db.total_residues(), db.size());
  const double secs = timer.seconds();
  return PreparedQuery{std::move(lookup), std::move(pssm), std::move(evalue),
                       secs};
}

}  // namespace

blast::SearchResult fsa_blast_search(std::span<const std::uint8_t> query,
                                     const bio::SequenceDatabase& db,
                                     const blast::SearchParams& params) {
  blast::SearchResult result;
  PreparedQuery prepared = prepare(query, db, params);
  result.timings.other += prepared.build_seconds;

  // Critical phases: interleaved hit detection + ungapped extension.
  std::vector<blast::UngappedExtension> extensions;
  {
    util::ScopedAccumulator critical(result.timings.hit_detection);
    blast::TwoHitTracker tracker(query.size() + db.max_length() + 2);
    for (std::size_t i = 0; i < db.size(); ++i) {
      const auto counters = blast::run_ungapped_phase(
          prepared.lookup, prepared.pssm, db.residues(i),
          static_cast<std::uint32_t>(i), params, tracker, extensions);
      result.counters.words_scanned += counters.words_scanned;
      result.counters.hits_detected += counters.hits;
      result.counters.hits_after_filter += counters.extensions_run;
      result.counters.ungapped_extensions += counters.extensions_run;
    }
  }

  // Gapped extension + alignment with traceback.
  auto stage = blast::process_gapped_stage(prepared.pssm, db, extensions,
                                           params, prepared.evalue);
  result.timings.gapped_extension = stage.gapped_seconds;
  result.timings.traceback = stage.traceback_seconds;
  result.counters.gapped_extensions = stage.gapped_extensions;
  result.counters.tracebacks = stage.tracebacks;

  {
    util::ScopedAccumulator finalize_time(result.timings.other);
    result.alignments = std::move(stage.alignments);
    blast::finalize_results(result.alignments, params, prepared.evalue);
  }
  return result;
}

blast::SearchResult ncbi_mt_search(std::span<const std::uint8_t> query,
                                   const bio::SequenceDatabase& db,
                                   const blast::SearchParams& params,
                                   std::size_t threads) {
  if (threads == 0) threads = 1;
  blast::SearchResult result;
  PreparedQuery prepared = prepare(query, db, params);
  result.timings.other += prepared.build_seconds;

  // Shard the database into chunks dispatched dynamically, the way NCBI
  // BLAST+ hands batches of subject sequences to its worker threads.
  const std::size_t num_chunks = std::max<std::size_t>(threads * 8, 1);
  const auto chunks = db.split_blocks(num_chunks);

  struct ChunkOutput {
    std::vector<blast::UngappedExtension> extensions;
    blast::SearchCounters counters;
    double critical_seconds = 0.0;
  };
  std::vector<ChunkOutput> outputs(chunks.size());

  util::ThreadPool pool(threads);
  pool.parallel_for_dynamic(chunks.size(), [&](std::size_t c) {
    ChunkOutput& out = outputs[c];
    // CPU time, not wall time: with more workers than cores, wall-clock
    // would charge each chunk for its neighbours' time slices.
    util::ThreadCpuTimer timer;
    blast::TwoHitTracker tracker(query.size() + db.max_length() + 2);
    for (std::size_t i = chunks[c].first; i < chunks[c].second; ++i) {
      const auto counters = blast::run_ungapped_phase(
          prepared.lookup, prepared.pssm, db.residues(i),
          static_cast<std::uint32_t>(i), params, tracker, out.extensions);
      out.counters.words_scanned += counters.words_scanned;
      out.counters.hits_detected += counters.hits;
      out.counters.hits_after_filter += counters.extensions_run;
      out.counters.ungapped_extensions += counters.extensions_run;
    }
    out.critical_seconds = timer.seconds();
  });

  std::vector<blast::UngappedExtension> extensions;
  std::vector<double> chunk_costs;
  chunk_costs.reserve(outputs.size());
  for (auto& out : outputs) {
    extensions.insert(extensions.end(), out.extensions.begin(),
                      out.extensions.end());
    result.counters.words_scanned += out.counters.words_scanned;
    result.counters.hits_detected += out.counters.hits_detected;
    result.counters.hits_after_filter += out.counters.hits_after_filter;
    result.counters.ungapped_extensions += out.counters.ungapped_extensions;
    chunk_costs.push_back(out.critical_seconds);
  }
  // Phase time = T-worker makespan of the measured chunk costs.
  result.timings.hit_detection =
      util::list_schedule_makespan(chunk_costs, threads);

  auto stage = blast::process_gapped_stage(prepared.pssm, db, extensions,
                                           params, prepared.evalue);
  result.timings.gapped_extension =
      util::list_schedule_makespan(stage.gapped_task_costs, threads);
  result.timings.traceback =
      util::list_schedule_makespan(stage.traceback_task_costs, threads);
  result.counters.gapped_extensions = stage.gapped_extensions;
  result.counters.tracebacks = stage.tracebacks;

  {
    util::ScopedAccumulator finalize_time(result.timings.other);
    result.alignments = std::move(stage.alignments);
    blast::finalize_results(result.alignments, params, prepared.evalue);
  }
  return result;
}

}  // namespace repro::baselines
