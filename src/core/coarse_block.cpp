#include "core/coarse_block.hpp"

#include "bio/alphabet.hpp"
#include "core/lane_extend.hpp"
#include "core/scoring.hpp"

namespace repro::core {

namespace {

using simt::BlockCtx;
using simt::LaneArray;
using simt::WarpExec;

constexpr std::uint32_t kNoSeq = 0xffffffffu;

/// Per-launch extension output (SoA) with per-block regions.
struct CoarseRecords {
  simt::DeviceVector<std::uint32_t> seq;
  simt::DeviceVector<std::uint32_t> q_start;
  simt::DeviceVector<std::uint32_t> q_end;
  simt::DeviceVector<std::int32_t> diag;
  simt::DeviceVector<std::int32_t> score;
  simt::DeviceVector<std::uint32_t> counts;    ///< per block
  simt::DeviceVector<std::uint32_t> overflow;  ///< single counter
  std::uint32_t capacity;

  CoarseRecords(int blocks, std::uint32_t cap)
      : seq(static_cast<std::size_t>(blocks) * cap),
        q_start(seq.size()),
        q_end(seq.size()),
        diag(seq.size()),
        score(seq.size()),
        counts(static_cast<std::size_t>(blocks)),
        // Zero-filled (the cudaMemset analogue): the kernel atomically
        // bumps the overflow counter without ever storing a baseline.
        overflow(1, 0),
        capacity(cap) {}
};

}  // namespace

CoarseBlockOutput run_coarse_block(simt::Engine& engine,
                                   const CoarseBlockConfig& config,
                                   const QueryDevice& query,
                                   const BlockDevice& block,
                                   std::uint32_t output_capacity) {
  const auto& params = config.params;
  const std::uint32_t qlen = query.query_length;
  const auto window = static_cast<std::uint32_t>(params.two_hit_window);
  const std::uint32_t diag_span = qlen + block.max_seq_len + 2;
  const int total_threads = config.grid_blocks * config.block_threads;
  const bool dynamic_queue = config.dynamic_queue;

  // Per-thread diagonal state in global memory ("each thread has its own
  // lasthit_arr", paper §3.1). Values are block-global subject positions
  // + 1, so the arrays never need per-sequence resets.
  simt::DeviceVector<std::uint32_t> lasthit(
      static_cast<std::size_t>(total_threads) * diag_span, 0);
  simt::DeviceVector<std::uint32_t> ext_reach(lasthit.size(), 0);
  simt::DeviceVector<std::uint32_t> ticket(1, 0);

  CoarseRecords records(config.grid_blocks, output_capacity);
  const DeviceScoring scoring = DeviceScoring::plain_global_pssm(query);

  // Host-captured counters: real atomics, so the SM-sharded engine's
  // workers may bump them concurrently. They never touch KernelStats, so
  // the modeled metrics are identical whether or not anyone reads them.
  std::atomic<std::uint64_t> hits_detected{0};
  std::atomic<std::uint64_t> extensions_run{0};

  simt::LaunchConfig cfg;
  cfg.name = kKernelCoarse;
  cfg.grid_blocks = config.grid_blocks;
  cfg.block_threads = config.block_threads;
  cfg.regs_per_thread = 56;  // the fused kernel is register-hungry

  engine.launch(cfg, [&](BlockCtx& ctx) {
    // alloc_zeroed: the cursor is atomically bumped with no prior store —
    // the zero start is part of the kernel contract (a CUDA port memsets).
    auto block_cursor = ctx.shared().alloc_zeroed<std::uint32_t>(1);
    const std::uint32_t out_region =
        static_cast<std::uint32_t>(ctx.block_id()) * records.capacity;

    ctx.par([&](WarpExec& w) {
      LaneArray<std::uint32_t> seq{};
      LaneArray<std::uint32_t> seq_off{};
      LaneArray<std::uint32_t> nwords{};
      LaneArray<std::uint32_t> seq_len{};
      LaneArray<std::uint32_t> j{};
      LaneArray<std::uint8_t> fresh{};

      // Initial assignment.
      if (dynamic_queue) {
        LaneArray<std::uint32_t> zero{};
        LaneArray<std::uint32_t> one{};
        LaneArray<std::uint32_t> got{};
        w.vec([&](int lane) { one[lane] = 1; });
        w.atomic_add_global(ticket.data(), zero, one, got);
        w.vec([&](int lane) {
          seq[lane] = got[lane] < block.num_seqs ? got[lane] : kNoSeq;
          fresh[lane] = 1;
        });
      } else {
        w.vec([&](int lane) {
          const auto tid = static_cast<std::uint32_t>(w.thread_id(lane));
          seq[lane] = tid < block.num_seqs ? tid : kNoSeq;
          fresh[lane] = 1;
        });
      }

      auto advance = [&] {
        // Claim the next sequence for lanes whose sequence is finished.
        if (dynamic_queue) {
          LaneArray<std::uint32_t> zero{};
          LaneArray<std::uint32_t> one{};
          LaneArray<std::uint32_t> got{};
          w.vec([&](int lane) { one[lane] = 1; });
          w.atomic_add_global(ticket.data(), zero, one, got);
          w.vec([&](int lane) {
            seq[lane] = got[lane] < block.num_seqs ? got[lane] : kNoSeq;
            fresh[lane] = 1;
          });
        } else {
          w.vec([&](int lane) {
            const std::uint32_t next =
                seq[lane] + static_cast<std::uint32_t>(total_threads);
            seq[lane] = next < block.num_seqs ? next : kNoSeq;
            fresh[lane] = 1;
          });
        }
      };

      w.loop_while(
          [&](int lane) { return seq[lane] != kNoSeq; },
          [&] {
            // Load the extent of freshly-claimed sequences.
            w.if_then(
                [&](int lane) { return fresh[lane] != 0; },
                [&] {
                  LaneArray<std::uint32_t> lo{}, hi{}, idx1{};
                  w.gather(block.offsets.data(), seq, lo);
                  w.vec([&](int lane) { idx1[lane] = seq[lane] + 1; });
                  w.gather(block.offsets.data(), idx1, hi);
                  w.vec([&](int lane) {
                    seq_off[lane] = lo[lane];
                    seq_len[lane] = hi[lane] - lo[lane];
                    nwords[lane] = seq_len[lane] >= 3
                                       ? seq_len[lane] - 2
                                       : 0;
                    j[lane] = 0;
                    fresh[lane] = 0;
                  });
                });

            // Process word j of each lane's sequence.
            w.if_then(
                [&](int lane) { return j[lane] < nwords[lane]; },
                [&] {
                  LaneArray<std::uint32_t> sidx{};
                  LaneArray<std::uint8_t> c0{}, c1{}, c2{};
                  w.vec([&](int lane) {
                    sidx[lane] = seq_off[lane] + j[lane];
                  });
                  w.gather(block.residues.data(), sidx, c0);
                  w.vec([&](int lane) { ++sidx[lane]; });
                  w.gather(block.residues.data(), sidx, c1);
                  w.vec([&](int lane) { ++sidx[lane]; });
                  w.gather(block.residues.data(), sidx, c2);

                  LaneArray<std::uint32_t> word{};
                  LaneArray<std::uint32_t> start{}, stop{};
                  w.vec([&](int lane) {
                    word[lane] = (static_cast<std::uint32_t>(c0[lane]) *
                                      bio::kAlphabetSize +
                                  c1[lane]) *
                                     bio::kAlphabetSize +
                                 c2[lane];
                  });
                  // Plain global DFA loads: the coarse baselines predate
                  // the hierarchical buffering of §3.5.
                  w.gather(query.word_offsets.data(), word, start);
                  LaneArray<std::uint32_t> word1{};
                  w.vec([&](int lane) { word1[lane] = word[lane] + 1; });
                  w.gather(query.word_offsets.data(), word1, stop);

                  LaneArray<std::uint32_t> cursor = start;
                  w.loop_while(
                      [&](int lane) { return cursor[lane] < stop[lane]; },
                      [&] {
                        LaneArray<std::uint32_t> qpos{};
                        w.gather(query.word_positions.data(), cursor, qpos);
                        hits_detected.fetch_add(
                            static_cast<std::uint64_t>(w.active_lanes()),
                            std::memory_order_relaxed);

                        // Two-hit bookkeeping in the per-thread arrays.
                        LaneArray<std::uint32_t> slot{};
                        LaneArray<std::uint32_t> last{}, reach{};
                        LaneArray<std::uint32_t> gpos{};
                        w.vec([&](int lane) {
                          const std::uint32_t diag_idx =
                              j[lane] - qpos[lane] + qlen - 1;
                          slot[lane] = static_cast<std::uint32_t>(
                                           w.thread_id(lane)) *
                                           diag_span +
                                       diag_idx;
                          gpos[lane] = seq_off[lane] + j[lane];
                        });
                        w.gather(lasthit.data(), slot, last);
                        w.gather(ext_reach.data(), slot, reach);
                        // Update lasthit to this hit.
                        LaneArray<std::uint32_t> stored{};
                        w.vec([&](int lane) {
                          stored[lane] = gpos[lane] + 1;
                        });
                        w.scatter(lasthit.data(), slot, stored);

                        LaneArray<std::uint8_t> trigger{};
                        w.vec([&](int lane) {
                          const bool covered = reach[lane] > seq_off[lane] &&
                                               gpos[lane] + 1 <= reach[lane];
                          const bool paired =
                              params.one_hit ||
                              (last[lane] > seq_off[lane] &&
                               gpos[lane] + 1 - last[lane] <= window);
                          trigger[lane] = (!covered && paired) ? 1 : 0;
                        });

                        w.if_then(
                            [&](int lane) { return trigger[lane] != 0; },
                            [&] {
                              extensions_run.fetch_add(
                                  static_cast<std::uint64_t>(
                                      w.active_lanes()),
                                  std::memory_order_relaxed);
                              LaneExtendIo io;
                              w.vec([&](int lane) {
                                io.qpos[lane] = qpos[lane];
                                io.spos[lane] = j[lane];
                                io.seq_off[lane] = seq_off[lane];
                                io.seq_len[lane] = seq_len[lane];
                              });
                              lane_extend_ungapped(
                                  w, scoring, block.residues.data(), qlen,
                                  params, io);

                              // Record coverage.
                              LaneArray<std::uint32_t> new_reach{};
                              w.vec([&](int lane) {
                                const std::uint32_t s_end =
                                    io.q_end[lane] + j[lane] - qpos[lane];
                                new_reach[lane] =
                                    seq_off[lane] + s_end + 1;
                              });
                              w.scatter(ext_reach.data(), slot, new_reach);

                              // Emit qualifying extensions to the block's
                              // output region (shared-counter slots).
                              w.if_then(
                                  [&](int lane) {
                                    return io.score[lane] >=
                                           params.ungapped_cutoff;
                                  },
                                  [&] {
                                    LaneArray<std::uint32_t> zero{};
                                    LaneArray<std::uint32_t> one{};
                                    LaneArray<std::uint32_t> pos{};
                                    w.vec([&](int lane) { one[lane] = 1; });
                                    w.atomic_add_shared(block_cursor, zero,
                                                        one, pos);
                                    w.if_then_else(
                                        [&](int lane) {
                                          return pos[lane] <
                                                 records.capacity;
                                        },
                                        [&] {
                                          LaneArray<std::uint32_t> dst{};
                                          LaneArray<std::int32_t> dg{};
                                          LaneArray<std::int32_t> sc{};
                                          w.vec([&](int lane) {
                                            dst[lane] =
                                                out_region + pos[lane];
                                            dg[lane] =
                                                static_cast<std::int32_t>(
                                                    j[lane]) -
                                                static_cast<std::int32_t>(
                                                    qpos[lane]);
                                            sc[lane] = io.score[lane];
                                          });
                                          w.scatter(records.seq.data(), dst,
                                                    seq);
                                          w.scatter(records.q_start.data(),
                                                    dst, io.q_start);
                                          w.scatter(records.q_end.data(),
                                                    dst, io.q_end);
                                          w.scatter(records.diag.data(),
                                                    dst, dg);
                                          w.scatter(records.score.data(),
                                                    dst, sc);
                                        },
                                        [&] {
                                          LaneArray<std::uint32_t> zero2{};
                                          LaneArray<std::uint32_t> one2{};
                                          LaneArray<std::uint32_t> prev{};
                                          w.vec([&](int lane) {
                                            one2[lane] = 1;
                                          });
                                          w.atomic_add_global(
                                              records.overflow.data(),
                                              zero2, one2, prev);
                                        });
                                  });
                            });
                        w.vec([&](int lane) { ++cursor[lane]; });
                      });
                });

            // Advance: next word, or next sequence when done.
            w.vec([&](int lane) { ++j[lane]; });
            w.if_then([&](int lane) { return j[lane] >= nwords[lane]; },
                      advance);
          });
    });
    records.counts[static_cast<std::size_t>(ctx.block_id())] =
        block_cursor[0];
  });

  CoarseBlockOutput out;
  out.hits_detected = hits_detected.load(std::memory_order_relaxed);
  out.extensions_run = extensions_run.load(std::memory_order_relaxed);
  out.overflowed = records.overflow[0] != 0;
  if (out.overflowed) return out;
  for (int b = 0; b < config.grid_blocks; ++b) {
    const std::uint32_t n = records.counts[static_cast<std::size_t>(b)];
    for (std::uint32_t r = 0; r < n; ++r) {
      const std::uint32_t slot =
          static_cast<std::uint32_t>(b) * records.capacity + r;
      blast::UngappedExtension ext;
      ext.seq = records.seq[slot];
      ext.q_start = records.q_start[slot];
      ext.q_end = records.q_end[slot];
      const std::int32_t diag = records.diag[slot];
      ext.s_start = static_cast<std::uint32_t>(
          static_cast<std::int32_t>(ext.q_start) + diag);
      ext.s_end = static_cast<std::uint32_t>(
          static_cast<std::int32_t>(ext.q_end) + diag);
      ext.score = records.score[slot];
      out.extensions.push_back(ext);
      out.d2h_bytes += 20;
    }
  }
  return out;
}

}  // namespace repro::core
