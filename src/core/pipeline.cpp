#include "core/pipeline.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "blast/ungapped.hpp"
#include "core/bins.hpp"
#include "core/coarse_block.hpp"
#include "core/kernels.hpp"
#include "core/prefilter.hpp"
#include "simt/simtcheck.hpp"
#include "util/fault.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace repro::core {

namespace {

/// Last finish time in a modeled schedule (its makespan).
double schedule_finish(std::span<const util::ScheduledTask> tasks) {
  double finish = 0.0;
  for (const auto& t : tasks) finish = std::max(finish, t.finish);
  return finish;
}

std::uint64_t model_ns(double seconds) {
  return static_cast<std::uint64_t>(seconds * 1e9);
}

/// One CPU phase of one block on the modeled timeline: a span per worker
/// covering that worker's busy window in the greedy schedule (per-task
/// spans would overwhelm the trace; the task count rides as an arg).
void emit_modeled_worker_phase(const char* name, const ModeledBlock& block,
                               double phase_start_s,
                               std::span<const util::ScheduledTask> tasks,
                               std::size_t cpu_threads) {
  std::vector<double> finish(cpu_threads, 0.0);
  std::vector<std::uint64_t> count(cpu_threads, 0);
  for (const auto& t : tasks) {
    finish[t.worker] = std::max(finish[t.worker], t.finish);
    ++count[t.worker];
  }
  for (std::size_t w = 0; w < cpu_threads; ++w) {
    if (count[w] == 0) continue;
    util::TraceEvent e;
    e.phase = 'X';
    e.name = name;
    e.category = "modeled";
    e.ts_ns = model_ns(phase_start_s);
    e.dur_ns = model_ns(finish[w]);
    e.args.push_back(util::targ(
        "query", static_cast<std::uint64_t>(block.query_index)));
    e.args.push_back(util::targ(
        "block", static_cast<std::uint64_t>(block.block_index)));
    e.args.push_back(util::targ("tasks", count[w]));
    util::Tracer::instance().record_modeled(
        "cpu-worker-" + std::to_string(w) + " (modeled)", std::move(e));
  }
}

/// One database block on the modeled Fig. 12 timeline (pid 2 of the
/// trace): the GPU+PCIe chain span, then the CPU fallback (if the block
/// degraded) and the gapped/traceback phases as per-worker spans of the
/// same greedy schedule the makespan model priced.
void emit_modeled_block(const ModeledBlock& block, double gpu_start_s,
                        double cpu_start_s, std::size_t cpu_threads) {
  util::TraceEvent gpu_event;
  gpu_event.phase = 'X';
  gpu_event.name = "gpu chain";
  gpu_event.category = "modeled";
  gpu_event.ts_ns = model_ns(gpu_start_s);
  gpu_event.dur_ns = model_ns(block.gpu_s);
  gpu_event.args.push_back(
      util::targ("query", static_cast<std::uint64_t>(block.query_index)));
  gpu_event.args.push_back(
      util::targ("block", static_cast<std::uint64_t>(block.block_index)));
  util::Tracer::instance().record_modeled("GPU + PCIe (modeled)",
                                          std::move(gpu_event));

  double t = cpu_start_s;
  if (block.fallback_s > 0.0) {
    util::TraceEvent e;
    e.phase = 'X';
    e.name = "cpu_fallback";
    e.category = "modeled";
    e.ts_ns = model_ns(t);
    e.dur_ns = model_ns(block.fallback_s);
    e.args.push_back(
        util::targ("query", static_cast<std::uint64_t>(block.query_index)));
    e.args.push_back(
        util::targ("block", static_cast<std::uint64_t>(block.block_index)));
    util::Tracer::instance().record_modeled("cpu-worker-0 (modeled)",
                                            std::move(e));
    t += block.fallback_s;
  }
  emit_modeled_worker_phase("gapped", block, t, block.gapped_schedule,
                            cpu_threads);
  t += schedule_finish(block.gapped_schedule);
  emit_modeled_worker_phase("traceback", block, t, block.traceback_schedule,
                            cpu_threads);
}

/// A serial CPU slot (query preparation, finalization) on the modeled
/// batch timeline; drawn on worker 0's track, where the serial host work
/// of the real pipeline runs.
void emit_modeled_cpu_slot(const char* name, std::size_t query_index,
                           double start_s, double duration_s) {
  util::TraceEvent e;
  e.phase = 'X';
  e.name = name;
  e.category = "modeled";
  e.ts_ns = model_ns(start_s);
  e.dur_ns = model_ns(duration_s);
  e.args.push_back(
      util::targ("query", static_cast<std::uint64_t>(query_index)));
  util::Tracer::instance().record_modeled("cpu-worker-0 (modeled)",
                                          std::move(e));
}

/// Marks a block's filter pass as degraded (the block is re-served
/// unfiltered inside the same rung — the filter never drops results).
void note_prefilter_degraded(BlockLadderResult& result, std::size_t bi,
                             const std::string& error) {
  result.prefilter_degraded = true;
  if (util::trace_enabled())
    util::trace_instant("degrade.prefilter_off", "degrade",
                        {util::targ("block", static_cast<std::uint64_t>(bi)),
                         util::targ("error", error)});
}

}  // namespace

Config normalized_config(Config config) {
  if (config.num_bins_per_warp <= 0 ||
      (config.num_bins_per_warp & (config.num_bins_per_warp - 1)) != 0)
    throw std::invalid_argument("num_bins_per_warp must be a power of two");
  if (config.db_blocks == 0) config.db_blocks = 1;
  if (config.cpu_threads == 0) config.cpu_threads = 1;
  if (config.bin_capacity == 0) config.bin_capacity = 256;
  if (config.engine_workers < 1) config.engine_workers = 1;
  // A fleet cannot usefully exceed the block count; sessions additionally
  // clamp to their actual split, but the ceiling keeps a typo'd --shards
  // from constructing thousands of idle engines.
  config.shards = std::clamp<std::size_t>(config.shards, 1, config.db_blocks);
  if (config.max_bin_retries < 0) config.max_bin_retries = 0;
  if (config.max_bin_capacity <
      static_cast<std::uint32_t>(config.bin_capacity))
    config.max_bin_capacity = static_cast<std::uint32_t>(config.bin_capacity);
  if (config.prefilter_threshold < 0) config.prefilter_threshold = 0;
  config.prefilter_backend_switch =
      std::clamp(config.prefilter_backend_switch, 0.0, 1.0);
  return config;
}

// ---------------------------------------------------------------------------
// Stage 2: database residency.
// ---------------------------------------------------------------------------

BlockResidency::BlockResidency(
    const bio::SequenceDatabase& db,
    std::vector<std::pair<std::size_t, std::size_t>> blocks)
    : db_(&db), blocks_(std::move(blocks)), resident_(blocks_.size()) {}

const BlockDevice& BlockResidency::ensure(simt::Engine& engine,
                                          std::size_t bi) {
  if (!resident_[bi].has_value()) {
    const auto [begin, end] = blocks_[bi];
    // Residency uploads intentionally outlive the query (that is their
    // point) — tag them so leakcheck's per-query scan skips them.
    simt::DeviceAllocSite site("core.block_residency");
    simt::DeviceResidentScope resident;
    resident_[bi].emplace(*db_, begin, end);
    try {
      engine.transfer("h2d_block", resident_[bi]->h2d_bytes());
    } catch (...) {
      // Leave the block non-resident so the bytes are counted only when a
      // transfer actually succeeded; the next rung/search retries it.
      resident_[bi].reset();
      throw;
    }
    uploaded_bytes_ += resident_[bi]->h2d_bytes();
    ++uploads_;
  }
  return *resident_[bi];
}

// ---------------------------------------------------------------------------
// Stage 3: per-block GPU attempt and the degradation ladder.
// ---------------------------------------------------------------------------

BlockOutcome run_block_on_gpu(simt::Engine& engine, const Config& config,
                              const QueryDevice& query,
                              const BlockDevice& device_block,
                              std::uint32_t& bin_capacity,
                              std::uint64_t& overflow_retries,
                              SurvivorView survivors) {
  BlockOutcome out;
  // Every scratch allocation of the fine K1-K5 chain reports under one
  // leakcheck site — they must all die with this query.
  simt::DeviceAllocSite site("core.fine_pipeline");

  // K1 with overflow-driven capacity growth: a real implementation must
  // re-run when its fixed-size bins overflow (paper §3.2) — but only a
  // bounded number of times, and only up to a bounded capacity.
  for (int retry = 0;; ++retry) {
    BinGrid bins(config.detection_warps(), config.num_bins_per_warp,
                 bin_capacity);
    const DetectionResult detection = launch_hit_detection(
        engine, config, query, device_block, bins, survivors);
    if (!detection.overflowed) {
      // K2-K4.
      AssembledBins assembled = launch_assemble(engine, bins);
      launch_sort(engine, assembled);
      FilteredBins filtered = launch_filter(engine, config, assembled);

      // K5.
      ExtensionResult extension = launch_extension(engine, config, query,
                                                   device_block, filtered);
      engine.transfer("d2h_extensions", extension.records_d2h_bytes);

      out.hits_detected = detection.total_hits;
      out.hits_after_filter = filtered.total_survivors;
      out.ungapped_extensions = extension.extensions_run;
      out.extensions = std::move(extension.extensions);
      for (auto& ext : out.extensions) ext.seq += device_block.first_seq;
      return out;
    }
    ++overflow_retries;
    if (util::trace_enabled()) {
      util::trace_instant(
          "bin_overflow_retry", "degrade",
          {util::targ("retry", retry),
           util::targ("capacity", static_cast<std::uint64_t>(bin_capacity))});
      util::trace_counter("bin_capacity", static_cast<double>(bin_capacity));
    }
    if (retry >= config.max_bin_retries)
      throw SearchError(
          SearchErrorCode::kBinOverflowExhausted,
          "bin overflow persisted after " +
              std::to_string(config.max_bin_retries) + " capacity retries");
    if (bin_capacity >= config.max_bin_capacity)
      throw SearchError(SearchErrorCode::kBinOverflowExhausted,
                        "bin capacity cap (" +
                            std::to_string(config.max_bin_capacity) +
                            ") reached while still overflowing");
    bin_capacity = bin_capacity <= config.max_bin_capacity / 2
                       ? bin_capacity * 2
                       : config.max_bin_capacity;
  }
}

BlockOutcome run_block_on_coarse(simt::Engine& engine, const Config& config,
                                 const QueryDevice& query,
                                 const BlockDevice& device_block,
                                 std::uint64_t& overflow_retries) {
  simt::DeviceAllocSite site("core.coarse_pipeline");
  CoarseBlockConfig coarse;
  coarse.params = config.params;
  // Static assignment: deterministic for any engine worker count (the
  // dynamic ticket queue hands out sequences in claim order).
  coarse.dynamic_queue = false;

  std::uint32_t capacity = 4096;
  for (int retry = 0;; ++retry) {
    CoarseBlockOutput kernel_out =
        run_coarse_block(engine, coarse, query, device_block, capacity);
    if (!kernel_out.overflowed) {
      engine.transfer("d2h_extensions", kernel_out.d2h_bytes);
      BlockOutcome out;
      out.hits_detected = kernel_out.hits_detected;
      // The fused kernel has no separate filter/extension stages: every
      // two-hit trigger runs an inline extension, matching the CPU
      // fallback's counter semantics.
      out.hits_after_filter = kernel_out.extensions_run;
      out.ungapped_extensions = kernel_out.extensions_run;
      out.extensions = std::move(kernel_out.extensions);
      for (auto& ext : out.extensions) ext.seq += device_block.first_seq;
      return out;
    }
    ++overflow_retries;
    if (util::trace_enabled())
      util::trace_instant(
          "coarse_output_retry", "degrade",
          {util::targ("retry", retry),
           util::targ("capacity", static_cast<std::uint64_t>(capacity))});
    if (retry >= config.max_bin_retries)
      throw SearchError(
          SearchErrorCode::kBinOverflowExhausted,
          "coarse output overflow persisted after " +
              std::to_string(config.max_bin_retries) + " capacity retries");
    capacity *= 2;
  }
}

BlockOutcome run_block_on_cpu(const blast::WordLookup& lookup,
                              const bio::Pssm& pssm,
                              const bio::SequenceDatabase& db,
                              std::size_t begin, std::size_t end,
                              std::size_t query_length,
                              const blast::SearchParams& params) {
  // "core.cpu_fallback" lets chaos tests exhaust the whole ladder.
  util::fault_point_throw("core.cpu_fallback");
  util::TraceSpan span("cpu_fallback", "degrade");
  if (span.active()) {
    span.arg("first_seq", static_cast<std::uint64_t>(begin));
    span.arg("end_seq", static_cast<std::uint64_t>(end));
  }
  BlockOutcome out;
  util::Timer timer;
  blast::TwoHitTracker tracker(query_length + db.max_length() + 2);
  for (std::size_t i = begin; i < end; ++i) {
    const auto counters = blast::run_ungapped_phase(
        lookup, pssm, db.residues(i), static_cast<std::uint32_t>(i), params,
        tracker, out.extensions);
    out.hits_detected += counters.hits;
    out.hits_after_filter += counters.extensions_run;
    out.ungapped_extensions += counters.extensions_run;
  }
  out.cpu_fallback_seconds = timer.seconds();
  return out;
}

BlockLadderResult run_block_ladder(simt::Engine& engine, const Config& config,
                                   const QueryContext& ctx,
                                   const bio::SequenceDatabase& db,
                                   BlockResidency& residency, std::size_t bi,
                                   std::uint32_t& bin_capacity,
                                   std::uint64_t& overflow_retries,
                                   const PrefilterDevice* prefilter,
                                   int prefilter_threshold,
                                   const CancellationToken& cancel) {
  cancel.throw_if_stopped("block_ladder.entry");
  // The ladder toggles the read-only cache per rung; restore the configured
  // setting on every exit path, including a cancellation throw between
  // rungs, so an aborted query never leaks a cache-off engine to the next.
  struct CacheRestore {
    simt::Engine& engine;
    bool enabled;
    ~CacheRestore() { engine.set_readonly_cache_enabled(enabled); }
  } cache_restore{engine, config.use_readonly_cache};

  BlockLadderResult result;
  std::optional<BlockOutcome> outcome;
  // Kept outside the rung loop: the survivor indices feed the
  // words-scanned accounting after the ladder settles.
  std::optional<PrefilterResult> filter;

  // Rung 1: the fine-grained GPU pipeline (bounded bin-capacity growth),
  //         behind the pre-filter router when the filter is enabled. A
  //         filter failure is absorbed here: the rung re-serves the block
  //         unfiltered rather than falling down the ladder.
  // Rung 2: one more unfiltered GPU attempt, read-only cache disabled.
  // Rung 3: the block's critical phases on the CPU (FSA path).
  //
  // Every rung produces the same extension set, so alignments stay
  // bit-identical to a fault-free run however far a block has to fall.
  for (int rung = 0; rung < 2 && !outcome; ++rung) {
    if (rung > 0) cancel.throw_if_stopped("block_ladder.rung");
    const bool cache_enabled = rung == 0 && config.use_readonly_cache;
    Config attempt_config = config;
    attempt_config.use_readonly_cache = cache_enabled;
    engine.set_readonly_cache_enabled(cache_enabled);
    util::TraceSpan attempt_span;
    if (util::trace_enabled()) {
      attempt_span.open("gpu_attempt", "core");
      attempt_span.arg("rung", rung);
      attempt_span.arg("readonly_cache", cache_enabled ? "on" : "off");
    }
    std::string failure;
    try {
      const BlockDevice& device_block = residency.ensure(engine, bi);
      if (rung == 0 && prefilter != nullptr) {
        try {
          filter = run_prefilter(engine, attempt_config, *prefilter,
                                 device_block, prefilter_threshold);
        } catch (const SearchError& e) {
          note_prefilter_degraded(result, bi, e.what());
        } catch (const simt::DeviceError& e) {
          note_prefilter_degraded(result, bi, e.what());
        } catch (const util::FaultInjectedError& e) {
          note_prefilter_degraded(result, bi, e.what());
        } catch (const std::bad_alloc&) {
          note_prefilter_degraded(result, bi, "std::bad_alloc");
        }
      }
      if (filter.has_value()) {
        result.prefilter_seqs = filter->num_seqs;
        result.prefilter_survivors = filter->num_survivors;
        if (config.prefilter == PrefilterMode::kAuto &&
            filter->pass_rate() >= config.prefilter_backend_switch) {
          // Dense block: the survivor indirection would barely thin the
          // work, so the fused coarse kernel's single launch wins.
          outcome = run_block_on_coarse(engine, attempt_config, ctx.device,
                                        device_block, overflow_retries);
          result.backend = BlockBackend::kCoarse;
        } else if (filter->num_survivors == 0) {
          // Nothing survived: the block provably contributes no
          // extensions, so skip the fine pipeline entirely. (An empty
          // DeviceVector's data() is null, which SurvivorView would read
          // as "unfiltered" — this branch also keeps that sentinel safe.)
          outcome.emplace();
          result.backend = BlockBackend::kFineFiltered;
        } else {
          const SurvivorView view{filter->survivors.data(),
                                  filter->num_survivors};
          outcome = run_block_on_gpu(engine, attempt_config, ctx.device,
                                     device_block, bin_capacity,
                                     overflow_retries, view);
          result.backend = BlockBackend::kFineFiltered;
        }
      } else {
        outcome = run_block_on_gpu(engine, attempt_config, ctx.device,
                                   device_block, bin_capacity,
                                   overflow_retries);
        result.backend = BlockBackend::kFine;
      }
    } catch (const SearchError& e) {
      failure = e.what();
    } catch (const simt::DeviceError& e) {
      failure = e.what();
    } catch (const util::FaultInjectedError& e) {
      failure = e.what();
    } catch (const std::bad_alloc&) {
      failure = "std::bad_alloc";
    }
    // A rung that failed after a successful filter pass must not leave the
    // next (unfiltered) rung mislabeled as filtered.
    if (!outcome && filter.has_value()) {
      filter.reset();
      result.prefilter_seqs = 0;
      result.prefilter_survivors = 0;
    }
    // Anything else — std::invalid_argument contract violations above
    // all — propagates: a retry cannot fix a malformed launch, and the
    // CPU path must not paper over a misconfigured pipeline.
    if (!outcome) {
      ++result.failed_attempts;
      if (rung == 0) result.cache_off_retry = true;
      if (attempt_span.active()) {
        attempt_span.arg("failed", failure);
        attempt_span.end();
        // One instant per ladder transition: rung 0 -> retry with the
        // read-only cache off, rung 1 -> fall through to the CPU.
        util::trace_instant(
            rung == 0 ? "degrade.cache_off_retry" : "degrade.gpu_exhausted",
            "degrade",
            {util::targ("block", static_cast<std::uint64_t>(bi)),
             util::targ("error", failure)});
      }
    }
  }
  engine.set_readonly_cache_enabled(config.use_readonly_cache);

  if (!outcome) {
    cancel.throw_if_stopped("block_ladder.cpu_fallback");
    if (util::trace_enabled())
      util::trace_instant("degrade.cpu_fallback", "degrade",
                          {util::targ("block", static_cast<std::uint64_t>(bi))});
    const auto [begin, end] = residency.range(bi);
    try {
      outcome = run_block_on_cpu(ctx.lookup, ctx.pssm, db, begin, end,
                                 ctx.query.size(), config.params);
    } catch (const std::exception& e) {
      throw SearchError(
          SearchErrorCode::kDegradationExhausted,
          "block " + std::to_string(bi) +
              " failed on GPU, on GPU with the cache disabled, and on the "
              "CPU fallback: " + e.what());
    }
    result.degraded = true;
    result.backend = BlockBackend::kCpu;
  }

  // Words-scanned accounting follows the serving backend: the filtered
  // fine path only scans survivors; every other backend walks the block.
  const auto word_length = static_cast<std::size_t>(config.params.word_length);
  const auto [begin, end] = residency.range(bi);
  if (result.backend == BlockBackend::kFineFiltered && filter.has_value()) {
    for (std::uint32_t i = 0; i < filter->num_survivors; ++i) {
      const std::size_t len = db.length(begin + filter->survivors[i]);
      if (len >= word_length) result.words_scanned += len - word_length + 1;
    }
  } else {
    for (std::size_t s = begin; s < end; ++s)
      if (db.length(s) >= word_length)
        result.words_scanned += db.length(s) - word_length + 1;
  }

  result.outcome = std::move(*outcome);
  return result;
}

// ---------------------------------------------------------------------------
// Stage 4: CPU gapped extension + traceback.
// ---------------------------------------------------------------------------

BlockCpuResult run_block_cpu_stage(
    const QueryContext& ctx, const bio::SequenceDatabase& db,
    std::span<const blast::UngappedExtension> extensions,
    const Config& config) {
  BlockCpuResult result;
  auto stage = blast::process_gapped_stage(ctx.pssm, db, extensions,
                                           config.params, ctx.evalue);
  result.gapped_makespan_seconds = util::list_schedule_makespan(
      stage.gapped_task_costs, config.cpu_threads);
  result.traceback_makespan_seconds = util::list_schedule_makespan(
      stage.traceback_task_costs, config.cpu_threads);
  result.gapped_extensions = stage.gapped_extensions;
  result.tracebacks = stage.tracebacks;
  result.alignments = std::move(stage.alignments);
  if (util::trace_enabled()) {
    // Keep the greedy placements so the modeled timeline can draw the
    // per-worker CPU tracks of Fig. 12.
    result.gapped_schedule =
        util::list_schedule(stage.gapped_task_costs, config.cpu_threads);
    result.traceback_schedule =
        util::list_schedule(stage.traceback_task_costs, config.cpu_threads);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Stage 5: finalization.
// ---------------------------------------------------------------------------

double run_finalize(std::vector<blast::Alignment>& alignments,
                    const QueryContext& ctx, const Config& config) {
  util::TraceSpan finalize_span("finalize", "cpu");
  util::Timer timer;
  blast::finalize_results(alignments, config.params, ctx.evalue);
  return timer.seconds();
}

// ---------------------------------------------------------------------------
// Pipeline model (paper Fig. 12), generalized across queries.
// ---------------------------------------------------------------------------

PipelineTotals walk_pipeline(std::span<const ModeledBlock> blocks,
                             std::size_t cpu_threads, bool emit_modeled) {
  PipelineTotals totals;
  double gpu_done_s = 0.0, cpu_done_s = 0.0;
  for (const auto& block : blocks) {
    const double gpu_start_s = gpu_done_s;
    gpu_done_s += block.gpu_s;
    const double cpu_start_s = std::max(cpu_done_s, gpu_done_s);
    cpu_done_s = cpu_start_s + block.cpu_s;
    totals.serial_s += block.gpu_s + block.cpu_s;
    if (emit_modeled && util::trace_enabled())
      emit_modeled_block(block, gpu_start_s, cpu_start_s, cpu_threads);
  }
  totals.overlapped_s = cpu_done_s;
  return totals;
}

double walk_batch_pipeline(std::span<const ModeledQuery> queries,
                           std::size_t cpu_threads) {
  // Two resources — the GPU/PCIe chain and the CPU — shared by every
  // query. Preparation gates the query's first GPU block and occupies the
  // CPU; each block's CPU phases start once its GPU chain and all earlier
  // CPU work are done; finalization occupies the CPU after the query's
  // last block.
  const bool emit = util::trace_enabled();
  double gpu_free_s = 0.0, cpu_free_s = 0.0;
  std::size_t qi = 0;
  for (const auto& q : queries) {
    if (emit && q.prep_s > 0.0)
      emit_modeled_cpu_slot("query_prep", qi, cpu_free_s, q.prep_s);
    cpu_free_s += q.prep_s;
    const double prep_done_s = cpu_free_s;
    for (const auto& block : q.blocks) {
      const double gpu_start_s = std::max(gpu_free_s, prep_done_s);
      gpu_free_s = gpu_start_s + block.gpu_s;
      const double cpu_start_s = std::max(cpu_free_s, gpu_free_s);
      cpu_free_s = cpu_start_s + block.cpu_s;
      if (emit) emit_modeled_block(block, gpu_start_s, cpu_start_s, cpu_threads);
    }
    if (emit && q.finalize_s > 0.0)
      emit_modeled_cpu_slot("finalize", qi, cpu_free_s, q.finalize_s);
    cpu_free_s += q.finalize_s;
    ++qi;
  }
  return cpu_free_s;
}

}  // namespace repro::core
