#include "core/session_detail.hpp"

#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "core/coarse_block.hpp"
#include "core/errors.hpp"
#include "core/prefilter.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace repro::core::detail {

double kernel_ms(const simt::ProfileRegistry& registry, const char* name) {
  return registry.has(name) ? registry.at(name).time_ms : 0.0;
}

void append_checkpoint_gaps(const util::svc::CheckpointScope& scope,
                            std::span<const char* const> always,
                            std::span<const char* const> per_block,
                            bool has_blocks, simt::HazardReport& sink) {
  auto append = [&](std::span<const char* const> required) {
    for (const std::string& name : scope.missing(required)) {
      simt::HazardRecord record;
      record.kind = simt::HazardKind::kCheckpointGap;
      record.kernel = "search";
      record.detail = "cancellation checkpoint '" + name +
                      "' was never polled during this search — requests "
                      "cannot stop at that stage boundary";
      sink.add(std::move(record));
    }
  };
  append(always);
  if (has_blocks) append(per_block);
}

std::string path_or_env(const std::string& configured, const char* env_name) {
  if (!configured.empty()) return configured;
  if (const char* env = std::getenv(env_name)) return env;
  return {};
}

void finish_search_report(QueryRun& run, const Config& config,
                          simt::prof::ContinuousProfiler& profiler,
                          bool emit_modeled_trace) {
  SearchReport& report = run.report;
  report.result.alignments = std::move(run.cpu.alignments);
  report.gapped_seconds = run.cpu.gapped_s;
  report.traceback_seconds = run.cpu.traceback_s;
  report.result.counters.gapped_extensions = run.cpu.gapped_extensions;
  report.result.counters.tracebacks = run.cpu.tracebacks;
  report.other_seconds = run.prep_s + run.cpu.finalize_s;

  report.profile = std::move(run.profile_delta);
  report.hazards = std::move(run.hazards);
  report.shards = std::move(run.shards);
  report.detection_ms = kernel_ms(report.profile, kKernelDetection);
  report.scan_ms = kernel_ms(report.profile, kKernelScan);
  report.assemble_ms = kernel_ms(report.profile, kKernelAssemble);
  report.sort_ms = kernel_ms(report.profile, kKernelSort);
  report.filter_ms = kernel_ms(report.profile, kKernelFilter);
  report.extension_ms = kernel_ms(report.profile, kKernelExtension);
  report.prefilter_ms = kernel_ms(report.profile, kKernelPrefilter);
  report.coarse_ms = kernel_ms(report.profile, kKernelCoarse);
  report.h2d_ms = kernel_ms(report.profile, "h2d_query") +
                  kernel_ms(report.profile, "h2d_block") +
                  kernel_ms(report.profile, "h2d_prefilter") +
                  kernel_ms(report.profile, "h2d_survivors");
  report.d2h_ms = kernel_ms(report.profile, "d2h_extensions") +
                  kernel_ms(report.profile, "d2h_prefilter");

  const PipelineTotals totals =
      walk_pipeline(run.cpu.modeled, config.cpu_threads, emit_modeled_trace);
  report.overlapped_total_seconds = totals.overlapped_s + report.other_seconds;
  report.serial_total_seconds = totals.serial_s + report.other_seconds;

  double fallback_seconds = 0.0;
  for (const double s : run.block_fallback_s) fallback_seconds += s;

  // Map into the common PhaseTimings (GPU ms -> seconds). Degraded blocks
  // fold their host-side critical-phase cost into hit detection, where the
  // work they replaced lives; so do the pre-filter and coarse-backend
  // kernels, which substitute for (parts of) hit detection.
  report.result.timings.hit_detection =
      (report.detection_ms + report.scan_ms + report.assemble_ms +
       report.sort_ms + report.filter_ms + report.prefilter_ms +
       report.coarse_ms) /
          1e3 +
      fallback_seconds;
  report.result.timings.ungapped_extension = report.extension_ms / 1e3;
  report.result.timings.gapped_extension = report.gapped_seconds;
  report.result.timings.traceback = report.traceback_seconds;
  report.result.timings.other =
      report.other_seconds + (report.h2d_ms + report.d2h_ms) / 1e3;

  report.wall_ms = run.wall_seconds * 1e3;
  report.status = report.degraded() ? "degraded" : "ok";

  report.faults_encountered =
      util::FaultInjector::instance().total_fires() - run.fires_before;
  if (util::trace_enabled() && report.faults_encountered > 0)
    util::trace_instant("faults_absorbed", "degrade",
                        {util::targ("count", report.faults_encountered)});

  // Metrics are always on (lock-free recording; see util/metrics.hpp) —
  // only the export is gated on a destination being configured.
  auto& registry = util::metrics::Registry::instance();
  registry.counter("core.searches").add(1);
  registry.counter("core.alignments").add(report.result.alignments.size());
  registry.counter("core.bin_overflow_retries")
      .add(report.bin_overflow_retries);
  registry.counter("core.cache_off_retries").add(report.cache_off_retries);
  registry.counter("core.degraded_blocks").add(report.degraded_blocks);
  registry.counter("core.faults_absorbed").add(report.faults_encountered);
  registry.counter("core.prefilter_sequences").add(report.prefilter_sequences);
  registry.counter("core.prefilter_survivors").add(report.prefilter_survivors);
  registry.counter("core.prefilter_degraded_blocks")
      .add(report.prefilter_degraded_blocks);
  registry.histogram("core.search_wall_seconds").observe(run.wall_seconds);

  // Continuous profiler: fold this query's per-kernel delta into the
  // session-lifetime aggregate (simtprof; DESIGN.md §16). Collection is
  // unconditional — it reads counters the engine already measured, so it
  // cannot perturb results — and export stays gated on a path.
  profiler.record_search(report.profile, report.wall_ms);
}

void export_metrics_if_configured(const Config& config) {
  const std::string metrics_path =
      path_or_env(config.metrics_path, "REPRO_METRICS");
  if (metrics_path.empty()) return;
  try {
    util::metrics::Registry::instance().write_file(metrics_path);
  } catch (const std::invalid_argument& e) {
    // The util layer cannot name SearchError (layering); translate here so
    // a typo'd --metrics path surfaces through the core error taxonomy.
    throw SearchError(SearchErrorCode::kInvalidArgument, e.what());
  }
}

void export_profile_if_configured(const Config& config,
                                  const simt::prof::ContinuousProfiler& prof) {
  const std::string profile_path =
      path_or_env(config.profile_path, "REPRO_PROFILE");
  if (profile_path.empty()) return;
  try {
    prof.write_file(profile_path);
  } catch (const std::invalid_argument& e) {
    throw SearchError(SearchErrorCode::kInvalidArgument, e.what());
  }
}

}  // namespace repro::core::detail
