// SearchService: a long-running front-end around a ShardedSession fleet
// (DESIGN.md §14/§17) — admission control, priorities, deadlines,
// cooperative cancellation, transient-fault retries, and a drain/shutdown
// protocol. With one shard (the default) the owned fleet is exactly the
// old single-engine SearchSession layout.
//
// A session answers queries for whoever calls it; a SearchService
// decides *whether* and *when* to answer. Requests enter a bounded
// priority queue through submit(); a single worker thread owns the session
// and drains the queue in priority order (FIFO within a class). The
// service never blocks a submitter: when the queue is full (globally or
// for the request's priority class) the returned future resolves
// immediately with RequestStatus::kRejected — backpressure is explicit and
// cheap, not an unbounded pile-up.
//
//   core::SearchService service(config, db);          // owns the session
//   SearchRequest req;
//   req.query = ...;
//   req.deadline_ms = 50.0;                           // relative budget
//   auto fut = service.submit(std::move(req));
//   ServiceResult r = fut.get();
//   if (r.status == RequestStatus::kOk) use(r.report);
//   service.drain();                                  // finish + flush
//
// Deadlines and cancellation are cooperative: the worker combines the
// client's CancellationToken with the request's absolute deadline
// (CancellationToken::with_deadline) and the pipeline polls the combined
// token at every stage boundary, so an expired or cancelled request aborts
// between stages with kDeadlineExceeded/kCancelled — never mid-kernel,
// and device state unwinds through its RAII owners. Requests whose
// deadline expires while still queued are failed without running at all.
//
// Transient device failures (kDeviceAllocation, kDeviceTransfer — the
// classes a real accelerator surfaces under memory pressure or link
// glitches) are retried with exponential backoff, up to
// ServiceConfig::max_transient_retries, unless the request's token has
// stopped. Everything else fails the request immediately with its
// SearchError code.
//
// Determinism: queue decisions depend only on arrival order and
// configuration; under util::VirtualClockScope, backoff waits spin on
// clock reads (each read advances virtual time) instead of sleeping, so
// admission/deadline/retry decisions are reproducible in tests. A request
// with no deadline and an empty token returns results bit-identical to
// calling SearchSession::search directly.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bio/database.hpp"
#include "core/cancellation.hpp"
#include "core/config.hpp"
#include "core/search_session.hpp"
#include "core/sharded_session.hpp"
#include "simt/simtcheck.hpp"
#include "util/svccheck.hpp"
#include "util/trace.hpp"

namespace repro::core {

/// Scheduling class of a request. Lower value = drained first. Within a
/// class the queue is FIFO.
enum class RequestPriority : std::uint8_t {
  kInteractive = 0,
  kNormal = 1,
  kBatch = 2,
};
inline constexpr std::size_t kNumPriorities = 3;

[[nodiscard]] constexpr const char* request_priority_name(RequestPriority p) {
  switch (p) {
    case RequestPriority::kInteractive: return "interactive";
    case RequestPriority::kNormal: return "normal";
    case RequestPriority::kBatch: return "batch";
  }
  return "unknown";
}

/// Service tunables (all have safe defaults).
struct ServiceConfig {
  /// Total queued requests the service will hold (in-flight excluded).
  /// Submissions beyond this are rejected. Minimum 1.
  std::size_t queue_capacity = 16;

  /// Per-priority-class cap. 0 = no per-class cap (only the global
  /// capacity applies). A class at its cap rejects even when the global
  /// queue has room — one flood of batch work cannot starve interactive
  /// admission.
  std::size_t per_priority_limit = 0;

  /// Engine shards of the owned fleet (DESIGN.md §17). 0 = inherit
  /// Config::shards (whose default of 1 is the single-engine layout); a
  /// positive value overrides it. Clamped to the database block count by
  /// the session. Results are bit-identical at every shard count; a shard
  /// fault degrades through the normal ladder inside the owning shard.
  std::size_t shards = 0;

  /// Retries for transient device failures (allocation/transfer). 0
  /// disables retrying.
  std::size_t max_transient_retries = 2;

  /// Exponential backoff between transient retries:
  /// initial * multiplier^attempt, capped at max.
  double backoff_initial_ms = 1.0;
  double backoff_multiplier = 2.0;
  double backoff_max_ms = 64.0;

  // --- simtprof observability (DESIGN.md §16) ----------------------------

  /// Latency objective in milliseconds (0 = none). Requests the worker
  /// resolves slower than this count as SLO violations (service.slo.*
  /// burn counters) and — with flight recording on — trigger a dump even
  /// when they completed ok.
  double slo_ms = 0.0;

  /// Non-empty: per-query flight recording is on. Queries that finish
  /// degraded, errored, cancelled, deadline-exceeded, or past `slo_ms`
  /// dump their bounded event ring here as
  /// `flight_<seq>_<status>.json`; everything else is discarded
  /// (tail-based retention).
  std::string flight_dir;

  /// Per-thread flight ring capacity in events (the memory bound).
  std::size_t flight_ring_events = 4096;

  /// Non-empty: a background thread rewrites this file with
  /// status_snapshot().to_json() every `statusz_period_ms` (and once at
  /// start/drain), giving `watch cat statusz.json` live introspection.
  std::string statusz_path;
  double statusz_period_ms = 500.0;

  /// Non-empty: structured JSONL event log (util/log.hpp) of admission,
  /// dispatch, completion, degradation, flight-dump, and drain events.
  /// Falls back to the REPRO_EVENT_LOG environment variable when empty.
  std::string event_log_path;
};

/// One unit of work for the service.
struct SearchRequest {
  std::vector<std::uint8_t> query;  ///< encoded residues (owned)
  RequestPriority priority = RequestPriority::kNormal;

  /// Relative deadline in milliseconds from admission; 0 = none. Converted
  /// to an absolute MonotonicClock deadline at submit() time.
  double deadline_ms = 0.0;

  /// Optional client cancel handle (empty = not cancellable). The service
  /// links its deadline onto this token; it never mutates client state.
  CancellationToken cancel;
};

/// Terminal status of a submitted request.
enum class RequestStatus : std::uint8_t {
  kOk,                ///< completed, no degradation
  kDegraded,          ///< completed on a lower ladder rung
  kRejected,          ///< admission control refused it (queue full)
  kCancelled,         ///< client token fired before/while running
  kDeadlineExceeded,  ///< deadline expired while queued or mid-pipeline
  kFailed,            ///< non-transient error, or transient retries exhausted
};

[[nodiscard]] constexpr const char* request_status_name(RequestStatus s) {
  switch (s) {
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kDegraded: return "degraded";
    case RequestStatus::kRejected: return "rejected";
    case RequestStatus::kCancelled: return "cancelled";
    case RequestStatus::kDeadlineExceeded: return "deadline_exceeded";
    case RequestStatus::kFailed: return "failed";
  }
  return "unknown";
}

/// What a submitted request resolves to.
struct ServiceResult {
  RequestStatus status = RequestStatus::kFailed;

  /// The underlying SearchErrorCode when status != kOk/kDegraded
  /// (kRejected/kCancelled/kDeadlineExceeded mirror their own codes).
  std::optional<SearchErrorCode> error_code;
  std::string message;  ///< human-readable failure detail ("" on success)

  /// The full report on success; on failure an empty report whose `status`
  /// field is still stamped (so report.to_json() says what happened).
  SearchReport report;

  double queue_wait_ms = 0.0;  ///< admission -> dequeue (0 when rejected)
  double wall_ms = 0.0;        ///< admission -> resolution
  std::size_t transient_retries = 0;  ///< backoff retries this request used

  /// Monotone per-service completion sequence number (0 = rejected at
  /// admission; the worker never saw it). Tests use it to pin dispatch
  /// order.
  std::uint64_t service_seq = 0;
};

/// Point-in-time counters, readable from any thread.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;  ///< kOk + kDegraded
  std::uint64_t cancelled = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t failed = 0;
  std::uint64_t transient_retries = 0;
  std::size_t queue_depth = 0;  ///< queued right now (in-flight excluded)
};

/// Point-in-time introspection snapshot (SearchService::status_snapshot):
/// everything an operator needs to answer "what is the service doing right
/// now" — queue shape, the in-flight request and its pipeline stage, SLO
/// burn, latency quantiles, and the continuous profiler's summary.
struct ServiceStatus {
  double uptime_ms = 0.0;
  bool accepting = false;
  bool paused = false;
  bool busy = false;  ///< a request is in flight

  std::array<std::size_t, kNumPriorities> queue_depths{};  ///< per class
  std::size_t queue_depth = 0;                             ///< total

  ServiceStats stats;  ///< cumulative totals (submit/admit/reject/...)

  /// In-flight request (meaningful when busy): its completion sequence
  /// number, query length, and the pipeline-stage checkpoint it most
  /// recently polled ("" before the first checkpoint).
  std::uint64_t in_flight_seq = 0;
  std::size_t in_flight_query_length = 0;
  std::string in_flight_stage;

  /// SLO accounting (ServiceConfig::slo_ms; all zero when no objective).
  double slo_ms = 0.0;
  std::uint64_t slo_ok = 0;
  std::uint64_t slo_violations = 0;
  std::uint64_t flight_dumps = 0;

  /// Bucket-interpolated latency quantiles of service.request_wall_seconds.
  double wall_p50_s = 0.0;
  double wall_p95_s = 0.0;
  double wall_p99_s = 0.0;

  /// simt::prof::ContinuousProfiler::summary_json() of the owned session.
  std::string profile_summary_json;

  /// One JSON object (schema "cublastp.statusz.v1").
  [[nodiscard]] std::string to_json() const;
};

/// Translates the process-wide svccheck host-concurrency log
/// (util::svc::SvcHazardLog) into the shared hazard-report schema: lock-
/// order inversions, blocked-while-locked waits, and checkpoint gaps
/// recorded anywhere in the process, sorted by (kind, subject) so the
/// result is bit-identical across runs and thread schedules.
[[nodiscard]] simt::HazardReport svccheck_snapshot();

/// The long-running front-end. One worker thread owns the session fleet;
/// submit() is thread-safe and non-blocking. Destruction drains: queued
/// and in-flight work finishes (honouring deadlines/cancellation), then
/// the worker exits.
class SearchService {
 public:
  /// Validates `config` like SearchSession does (throws
  /// std::invalid_argument on contract violations) and starts the worker.
  /// If the config (or REPRO_TRACE) names a trace file, the service owns
  /// one TraceSession for its whole lifetime, so every request's spans
  /// land in a single timeline.
  SearchService(Config config, const bio::SequenceDatabase& db,
                ServiceConfig service_config = {});
  ~SearchService();

  SearchService(const SearchService&) = delete;
  SearchService& operator=(const SearchService&) = delete;

  /// Non-blocking admission. On rejection (queue full, class at cap, or
  /// service draining/shut down) the future is already resolved with
  /// kRejected and no work happens. Invalid queries (empty, too long)
  /// are rejected here too — kFailed with kInvalidArgument — so malformed
  /// input never occupies a queue slot.
  [[nodiscard]] std::future<ServiceResult> submit(SearchRequest request);

  /// Convenience synchronous call: submit + wait.
  [[nodiscard]] ServiceResult search(std::vector<std::uint8_t> query,
                                     double deadline_ms = 0.0,
                                     CancellationToken cancel = {});

  /// Holds the worker before its next dequeue. Admission continues —
  /// pause() + N×submit() builds a deterministic queue for tests and lets
  /// saturation be exercised without racing the drain.
  void pause();
  /// Releases a pause().
  void resume();

  /// Stops admission, waits until queued + in-flight work has resolved,
  /// and flushes metrics (Config::metrics_path / REPRO_METRICS) and the
  /// owned trace session, if any. Idempotent — the flush happens exactly
  /// once per service lifetime even under concurrent drain() calls (the
  /// trace-session teardown is not re-entrant). submit() after drain()
  /// rejects.
  void drain();

  /// Stops admission and *fails* everything still queued with kCancelled
  /// (code kShutdown); the in-flight request (if any) finishes. Use when
  /// latency of stopping matters more than finishing queued work.
  void shutdown();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const Config& config() const { return session_.config(); }
  /// Engine shards the owned fleet runs (after clamping).
  [[nodiscard]] std::size_t num_shards() const {
    return session_.num_shards();
  }

  /// Live introspection snapshot; callable from any thread at any time.
  /// The statusz thread (ServiceConfig::statusz_path) serializes exactly
  /// this to disk.
  [[nodiscard]] ServiceStatus status_snapshot() const;

  /// Writes status_snapshot().to_json() to `path` (creating parent
  /// directories); false on I/O error. The statusz thread calls this
  /// periodically; tests and tools may call it directly.
  bool write_statusz(const std::string& path) const;

  /// The owned session's continuous profiler (always collecting).
  [[nodiscard]] const simt::prof::ContinuousProfiler& profiler() const {
    return session_.profiler();
  }

  /// Point-in-time hazard aggregate for the whole service: every completed
  /// request's SearchReport::hazards (simtcheck + per-query leakcheck +
  /// checkpoint coverage), the svccheck host-concurrency log, and — only
  /// when the service is idle (nothing queued or in flight) — a session-
  /// generation leak scan, so a drained service asserting zero hazards
  /// also asserts zero leaked device allocations. Callable from any
  /// thread.
  [[nodiscard]] simt::HazardReport hazard_report() const;

 private:
  struct Pending {
    SearchRequest request;
    std::promise<ServiceResult> promise;
    std::uint64_t admitted_ns = 0;   ///< MonotonicClock at admission
    std::uint64_t deadline_ns = 0;   ///< absolute; 0 = none
  };

  void worker_loop();
  void statusz_loop();
  /// Pops the highest-priority pending request; null when queues are empty.
  [[nodiscard]] std::unique_ptr<Pending> pop_locked();
  void run_one(Pending& pending);
  /// Waits `ms` between transient retries. Under the virtual clock this
  /// spins on clock reads (deterministic); on the wall clock it sleeps.
  static void backoff_wait(double ms);

  /// The owned scatter–gather fleet (one shard by default — exactly the
  /// old single-engine session).
  ShardedSession session_;
  ServiceConfig service_config_;

  // CheckedMutex + condition_variable_any: plain mutex semantics plus
  // svccheck lock-order tracking (see util/svccheck.hpp).
  mutable util::svc::CheckedMutex mutex_{"core.service.queue"};
  std::condition_variable_any cv_;        ///< worker wakeup
  std::condition_variable_any idle_cv_;   ///< drain() wakeup
  std::array<std::deque<std::unique_ptr<Pending>>, kNumPriorities> queues_;
  std::size_t queued_ = 0;    ///< total across queues_
  bool busy_ = false;         ///< worker is running a request
  bool paused_ = false;
  bool accepting_ = true;
  bool stop_ = false;         ///< worker exit flag (set by destructor)

  ServiceStats stats_;             ///< guarded by mutex_
  std::uint64_t next_seq_ = 0;     ///< completion sequence (worker only)

  // Introspection state (guarded by mutex_ unless noted).
  std::uint64_t start_ns_ = 0;     ///< MonotonicClock at construction
  std::uint64_t in_flight_seq_ = 0;          ///< 0 = idle
  std::size_t in_flight_query_length_ = 0;
  std::uint64_t slo_ok_ = 0;
  std::uint64_t slo_violations_ = 0;
  std::uint64_t flight_dumps_ = 0;
  bool flight_recording_ = false;  ///< set once in the constructor
  bool event_log_owned_ = false;   ///< this service opened util::log

  /// Per-request hazard aggregate (merged by the worker after each
  /// completed request). Its own leaf lock: hazard_report() must not
  /// contend with admission.
  mutable util::svc::CheckedMutex hazards_mu_{"core.service.hazards"};
  simt::HazardReport hazards_;  ///< guarded by hazards_mu_

  std::once_flag drain_flush_once_;  ///< drain() flushes exactly once
  std::unique_ptr<util::TraceSession> trace_session_;
  std::thread worker_;

  // statusz dump thread (only started when ServiceConfig::statusz_path is
  // set). Its own plain mutex/cv pair: the thread must wake promptly for
  // teardown without contending with the queue lock.
  std::mutex statusz_mu_;
  std::condition_variable statusz_cv_;
  bool statusz_stop_ = false;
  std::thread statusz_thread_;
};

}  // namespace repro::core
