#include "core/prefilter.hpp"

#include <algorithm>

#include "util/fault.hpp"

namespace repro::core {

namespace {

using simt::BlockCtx;
using simt::LaneArray;
using simt::WarpExec;

/// Sentinel for "no nonempty subarray seen yet". Chunk sums are bounded by
/// 16-bit sequence lengths times single-digit scores (|sum| < 2^21), so
/// -(1 << 28) stays clear of both legitimate scores and int32 overflow in
/// the combine arithmetic.
constexpr std::int32_t kNegInf = -(1 << 28);

}  // namespace

int prefilter_threshold_for(const Config& config,
                            const bio::EvalueCalculator& evalue) {
  if (config.prefilter_threshold != 0) return config.prefilter_threshold;
  return std::min(config.params.ungapped_cutoff,
                  evalue.min_significant_score(config.params.max_evalue));
}

PrefilterResult run_prefilter(simt::Engine& engine, const Config& config,
                              const PrefilterDevice& table,
                              const BlockDevice& block, int threshold) {
  util::fault_point_throw("core.prefilter");
  simt::DeviceAllocSite site("core.prefilter");

  const simt::MemKind table_kind = config.use_readonly_cache
                                       ? simt::MemKind::kReadOnly
                                       : simt::MemKind::kGlobal;

  simt::DeviceVector<std::int32_t> scores(block.num_seqs, kNegInf);

  simt::LaunchConfig cfg;
  cfg.name = kKernelPrefilter;
  cfg.grid_blocks = config.detection_blocks;
  cfg.block_threads = config.detection_block_threads;
  cfg.regs_per_thread = 24;

  engine.launch(cfg, [&](BlockCtx& ctx) {
    ctx.par([&](WarpExec& w) {
      const auto total_warps = static_cast<std::uint32_t>(w.num_warps_total());
      const auto gw = static_cast<std::uint32_t>(w.global_warp_id());

      for (std::uint32_t seq = gw; seq < block.num_seqs; seq += total_warps) {
        // Warp-uniform loads of the sequence extent (broadcast access).
        LaneArray<std::uint32_t> uidx{};
        LaneArray<std::uint32_t> lo{};
        LaneArray<std::uint32_t> hi{};
        w.vec([&](int lane) { uidx[lane] = seq; });
        w.gather(block.offsets.data(), uidx, lo);
        w.vec([&](int lane) { uidx[lane] = seq + 1; });
        w.gather(block.offsets.data(), uidx, hi);
        const std::uint32_t seq_off = lo[0];
        const std::uint32_t seq_len = hi[0] - lo[0];
        const std::uint32_t chunk = (seq_len + 31) / 32;

        // Per-lane Kadane over the lane's contiguous chunk. min_p tracks
        // the minimum local prefix (including the empty prefix 0), max_p
        // the maximum nonempty local prefix, best the best subarray fully
        // inside the chunk.
        LaneArray<std::uint32_t> cursor{};
        LaneArray<std::uint32_t> stop{};
        LaneArray<std::int32_t> sum{};
        LaneArray<std::int32_t> min_p{};
        LaneArray<std::int32_t> max_p{};
        LaneArray<std::int32_t> best{};
        w.vec([&](int lane) {
          const auto l = static_cast<std::uint32_t>(lane);
          cursor[lane] = seq_off + std::min(l * chunk, seq_len);
          stop[lane] = seq_off + std::min((l + 1) * chunk, seq_len);
          sum[lane] = 0;
          min_p[lane] = 0;
          max_p[lane] = kNegInf;
          best[lane] = kNegInf;
        });
        w.loop_while([&](int lane) { return cursor[lane] < stop[lane]; },
                     [&] {
                       LaneArray<std::uint8_t> residue{};
                       w.gather(block.residues.data(), cursor, residue);
                       LaneArray<std::uint32_t> ridx{};
                       w.vec([&](int lane) { ridx[lane] = residue[lane]; });
                       LaneArray<std::int32_t> score{};
                       w.gather(table.best_residue.data(), ridx, score,
                                table_kind);
                       w.vec([&](int lane) {
                         sum[lane] += score[lane];
                         best[lane] =
                             std::max(best[lane], sum[lane] - min_p[lane]);
                         min_p[lane] = std::min(min_p[lane], sum[lane]);
                         max_p[lane] = std::max(max_p[lane], sum[lane]);
                         ++cursor[lane];
                       });
                     });

        // Warp combine (full uniform mask): the global prefix at a point in
        // lane l is pfx[l] + local prefix, so the best subarray crossing a
        // chunk boundary is max_l [(pfx[l] + max_p[l]) - min over earlier
        // lanes of (pfx[k] + min_p[k])]; within-chunk cases are best[l].
        LaneArray<std::int32_t> incl = sum;
        w.window_inclusive_scan(incl, 32);
        LaneArray<std::int32_t> pfx{};
        w.vec([&](int lane) { pfx[lane] = incl[lane] - sum[lane]; });
        LaneArray<std::int32_t> neg{};
        w.vec([&](int lane) { neg[lane] = -(pfx[lane] + min_p[lane]); });
        w.window_inclusive_max_scan(neg, 32);
        LaneArray<std::int32_t> run_min_prev = neg;
        w.shfl_up(run_min_prev, 1, 32);
        LaneArray<std::int32_t> cand{};
        w.vec([&](int lane) {
          // lane 0 has no earlier lanes; empty chunks have no end point.
          cand[lane] = (lane == 0 || max_p[lane] == kNegInf)
                           ? kNegInf
                           : (pfx[lane] + max_p[lane]) + run_min_prev[lane];
          cand[lane] = std::max(cand[lane], best[lane]);
        });
        w.window_reduce_max(cand, 32);

        LaneArray<std::uint32_t> sidx{};
        w.vec([&](int lane) { sidx[lane] = seq; });
        w.if_then([&](int lane) { return lane == 0; },
                  [&] { w.scatter(scores.data(), sidx, cand); });
      }
    });
  });

  engine.transfer("d2h_prefilter",
                  static_cast<std::uint64_t>(block.num_seqs) *
                      sizeof(std::int32_t));

  PrefilterResult result;
  result.num_seqs = block.num_seqs;
  for (std::uint32_t seq = 0; seq < block.num_seqs; ++seq)
    if (scores[seq] >= threshold) result.survivors.push_back(seq);
  result.num_survivors = static_cast<std::uint32_t>(result.survivors.size());
  engine.transfer("h2d_survivors",
                  static_cast<std::uint64_t>(result.num_survivors) *
                      sizeof(std::uint32_t));
  return result;
}

}  // namespace repro::core
