// SearchReport serialization: the machine-readable JSON run report
// (schema "cublastp.search_report.v4") and the human-readable --report
// tables. Everything CI and the bench scripts previously scraped from
// stdout lives here in one stable schema. v2 added the "prefilter" section
// (mode, threshold, pass rate, per-block backend choices; DESIGN.md §13)
// and the ssv_prefilter / coarse_fused rows in "gpu_ms"; v3 added the
// top-level "wall_ms" and terminal "status" fields (ok | degraded |
// cancelled | deadline_exceeded | rejected) so service-layer consumers can
// read the request's fate without parsing counters; v4 adds the per-shard
// "shards" section (scatter–gather fleet observability; DESIGN.md §17) and
// the batch report's top-level "shards" fleet size.
#include <algorithm>
#include <cstdint>
#include <string>

#include "core/cublastp.hpp"
#include "core/search_session.hpp"
#include "simt/simtcheck.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace repro::core {

namespace {

using util::json_num;
using util::json_str;

void append_kv(std::string& out, const char* key, double value,
               bool trailing_comma = true) {
  out += json_str(key);
  out += ':';
  out += json_num(value);
  if (trailing_comma) out += ',';
}

void append_kv(std::string& out, const char* key, std::uint64_t value,
               bool trailing_comma = true) {
  out += json_str(key);
  out += ':';
  out += json_num(value);
  if (trailing_comma) out += ',';
}

}  // namespace

std::string SearchReport::to_json() const {
  std::string out;
  out.reserve(4096);
  out += "{\"schema\":\"cublastp.search_report.v4\",";

  // Terminal status + host wall clock (v3).
  out += json_str("status");
  out += ':';
  out += json_str(status);
  out += ',';
  append_kv(out, "wall_ms", wall_ms);

  // Modeled GPU phase times (Fig. 14 / Fig. 19 inputs).
  out += "\"gpu_ms\":{";
  append_kv(out, "hit_detection", detection_ms);
  append_kv(out, "bin_scan", scan_ms);
  append_kv(out, "hit_assemble", assemble_ms);
  append_kv(out, "hit_sort", sort_ms);
  append_kv(out, "hit_filter", filter_ms);
  append_kv(out, "ungapped_extension", extension_ms);
  append_kv(out, "ssv_prefilter", prefilter_ms);
  append_kv(out, "coarse_fused", coarse_ms);
  append_kv(out, "h2d", h2d_ms);
  append_kv(out, "d2h", d2h_ms);
  append_kv(out, "gpu_critical", gpu_critical_ms());
  append_kv(out, "sorting_group", sorting_group_ms(), false);
  out += "},";

  // CPU-side and pipeline seconds.
  out += "\"cpu_seconds\":{";
  append_kv(out, "gapped", gapped_seconds);
  append_kv(out, "traceback", traceback_seconds);
  append_kv(out, "other", other_seconds, false);
  out += "},";
  out += "\"pipeline_seconds\":{";
  append_kv(out, "overlapped", overlapped_total_seconds);
  append_kv(out, "serial", serial_total_seconds, false);
  out += "},";

  // Phase timings as reported to callers (PhaseTimings mapping).
  out += "\"timings_seconds\":{";
  append_kv(out, "hit_detection", result.timings.hit_detection);
  append_kv(out, "ungapped_extension", result.timings.ungapped_extension);
  append_kv(out, "gapped_extension", result.timings.gapped_extension);
  append_kv(out, "traceback", result.timings.traceback);
  append_kv(out, "other", result.timings.other);
  append_kv(out, "total", result.timings.total(), false);
  out += "},";

  // Work counters.
  out += "\"counters\":{";
  append_kv(out, "words_scanned", result.counters.words_scanned);
  append_kv(out, "hits_detected", result.counters.hits_detected);
  append_kv(out, "hits_after_filter", result.counters.hits_after_filter);
  append_kv(out, "ungapped_extensions", result.counters.ungapped_extensions);
  append_kv(out, "gapped_extensions", result.counters.gapped_extensions);
  append_kv(out, "tracebacks", result.counters.tracebacks);
  append_kv(out, "filter_survival_ratio",
            result.counters.filter_survival_ratio(), false);
  out += "},";

  // Degradation ladder (DESIGN.md §9).
  out += "\"degradation\":{";
  append_kv(out, "degraded", static_cast<std::uint64_t>(degraded() ? 1 : 0));
  append_kv(out, "degraded_blocks", degraded_blocks);
  append_kv(out, "cache_off_retries", cache_off_retries);
  append_kv(out, "bin_overflow_retries", bin_overflow_retries);
  append_kv(out, "faults_encountered", faults_encountered);
  out += "\"retry_counts\":[";
  for (std::size_t i = 0; i < retry_counts.size(); ++i) {
    if (i) out += ',';
    out += json_num(static_cast<std::uint64_t>(retry_counts[i]));
  }
  out += "]},";

  // Pre-filter stage and adaptive backend routing (DESIGN.md §13).
  out += "\"prefilter\":{";
  out += json_str("mode");
  out += ':';
  out += json_str(prefilter_mode_name(prefilter_mode));
  out += ',';
  append_kv(out, "threshold", static_cast<std::uint64_t>(
                                  prefilter_threshold < 0
                                      ? 0
                                      : prefilter_threshold));
  append_kv(out, "sequences_scored", prefilter_sequences);
  append_kv(out, "survivors", prefilter_survivors);
  append_kv(out, "pass_rate", prefilter_pass_rate());
  append_kv(out, "kernel_ms", prefilter_ms);
  append_kv(out, "coarse_kernel_ms", coarse_ms);
  append_kv(out, "degraded_blocks", prefilter_degraded_blocks);
  out += "\"block_backends\":[";
  for (std::size_t i = 0; i < block_backends.size(); ++i) {
    if (i) out += ',';
    out += json_str(block_backend_name(block_backends[i]));
  }
  out += "]},";

  // Scatter–gather fleet (v4; DESIGN.md §17): one entry per engine shard
  // in shard (= global block) order. Single-engine searches carry exactly
  // one entry covering every block, so the shape is K-independent.
  out += "\"shards\":[";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ShardSummary& s = shards[i];
    if (i) out += ',';
    out += '{';
    append_kv(out, "shard", static_cast<std::uint64_t>(s.shard));
    append_kv(out, "first_block", static_cast<std::uint64_t>(s.first_block));
    append_kv(out, "num_blocks", static_cast<std::uint64_t>(s.num_blocks));
    append_kv(out, "retry_attempts", s.retry_attempts);
    append_kv(out, "degraded_blocks", s.degraded_blocks);
    append_kv(out, "cache_off_retries", s.cache_off_retries);
    append_kv(out, "bin_overflow_retries", s.bin_overflow_retries);
    append_kv(out, "prefilter_degraded_blocks", s.prefilter_degraded_blocks);
    append_kv(out, "kernel_ms", s.kernel_ms);
    out += "\"backends\":[";
    for (std::size_t b = 0; b < s.backends.size(); ++b) {
      if (b) out += ',';
      out += json_str(block_backend_name(s.backends[b]));
    }
    out += "]}";
  }
  out += "],";

  // simtcheck hazards.
  out += "\"hazards\":{";
  append_kv(out, "total", hazards.total);
  append_kv(out, "collectives_checked", hazards.collectives_checked);
  out += "\"by_kind\":{";
  bool first = true;
  for (int k = 0; k < simt::kNumHazardKinds; ++k) {
    if (hazards.by_kind[static_cast<std::size_t>(k)] == 0) continue;
    if (!first) out += ',';
    first = false;
    out += json_str(
        simt::hazard_kind_name(static_cast<simt::HazardKind>(k)));
    out += ':';
    out += json_num(hazards.by_kind[static_cast<std::size_t>(k)]);
  }
  out += "}},";

  // Per-kernel profile (every KernelStats counter the engine measured).
  out += "\"profile\":{";
  first = true;
  for (const auto& [name, k] : profile.kernels()) {
    if (!first) out += ',';
    first = false;
    out += json_str(name);
    out += ":{";
    append_kv(out, "launches_blocks", k.num_blocks);
    append_kv(out, "vec_ops", k.vec_ops);
    append_kv(out, "ld_requests", k.ld_requests);
    append_kv(out, "ld_bytes_requested", k.ld_bytes_requested);
    append_kv(out, "ld_transactions", k.ld_transactions);
    append_kv(out, "st_requests", k.st_requests);
    append_kv(out, "st_bytes_requested", k.st_bytes_requested);
    append_kv(out, "st_transactions", k.st_transactions);
    append_kv(out, "rocache_hits", k.rocache_hits);
    append_kv(out, "rocache_misses", k.rocache_misses);
    append_kv(out, "shared_ops", k.shared_ops);
    append_kv(out, "atomic_ops", k.atomic_ops);
    append_kv(out, "simtcheck_hazards", k.simtcheck_hazards);
    append_kv(out, "shared_bytes",
              static_cast<std::uint64_t>(k.shared_bytes));
    append_kv(out, "occupancy", k.occupancy);
    append_kv(out, "divergence_overhead", k.divergence_overhead());
    append_kv(out, "global_load_efficiency", k.global_load_efficiency());
    append_kv(out, "rocache_hit_ratio", k.rocache_hit_ratio());
    append_kv(out, "time_ms", k.time_ms, false);
    out += '}';
  }
  out += "},";

  // Result summary (alignments themselves stay in SearchResult; the report
  // carries the ranked top hits so CI can sanity-check without re-running).
  out += "\"alignments\":{";
  append_kv(out, "count",
            static_cast<std::uint64_t>(result.alignments.size()));
  out += "\"top\":[";
  const std::size_t top_n = std::min<std::size_t>(result.alignments.size(), 5);
  for (std::size_t i = 0; i < top_n; ++i) {
    const auto& a = result.alignments[i];
    if (i) out += ',';
    out += '{';
    append_kv(out, "seq", static_cast<std::uint64_t>(a.seq));
    append_kv(out, "score", static_cast<std::uint64_t>(a.score));
    append_kv(out, "bit_score", a.bit_score);
    append_kv(out, "evalue", a.evalue);
    append_kv(out, "length",
              static_cast<std::uint64_t>(a.alignment_length()), false);
    out += '}';
  }
  out += "]}}";
  return out;
}

std::string BatchReport::to_json() const {
  std::string out;
  out.reserve(4096 * (reports.size() + 1));
  out += "{\"schema\":\"cublastp.batch_report.v4\",";
  append_kv(out, "queries", static_cast<std::uint64_t>(reports.size()));
  append_kv(out, "shards", static_cast<std::uint64_t>(shards));
  append_kv(out, "batch_wall_seconds", batch_wall_seconds);
  append_kv(out, "queries_per_second", queries_per_second());

  out += "\"prefilter\":{";
  append_kv(out, "sequences_scored", prefilter_sequences);
  append_kv(out, "survivors", prefilter_survivors);
  append_kv(out, "pass_rate", prefilter_pass_rate(), false);
  out += "},";

  out += "\"modeled\":{";
  append_kv(out, "batch_seconds", modeled_batch_seconds);
  append_kv(out, "sequential_seconds", modeled_sequential_seconds);
  append_kv(out, "speedup", modeled_speedup(), false);
  out += "},";

  out += "\"h2d\":{";
  append_kv(out, "block_bytes_uploaded", h2d_block_bytes);
  append_kv(out, "block_uploads", h2d_block_uploads);
  append_kv(out, "db_device_bytes", db_device_bytes);
  append_kv(out, "amortized_bytes_per_query", amortized_h2d_bytes_per_query(),
            false);
  out += "},";

  out += "\"per_query_wall_seconds\":[";
  for (std::size_t i = 0; i < per_query_wall_seconds.size(); ++i) {
    if (i) out += ',';
    out += json_num(per_query_wall_seconds[i]);
  }
  out += "],";

  // Per-query terminal statuses (v3) — mirrors reports[i].status so batch
  // consumers can scan outcomes without descending into each document.
  out += "\"statuses\":[";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i) out += ',';
    out += json_str(reports[i].status);
  }
  out += "],";

  // Full per-query documents, reusing the search_report.v4 schema so every
  // existing consumer of --report-json keeps working per query.
  out += "\"reports\":[";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i) out += ',';
    out += reports[i].to_json();
  }
  out += "]}";
  return out;
}

std::string SearchReport::to_table() const {
  std::string out;

  util::Table phases({"phase", "time", "unit"});
  if (prefilter_mode != PrefilterMode::kOff) {
    phases.add_row({"ssv pre-filter (GPU)",
                    util::Table::num(prefilter_ms, 3), "ms"});
    phases.add_row({"coarse backend (GPU)", util::Table::num(coarse_ms, 3),
                    "ms"});
  }
  phases.add_row({"hit detection (GPU)", util::Table::num(detection_ms, 3),
                  "ms"});
  phases.add_row({"bin scan (GPU)", util::Table::num(scan_ms, 3), "ms"});
  phases.add_row({"hit assemble (GPU)", util::Table::num(assemble_ms, 3),
                  "ms"});
  phases.add_row({"hit sort (GPU)", util::Table::num(sort_ms, 3), "ms"});
  phases.add_row({"hit filter (GPU)", util::Table::num(filter_ms, 3), "ms"});
  phases.add_row({"ungapped extension (GPU)",
                  util::Table::num(extension_ms, 3), "ms"});
  phases.add_row({"H2D / D2H", util::Table::num(h2d_ms + d2h_ms, 3), "ms"});
  phases.add_row({"gapped extension (CPU)",
                  util::Table::num(gapped_seconds, 4), "s"});
  phases.add_row({"traceback (CPU)", util::Table::num(traceback_seconds, 4),
                  "s"});
  phases.add_row({"other (CPU)", util::Table::num(other_seconds, 4), "s"});
  phases.add_row({"total (overlapped)",
                  util::Table::num(overlapped_total_seconds, 4), "s"});
  phases.add_row({"total (serial)",
                  util::Table::num(serial_total_seconds, 4), "s"});
  out += phases.render();
  out += '\n';

  util::Table counters({"counter", "value"});
  counters.add_row({"words scanned",
                    std::to_string(result.counters.words_scanned)});
  counters.add_row({"hits detected",
                    std::to_string(result.counters.hits_detected)});
  counters.add_row({"hits after filter",
                    std::to_string(result.counters.hits_after_filter)});
  counters.add_row({"ungapped extensions",
                    std::to_string(result.counters.ungapped_extensions)});
  counters.add_row({"gapped extensions",
                    std::to_string(result.counters.gapped_extensions)});
  counters.add_row({"tracebacks",
                    std::to_string(result.counters.tracebacks)});
  counters.add_row({"alignments",
                    std::to_string(result.alignments.size())});
  counters.add_row({"filter survival",
                    util::Table::num(
                        result.counters.filter_survival_ratio() * 100.0, 1) +
                        " %"});
  out += counters.render();

  if (prefilter_mode != PrefilterMode::kOff) {
    out += '\n';
    std::size_t coarse_blocks = 0;
    std::size_t filtered_blocks = 0;
    for (const BlockBackend b : block_backends) {
      if (b == BlockBackend::kCoarse) ++coarse_blocks;
      if (b == BlockBackend::kFineFiltered) ++filtered_blocks;
    }
    util::Table pre({"pre-filter", "value"});
    pre.add_row({"mode", prefilter_mode_name(prefilter_mode)});
    pre.add_row({"threshold", std::to_string(prefilter_threshold)});
    pre.add_row({"sequences scored", std::to_string(prefilter_sequences)});
    pre.add_row({"survivors", std::to_string(prefilter_survivors)});
    pre.add_row(
        {"pass rate", util::Table::num(prefilter_pass_rate() * 100.0, 1) +
                          " %"});
    pre.add_row({"fine(filtered) blocks", std::to_string(filtered_blocks)});
    pre.add_row({"coarse blocks", std::to_string(coarse_blocks)});
    pre.add_row({"filter-degraded blocks",
                 std::to_string(prefilter_degraded_blocks)});
    out += pre.render();
  }

  if (degraded() || bin_overflow_retries != 0 || faults_encountered != 0) {
    out += '\n';
    util::Table degrade({"degradation", "value"});
    degrade.add_row({"degraded blocks", std::to_string(degraded_blocks)});
    degrade.add_row({"cache-off retries",
                     std::to_string(cache_off_retries)});
    degrade.add_row({"bin overflow retries",
                     std::to_string(bin_overflow_retries)});
    degrade.add_row({"faults absorbed",
                     std::to_string(faults_encountered)});
    out += degrade.render();
  }

  out += '\n';
  util::Table prof({"kernel", "time(ms)", "occupancy", "divergence",
                    "gld_eff", "rocache"});
  for (const auto& [name, k] : profile.kernels()) {
    prof.add_row({name, util::Table::num(k.time_ms, 3),
                  util::Table::num(k.occupancy, 2),
                  util::Table::num(k.divergence_overhead(), 2),
                  util::Table::num(k.global_load_efficiency(), 2),
                  util::Table::num(k.rocache_hit_ratio(), 2)});
  }
  out += prof.render();
  return out;
}

}  // namespace repro::core
