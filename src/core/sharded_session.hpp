// ShardedSession: scatter–gather search over a fleet of EngineShards
// (DESIGN.md §17) — the modeled multi-GPU scale-out of SearchSession.
//
// The database's block split is partitioned contiguously across K shards
// (Config::shards), each owning its own simt::Engine and the device
// residency of its slice. A query's GPU half (upload, pre-filter,
// degradation ladder) is scattered to every shard on a fleet worker
// thread; the per-shard results are gathered back in shard order — which
// is global block order — and the CPU half (gapped extension + traceback)
// then runs serially on the gathering thread, because the host CPU is one
// shared resource however many modeled GPUs the fleet has (and because
// its host-measured per-task costs feed the pipeline model, which K-way
// self-contention would distort). The merged hit lists, alignments,
// counters, and per-block vectors are bit-identical to a single-engine
// SearchSession at every K:
//
//   * Cutoffs, e-values, and the pre-filter threshold derive from one
//     bio::EvalueCalculator built over the AGGREGATE search space
//     (bio::SearchSpace: total residues + total sequences of the whole
//     database), so every shard scores and filters identically.
//   * Sequence indices stay global inside each shard's blocks, so
//     extensions and alignments carry fleet-wide identities and the
//     gather is pure concatenation.
//   * Per-shard degradation (a failed pre-filter table, a faulted block
//     falling to the CPU rung) never poisons siblings: the ladder absorbs
//     the fault inside the owning shard and the merge just records it.
//
//   core::ShardedSession fleet(config, db);   // config.shards = K
//   auto report = fleet.search(query);        // == SearchSession's report
//   auto batch  = fleet.search_batch(queries);
//   auto all    = fleet.search_all_vs_all();  // every DB sequence as query
//
// K = 1 degenerates to today's layout (one shard owning every block).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bio/database.hpp"
#include "core/cancellation.hpp"
#include "core/config.hpp"
#include "core/cublastp.hpp"
#include "core/search_session.hpp"
#include "core/shard.hpp"
#include "simt/simtprof.hpp"
#include "util/svccheck.hpp"
#include "util/thread_pool.hpp"

namespace repro::core {

class ShardedSession {
 public:
  /// Validates and normalizes the config, partitions the database's block
  /// split contiguously across `config.shards` fleet units (clamped to
  /// [1, db_blocks]; shard s owns blocks [s*B/K, (s+1)*B/K)), and builds
  /// one EngineShard per unit. Nothing is uploaded yet — each shard's
  /// blocks go device-resident inside the first search that touches them.
  ShardedSession(Config config, const bio::SequenceDatabase& db);

  ShardedSession(const ShardedSession&) = delete;
  ShardedSession& operator=(const ShardedSession&) = delete;

  /// One query, scattered to every shard and gathered in shard (= global
  /// block) order. The report is bit-identical to SearchSession::search on
  /// the same config (modulo the per-shard h2d_query/h2d_prefilter uploads
  /// a real fleet pays K times, and address-hashed engine-internal stats),
  /// with one ShardSummary per shard in its v4 `shards` section.
  ///
  /// `cancel` propagates into every shard: the root flag is installed on
  /// each shard engine for launch-level cancellation, not-yet-started
  /// shards are skipped once it fires, and every started shard polls the
  /// block-granularity checkpoints.
  [[nodiscard]] SearchReport search(std::span<const std::uint8_t> query,
                                    const CancellationToken& cancel = {});

  /// Many queries in input order, each scattered across the fleet.
  /// Per-query reports are bit-identical to sequential search() calls;
  /// BatchReport::modeled_batch_seconds is the modeled fleet makespan (the
  /// slowest shard's cross-query pipeline walk).
  [[nodiscard]] BatchReport search_batch(
      std::span<const std::span<const std::uint8_t>> queries);

  /// All-vs-all batch mode: every database sequence (the first `limit`
  /// when nonzero) is searched as a query against the whole resident
  /// database. Rides on search_batch — same overlap, same reports.
  [[nodiscard]] BatchReport search_all_vs_all(std::size_t limit = 0);

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const bio::SequenceDatabase& db() const { return *db_; }
  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] const EngineShard& shard(std::size_t s) const {
    return *shards_[s];
  }

  /// Fleet-total h2d_block bytes resident so far.
  [[nodiscard]] std::uint64_t resident_bytes() const;
  /// Fleet-total block uploads so far.
  [[nodiscard]] std::uint64_t block_uploads() const;
  /// Fleet-total full device image size (equals the single-engine value:
  /// the partition covers every block exactly once).
  [[nodiscard]] std::uint64_t db_device_bytes() const;

  /// Fleet-lifetime continuous profiler (per-kernel deltas of every
  /// finished query, summed over shards).
  [[nodiscard]] const simt::prof::ContinuousProfiler& profiler() const {
    return profiler_;
  }

  /// Writes the profiler's cumulative JSON to Config::profile_path (or
  /// REPRO_PROFILE); no-op when neither is set.
  void export_profile() const;

  /// Leakcheck over the fleet session (same contract as
  /// SearchSession::leak_check; the generation counter is process-global,
  /// so one scan covers every shard's allocations).
  std::uint64_t leak_check(simt::HazardReport& sink) const;

 private:
  /// Scatter + gather of one query into `run` (both halves; the caller
  /// runs detail::finish_search_report afterwards).
  void run_query(std::span<const std::uint8_t> query, detail::QueryRun& run,
                 std::size_t query_index);

  Config config_;
  const bio::SequenceDatabase* db_;
  std::vector<std::unique_ptr<EngineShard>> shards_;
  std::unique_ptr<util::ThreadPool> pool_;  ///< K fleet workers ("shard")
  /// Guards the gather slots while shard workers publish their results;
  /// named in the svccheck lock-order graph so an inversion against the
  /// service queue lock (core.service.queue) is caught (DESIGN.md §15).
  mutable util::svc::CheckedMutex gather_mu_{"core.sharded.gather"};
  simt::prof::ContinuousProfiler profiler_;
  std::uint64_t session_generation_ = 0;
};

}  // namespace repro::core
