// SSV-style pre-filter (DESIGN.md §13): one cheap diagonal-free pass that
// scores every database sequence against the query's per-residue best-score
// table and discards sequences whose maximum-subarray score cannot reach
// the ungapped cutoff. The bound is exact — every ungapped extension is a
// contiguous subject-range sum of PSSM scores, each bounded by the table
// entry for its residue — so at the calibrated threshold the filter is
// lossless and filtered search is bit-identical to unfiltered search.
#pragma once

#include <cstdint>

#include "bio/karlin.hpp"
#include "core/config.hpp"
#include "core/device_data.hpp"
#include "simt/engine.hpp"

namespace repro::core {

/// Profile-registry name of the filter kernel (report row "ssv_prefilter").
inline constexpr const char* kKernelPrefilter = "ssv_prefilter";

/// The lossless filter threshold: a sequence can only produce a reportable
/// alignment if some ungapped extension reaches the ungapped cutoff, and
/// the E-value gate makes scores below min_significant_score unreportable
/// anyway, so min(cutoff, significance) keeps every sequence that could
/// matter. A nonzero Config::prefilter_threshold overrides the derivation.
[[nodiscard]] int prefilter_threshold_for(const Config& config,
                                          const bio::EvalueCalculator& evalue);

/// Survivors of one block's filter pass.
struct PrefilterResult {
  /// Block-local sequence indices with score >= threshold, ascending.
  simt::DeviceVector<std::uint32_t> survivors;
  std::uint32_t num_survivors = 0;
  std::uint32_t num_seqs = 0;

  [[nodiscard]] double pass_rate() const {
    return num_seqs == 0
               ? 0.0
               : static_cast<double>(num_survivors) /
                     static_cast<double>(num_seqs);
  }
};

/// Runs the filter kernel over one resident block: warp per sequence, each
/// lane Kadane-scans a contiguous chunk, then a warp combine merges the
/// chunks into the exact maximum-subarray score. Models the score download
/// ("d2h_prefilter") and the compacted survivor upload ("h2d_survivors").
/// Throws on the "core.prefilter" fault point (degradation-ladder hook).
[[nodiscard]] PrefilterResult run_prefilter(simt::Engine& engine,
                                            const Config& config,
                                            const PrefilterDevice& table,
                                            const BlockDevice& block,
                                            int threshold);

}  // namespace repro::core
