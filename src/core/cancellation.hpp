// Cooperative cancellation and deadlines for the search pipeline
// (DESIGN.md §14).
//
// A CancellationSource owns a stop flag (and optionally a deadline on the
// util::MonotonicClock timeline); CancellationTokens are cheap shared views
// of that state. The pipeline polls tokens at stage boundaries — between
// degradation-ladder rungs, between database blocks, between the CPU-stage
// blocks, and before finalization — and aborts by throwing SearchError with
// kCancelled or kDeadlineExceeded. Cancellation is *cooperative*: a request
// stops at the next checkpoint, never mid-kernel, so device buffers unwind
// through their normal RAII owners and nothing leaks.
//
// Determinism contract: a default-constructed (empty) token makes every
// check a null test, and a token without a deadline never reads the clock —
// so an uncancelled, un-deadlined request performs exactly the same clock
// reads and produces bit-identical results to a run without any token.
// Deadline checks read util::MonotonicClock, the single clock seam, which
// keeps expiry decisions deterministic under VirtualClockScope (virtual
// time advances only with clock reads, in program order).
//
// Tokens can be *linked* (with_deadline): the derived token stops when its
// own deadline passes or when any ancestor is cancelled. The service layer
// uses this to combine a client's cancel handle with the per-request
// deadline without mutating client-visible state.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "core/errors.hpp"
#include "util/svccheck.hpp"
#include "util/timer.hpp"

namespace repro::core {

/// Live pipeline-stage beacon for service introspection (DESIGN.md §16):
/// every cancellation checkpoint publishes its name here as it is polled,
/// so SearchService::status_snapshot can say *where* the in-flight query
/// currently is without any per-stage plumbing. The stored pointer must be
/// a string literal (every checkpoint site passes one), which is what makes
/// a raw const char* store race-free and allocation-free — one relaxed
/// store per checkpoint, nothing on the lane-level hot path. Process-wide
/// by design: one worker thread runs queries at a time.
namespace stage_beacon {
inline std::atomic<const char*>& slot() {
  static std::atomic<const char*> current{nullptr};
  return current;
}
}  // namespace stage_beacon

inline void note_pipeline_stage(const char* checkpoint) {
  stage_beacon::slot().store(checkpoint, std::memory_order_relaxed);
}

/// The most recently polled checkpoint name (nullptr when no query has
/// reached a checkpoint since the last note_pipeline_stage(nullptr)).
[[nodiscard]] inline const char* current_pipeline_stage() {
  return stage_beacon::slot().load(std::memory_order_relaxed);
}

/// Why a token says to stop (kNone = keep going).
enum class StopReason : std::uint8_t {
  kNone,
  kCancelled,
  kDeadlineExceeded,
};

namespace cancel_internal {

/// Shared stop state. `cancelled` uses release/acquire ordering so a
/// checkpoint that observes the flag also observes every write the
/// cancelling thread made before calling cancel(). `deadline_ns` and
/// `parent` are immutable after construction (set before the state is
/// shared), so plain reads are race-free.
struct State {
  std::atomic<bool> cancelled{false};
  std::uint64_t deadline_ns = 0;  ///< absolute MonotonicClock ns; 0 = none
  std::shared_ptr<const State> parent;  ///< linked ancestor (may be null)
};

}  // namespace cancel_internal

/// A cheap, copyable view of a cancellation state. Empty tokens (the
/// default) never stop anything and make every check a null test.
class CancellationToken {
 public:
  CancellationToken() = default;

  /// True when this token can ever request a stop (non-empty).
  [[nodiscard]] bool stop_possible() const { return state_ != nullptr; }

  /// True when cancel() was called on this token's source or any linked
  /// ancestor's. Never reads the clock.
  [[nodiscard]] bool cancel_requested() const {
    for (const cancel_internal::State* s = state_.get(); s != nullptr;
         s = s->parent.get())
      if (s->cancelled.load(std::memory_order_acquire)) return true;
    return false;
  }

  /// Why the bearer should stop, kNone to keep going. Cancellation wins
  /// over an expired deadline (the explicit signal is the stronger one).
  /// Reads the clock only when some state in the chain carries a deadline.
  [[nodiscard]] StopReason stop_reason() const {
    if (state_ == nullptr) return StopReason::kNone;
    if (cancel_requested()) return StopReason::kCancelled;
    const std::uint64_t deadline = deadline_ns();
    if (deadline != 0 && util::MonotonicClock::now_ns() >= deadline)
      return StopReason::kDeadlineExceeded;
    return StopReason::kNone;
  }

  /// The pipeline checkpoint: throws SearchError{kCancelled} or
  /// SearchError{kDeadlineExceeded} naming `checkpoint` when the bearer
  /// should stop. No-op for empty tokens. Every call — empty token or not —
  /// registers the checkpoint with svccheck's coverage scope first (one
  /// relaxed load when the analyzer is off), so checkpoint-gap analysis
  /// sees exactly the poll sites the pipeline actually reaches.
  void throw_if_stopped(const char* checkpoint) const {
    util::svc::note_checkpoint(checkpoint);
    note_pipeline_stage(checkpoint);
    if (state_ == nullptr) [[likely]]
      return;
    switch (stop_reason()) {
      case StopReason::kNone: return;
      case StopReason::kCancelled:
        throw SearchError(SearchErrorCode::kCancelled,
                          std::string("request cancelled at checkpoint '") +
                              checkpoint + "'");
      case StopReason::kDeadlineExceeded:
        throw SearchError(SearchErrorCode::kDeadlineExceeded,
                          std::string("request deadline expired at "
                                      "checkpoint '") +
                              checkpoint + "'");
    }
  }

  /// The earliest deadline in the link chain (0 = none).
  [[nodiscard]] std::uint64_t deadline_ns() const {
    std::uint64_t deadline = 0;
    for (const cancel_internal::State* s = state_.get(); s != nullptr;
         s = s->parent.get())
      if (s->deadline_ns != 0 && (deadline == 0 || s->deadline_ns < deadline))
        deadline = s->deadline_ns;
    return deadline;
  }

  /// The root cancel flag, for sub-checkpoint propagation into
  /// util::ThreadPool::run_shards (simt layer takes a raw atomic, not a
  /// core type). Null for empty tokens. Only the root flag is exposed: in
  /// a linked chain that is the client-held source, the one that can
  /// actually fire mid-flight.
  [[nodiscard]] const std::atomic<bool>* root_flag() const {
    const cancel_internal::State* s = state_.get();
    if (s == nullptr) return nullptr;
    while (s->parent != nullptr) s = s->parent.get();
    return &s->cancelled;
  }

  /// A token that additionally stops once `deadline_ns` (absolute
  /// MonotonicClock ns) passes. Links to this token: ancestor cancellation
  /// still stops the derived token; this token's own state is untouched.
  [[nodiscard]] CancellationToken with_deadline(std::uint64_t deadline_ns)
      const {
    auto state = std::make_shared<cancel_internal::State>();
    state->deadline_ns = deadline_ns;
    state->parent = state_;
    return CancellationToken(std::move(state));
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(
      std::shared_ptr<const cancel_internal::State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const cancel_internal::State> state_;
};

/// Owner side of a cancellation: hand out token() views, call cancel() to
/// stop every bearer at its next checkpoint. Thread-safe; cancel() is
/// idempotent.
class CancellationSource {
 public:
  CancellationSource()
      : state_(std::make_shared<cancel_internal::State>()) {}

  [[nodiscard]] CancellationToken token() const {
    return CancellationToken(state_);
  }

  /// Release store: a checkpoint that observes the flag also observes
  /// everything the cancelling thread wrote before this call.
  void cancel() { state_->cancelled.store(true, std::memory_order_release); }

  [[nodiscard]] bool cancel_requested() const {
    return state_->cancelled.load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<cancel_internal::State> state_;
};

}  // namespace repro::core
