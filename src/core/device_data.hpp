// Device-resident images of the query structures and database blocks, in
// 128-byte-aligned buffers (the cudaMalloc stand-in), with byte counts for
// the PCIe transfer model.
#pragma once

#include <cstdint>
#include <span>

#include "bio/database.hpp"
#include "bio/pssm.hpp"
#include "blast/wordlookup.hpp"
#include "simt/device_buffer.hpp"

namespace repro::core {

/// Query-derived structures uploaded once per search (paper "Other" phase):
/// DFA word table (offsets + positions + presence bitmap), PSSM, BLOSUM62,
/// and the query residues.
struct QueryDevice {
  simt::DeviceVector<std::uint32_t> word_offsets;
  simt::DeviceVector<std::uint32_t> word_positions;
  simt::DeviceVector<std::uint32_t> presence_bitmap;  ///< 1 bit per word
  simt::DeviceVector<std::int16_t> pssm;      ///< 32 scores per column
  simt::DeviceVector<std::int16_t> blosum;    ///< padded 32x32
  simt::DeviceVector<std::uint8_t> query;
  std::uint32_t query_length = 0;

  QueryDevice(std::span<const std::uint8_t> query_residues,
              const blast::WordLookup& lookup, const bio::Pssm& host_pssm);

  [[nodiscard]] std::uint64_t h2d_bytes() const;

  /// Bytes of the shared-memory-resident "DFA state" structure (the
  /// presence bitmap) — the fixed small part of the paper's hierarchical
  /// buffering (§3.5, Fig. 10).
  [[nodiscard]] std::size_t presence_bytes() const {
    return presence_bitmap.size() * sizeof(std::uint32_t);
  }
};

/// Per-residue best-score table for the SSV-style pre-filter (DESIGN.md
/// §13): entry r is max over query positions of pssm(pos, r), so a maximum
/// subarray over the table bounds every ungapped extension score from
/// above. Uploaded once per query ("h2d_prefilter") only when the filter
/// is enabled, so disabled searches transfer exactly what they used to.
struct PrefilterDevice {
  simt::DeviceVector<std::int32_t> best_residue;  ///< kPaddedMatrixDim rows

  explicit PrefilterDevice(const bio::Pssm& host_pssm);

  [[nodiscard]] std::uint64_t h2d_bytes() const {
    return best_residue.size() * sizeof(std::int32_t);
  }
};

/// One database block staged to the device (paper Fig. 12 pipeline).
struct BlockDevice {
  simt::DeviceVector<std::uint8_t> residues;
  simt::DeviceVector<std::uint32_t> offsets;  ///< num_seqs + 1, block-local
  std::uint32_t num_seqs = 0;
  std::uint32_t first_seq = 0;  ///< global index of the block's first seq
  std::uint32_t max_seq_len = 0;

  BlockDevice(const bio::SequenceDatabase& db, std::size_t begin,
              std::size_t end);

  [[nodiscard]] std::uint64_t h2d_bytes() const {
    return residues.size() * sizeof(std::uint8_t) +
           offsets.size() * sizeof(std::uint32_t);
  }
};

}  // namespace repro::core
