#include "core/query_context.hpp"

#include "bio/blosum.hpp"
#include "core/errors.hpp"

namespace repro::core {

void check_search_limits(std::span<const std::uint8_t> query,
                         const bio::SequenceDatabase& db) {
  if (query.size() >= 32768)
    throw SearchError(SearchErrorCode::kInvalidArgument,
                      "query longer than the 16-bit diagonal field allows");
  if (db.max_length() >= 65536)
    throw SearchError(
        SearchErrorCode::kInvalidArgument,
        "subject longer than the 16-bit position field allows "
        "(paper Fig. 7 layout)");
}

QueryContext::QueryContext(std::span<const std::uint8_t> query_residues,
                           const bio::SequenceDatabase& db,
                           const Config& config,
                           std::optional<bio::SearchSpace> space)
    : query(query_residues),
      lookup(query_residues, bio::Blosum62::instance(), config.params),
      pssm(query_residues, bio::Blosum62::instance()),
      evalue(bio::blosum62_gapped_11_1(), query_residues.size(),
             space.has_value() ? space->db_residues : db.total_residues(),
             space.has_value() ? space->db_sequences : db.size()),
      device(query_residues, lookup, pssm) {}

}  // namespace repro::core
