// EngineShard: one modeled GPU's worth of the search fleet (DESIGN.md §17).
//
// A shard owns exactly the per-device state the single-engine SearchSession
// used to hold inline — a simt::Engine, the device residency of its
// contiguous database-block slice, and the per-query pre-filter device
// table — and runs the GPU half of a query over its blocks: the h2d_query
// upload, the per-query filter table, and every owned block through the
// degradation ladder. It holds no query-global state: cutoffs and
// thresholds come from the QueryContext the caller built over the
// *aggregate* search space (bio::SearchSpace), which is what makes K
// shards' merged results bit-identical to one engine's.
//
//   SearchSession  = one EngineShard covering every block (the K=1 case)
//   ShardedSession = K EngineShards + scatter–gather (sharded_session.hpp)
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "bio/database.hpp"
#include "core/cancellation.hpp"
#include "core/config.hpp"
#include "core/cublastp.hpp"
#include "core/pipeline.hpp"
#include "simt/engine.hpp"

namespace repro::core {

/// Everything one shard's GPU half contributes to a query: per-block
/// outputs indexed by *local* block (0 = the shard's first block; global
/// index = first_block() + local), plus shard-total counters and the
/// shard-engine profile/hazard deltas. Concatenating these in shard order
/// reproduces the single-engine per-block sequence exactly.
struct ShardGpuResult {
  std::vector<std::vector<blast::UngappedExtension>> block_extensions;
  std::vector<std::uint32_t> retry_counts;   ///< failed attempts per block
  std::vector<BlockBackend> block_backends;  ///< who served each block
  std::vector<double> block_fallback_s;
  std::vector<double> block_gpu_ms;

  std::uint64_t bin_overflow_retries = 0;
  std::uint64_t cache_off_retries = 0;
  std::uint64_t degraded_blocks = 0;
  std::uint64_t prefilter_sequences = 0;
  std::uint64_t prefilter_survivors = 0;
  std::uint64_t prefilter_degraded_blocks = 0;

  std::uint64_t hits_detected = 0;
  std::uint64_t hits_after_filter = 0;
  std::uint64_t ungapped_extensions = 0;
  std::uint64_t words_scanned = 0;

  simt::ProfileRegistry profile_delta;  ///< this query's launches, this shard
  simt::HazardReport hazards;           ///< simtcheck findings, this shard
};

/// The v4 report's per-shard section for one finished GPU half.
[[nodiscard]] ShardSummary summarize_shard(std::size_t shard_index,
                                           std::size_t first_block,
                                           const ShardGpuResult& gpu);

class EngineShard {
 public:
  /// `block_ranges` are [first_seq, end_seq) pairs from the database's
  /// block split — the contiguous slice this shard owns, starting at
  /// global block index `first_block`. Sequence indices stay global, so
  /// extensions and alignments carry fleet-wide identities. The referenced
  /// config and database must outlive the shard.
  EngineShard(const Config& config, const bio::SequenceDatabase& db,
              std::size_t shard_index, std::size_t first_block,
              std::vector<std::pair<std::size_t, std::size_t>> block_ranges);

  EngineShard(const EngineShard&) = delete;
  EngineShard& operator=(const EngineShard&) = delete;

  /// The GPU half of one query over this shard's blocks: query upload,
  /// per-query pre-filter table (failure degrades the shard to the
  /// unfiltered path — never drops results), then every owned block
  /// through the degradation ladder with the per-shard bin-capacity
  /// adaptation. Polls `cancel` at block boundaries and installs its root
  /// flag on the engine for launch-level cancellation. Thread-safe with
  /// respect to *other* shards (each owns its engine and device blocks);
  /// one query at a time per shard.
  [[nodiscard]] ShardGpuResult run_gpu_blocks(const QueryContext& ctx,
                                              const CancellationToken& cancel);

  [[nodiscard]] std::size_t index() const { return index_; }
  [[nodiscard]] std::size_t first_block() const { return first_block_; }
  [[nodiscard]] std::size_t num_blocks() const {
    return residency_.num_blocks();
  }
  [[nodiscard]] const std::pair<std::size_t, std::size_t>& block_range(
      std::size_t local_bi) const {
    return residency_.range(local_bi);
  }

  [[nodiscard]] simt::Engine& engine() { return engine_; }
  [[nodiscard]] const simt::Engine& engine() const { return engine_; }

  /// h2d_block bytes this shard has uploaded so far.
  [[nodiscard]] std::uint64_t resident_bytes() const {
    return residency_.uploaded_bytes();
  }
  [[nodiscard]] std::uint64_t block_uploads() const {
    return residency_.uploads();
  }
  /// Size of this shard's full device image (residues + offsets), whether
  /// or not it is resident yet.
  [[nodiscard]] std::uint64_t db_device_bytes() const;

 private:
  const Config* config_;
  const bio::SequenceDatabase* db_;
  std::size_t index_;
  std::size_t first_block_;
  simt::Engine engine_;
  BlockResidency residency_;
};

}  // namespace repro::core
