// A long-lived search session: the engine and the device-resident database
// survive across queries (DESIGN.md §12).
//
// CuBlastp::search pays the full setup cost on every call — a fresh
// simt::Engine and a full database upload over the modeled PCIe link. A
// SearchSession is constructed once from a Config and a database, owns the
// engine and the BlockResidency (each block uploaded exactly once, lazily,
// inside the first search that touches it), and answers any number of
// queries against them:
//
//   core::SearchSession session(config, db);
//   auto r1 = session.search(query1);            // uploads the database
//   auto r2 = session.search(query2);            // reuses the device image
//   auto batch = session.search_batch(queries);  // cross-query overlap
//
// search_batch additionally overlaps query q+1's GPU phases with query q's
// CPU gapped/traceback stage (the paper's Fig. 12 overlap generalized
// across queries): the engine-free CPU stage of each query drains on a
// worker thread while the main thread drives the next query's kernels.
// Results are bit-identical to sequential search() calls — same alignments,
// same counters, same per-kernel work — whatever the worker count.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bio/database.hpp"
#include "core/cancellation.hpp"
#include "core/config.hpp"
#include "core/cublastp.hpp"
#include "core/pipeline.hpp"
#include "core/shard.hpp"
#include "simt/engine.hpp"
#include "simt/simtprof.hpp"

namespace repro::core {

namespace detail {
struct QueryRun;  // per-query in-flight state (session_detail.hpp)
}  // namespace detail

/// Aggregate result of SearchSession::search_batch: the per-query reports
/// plus what the batch amortized (database residency) and overlapped
/// (modeled cross-query pipeline makespan vs N independent searches).
struct BatchReport {
  std::vector<SearchReport> reports;  ///< one per query, in input order

  /// Wall seconds from each query's GPU-phase start to the end of its CPU
  /// stage (overlap makes these overlap each other).
  std::vector<double> per_query_wall_seconds;
  double batch_wall_seconds = 0.0;  ///< whole-batch wall clock

  // Modeled pipeline (Fig. 12 generalized across queries; see
  // walk_batch_pipeline): the batch makespan with cross-query overlap, and
  // what N independent one-shot sessions would model (each paying the full
  // database upload, no overlap between queries).
  double modeled_batch_seconds = 0.0;
  double modeled_sequential_seconds = 0.0;

  // Database residency amortization. `h2d_block_bytes` counts what this
  // batch actually uploaded — at most one full database image per session,
  // however many queries ran.
  std::uint64_t h2d_block_bytes = 0;    ///< bytes uploaded during the batch
  std::uint64_t h2d_block_uploads = 0;  ///< block uploads during the batch
  std::uint64_t db_device_bytes = 0;    ///< full device image (what each
                                        ///< sequential search would upload)

  // Pre-filter aggregates summed over the per-query reports (DESIGN.md
  // §13). Zero when Config::prefilter is off.
  std::uint64_t prefilter_sequences = 0;
  std::uint64_t prefilter_survivors = 0;

  [[nodiscard]] double prefilter_pass_rate() const {
    return prefilter_sequences == 0
               ? 0.0
               : static_cast<double>(prefilter_survivors) /
                     static_cast<double>(prefilter_sequences);
  }

  [[nodiscard]] double queries_per_second() const {
    return batch_wall_seconds > 0.0
               ? static_cast<double>(reports.size()) / batch_wall_seconds
               : 0.0;
  }
  [[nodiscard]] double amortized_h2d_bytes_per_query() const {
    return reports.empty() ? 0.0
                           : static_cast<double>(h2d_block_bytes) /
                                 static_cast<double>(reports.size());
  }
  /// Modeled speedup of the batched pipeline over sequential searches.
  [[nodiscard]] double modeled_speedup() const {
    return modeled_batch_seconds > 0.0
               ? modeled_sequential_seconds / modeled_batch_seconds
               : 0.0;
  }

  /// Engine shards the fleet that produced this batch ran (1 for a
  /// SearchSession; ShardedSession stamps its fleet size). Schema v4.
  std::size_t shards = 1;

  /// One machine-readable document for the whole batch (schema
  /// "cublastp.batch_report.v4"): batch aggregates, the per-query terminal
  /// "statuses" array, plus the full per-query search_report.v4 objects.
  /// See core/report.cpp.
  [[nodiscard]] std::string to_json() const;
};

class SearchSession {
 public:
  /// Validates and normalizes the config (same contract as CuBlastp's
  /// constructor) and fixes the database block split. Nothing is uploaded
  /// yet: each block's H2D transfer happens inside the first search that
  /// touches it, so the cost lands in that search's trace and profile.
  SearchSession(Config config, const bio::SequenceDatabase& db);

  SearchSession(const SearchSession&) = delete;
  SearchSession& operator=(const SearchSession&) = delete;

  /// One query against the resident database. Behaves exactly like
  /// CuBlastp::search except that engine and database residency persist:
  /// the first call uploads the database, later calls reuse it (their
  /// reports carry no h2d_block time and a warm read-only cache).
  ///
  /// `cancel` (empty by default) is polled cooperatively at every pipeline
  /// stage boundary — before each block's degradation ladder, between the
  /// ladder's rungs, before each block's CPU stage, and before
  /// finalization — and its root flag is installed on the engine so an
  /// in-flight launch skips its remaining shards. A stopped query throws
  /// SearchError{kCancelled} or {kDeadlineExceeded}; device buffers unwind
  /// through their RAII owners (nothing leaks), and the resident database
  /// image stays valid for the next query. An empty token (or one that
  /// never fires) leaves results bit-identical to the token-less call.
  [[nodiscard]] SearchReport search(std::span<const std::uint8_t> query,
                                    const CancellationToken& cancel = {});

  /// Many queries with cross-query overlap: query q's engine-free CPU
  /// stage (gapped extension + traceback + finalize) runs on a worker
  /// thread while the main thread drives query q+1's GPU phases. Per-query
  /// results are bit-identical to sequential search() calls; the injected
  /// fault schedule (Config::fault_schedule), if any, is installed once
  /// around the whole batch.
  [[nodiscard]] BatchReport search_batch(
      std::span<const std::span<const std::uint8_t>> queries);

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const bio::SequenceDatabase& db() const { return *db_; }
  [[nodiscard]] const simt::Engine& engine() const { return shard_.engine(); }

  /// h2d_block bytes uploaded so far; after any fault-free search this
  /// equals db_device_bytes() and never grows again.
  [[nodiscard]] std::uint64_t resident_bytes() const {
    return shard_.resident_bytes();
  }
  /// Block uploads so far (fault-free: exactly one per block, ever).
  [[nodiscard]] std::uint64_t block_uploads() const {
    return shard_.block_uploads();
  }
  /// Size of the full database device image — what every one-shot search
  /// pays on the modeled PCIe link before its first kernel.
  [[nodiscard]] std::uint64_t db_device_bytes() const {
    return shard_.db_device_bytes();
  }

  /// The session's continuous profiler: every finished query's per-kernel
  /// ProfileRegistry delta is folded in (always on — see DESIGN.md §16).
  /// The service layer reads it for status snapshots; tests and the CLI
  /// read it for the Fig. 19-style table.
  [[nodiscard]] const simt::prof::ContinuousProfiler& profiler() const {
    return profiler_;
  }

  /// Writes the profiler's cumulative "cublastp.profile.v1" JSON to
  /// Config::profile_path (or REPRO_PROFILE); no-op when neither is set.
  /// An unrecognized extension throws SearchError{kInvalidArgument}.
  void export_profile() const;

  /// Leakcheck over the whole session: appends one kDeviceLeak record per
  /// allocation site for every live, non-resident device allocation made
  /// since this session was constructed, and returns the leaked byte
  /// count. The resident database image (DeviceResidentScope-tagged) is
  /// exempt — outliving queries is its job. The service layer calls this
  /// when idle; tests call it after a drain to assert zero.
  std::uint64_t leak_check(simt::HazardReport& sink) const;

 private:
  /// GPU half of one query: preparation, then the shard's h2d_query
  /// upload and every block through the degradation ladder. Touches the
  /// engine; must run on the session's main thread, one query at a time.
  /// Polls the run's cancellation token at block boundaries.
  void run_gpu_phases(std::span<const std::uint8_t> query,
                      detail::QueryRun& run, std::size_t query_index);
  /// CPU half: gapped extension + traceback per block, then finalize.
  /// Engine-free and rerun-safe (outputs reset at entry), so the batch
  /// path can run it on a worker thread and retry inline on failure.
  void run_cpu_phases(detail::QueryRun& run);

  Config config_;
  const bio::SequenceDatabase* db_;
  /// The session *is* the K=1 fleet: one shard owning every block
  /// (DESIGN.md §17). Engine and residency live inside it.
  EngineShard shard_;
  simt::prof::ContinuousProfiler profiler_;
  /// Device generation at construction: the floor for leak_check().
  std::uint64_t session_generation_ = 0;
};

}  // namespace repro::core
