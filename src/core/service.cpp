// SearchService implementation (DESIGN.md §14): bounded priority queue +
// one session-owning worker thread. All queue state lives behind mutex_;
// the worker holds the lock only while popping/bookkeeping, never while a
// search runs, so submitters are never blocked by in-flight work.
#include "core/service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <new>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "core/query_context.hpp"
#include "simt/engine.hpp"
#include "util/fault.hpp"
#include "util/flight_recorder.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace repro::core {

namespace {

std::string config_path_or_env(const std::string& configured,
                               const char* env) {
  if (!configured.empty()) return configured;
  const char* value = std::getenv(env);
  return value != nullptr ? std::string(value) : std::string();
}

/// Maps a terminal RequestStatus onto the metrics/trace vocabulary and the
/// SearchReport::status field (shared spelling with report.cpp's v3 docs).
const char* report_status_label(RequestStatus s) {
  return request_status_name(s);
}

/// ServiceConfig::shards (when positive) overrides Config::shards before
/// the fleet is built — the service-level knob wins over the engine-level
/// default (DESIGN.md §17).
Config apply_shard_override(Config config, const ServiceConfig& service) {
  if (service.shards > 0) config.shards = service.shards;
  return config;
}

}  // namespace

SearchService::SearchService(Config config, const bio::SequenceDatabase& db,
                             ServiceConfig service_config)
    : session_(apply_shard_override(std::move(config), service_config), db),
      service_config_(service_config) {
  service_config_.queue_capacity =
      std::max<std::size_t>(1, service_config_.queue_capacity);
  util::metrics::Registry::instance()
      .gauge("service.shards")
      .set(static_cast<double>(session_.num_shards()));
  service_config_.backoff_multiplier =
      std::max(1.0, service_config_.backoff_multiplier);
  if (service_config_.backoff_initial_ms < 0.0)
    service_config_.backoff_initial_ms = 0.0;

  // The service owns the trace session so every request of its lifetime
  // lands on one timeline (TraceSession is passive when an outer owner —
  // e.g. the CLI — already started one).
  const std::string trace_path =
      config_path_or_env(session_.config().trace_path, "REPRO_TRACE");
  if (!trace_path.empty())
    trace_session_ = std::make_unique<util::TraceSession>(trace_path);

  start_ns_ = util::MonotonicClock::now_ns();

  // Flight recorder (tail-based per-query tracing; util/flight_recorder.hpp).
  flight_recording_ = !service_config_.flight_dir.empty();
  if (flight_recording_) {
    service_config_.flight_ring_events =
        std::max<std::size_t>(1, service_config_.flight_ring_events);
    util::FlightRecorder::instance().configure(
        service_config_.flight_ring_events);
  }

  // Structured JSONL event log (util/log.hpp).
  const std::string event_log_path = config_path_or_env(
      service_config_.event_log_path, "REPRO_EVENT_LOG");
  if (!event_log_path.empty()) {
    util::log::open(event_log_path);
    event_log_owned_ = util::log::enabled();
    if (event_log_owned_)
      util::log::event(
          "service.start",
          {util::targ("queue_capacity",
                      static_cast<std::uint64_t>(
                          service_config_.queue_capacity)),
           util::targ("slo_ms", service_config_.slo_ms),
           util::targ("flight",
                      flight_recording_ ? "on" : "off")});
  }

  worker_ = std::thread([this] { worker_loop(); });

  // Periodic statusz dumps, on their own thread so a long-running request
  // cannot stall introspection.
  if (!service_config_.statusz_path.empty()) {
    service_config_.statusz_period_ms =
        std::max(1.0, service_config_.statusz_period_ms);
    statusz_thread_ = std::thread([this] { statusz_loop(); });
  }
}

SearchService::~SearchService() {
  drain();
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  {
    std::lock_guard lock(statusz_mu_);
    statusz_stop_ = true;
  }
  statusz_cv_.notify_all();
  if (statusz_thread_.joinable()) statusz_thread_.join();
  if (event_log_owned_) util::log::close();
}

std::future<ServiceResult> SearchService::submit(SearchRequest request) {
  std::promise<ServiceResult> promise;
  std::future<ServiceResult> future = promise.get_future();
  auto& registry = util::metrics::Registry::instance();

  // Validate outside the lock: malformed input never occupies a slot.
  try {
    check_search_limits(request.query, session_.db());
  } catch (const SearchError& e) {
    ServiceResult result;
    result.status = RequestStatus::kFailed;
    result.error_code = e.code();
    result.message = e.what();
    result.report.status = report_status_label(result.status);
    registry.counter("service.submitted").add(1);
    registry.counter("service.failed").add(1);
    promise.set_value(std::move(result));
    return future;
  }

  auto pending = std::make_unique<Pending>();
  // Read the clock only when the request carries a deadline or could be
  // admitted — both reads are in submitter program order, so decisions
  // stay deterministic under the virtual clock.
  if (request.deadline_ms > 0.0)
    pending->deadline_ns =
        util::MonotonicClock::now_ns() +
        static_cast<std::uint64_t>(request.deadline_ms * 1e6);
  pending->request = std::move(request);
  pending->promise = std::move(promise);

  const auto prio = static_cast<std::size_t>(pending->request.priority);
  std::string reject_reason;
  bool admitted = false;
  {
    std::lock_guard lock(mutex_);
    stats_.submitted += 1;
    registry.counter("service.submitted").add(1);
    if (!accepting_) {
      reject_reason = "service is draining";
    } else if (queued_ >= service_config_.queue_capacity) {
      reject_reason = "queue at capacity (" +
                      std::to_string(service_config_.queue_capacity) + ")";
    } else if (service_config_.per_priority_limit != 0 &&
               queues_[prio].size() >= service_config_.per_priority_limit) {
      reject_reason = std::string("priority class '") +
                      request_priority_name(pending->request.priority) +
                      "' at its limit (" +
                      std::to_string(service_config_.per_priority_limit) + ")";
    } else {
      pending->admitted_ns = util::MonotonicClock::now_ns();
      stats_.admitted += 1;
      queues_[prio].push_back(std::move(pending));
      queued_ += 1;
      admitted = true;
      registry.counter("service.admitted").add(1);
      registry.gauge("service.queue_depth")
          .set(static_cast<double>(queued_));
    }
  }

  if (admitted) {
    if (util::log::enabled())
      util::log::event(
          "service.admit",
          {util::targ("priority", request_priority_name(
                                      static_cast<RequestPriority>(prio)))});
    cv_.notify_one();
    return future;
  }

  // Rejected: resolve the future immediately — backpressure is explicit.
  {
    std::lock_guard lock(mutex_);
    stats_.rejected += 1;
  }
  registry.counter("service.rejected").add(1);
  if (util::trace_enabled())
    util::trace_instant("service.reject", "service",
                        {util::targ("reason", reject_reason)});
  if (util::log::enabled())
    util::log::event("service.reject",
                     {util::targ("reason", reject_reason)});
  ServiceResult result;
  result.status = RequestStatus::kRejected;
  result.error_code = SearchErrorCode::kRejected;
  result.message = reject_reason;
  result.report.status = report_status_label(result.status);
  pending->promise.set_value(std::move(result));
  return future;
}

ServiceResult SearchService::search(std::vector<std::uint8_t> query,
                                    double deadline_ms,
                                    CancellationToken cancel) {
  SearchRequest request;
  request.query = std::move(query);
  request.deadline_ms = deadline_ms;
  request.cancel = std::move(cancel);
  return submit(std::move(request)).get();
}

void SearchService::pause() {
  std::lock_guard lock(mutex_);
  paused_ = true;
}

void SearchService::resume() {
  {
    std::lock_guard lock(mutex_);
    paused_ = false;
  }
  cv_.notify_all();
}

void SearchService::drain() {
  {
    std::unique_lock lock(mutex_);
    accepting_ = false;
    paused_ = false;  // a paused service must still be able to drain
    cv_.notify_all();
    util::svc::note_blocking_wait(&mutex_);
    idle_cv_.wait(lock, [this] { return queued_ == 0 && !busy_; });
  }
  // Exactly-once flush: concurrent drain() calls all wait for idle above,
  // but only one of them may tear down the trace session or write the
  // metrics file (TraceSession::reset is not re-entrant, and a double
  // metrics write could interleave). The losers return after the winner's
  // flush completed — call_once blocks them until then.
  std::call_once(drain_flush_once_, [this] {
    util::metrics::Registry::instance()
        .counter("service.drain_flushes")
        .add(1);
    // Flush failures (bad extension, unwritable path) must not abort the
    // drain — it runs from the destructor — so report and keep flushing
    // the remaining surfaces.
    const std::string metrics_path = config_path_or_env(
        session_.config().metrics_path, "REPRO_METRICS");
    try {
      if (!metrics_path.empty())
        util::metrics::Registry::instance().write_file(metrics_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "drain: metrics flush failed: %s\n", e.what());
    }
    try {
      session_.export_profile();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "drain: profile flush failed: %s\n", e.what());
    }
    if (!service_config_.statusz_path.empty())
      write_statusz(service_config_.statusz_path);
    if (util::log::enabled()) {
      const ServiceStats final_stats = stats();
      util::log::event("service.drain",
                       {util::targ("completed", final_stats.completed),
                        util::targ("rejected", final_stats.rejected),
                        util::targ("failed", final_stats.failed)});
    }
    trace_session_.reset();  // writes the trace file, if we owned a session
  });
}

void SearchService::shutdown() {
  std::vector<std::unique_ptr<Pending>> dropped;
  {
    std::unique_lock lock(mutex_);
    accepting_ = false;
    paused_ = false;
    for (auto& queue : queues_)
      while (!queue.empty()) {
        dropped.push_back(std::move(queue.front()));
        queue.pop_front();
      }
    queued_ = 0;
    stats_.cancelled += dropped.size();
    cv_.notify_all();
    util::svc::note_blocking_wait(&mutex_);
    idle_cv_.wait(lock, [this] { return !busy_; });
  }
  auto& registry = util::metrics::Registry::instance();
  registry.gauge("service.queue_depth").set(0.0);
  for (auto& pending : dropped) {
    registry.counter("service.cancelled").add(1);
    ServiceResult result;
    result.status = RequestStatus::kCancelled;
    result.error_code = SearchErrorCode::kShutdown;
    result.message = "service shut down before the request ran";
    result.report.status = report_status_label(result.status);
    pending->promise.set_value(std::move(result));
  }
}

ServiceStats SearchService::stats() const {
  std::lock_guard lock(mutex_);
  ServiceStats snapshot = stats_;
  snapshot.queue_depth = queued_;
  return snapshot;
}

std::string ServiceStatus::to_json() const {
  auto b = [](bool v) { return std::string(v ? "true" : "false"); };
  auto n = [](std::uint64_t v) { return util::json_num(v); };
  std::string out = "{\"schema\":\"cublastp.statusz.v1\"";
  out += ",\"uptime_ms\":" + util::json_num(uptime_ms);
  out += ",\"accepting\":" + b(accepting);
  out += ",\"paused\":" + b(paused);
  out += ",\"busy\":" + b(busy);
  out += ",\"queues\":{\"interactive\":" + n(queue_depths[0]) +
         ",\"normal\":" + n(queue_depths[1]) +
         ",\"batch\":" + n(queue_depths[2]) +
         ",\"total\":" + n(queue_depth) + "}";
  out += ",\"stats\":{\"submitted\":" + n(stats.submitted) +
         ",\"admitted\":" + n(stats.admitted) +
         ",\"rejected\":" + n(stats.rejected) +
         ",\"completed\":" + n(stats.completed) +
         ",\"cancelled\":" + n(stats.cancelled) +
         ",\"deadline_exceeded\":" + n(stats.deadline_exceeded) +
         ",\"failed\":" + n(stats.failed) +
         ",\"transient_retries\":" + n(stats.transient_retries) + "}";
  if (busy) {
    out += ",\"in_flight\":{\"seq\":" + n(in_flight_seq) +
           ",\"query_length\":" + n(in_flight_query_length) +
           ",\"stage\":" + util::json_str(in_flight_stage) + "}";
  } else {
    out += ",\"in_flight\":null";
  }
  out += ",\"slo\":{\"objective_ms\":" + util::json_num(slo_ms) +
         ",\"ok\":" + n(slo_ok) + ",\"violations\":" + n(slo_violations) +
         ",\"flight_dumps\":" + n(flight_dumps) + "}";
  out += ",\"latency_quantiles_s\":{\"p50\":" + util::json_num(wall_p50_s) +
         ",\"p95\":" + util::json_num(wall_p95_s) +
         ",\"p99\":" + util::json_num(wall_p99_s) + "}";
  out += ",\"profile\":" +
         (profile_summary_json.empty() ? std::string("null")
                                       : profile_summary_json);
  out += "}";
  return out;
}

ServiceStatus SearchService::status_snapshot() const {
  ServiceStatus snapshot;
  const std::uint64_t now_ns = util::MonotonicClock::now_ns();
  {
    std::lock_guard lock(mutex_);
    snapshot.uptime_ms = static_cast<double>(now_ns - start_ns_) * 1e-6;
    snapshot.accepting = accepting_;
    snapshot.paused = paused_;
    snapshot.busy = busy_;
    for (std::size_t i = 0; i < kNumPriorities; ++i)
      snapshot.queue_depths[i] = queues_[i].size();
    snapshot.queue_depth = queued_;
    snapshot.stats = stats_;
    snapshot.stats.queue_depth = queued_;
    snapshot.in_flight_seq = in_flight_seq_;
    snapshot.in_flight_query_length = in_flight_query_length_;
    snapshot.slo_ms = service_config_.slo_ms;
    snapshot.slo_ok = slo_ok_;
    snapshot.slo_violations = slo_violations_;
    snapshot.flight_dumps = flight_dumps_;
  }
  if (snapshot.busy) {
    // The beacon may briefly lag the in-flight bookkeeping (both are
    // updated without a common lock); a stale stage name is acceptable
    // introspection noise.
    const char* stage = current_pipeline_stage();
    if (stage != nullptr) snapshot.in_flight_stage = stage;
  }
  auto& wall = util::metrics::Registry::instance().histogram(
      "service.request_wall_seconds");
  snapshot.wall_p50_s = wall.quantile(0.50);
  snapshot.wall_p95_s = wall.quantile(0.95);
  snapshot.wall_p99_s = wall.quantile(0.99);
  snapshot.profile_summary_json = session_.profiler().summary_json();
  return snapshot;
}

bool SearchService::write_statusz(const std::string& path) const {
  const std::string json = status_snapshot().to_json() + "\n";
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  // Write-then-rename: a reader (or the drain flush racing the periodic
  // thread) never observes a partial document. Unique temp names keep
  // concurrent writers off each other's bytes; rename order picks the
  // winner, and both candidates are complete documents.
  static std::atomic<std::uint64_t> temp_seq{0};
  const std::string temp =
      path + ".tmp" + std::to_string(temp_seq.fetch_add(1));
  {
    std::ofstream out(temp, std::ios::trunc);
    if (!out) return false;
    out << json;
    if (!out) return false;
  }
  ec.clear();
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    std::filesystem::remove(temp, ec);
    return false;
  }
  return true;
}

void SearchService::statusz_loop() {
  write_statusz(service_config_.statusz_path);
  std::unique_lock lock(statusz_mu_);
  while (!statusz_stop_) {
    const auto period = std::chrono::duration<double, std::milli>(
        service_config_.statusz_period_ms);
    if (statusz_cv_.wait_for(lock, period, [this] { return statusz_stop_; }))
      break;
    lock.unlock();
    write_statusz(service_config_.statusz_path);
    lock.lock();
  }
}

simt::HazardReport svccheck_snapshot() {
  auto records = util::svc::SvcHazardLog::instance().snapshot();
  // The log appends in detection order, which depends on thread schedules;
  // sort by (kind, subject, detail) so snapshots compare bit-identical.
  std::sort(records.begin(), records.end(),
            [](const util::svc::SvcHazardRecord& a,
               const util::svc::SvcHazardRecord& b) {
              if (a.kind != b.kind) return a.kind < b.kind;
              if (a.name != b.name) return a.name < b.name;
              return a.detail < b.detail;
            });
  simt::HazardReport report;
  for (const auto& record : records) {
    simt::HazardRecord out;
    switch (record.kind) {
      case util::svc::SvcHazardKind::kLockOrderInversion:
        out.kind = simt::HazardKind::kLockOrderInversion;
        break;
      case util::svc::SvcHazardKind::kBlockedWhileLocked:
        out.kind = simt::HazardKind::kBlockedWhileLocked;
        break;
      case util::svc::SvcHazardKind::kCheckpointGap:
        out.kind = simt::HazardKind::kCheckpointGap;
        break;
    }
    out.kernel = "host:" + record.name;
    out.detail = record.detail;
    report.add(std::move(out));
  }
  return report;
}

simt::HazardReport SearchService::hazard_report() const {
  simt::HazardReport report;
  {
    std::lock_guard lock(hazards_mu_);
    report.merge(hazards_);
  }
  report.merge(svccheck_snapshot());
  bool idle = false;
  {
    std::lock_guard lock(mutex_);
    idle = queued_ == 0 && !busy_;
  }
  // Leak scan only when idle: an in-flight request legitimately holds
  // device buffers, and flagging those would be noise, not a leak.
  if (idle) session_.leak_check(report);
  return report;
}

std::unique_ptr<SearchService::Pending> SearchService::pop_locked() {
  for (auto& queue : queues_) {
    if (queue.empty()) continue;
    auto pending = std::move(queue.front());
    queue.pop_front();
    return pending;
  }
  return nullptr;
}

void SearchService::worker_loop() {
  for (;;) {
    std::unique_ptr<Pending> pending;
    {
      std::unique_lock lock(mutex_);
      util::svc::note_blocking_wait(&mutex_);
      cv_.wait(lock,
               [this] { return stop_ || (!paused_ && queued_ > 0); });
      if (stop_) return;
      pending = pop_locked();
      if (pending == nullptr) continue;
      queued_ -= 1;
      busy_ = true;
      util::metrics::Registry::instance()
          .gauge("service.queue_depth")
          .set(static_cast<double>(queued_));
    }

    run_one(*pending);

    {
      std::lock_guard lock(mutex_);
      busy_ = false;
    }
    idle_cv_.notify_all();
  }
}

void SearchService::backoff_wait(double ms) {
  if (ms <= 0.0) return;
  const auto wait_ns = static_cast<std::uint64_t>(ms * 1e6);
  if (util::MonotonicClock::is_virtual()) {
    // Spin on clock reads: each read advances virtual time by 1 µs, so the
    // wait both terminates and is deterministic (its length in reads
    // depends only on `ms`).
    const std::uint64_t target = util::MonotonicClock::now_ns() + wait_ns;
    while (util::MonotonicClock::now_ns() < target) {
    }
    return;
  }
  std::this_thread::sleep_for(std::chrono::nanoseconds(wait_ns));
}

void SearchService::run_one(Pending& pending) {
  auto& registry = util::metrics::Registry::instance();
  const std::uint64_t started_ns = util::MonotonicClock::now_ns();

  ServiceResult result;
  result.service_seq = ++next_seq_;  // worker-only, no lock needed
  result.queue_wait_ms =
      static_cast<double>(started_ns - pending.admitted_ns) * 1e-6;
  registry.histogram("service.queue_wait_seconds")
      .observe(result.queue_wait_ms * 1e-3);

  // Flight recording starts before the queued-expiry check so even a
  // request that never runs leaves a (near-empty) dump explaining why.
  if (flight_recording_)
    util::FlightRecorder::instance().begin_query(result.service_seq);
  note_pipeline_stage("dispatch");
  {
    std::lock_guard lock(mutex_);
    in_flight_seq_ = result.service_seq;
    in_flight_query_length_ = pending.request.query.size();
  }
  if (util::log::enabled())
    util::log::event(
        "service.dispatch",
        {util::targ("request_seq", result.service_seq),
         util::targ("priority",
                    request_priority_name(pending.request.priority)),
         util::targ("queue_wait_ms", result.queue_wait_ms)});

  // Combine the client's handle with the request deadline. The client's
  // own state is never mutated; with_deadline links a child onto it.
  CancellationToken token = pending.request.cancel;
  if (pending.deadline_ns != 0) token = token.with_deadline(pending.deadline_ns);

  const auto finish = [&](RequestStatus status) {
    result.status = status;
    result.wall_ms = static_cast<double>(util::MonotonicClock::now_ns() -
                                         pending.admitted_ns) *
                     1e-6;
    registry.histogram("service.request_wall_seconds")
        .observe(result.wall_ms * 1e-3);
    bool counted_completed = false;
    switch (status) {
      case RequestStatus::kOk:
      case RequestStatus::kDegraded:
        registry.counter("service.completed").add(1);
        counted_completed = true;
        break;
      case RequestStatus::kCancelled:
        registry.counter("service.cancelled").add(1);
        if (util::trace_enabled())
          util::trace_instant("service.cancel", "service", {});
        break;
      case RequestStatus::kDeadlineExceeded:
        registry.counter("service.deadline_exceeded").add(1);
        if (util::trace_enabled())
          util::trace_instant("service.expire", "service", {});
        break;
      default:
        registry.counter("service.failed").add(1);
        break;
    }
    // Completed requests carry the session-stamped status ("ok" /
    // "degraded"); everything else gets the service's terminal label so
    // report.to_json() still says what happened.
    if (!counted_completed) result.report.status = report_status_label(status);

    // SLO accounting + tail-based flight retention: the dump decision can
    // only be made here, after the outcome and wall time are known.
    const bool slo_miss = service_config_.slo_ms > 0.0 &&
                          result.wall_ms > service_config_.slo_ms;
    if (service_config_.slo_ms > 0.0)
      registry.counter(slo_miss ? "service.slo.violations" : "service.slo.ok")
          .add(1);
    bool dumped = false;
    std::string dump_path;
    if (flight_recording_) {
      auto& flight = util::FlightRecorder::instance();
      flight.end_query();
      if (status != RequestStatus::kOk || slo_miss) {
        dump_path = service_config_.flight_dir + "/flight_" +
                    std::to_string(result.service_seq) + "_" +
                    request_status_name(status) + ".json";
        dumped = flight.dump_to_file(
            dump_path,
            {util::targ("status", request_status_name(status)),
             util::targ("wall_ms", result.wall_ms),
             util::targ("slo_ms", service_config_.slo_ms),
             util::targ("slo_miss",
                        static_cast<std::uint64_t>(slo_miss ? 1 : 0))});
        if (dumped) registry.counter("service.flight.dumps").add(1);
      }
    }

    {
      std::lock_guard lock(mutex_);
      switch (status) {
        case RequestStatus::kOk:
        case RequestStatus::kDegraded: stats_.completed += 1; break;
        case RequestStatus::kCancelled: stats_.cancelled += 1; break;
        case RequestStatus::kDeadlineExceeded:
          stats_.deadline_exceeded += 1;
          break;
        default: stats_.failed += 1; break;
      }
      stats_.transient_retries += result.transient_retries;
      if (service_config_.slo_ms > 0.0) {
        if (slo_miss)
          slo_violations_ += 1;
        else
          slo_ok_ += 1;
      }
      if (dumped) flight_dumps_ += 1;
      in_flight_seq_ = 0;
      in_flight_query_length_ = 0;
      // Cleared here — not just in worker_loop — so a snapshot taken
      // after the promise resolves never reports a phantom in-flight
      // request. worker_loop's own clear (after run_one returns) is what
      // wakes drain via idle_cv_.
      busy_ = false;
    }
    note_pipeline_stage(nullptr);
    if (util::log::enabled()) {
      util::log::event(
          "service.complete",
          {util::targ("request_seq", result.service_seq),
           util::targ("status", request_status_name(status)),
           util::targ("wall_ms", result.wall_ms),
           util::targ("retries", static_cast<std::uint64_t>(
                                     result.transient_retries))});
      if (status == RequestStatus::kDegraded)
        util::log::event("service.degraded",
                         {util::targ("request_seq", result.service_seq)});
      if (dumped)
        util::log::event("service.flight_dump",
                         {util::targ("request_seq", result.service_seq),
                          util::targ("path", dump_path)});
    }
    pending.promise.set_value(std::move(result));
  };

  // A request that expired or was cancelled while queued never runs.
  switch (token.stop_reason()) {
    case StopReason::kCancelled:
      result.error_code = SearchErrorCode::kCancelled;
      result.message = "cancelled while queued";
      finish(RequestStatus::kCancelled);
      return;
    case StopReason::kDeadlineExceeded:
      result.error_code = SearchErrorCode::kDeadlineExceeded;
      result.message = "deadline expired while queued";
      finish(RequestStatus::kDeadlineExceeded);
      return;
    case StopReason::kNone: break;
  }

  double backoff_ms = service_config_.backoff_initial_ms;
  for (;;) {
    SearchErrorCode code = SearchErrorCode::kWorkerFailed;
    bool transient = false;
    try {
      result.report = session_.search(
          std::span<const std::uint8_t>(pending.request.query), token);
      result.message.clear();
      result.error_code.reset();
      // Fleet observability (DESIGN.md §17): every completed request
      // dispatched to each shard once; count shards that degraded so an
      // operator can spot a persistently sick fleet unit.
      registry.counter("service.shard.dispatches")
          .add(result.report.shards.size());
      std::uint64_t degraded_shards = 0;
      for (const ShardSummary& shard : result.report.shards)
        if (shard.degraded_blocks != 0 || shard.cache_off_retries != 0)
          ++degraded_shards;
      if (degraded_shards != 0)
        registry.counter("service.shard.degraded").add(degraded_shards);
      // Fold this request's hazards (simtcheck + leakcheck + checkpoint
      // coverage) into the service-lifetime aggregate. Leaf lock, taken
      // engine-idle — never while mutex_ is held.
      {
        std::lock_guard lock(hazards_mu_);
        hazards_.merge(result.report.hazards);
      }
      finish(result.report.degraded() ? RequestStatus::kDegraded
                                      : RequestStatus::kOk);
      return;
    } catch (const SearchError& e) {
      if (e.code() == SearchErrorCode::kCancelled) {
        result.error_code = e.code();
        result.message = e.what();
        finish(RequestStatus::kCancelled);
        return;
      }
      if (e.code() == SearchErrorCode::kDeadlineExceeded) {
        result.error_code = e.code();
        result.message = e.what();
        finish(RequestStatus::kDeadlineExceeded);
        return;
      }
      code = e.code();
      transient = code == SearchErrorCode::kDeviceAllocation ||
                  code == SearchErrorCode::kDeviceTransfer;
      result.message = e.what();
    } catch (const util::FaultInjectedError& e) {
      // A raw fault-point escape (no translation layer in between):
      // classify by the point name, same taxonomy the simt layer uses.
      const std::string_view point = e.point();
      if (point.find("alloc") != std::string_view::npos) {
        code = SearchErrorCode::kDeviceAllocation;
        transient = true;
      } else if (point.find("transfer") != std::string_view::npos) {
        code = SearchErrorCode::kDeviceTransfer;
        transient = true;
      } else {
        code = SearchErrorCode::kDeviceLaunch;
      }
      result.message = e.what();
    } catch (const simt::DeviceError& e) {
      const std::string_view what = e.what();
      if (what.find("transfer") != std::string_view::npos) {
        code = SearchErrorCode::kDeviceTransfer;
        transient = true;
      } else {
        code = SearchErrorCode::kDeviceLaunch;
      }
      result.message = e.what();
    } catch (const std::bad_alloc&) {
      code = SearchErrorCode::kDeviceAllocation;
      transient = true;
      result.message = "device allocation failed (bad_alloc)";
    } catch (const std::exception& e) {
      code = SearchErrorCode::kWorkerFailed;
      result.message = e.what();
    }

    result.error_code = code;
    const bool retries_left =
        result.transient_retries < service_config_.max_transient_retries;
    if (!transient || !retries_left ||
        token.stop_reason() != StopReason::kNone) {
      finish(RequestStatus::kFailed);
      return;
    }

    result.transient_retries += 1;
    registry.counter("service.retries").add(1);
    if (util::trace_enabled())
      util::trace_instant(
          "service.retry", "service",
          {util::targ("attempt",
                      static_cast<std::uint64_t>(result.transient_retries)),
           util::targ("code", to_string(code)),
           util::targ("backoff_ms", backoff_ms)});
    backoff_wait(std::min(backoff_ms, service_config_.backoff_max_ms));
    backoff_ms *= service_config_.backoff_multiplier;
  }
}

}  // namespace repro::core
