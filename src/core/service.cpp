// SearchService implementation (DESIGN.md §14): bounded priority queue +
// one session-owning worker thread. All queue state lives behind mutex_;
// the worker holds the lock only while popping/bookkeeping, never while a
// search runs, so submitters are never blocked by in-flight work.
#include "core/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <new>
#include <string_view>
#include <utility>

#include "core/query_context.hpp"
#include "simt/engine.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace repro::core {

namespace {

std::string config_path_or_env(const std::string& configured,
                               const char* env) {
  if (!configured.empty()) return configured;
  const char* value = std::getenv(env);
  return value != nullptr ? std::string(value) : std::string();
}

/// Maps a terminal RequestStatus onto the metrics/trace vocabulary and the
/// SearchReport::status field (shared spelling with report.cpp's v3 docs).
const char* report_status_label(RequestStatus s) {
  return request_status_name(s);
}

}  // namespace

SearchService::SearchService(Config config, const bio::SequenceDatabase& db,
                             ServiceConfig service_config)
    : session_(std::move(config), db), service_config_(service_config) {
  service_config_.queue_capacity =
      std::max<std::size_t>(1, service_config_.queue_capacity);
  service_config_.backoff_multiplier =
      std::max(1.0, service_config_.backoff_multiplier);
  if (service_config_.backoff_initial_ms < 0.0)
    service_config_.backoff_initial_ms = 0.0;

  // The service owns the trace session so every request of its lifetime
  // lands on one timeline (TraceSession is passive when an outer owner —
  // e.g. the CLI — already started one).
  const std::string trace_path =
      config_path_or_env(session_.config().trace_path, "REPRO_TRACE");
  if (!trace_path.empty())
    trace_session_ = std::make_unique<util::TraceSession>(trace_path);

  worker_ = std::thread([this] { worker_loop(); });
}

SearchService::~SearchService() {
  drain();
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

std::future<ServiceResult> SearchService::submit(SearchRequest request) {
  std::promise<ServiceResult> promise;
  std::future<ServiceResult> future = promise.get_future();
  auto& registry = util::metrics::Registry::instance();

  // Validate outside the lock: malformed input never occupies a slot.
  try {
    check_search_limits(request.query, session_.db());
  } catch (const SearchError& e) {
    ServiceResult result;
    result.status = RequestStatus::kFailed;
    result.error_code = e.code();
    result.message = e.what();
    result.report.status = report_status_label(result.status);
    registry.counter("service.submitted").add(1);
    registry.counter("service.failed").add(1);
    promise.set_value(std::move(result));
    return future;
  }

  auto pending = std::make_unique<Pending>();
  // Read the clock only when the request carries a deadline or could be
  // admitted — both reads are in submitter program order, so decisions
  // stay deterministic under the virtual clock.
  if (request.deadline_ms > 0.0)
    pending->deadline_ns =
        util::MonotonicClock::now_ns() +
        static_cast<std::uint64_t>(request.deadline_ms * 1e6);
  pending->request = std::move(request);
  pending->promise = std::move(promise);

  const auto prio = static_cast<std::size_t>(pending->request.priority);
  std::string reject_reason;
  bool admitted = false;
  {
    std::lock_guard lock(mutex_);
    stats_.submitted += 1;
    registry.counter("service.submitted").add(1);
    if (!accepting_) {
      reject_reason = "service is draining";
    } else if (queued_ >= service_config_.queue_capacity) {
      reject_reason = "queue at capacity (" +
                      std::to_string(service_config_.queue_capacity) + ")";
    } else if (service_config_.per_priority_limit != 0 &&
               queues_[prio].size() >= service_config_.per_priority_limit) {
      reject_reason = std::string("priority class '") +
                      request_priority_name(pending->request.priority) +
                      "' at its limit (" +
                      std::to_string(service_config_.per_priority_limit) + ")";
    } else {
      pending->admitted_ns = util::MonotonicClock::now_ns();
      stats_.admitted += 1;
      queues_[prio].push_back(std::move(pending));
      queued_ += 1;
      admitted = true;
      registry.counter("service.admitted").add(1);
      registry.gauge("service.queue_depth")
          .set(static_cast<double>(queued_));
    }
  }

  if (admitted) {
    cv_.notify_one();
    return future;
  }

  // Rejected: resolve the future immediately — backpressure is explicit.
  {
    std::lock_guard lock(mutex_);
    stats_.rejected += 1;
  }
  registry.counter("service.rejected").add(1);
  if (util::trace_enabled())
    util::trace_instant("service.reject", "service",
                        {util::targ("reason", reject_reason)});
  ServiceResult result;
  result.status = RequestStatus::kRejected;
  result.error_code = SearchErrorCode::kRejected;
  result.message = reject_reason;
  result.report.status = report_status_label(result.status);
  pending->promise.set_value(std::move(result));
  return future;
}

ServiceResult SearchService::search(std::vector<std::uint8_t> query,
                                    double deadline_ms,
                                    CancellationToken cancel) {
  SearchRequest request;
  request.query = std::move(query);
  request.deadline_ms = deadline_ms;
  request.cancel = std::move(cancel);
  return submit(std::move(request)).get();
}

void SearchService::pause() {
  std::lock_guard lock(mutex_);
  paused_ = true;
}

void SearchService::resume() {
  {
    std::lock_guard lock(mutex_);
    paused_ = false;
  }
  cv_.notify_all();
}

void SearchService::drain() {
  {
    std::unique_lock lock(mutex_);
    accepting_ = false;
    paused_ = false;  // a paused service must still be able to drain
    cv_.notify_all();
    util::svc::note_blocking_wait(&mutex_);
    idle_cv_.wait(lock, [this] { return queued_ == 0 && !busy_; });
  }
  // Exactly-once flush: concurrent drain() calls all wait for idle above,
  // but only one of them may tear down the trace session or write the
  // metrics file (TraceSession::reset is not re-entrant, and a double
  // metrics write could interleave). The losers return after the winner's
  // flush completed — call_once blocks them until then.
  std::call_once(drain_flush_once_, [this] {
    util::metrics::Registry::instance()
        .counter("service.drain_flushes")
        .add(1);
    const std::string metrics_path = config_path_or_env(
        session_.config().metrics_path, "REPRO_METRICS");
    if (!metrics_path.empty())
      util::metrics::Registry::instance().write_file(metrics_path);
    trace_session_.reset();  // writes the trace file, if we owned a session
  });
}

void SearchService::shutdown() {
  std::vector<std::unique_ptr<Pending>> dropped;
  {
    std::unique_lock lock(mutex_);
    accepting_ = false;
    paused_ = false;
    for (auto& queue : queues_)
      while (!queue.empty()) {
        dropped.push_back(std::move(queue.front()));
        queue.pop_front();
      }
    queued_ = 0;
    stats_.cancelled += dropped.size();
    cv_.notify_all();
    util::svc::note_blocking_wait(&mutex_);
    idle_cv_.wait(lock, [this] { return !busy_; });
  }
  auto& registry = util::metrics::Registry::instance();
  registry.gauge("service.queue_depth").set(0.0);
  for (auto& pending : dropped) {
    registry.counter("service.cancelled").add(1);
    ServiceResult result;
    result.status = RequestStatus::kCancelled;
    result.error_code = SearchErrorCode::kShutdown;
    result.message = "service shut down before the request ran";
    result.report.status = report_status_label(result.status);
    pending->promise.set_value(std::move(result));
  }
}

ServiceStats SearchService::stats() const {
  std::lock_guard lock(mutex_);
  ServiceStats snapshot = stats_;
  snapshot.queue_depth = queued_;
  return snapshot;
}

simt::HazardReport svccheck_snapshot() {
  auto records = util::svc::SvcHazardLog::instance().snapshot();
  // The log appends in detection order, which depends on thread schedules;
  // sort by (kind, subject, detail) so snapshots compare bit-identical.
  std::sort(records.begin(), records.end(),
            [](const util::svc::SvcHazardRecord& a,
               const util::svc::SvcHazardRecord& b) {
              if (a.kind != b.kind) return a.kind < b.kind;
              if (a.name != b.name) return a.name < b.name;
              return a.detail < b.detail;
            });
  simt::HazardReport report;
  for (const auto& record : records) {
    simt::HazardRecord out;
    switch (record.kind) {
      case util::svc::SvcHazardKind::kLockOrderInversion:
        out.kind = simt::HazardKind::kLockOrderInversion;
        break;
      case util::svc::SvcHazardKind::kBlockedWhileLocked:
        out.kind = simt::HazardKind::kBlockedWhileLocked;
        break;
      case util::svc::SvcHazardKind::kCheckpointGap:
        out.kind = simt::HazardKind::kCheckpointGap;
        break;
    }
    out.kernel = "host:" + record.name;
    out.detail = record.detail;
    report.add(std::move(out));
  }
  return report;
}

simt::HazardReport SearchService::hazard_report() const {
  simt::HazardReport report;
  {
    std::lock_guard lock(hazards_mu_);
    report.merge(hazards_);
  }
  report.merge(svccheck_snapshot());
  bool idle = false;
  {
    std::lock_guard lock(mutex_);
    idle = queued_ == 0 && !busy_;
  }
  // Leak scan only when idle: an in-flight request legitimately holds
  // device buffers, and flagging those would be noise, not a leak.
  if (idle) session_.leak_check(report);
  return report;
}

std::unique_ptr<SearchService::Pending> SearchService::pop_locked() {
  for (auto& queue : queues_) {
    if (queue.empty()) continue;
    auto pending = std::move(queue.front());
    queue.pop_front();
    return pending;
  }
  return nullptr;
}

void SearchService::worker_loop() {
  for (;;) {
    std::unique_ptr<Pending> pending;
    {
      std::unique_lock lock(mutex_);
      util::svc::note_blocking_wait(&mutex_);
      cv_.wait(lock,
               [this] { return stop_ || (!paused_ && queued_ > 0); });
      if (stop_) return;
      pending = pop_locked();
      if (pending == nullptr) continue;
      queued_ -= 1;
      busy_ = true;
      util::metrics::Registry::instance()
          .gauge("service.queue_depth")
          .set(static_cast<double>(queued_));
    }

    run_one(*pending);

    {
      std::lock_guard lock(mutex_);
      busy_ = false;
    }
    idle_cv_.notify_all();
  }
}

void SearchService::backoff_wait(double ms) {
  if (ms <= 0.0) return;
  const auto wait_ns = static_cast<std::uint64_t>(ms * 1e6);
  if (util::MonotonicClock::is_virtual()) {
    // Spin on clock reads: each read advances virtual time by 1 µs, so the
    // wait both terminates and is deterministic (its length in reads
    // depends only on `ms`).
    const std::uint64_t target = util::MonotonicClock::now_ns() + wait_ns;
    while (util::MonotonicClock::now_ns() < target) {
    }
    return;
  }
  std::this_thread::sleep_for(std::chrono::nanoseconds(wait_ns));
}

void SearchService::run_one(Pending& pending) {
  auto& registry = util::metrics::Registry::instance();
  const std::uint64_t started_ns = util::MonotonicClock::now_ns();

  ServiceResult result;
  result.service_seq = ++next_seq_;  // worker-only, no lock needed
  result.queue_wait_ms =
      static_cast<double>(started_ns - pending.admitted_ns) * 1e-6;
  registry.histogram("service.queue_wait_seconds")
      .observe(result.queue_wait_ms * 1e-3);

  // Combine the client's handle with the request deadline. The client's
  // own state is never mutated; with_deadline links a child onto it.
  CancellationToken token = pending.request.cancel;
  if (pending.deadline_ns != 0) token = token.with_deadline(pending.deadline_ns);

  const auto finish = [&](RequestStatus status) {
    result.status = status;
    result.wall_ms = static_cast<double>(util::MonotonicClock::now_ns() -
                                         pending.admitted_ns) *
                     1e-6;
    registry.histogram("service.request_wall_seconds")
        .observe(result.wall_ms * 1e-3);
    bool counted_completed = false;
    switch (status) {
      case RequestStatus::kOk:
      case RequestStatus::kDegraded:
        registry.counter("service.completed").add(1);
        counted_completed = true;
        break;
      case RequestStatus::kCancelled:
        registry.counter("service.cancelled").add(1);
        if (util::trace_enabled())
          util::trace_instant("service.cancel", "service", {});
        break;
      case RequestStatus::kDeadlineExceeded:
        registry.counter("service.deadline_exceeded").add(1);
        if (util::trace_enabled())
          util::trace_instant("service.expire", "service", {});
        break;
      default:
        registry.counter("service.failed").add(1);
        break;
    }
    // Completed requests carry the session-stamped status ("ok" /
    // "degraded"); everything else gets the service's terminal label so
    // report.to_json() still says what happened.
    if (!counted_completed) result.report.status = report_status_label(status);
    {
      std::lock_guard lock(mutex_);
      switch (status) {
        case RequestStatus::kOk:
        case RequestStatus::kDegraded: stats_.completed += 1; break;
        case RequestStatus::kCancelled: stats_.cancelled += 1; break;
        case RequestStatus::kDeadlineExceeded:
          stats_.deadline_exceeded += 1;
          break;
        default: stats_.failed += 1; break;
      }
      stats_.transient_retries += result.transient_retries;
    }
    pending.promise.set_value(std::move(result));
  };

  // A request that expired or was cancelled while queued never runs.
  switch (token.stop_reason()) {
    case StopReason::kCancelled:
      result.error_code = SearchErrorCode::kCancelled;
      result.message = "cancelled while queued";
      finish(RequestStatus::kCancelled);
      return;
    case StopReason::kDeadlineExceeded:
      result.error_code = SearchErrorCode::kDeadlineExceeded;
      result.message = "deadline expired while queued";
      finish(RequestStatus::kDeadlineExceeded);
      return;
    case StopReason::kNone: break;
  }

  double backoff_ms = service_config_.backoff_initial_ms;
  for (;;) {
    SearchErrorCode code = SearchErrorCode::kWorkerFailed;
    bool transient = false;
    try {
      result.report = session_.search(
          std::span<const std::uint8_t>(pending.request.query), token);
      result.message.clear();
      result.error_code.reset();
      // Fold this request's hazards (simtcheck + leakcheck + checkpoint
      // coverage) into the service-lifetime aggregate. Leaf lock, taken
      // engine-idle — never while mutex_ is held.
      {
        std::lock_guard lock(hazards_mu_);
        hazards_.merge(result.report.hazards);
      }
      finish(result.report.degraded() ? RequestStatus::kDegraded
                                      : RequestStatus::kOk);
      return;
    } catch (const SearchError& e) {
      if (e.code() == SearchErrorCode::kCancelled) {
        result.error_code = e.code();
        result.message = e.what();
        finish(RequestStatus::kCancelled);
        return;
      }
      if (e.code() == SearchErrorCode::kDeadlineExceeded) {
        result.error_code = e.code();
        result.message = e.what();
        finish(RequestStatus::kDeadlineExceeded);
        return;
      }
      code = e.code();
      transient = code == SearchErrorCode::kDeviceAllocation ||
                  code == SearchErrorCode::kDeviceTransfer;
      result.message = e.what();
    } catch (const util::FaultInjectedError& e) {
      // A raw fault-point escape (no translation layer in between):
      // classify by the point name, same taxonomy the simt layer uses.
      const std::string_view point = e.point();
      if (point.find("alloc") != std::string_view::npos) {
        code = SearchErrorCode::kDeviceAllocation;
        transient = true;
      } else if (point.find("transfer") != std::string_view::npos) {
        code = SearchErrorCode::kDeviceTransfer;
        transient = true;
      } else {
        code = SearchErrorCode::kDeviceLaunch;
      }
      result.message = e.what();
    } catch (const simt::DeviceError& e) {
      const std::string_view what = e.what();
      if (what.find("transfer") != std::string_view::npos) {
        code = SearchErrorCode::kDeviceTransfer;
        transient = true;
      } else {
        code = SearchErrorCode::kDeviceLaunch;
      }
      result.message = e.what();
    } catch (const std::bad_alloc&) {
      code = SearchErrorCode::kDeviceAllocation;
      transient = true;
      result.message = "device allocation failed (bad_alloc)";
    } catch (const std::exception& e) {
      code = SearchErrorCode::kWorkerFailed;
      result.message = e.what();
    }

    result.error_code = code;
    const bool retries_left =
        result.transient_retries < service_config_.max_transient_retries;
    if (!transient || !retries_left ||
        token.stop_reason() != StopReason::kNone) {
      finish(RequestStatus::kFailed);
      return;
    }

    result.transient_retries += 1;
    registry.counter("service.retries").add(1);
    if (util::trace_enabled())
      util::trace_instant(
          "service.retry", "service",
          {util::targ("attempt",
                      static_cast<std::uint64_t>(result.transient_retries)),
           util::targ("code", to_string(code)),
           util::targ("backoff_ms", backoff_ms)});
    backoff_wait(std::min(backoff_ms, service_config_.backoff_max_ms));
    backoff_ms *= service_config_.backoff_multiplier;
  }
}

}  // namespace repro::core
