#include "core/kernels.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <tuple>

#include "core/extension_internal.hpp"
#include "core/lane_extend.hpp"
#include "core/scoring.hpp"
#include "gpualgo/scan.hpp"
#include "gpualgo/segsort.hpp"
#include "util/fault.hpp"

namespace repro::core {

namespace {

using simt::BlockCtx;
using simt::LaneArray;
using simt::Mask;
using simt::WarpExec;

constexpr int kWordLength = 3;  // the kernels are specialized for W = 3

/// Key identifying a (sequence, diagonal) segment inside a sorted bin.
constexpr std::uint64_t segment_key(std::uint64_t packed) {
  return packed >> 16;
}

}  // namespace

// --------------------------------------------------------------------------
// K1: hit detection with binning (Algorithm 2)
// --------------------------------------------------------------------------

DetectionResult launch_hit_detection(simt::Engine& engine,
                                     const Config& config,
                                     const QueryDevice& query,
                                     const BlockDevice& block, BinGrid& bins,
                                     SurvivorView survivors) {
  const int num_bins = bins.num_bins;
  if (num_bins <= 0 || (num_bins & (num_bins - 1)) != 0 ||
      num_bins > kDiagonalBias)
    throw std::invalid_argument(
        "hit detection: num_bins_per_warp must be a power of two <= 32768");
  if (config.params.word_length != kWordLength)
    throw std::invalid_argument("hit detection kernel requires W == 3");
  bins.clear();

  const simt::MemKind position_kind = config.use_readonly_cache
                                          ? simt::MemKind::kReadOnly
                                          : simt::MemKind::kGlobal;
  const auto capacity = bins.capacity;

  simt::LaunchConfig cfg;
  cfg.name = kKernelDetection;
  cfg.grid_blocks = config.detection_blocks;
  cfg.block_threads = config.detection_block_threads;
  cfg.regs_per_thread = 40;

  engine.launch(cfg, [&](BlockCtx& ctx) {
    const int warps_per_block = ctx.warps_per_block();
    // alloc_zeroed: the per-bin cursors must start at zero (lanes atomically
    // claim slots from them with no prior store) — on hardware this is the
    // cooperative memset a CUDA port has to emit before the scan loop.
    auto top = ctx.shared().alloc_zeroed<std::uint32_t>(
        static_cast<std::size_t>(warps_per_block) *
        static_cast<std::size_t>(num_bins));
    auto presence = ctx.shared().alloc<std::uint32_t>(
        query.presence_bitmap.size());

    // Prologue: cooperative copy of the DFA presence structure into shared
    // memory (the fixed, small "DFA states" part of hierarchical buffering).
    ctx.par([&](WarpExec& w) {
      const auto n = static_cast<std::uint32_t>(presence.size());
      const auto stride =
          static_cast<std::uint32_t>(w.warps_per_block()) * 32;
      LaneArray<std::uint32_t> idx{};
      w.vec([&](int lane) {
        idx[lane] = static_cast<std::uint32_t>(w.warp_in_block()) * 32 +
                    static_cast<std::uint32_t>(lane);
      });
      w.loop_while([&](int lane) { return idx[lane] < n; }, [&] {
        LaneArray<std::uint32_t> vals{};
        w.gather(query.presence_bitmap.data(), idx, vals);
        w.sh_scatter<std::uint32_t, std::uint32_t>(presence, idx, vals);
        w.vec([&](int lane) { idx[lane] += stride; });
      });
    });

    // Main loop: warp per sequence, lane per word position.
    ctx.par([&](WarpExec& w) {
      const auto total_warps = static_cast<std::uint32_t>(w.num_warps_total());
      const auto gw = static_cast<std::uint32_t>(w.global_warp_id());
      const std::uint32_t top_base =
          static_cast<std::uint32_t>(w.warp_in_block()) *
          static_cast<std::uint32_t>(num_bins);
      const std::uint64_t warp_bin_base =
          static_cast<std::uint64_t>(gw) * static_cast<std::uint64_t>(num_bins);

      const std::uint32_t num_items =
          survivors.ids != nullptr ? survivors.count : block.num_seqs;
      for (std::uint32_t item = gw; item < num_items; item += total_warps) {
        std::uint32_t seq = item;
        if (survivors.ids != nullptr) {
          // Warp-uniform indirection through the survivor list.
          LaneArray<std::uint32_t> vidx{};
          LaneArray<std::uint32_t> vval{};
          w.vec([&](int lane) { vidx[lane] = item; });
          w.gather(survivors.ids, vidx, vval);
          seq = vval[0];
        }
        // Warp-uniform loads of the sequence extent (broadcast access).
        LaneArray<std::uint32_t> uidx{};
        LaneArray<std::uint32_t> lo{};
        LaneArray<std::uint32_t> hi{};
        w.vec([&](int lane) { uidx[lane] = seq; });
        w.gather(block.offsets.data(), uidx, lo);
        w.vec([&](int lane) { uidx[lane] = seq + 1; });
        w.gather(block.offsets.data(), uidx, hi);
        const std::uint32_t seq_off = lo[0];
        const std::uint32_t seq_len = hi[0] - lo[0];
        if (seq_len < kWordLength) continue;
        const std::uint32_t num_words = seq_len - kWordLength + 1;

        for (std::uint32_t j0 = 0; j0 < num_words; j0 += 32) {
          LaneArray<std::uint32_t> j{};
          w.vec([&](int lane) {
            j[lane] = j0 + static_cast<std::uint32_t>(lane);
          });
          w.if_then(
              [&](int lane) { return j[lane] < num_words; },
              [&] {
                // Load the word's three residues (coalesced).
                LaneArray<std::uint32_t> sidx{};
                LaneArray<std::uint8_t> c0{}, c1{}, c2{};
                w.vec([&](int lane) { sidx[lane] = seq_off + j[lane]; });
                w.gather(block.residues.data(), sidx, c0);
                w.vec([&](int lane) { ++sidx[lane]; });
                w.gather(block.residues.data(), sidx, c1);
                w.vec([&](int lane) { ++sidx[lane]; });
                w.gather(block.residues.data(), sidx, c2);

                LaneArray<std::uint32_t> word{};
                w.vec([&](int lane) {
                  word[lane] =
                      (static_cast<std::uint32_t>(c0[lane]) *
                           bio::kAlphabetSize +
                       c1[lane]) *
                          bio::kAlphabetSize +
                      c2[lane];
                });

                // Probe the shared-memory presence structure.
                LaneArray<std::uint32_t> bitword{};
                LaneArray<std::uint32_t> bidx{};
                w.vec([&](int lane) { bidx[lane] = word[lane] / 32; });
                w.sh_gather<std::uint32_t, std::uint32_t>(presence, bidx,
                                                          bitword);
                LaneArray<std::uint8_t> present{};
                w.vec([&](int lane) {
                  present[lane] = static_cast<std::uint8_t>(
                      (bitword[lane] >> (word[lane] % 32)) & 1u);
                });

                w.if_then(
                    [&](int lane) { return present[lane] != 0; },
                    [&] {
                      // Query positions via the read-only-cached DFA lists.
                      LaneArray<std::uint32_t> start{}, stop{};
                      w.gather(query.word_offsets.data(), word, start,
                               position_kind);
                      LaneArray<std::uint32_t> word1{};
                      w.vec([&](int lane) { word1[lane] = word[lane] + 1; });
                      w.gather(query.word_offsets.data(), word1, stop,
                               position_kind);

                      LaneArray<std::uint32_t> cursor = start;
                      w.loop_while(
                          [&](int lane) {
                            return cursor[lane] < stop[lane];
                          },
                          [&] {
                            LaneArray<std::uint32_t> qpos{};
                            w.gather(query.word_positions.data(), cursor,
                                     qpos, position_kind);

                            LaneArray<std::uint32_t> bin{};
                            LaneArray<std::uint64_t> packed{};
                            w.vec([&](int lane) {
                              const std::int32_t diag =
                                  static_cast<std::int32_t>(j[lane]) -
                                  static_cast<std::int32_t>(qpos[lane]);
                              bin[lane] = static_cast<std::uint32_t>(
                                  (diag + kDiagonalBias) & (num_bins - 1));
                              packed[lane] = pack_hit(seq, diag, j[lane]);
                            });

                            // Claim a slot via the shared top[] counters.
                            LaneArray<std::uint32_t> tidx{};
                            LaneArray<std::uint32_t> ones{};
                            LaneArray<std::uint32_t> old{};
                            w.vec([&](int lane) {
                              tidx[lane] = top_base + bin[lane];
                              ones[lane] = 1;
                            });
                            w.atomic_add_shared(top, tidx, ones, old);

                            w.if_then_else(
                                [&](int lane) { return old[lane] < capacity; },
                                [&] {
                                  LaneArray<std::uint64_t> slot{};
                                  w.vec([&](int lane) {
                                    slot[lane] =
                                        (warp_bin_base + bin[lane]) *
                                            capacity +
                                        old[lane];
                                  });
                                  w.scatter(bins.slots.data(), slot, packed);
                                },
                                [&] {
                                  LaneArray<std::uint32_t> zero{};
                                  LaneArray<std::uint32_t> one{};
                                  LaneArray<std::uint32_t> prev{};
                                  w.vec([&](int lane) { one[lane] = 1; });
                                  w.atomic_add_global(bins.overflow.data(),
                                                      zero, one, prev);
                                });

                            w.vec([&](int lane) { ++cursor[lane]; });
                          });
                    });
              });
        }
      }

      // Epilogue: flush this warp's shared top[] into the global counters.
      LaneArray<std::uint32_t> b{};
      w.vec([&](int lane) { b[lane] = static_cast<std::uint32_t>(lane); });
      w.loop_while(
          [&](int lane) {
            return b[lane] < static_cast<std::uint32_t>(num_bins);
          },
          [&] {
            LaneArray<std::uint32_t> tidx{};
            LaneArray<std::uint32_t> val{};
            LaneArray<std::uint32_t> gidx{};
            w.vec([&](int lane) { tidx[lane] = top_base + b[lane]; });
            w.sh_gather<std::uint32_t, std::uint32_t>(top, tidx, val);
            w.vec([&](int lane) {
              gidx[lane] = static_cast<std::uint32_t>(warp_bin_base) + b[lane];
            });
            w.scatter(bins.counts.data(), gidx, val);
            w.vec([&](int lane) { b[lane] += 32; });
          });
    });
  });

  DetectionResult result;
  // "core.bin_overflow" forces the overflow path even when the bins held,
  // exercising the capacity-growth ladder on schedules of any density.
  const bool forced_overflow = util::fault_point("core.bin_overflow");
  result.overflowed = bins.overflowed() || forced_overflow;
  for (const auto count : bins.counts)
    result.total_hits += std::min<std::uint32_t>(count, bins.capacity);
  return result;
}

// --------------------------------------------------------------------------
// K2: hit assembling
// --------------------------------------------------------------------------

AssembledBins launch_assemble(simt::Engine& engine, const BinGrid& bins) {
  const std::size_t total_bins = bins.total_bins();

  // Pad every bin to a power of two for the bitonic segmented sort.
  std::vector<std::uint32_t> padded(total_bins);
  for (std::size_t b = 0; b < total_bins; ++b) {
    const std::uint32_t n = std::min(bins.counts[b], bins.capacity);
    padded[b] = n == 0 ? 0 : gpualgo::next_pow2(n);
  }
  AssembledBins out;
  out.offsets = gpualgo::exclusive_scan_device(engine, padded, kKernelScan);
  out.hits.resize(out.offsets.back());
  out.counts.resize(total_bins);

  simt::LaunchConfig cfg;
  cfg.name = kKernelAssemble;
  cfg.grid_blocks = static_cast<int>(total_bins);
  cfg.block_threads = 128;
  cfg.regs_per_thread = 16;

  engine.launch(cfg, [&](BlockCtx& ctx) {
    const auto b = static_cast<std::size_t>(ctx.block_id());
    const std::uint32_t n = std::min(bins.counts[b], bins.capacity);
    out.counts[b] = n;
    const std::uint32_t p = padded[b];
    if (p == 0) return;
    const std::uint64_t src_base = b * bins.capacity;
    const std::uint32_t dst_base = out.offsets[b];

    ctx.par([&](WarpExec& w) {
      const auto stride = static_cast<std::uint32_t>(w.warps_per_block()) * 32;
      LaneArray<std::uint32_t> i{};
      w.vec([&](int lane) {
        i[lane] = static_cast<std::uint32_t>(w.warp_in_block()) * 32 +
                  static_cast<std::uint32_t>(lane);
      });
      w.loop_while([&](int lane) { return i[lane] < p; }, [&] {
        LaneArray<std::uint64_t> v{};
        w.if_then_else(
            [&](int lane) { return i[lane] < n; },
            [&] {
              LaneArray<std::uint64_t> src{};
              w.vec([&](int lane) { src[lane] = src_base + i[lane]; });
              w.gather(bins.slots.data(), src, v);
            },
            [&] {
              w.vec([&](int lane) { v[lane] = gpualgo::kSortPad; });
            });
        LaneArray<std::uint32_t> dst{};
        w.vec([&](int lane) { dst[lane] = dst_base + i[lane]; });
        w.scatter(out.hits.data(), dst, v);
        w.vec([&](int lane) { i[lane] += stride; });
      });
    });
  });

  for (const auto count : out.counts) out.total_hits += count;
  return out;
}

// --------------------------------------------------------------------------
// K3: hit sorting
// --------------------------------------------------------------------------

void launch_sort(simt::Engine& engine, AssembledBins& assembled) {
  gpualgo::segmented_sort_u64(engine, assembled.hits, assembled.offsets,
                              kKernelSort);
}

// --------------------------------------------------------------------------
// K4: hit filtering + segment indexing
// --------------------------------------------------------------------------

FilteredBins launch_filter(simt::Engine& engine, const Config& config,
                           const AssembledBins& assembled) {
  const std::size_t total_bins = assembled.counts.size();
  FilteredBins out;
  out.hits.resize(assembled.hits.size());
  out.offsets = assembled.offsets;
  out.counts.resize(total_bins);
  out.seg_starts.resize(assembled.hits.size());
  out.seg_counts.resize(total_bins);

  const auto window =
      static_cast<std::uint32_t>(config.params.two_hit_window);
  const bool one_hit = config.params.one_hit;

  simt::LaunchConfig cfg;
  cfg.name = kKernelFilter;
  cfg.grid_blocks = static_cast<int>(total_bins);
  cfg.block_threads = 32;
  cfg.regs_per_thread = 24;

  // Pass 1: the two-hit filter (paper Fig. 6c): a hit survives iff its left
  // neighbour is on the same (seq, diagonal) and within the window.
  engine.launch(cfg, [&](BlockCtx& ctx) {
    const auto b = static_cast<std::size_t>(ctx.block_id());
    const std::uint32_t n = assembled.counts[b];
    const std::uint32_t base = assembled.offsets[b];
    ctx.par([&](WarpExec& w) {
      std::uint32_t cursor = 0;
      for (std::uint32_t i0 = 0; i0 < n; i0 += 32) {
        LaneArray<std::uint32_t> i{};
        LaneArray<std::uint64_t> cur{};
        LaneArray<std::uint64_t> prev{};
        LaneArray<std::uint8_t> keep{};
        w.vec([&](int lane) {
          i[lane] = i0 + static_cast<std::uint32_t>(lane);
        });
        w.if_then(
            [&](int lane) { return i[lane] < n; },
            [&] {
              LaneArray<std::uint32_t> idx{};
              w.vec([&](int lane) { idx[lane] = base + i[lane]; });
              w.gather(assembled.hits.data(), idx, cur);
              w.if_then(
                  [&](int lane) { return i[lane] > 0; },
                  [&] {
                    LaneArray<std::uint32_t> pidx{};
                    w.vec([&](int lane) { pidx[lane] = base + i[lane] - 1; });
                    w.gather(assembled.hits.data(), pidx, prev);
                  });
              w.vec([&](int lane) {
                if (i[lane] == 0) {
                  keep[lane] = one_hit ? 1 : 0;
                  return;
                }
                const bool same_segment =
                    segment_key(cur[lane]) == segment_key(prev[lane]);
                if (one_hit) {
                  keep[lane] = 1;
                  return;
                }
                keep[lane] =
                    same_segment && hit_spos(cur[lane]) -
                                            hit_spos(prev[lane]) <=
                                        window
                        ? 1
                        : 0;
              });
            });

        // Warp compaction: survivors append in order.
        LaneArray<std::uint32_t> rank{};
        w.vec([&](int lane) {
          rank[lane] = (i[lane] < n && keep[lane] != 0) ? 1u : 0u;
        });
        const Mask kept = w.ballot([&](int lane) { return rank[lane] != 0; });
        w.window_inclusive_scan(rank, 32);
        w.if_then(
            [&](int lane) { return ((kept >> lane) & 1u) != 0; },
            [&] {
              LaneArray<std::uint32_t> dst{};
              w.vec([&](int lane) {
                dst[lane] = base + cursor + rank[lane] - 1;
              });
              w.scatter(out.hits.data(), dst, cur);
            });
        cursor += static_cast<std::uint32_t>(std::popcount(kept));
      }
      out.counts[b] = cursor;
    });
  });

  // Pass 2: segment indexing over the survivors — start positions of each
  // (seq, diagonal) run, consumed by the extension kernels.
  engine.launch(cfg, [&](BlockCtx& ctx) {
    const auto b = static_cast<std::size_t>(ctx.block_id());
    const std::uint32_t n = out.counts[b];
    const std::uint32_t base = out.offsets[b];
    ctx.par([&](WarpExec& w) {
      std::uint32_t cursor = 0;
      for (std::uint32_t i0 = 0; i0 < n; i0 += 32) {
        LaneArray<std::uint32_t> i{};
        LaneArray<std::uint8_t> is_start{};
        w.vec([&](int lane) {
          i[lane] = i0 + static_cast<std::uint32_t>(lane);
        });
        w.if_then(
            [&](int lane) { return i[lane] < n; },
            [&] {
              LaneArray<std::uint64_t> cur{};
              LaneArray<std::uint64_t> prev{};
              LaneArray<std::uint32_t> idx{};
              w.vec([&](int lane) { idx[lane] = base + i[lane]; });
              w.gather(out.hits.data(), idx, cur);
              w.if_then(
                  [&](int lane) { return i[lane] > 0; },
                  [&] {
                    LaneArray<std::uint32_t> pidx{};
                    w.vec([&](int lane) { pidx[lane] = base + i[lane] - 1; });
                    w.gather(out.hits.data(), pidx, prev);
                  });
              w.vec([&](int lane) {
                is_start[lane] =
                    (i[lane] == 0 ||
                     segment_key(cur[lane]) != segment_key(prev[lane]))
                        ? 1
                        : 0;
              });
            });

        LaneArray<std::uint32_t> rank{};
        w.vec([&](int lane) {
          rank[lane] = (i[lane] < n && is_start[lane] != 0) ? 1u : 0u;
        });
        const Mask starts =
            w.ballot([&](int lane) { return rank[lane] != 0; });
        w.window_inclusive_scan(rank, 32);
        w.if_then(
            [&](int lane) { return ((starts >> lane) & 1u) != 0; },
            [&] {
              LaneArray<std::uint32_t> dst{};
              w.vec([&](int lane) {
                dst[lane] = base + cursor + rank[lane] - 1;
              });
              w.scatter(out.seg_starts.data(), dst, i);
            });
        cursor += static_cast<std::uint32_t>(std::popcount(starts));
      }
      out.seg_counts[b] = cursor;
    });
  });

  for (std::size_t b = 0; b < total_bins; ++b) {
    out.total_survivors += out.counts[b];
    out.total_segments += out.seg_counts[b];
  }
  return out;
}

// --------------------------------------------------------------------------
// K5: ungapped extension (three strategies)
// --------------------------------------------------------------------------

namespace {

using detail::emit_records;
using detail::ExtensionRecords;

struct BinView {
  std::uint32_t base = 0;       ///< survivors region start
  std::uint32_t count = 0;      ///< survivors
  std::uint32_t num_segs = 0;   ///< segments
};

}  // namespace

ExtensionResult launch_extension(simt::Engine& engine, const Config& config,
                                 const QueryDevice& query,
                                 const BlockDevice& block,
                                 const FilteredBins& filtered) {
  const std::size_t total_bins = filtered.counts.size();
  const auto cutoff = config.params.ungapped_cutoff;
  const bool is_hit_based = config.strategy == ExtensionStrategy::kHit;

  // Output regions: one slot per survivor, offset by an exclusive scan of
  // survivor counts.
  std::vector<std::uint32_t> region_base(total_bins + 1, 0);
  for (std::size_t b = 0; b < total_bins; ++b)
    region_base[b + 1] = region_base[b] + filtered.counts[b];
  ExtensionRecords records(region_base.back());
  std::vector<std::uint32_t> emitted(total_bins, 0);

  // Fixed grid; warps stride over bins, exactly as Algorithms 3-5 do
  // ("i <- warpId; ... i <- i + numWarps").
  constexpr int kBlockThreads = 128;
  const int warps_per_block = kBlockThreads / 32;
  const int grid_blocks = std::max<int>(
      1, std::min<int>(16, static_cast<int>(
                               (total_bins +
                                static_cast<std::size_t>(warps_per_block) -
                                1) /
                               static_cast<std::size_t>(warps_per_block))));

  simt::LaunchConfig cfg;
  cfg.name = kKernelExtension;
  cfg.grid_blocks = grid_blocks;
  cfg.block_threads = kBlockThreads;
  cfg.regs_per_thread = 48;

  // Incremented from inside kernel lambdas; blocks may run on different
  // host workers, and relaxed additions commute, so the total is identical
  // for any worker count.
  std::atomic<std::uint64_t> extensions_run{0};

  auto bin_view = [&](std::size_t b) {
    return BinView{filtered.offsets[b], filtered.counts[b],
                   filtered.seg_counts[b]};
  };

  // Per-lane fetch of a packed hit plus its subject extent.
  auto fetch_hit = [&](WarpExec& w, const LaneArray<std::uint32_t>& index,
                       LaneArray<std::uint64_t>& packed,
                       LaneArray<std::uint32_t>& seq,
                       LaneArray<std::int32_t>& diag,
                       LaneArray<std::uint32_t>& spos,
                       LaneArray<std::uint32_t>& qpos,
                       LaneArray<std::uint32_t>& seq_off,
                       LaneArray<std::uint32_t>& seq_len) {
    w.gather(filtered.hits.data(), index, packed);
    w.vec([&](int lane) {
      seq[lane] = hit_seq(packed[lane]);
      diag[lane] = hit_diagonal(packed[lane]);
      spos[lane] = hit_spos(packed[lane]);
      qpos[lane] = hit_qpos(packed[lane]);
    });
    LaneArray<std::uint32_t> next{};
    w.gather(block.offsets.data(), seq, seq_off);
    w.vec([&](int lane) { next[lane] = seq[lane] + 1; });
    LaneArray<std::uint32_t> hi{};
    w.gather(block.offsets.data(), next, hi);
    w.vec([&](int lane) { seq_len[lane] = hi[lane] - seq_off[lane]; });
  };

  if (config.strategy == ExtensionStrategy::kDiagonal || is_hit_based) {
    engine.launch(cfg, [&](BlockCtx& ctx) {
      const DeviceScoring scoring = DeviceScoring::setup(ctx, config, query);
      ctx.par([&](WarpExec& w) {
        const auto total_warps =
            static_cast<std::size_t>(w.num_warps_total());
        for (std::size_t b = static_cast<std::size_t>(w.global_warp_id());
             b < total_bins; b += total_warps) {
        const BinView view = bin_view(b);
        std::uint32_t cursor = 0;
        const std::uint32_t out_base = region_base[b];

        if (is_hit_based) {
          // Algorithm 4: lane per hit, extend everything, de-dup later.
          LaneArray<std::uint32_t> i{};
          w.vec([&](int lane) {
            i[lane] = static_cast<std::uint32_t>(lane);
          });
          w.loop_while(
              [&](int lane) { return i[lane] < view.count; },
              [&] {
                LaneArray<std::uint32_t> idx{};
                w.vec([&](int lane) { idx[lane] = view.base + i[lane]; });
                LaneArray<std::uint64_t> packed{};
                LaneArray<std::uint32_t> seq{}, spos{}, qpos{}, seq_off{},
                    seq_len{};
                LaneArray<std::int32_t> diag{};
                fetch_hit(w, idx, packed, seq, diag, spos, qpos, seq_off,
                          seq_len);

                LaneExtendIo io;
                w.vec([&](int lane) {
                  io.qpos[lane] = qpos[lane];
                  io.spos[lane] = spos[lane];
                  io.seq_off[lane] = seq_off[lane];
                  io.seq_len[lane] = seq_len[lane];
                });
                lane_extend_ungapped(w, scoring, block.residues.data(),
                                     query.query_length, config.params, io);
                extensions_run.fetch_add(
                    static_cast<std::uint64_t>(w.active_lanes()),
                    std::memory_order_relaxed);

                LaneArray<std::uint8_t> emit{};
                LaneArray<std::uint32_t> diag_biased{};
                w.vec([&](int lane) {
                  emit[lane] = 1;  // every record participates in de-dup
                  diag_biased[lane] = static_cast<std::uint32_t>(
                      diag[lane] + kDiagonalBias);
                });
                emit_records(w, records, out_base, cursor, emit, seq,
                             diag_biased, spos, io.q_start, io.q_end,
                             io.score);
                w.vec([&](int lane) { i[lane] += 32; });
              });
        } else {
          // Algorithm 3: lane per diagonal segment.
          LaneArray<std::uint32_t> seg{};
          w.vec([&](int lane) {
            seg[lane] = static_cast<std::uint32_t>(lane);
          });
          w.loop_while(
              [&](int lane) { return seg[lane] < view.num_segs; },
              [&] {
                LaneArray<std::uint32_t> sidx{};
                LaneArray<std::uint32_t> seg_begin{};
                LaneArray<std::uint32_t> seg_end{};
                w.vec([&](int lane) {
                  sidx[lane] = view.base + seg[lane];
                });
                w.gather(filtered.seg_starts.data(), sidx, seg_begin);
                w.if_then_else(
                    [&](int lane) { return seg[lane] + 1 < view.num_segs; },
                    [&] {
                      LaneArray<std::uint32_t> nidx{};
                      w.vec([&](int lane) { nidx[lane] = sidx[lane] + 1; });
                      w.gather(filtered.seg_starts.data(), nidx, seg_end);
                    },
                    [&] {
                      w.vec([&](int lane) { seg_end[lane] = view.count; });
                    });

                LaneArray<std::uint32_t> k = seg_begin;
                LaneArray<std::int32_t> ext_reach{};
                w.vec([&](int lane) { ext_reach[lane] = -1; });

                w.loop_while(
                    [&](int lane) { return k[lane] < seg_end[lane]; },
                    [&] {
                      LaneArray<std::uint32_t> idx{};
                      w.vec([&](int lane) {
                        idx[lane] = view.base + k[lane];
                      });
                      LaneArray<std::uint64_t> packed{};
                      LaneArray<std::uint32_t> seq{}, spos{}, qpos{},
                          seq_off{}, seq_len{};
                      LaneArray<std::int32_t> diag{};
                      fetch_hit(w, idx, packed, seq, diag, spos, qpos,
                                seq_off, seq_len);

                      w.if_then(
                          [&](int lane) {
                            return static_cast<std::int32_t>(spos[lane]) >
                                   ext_reach[lane];
                          },
                          [&] {
                            LaneExtendIo io;
                            w.vec([&](int lane) {
                              io.qpos[lane] = qpos[lane];
                              io.spos[lane] = spos[lane];
                              io.seq_off[lane] = seq_off[lane];
                              io.seq_len[lane] = seq_len[lane];
                            });
                            lane_extend_ungapped(
                                w, scoring, block.residues.data(),
                                query.query_length, config.params, io);
                            extensions_run.fetch_add(
                                static_cast<std::uint64_t>(w.active_lanes()),
                                std::memory_order_relaxed);

                            LaneArray<std::uint8_t> emit{};
                            LaneArray<std::uint32_t> diag_biased{};
                            w.vec([&](int lane) {
                              ext_reach[lane] = static_cast<std::int32_t>(
                                  io.q_end[lane]) + diag[lane];
                              emit[lane] = io.score[lane] >= cutoff ? 1 : 0;
                              diag_biased[lane] = static_cast<std::uint32_t>(
                                  diag[lane] + kDiagonalBias);
                            });
                            emit_records(w, records, out_base, cursor, emit,
                                         seq, diag_biased, spos, io.q_start,
                                         io.q_end, io.score);
                          });
                      w.vec([&](int lane) { ++k[lane]; });
                    });
                w.vec([&](int lane) { seg[lane] += 32; });
              });
        }
        emitted[b] = cursor;
        }
      });
    });
  } else {
    // Algorithm 5: window-based extension (window_kernel.cpp).
    detail::run_window_extension_kernel(engine, config, query, block,
                                        filtered, cfg, region_base, records,
                                        emitted, extensions_run);
  }

  // Host-side collection (modeled as the D2H copy of the record buffer).
  ExtensionResult result;
  result.extensions_run = extensions_run.load(std::memory_order_relaxed);
  std::vector<std::tuple<std::uint64_t, blast::UngappedExtension>> staged;
  for (std::size_t b = 0; b < total_bins; ++b) {
    for (std::uint32_t r = 0; r < emitted[b]; ++r) {
      const std::uint32_t slot = region_base[b] + r;
      blast::UngappedExtension ext;
      ext.seq = records.seq[slot];
      ext.q_start = records.q_start[slot];
      ext.q_end = records.q_end[slot];
      const std::int32_t diag =
          static_cast<std::int32_t>(records.diag_biased[slot]) -
          kDiagonalBias;
      ext.s_start = static_cast<std::uint32_t>(
          static_cast<std::int32_t>(ext.q_start) + diag);
      ext.s_end = static_cast<std::uint32_t>(
          static_cast<std::int32_t>(ext.q_end) + diag);
      ext.score = records.score[slot];
      const std::uint64_t order_key =
          (static_cast<std::uint64_t>(ext.seq) << 32) |
          (static_cast<std::uint64_t>(records.diag_biased[slot]) << 16) |
          records.seed_spos[slot];
      staged.emplace_back(order_key, ext);
      result.records_d2h_bytes += records.bytes_per_record();
    }
  }
  std::sort(staged.begin(), staged.end());

  if (is_hit_based) {
    // De-duplication step of Algorithm 4: replay the coverage rule per
    // (seq, diagonal) over the seed order, exactly as the diagonal-based
    // kernel applies it inline.
    std::uint64_t current_group = ~0ULL;
    std::int64_t ext_reach = -1;
    for (const auto& [key, ext] : staged) {
      const std::uint64_t group = key >> 16;
      const auto seed_spos = static_cast<std::uint32_t>(key & 0xffff);
      if (group != current_group) {
        current_group = group;
        ext_reach = -1;
      }
      if (static_cast<std::int64_t>(seed_spos) <= ext_reach) continue;
      ext_reach = ext.s_end;
      if (ext.score >= cutoff) result.extensions.push_back(ext);
    }
  } else {
    result.extensions.reserve(staged.size());
    for (const auto& [key, ext] : staged) result.extensions.push_back(ext);
  }
  return result;
}

}  // namespace repro::core
