// cuBLASTP engine configuration: the paper's tunables.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "blast/types.hpp"

namespace repro::core {

/// Which fine-grained ungapped-extension kernel to run (paper §3.4,
/// Fig. 9b-d; selectable at run time, as the paper prescribes).
enum class ExtensionStrategy {
  kDiagonal,  ///< Algorithm 3: one thread per diagonal
  kHit,       ///< Algorithm 4: one thread per hit + de-duplication
  kWindow,    ///< Algorithm 5: one window of lanes per diagonal
};

/// How the extension kernels score residue pairs (paper §3.5, Fig. 15).
enum class ScoringMode {
  kAuto,    ///< PSSM for short queries, BLOSUM62 for long ones
  kPssm,    ///< position-specific matrix (shared memory while it fits)
  kBlosum,  ///< 2 kB BLOSUM62 always in shared memory
};

/// Whether the SSV-style pre-filter runs in front of the fine pipeline
/// (DESIGN.md §13). The filter is lossless at the calibrated threshold, so
/// every mode produces bit-identical results.
enum class PrefilterMode {
  kOff,   ///< every sequence enters the fine pipeline (legacy behaviour)
  kOn,    ///< filter every block; survivors go to the fine pipeline
  kAuto,  ///< filter, then route dense blocks to the coarse backend
};

/// Which backend served a database block (recorded per block in
/// SearchReport::block_backends).
enum class BlockBackend : std::uint8_t {
  kFine,          ///< unfiltered fine pipeline (prefilter off or degraded)
  kFineFiltered,  ///< fine pipeline over the pre-filter survivor list
  kCoarse,        ///< fused coarse kernel (auto mode, dense block)
  kCpu,           ///< degradation-ladder CPU fallback
};

[[nodiscard]] inline const char* prefilter_mode_name(PrefilterMode mode) {
  switch (mode) {
    case PrefilterMode::kOn: return "on";
    case PrefilterMode::kAuto: return "auto";
    case PrefilterMode::kOff: break;
  }
  return "off";
}

[[nodiscard]] inline const char* block_backend_name(BlockBackend backend) {
  switch (backend) {
    case BlockBackend::kFineFiltered: return "fine_filtered";
    case BlockBackend::kCoarse: return "coarse";
    case BlockBackend::kCpu: return "cpu";
    case BlockBackend::kFine: break;
  }
  return "fine";
}

struct Config {
  blast::SearchParams params;

  /// Bins per detection warp (paper Fig. 14; 128 is the paper's optimum).
  int num_bins_per_warp = 128;

  /// Detection grid shape: warps own bins, so the grid is fixed.
  int detection_blocks = 8;
  int detection_block_threads = 256;  ///< 8 warps per block

  /// Initial per-bin capacity in packed hits; grows on overflow.
  std::size_t bin_capacity = 256;

  /// Cap on overflow-driven capacity doublings per block attempt. Hitting
  /// it surfaces SearchError{kBinOverflowExhausted} to the degradation
  /// ladder instead of looping forever (the paper's fixed-capacity bins of
  /// §3.2 must overflow eventually on adversarial input).
  int max_bin_retries = 8;

  /// Hard ceiling on the grown per-bin capacity (guards the uint32 counter
  /// fields long before they can wrap, and bounds the slots buffer: it
  /// holds warps x bins x capacity 8-byte elements, ~1 GiB at this cap for
  /// the default grid).
  std::uint32_t max_bin_capacity = 1u << 14;

  ExtensionStrategy strategy = ExtensionStrategy::kWindow;
  ScoringMode scoring = ScoringMode::kAuto;
  int window_size = 8;  ///< lanes per window in the window-based kernel

  /// Hierarchical buffering toggle (paper Fig. 17): route the DFA query
  /// positions through the read-only cache.
  bool use_readonly_cache = true;

  /// Queries at most this long use the PSSM under ScoringMode::kAuto.
  std::size_t auto_pssm_max_query = 256;

  /// SSV-style pre-filter in front of the fine pipeline (DESIGN.md §13).
  PrefilterMode prefilter = PrefilterMode::kOff;

  /// Pre-filter score threshold override. 0 (the default) derives the
  /// lossless threshold from the Karlin-Altschul params: min(ungapped
  /// cutoff, minimal E-value-significant score). Nonzero values override
  /// it — values above the derived threshold trade sensitivity for speed
  /// and void the losslessness guarantee.
  int prefilter_threshold = 0;

  /// Auto-mode backend switch (HMMER's BACKEND_SWITCH_THRESHOLD idea):
  /// blocks whose survivor pass rate is at least this fraction are served
  /// by the fused coarse kernel instead of the filtered fine pipeline.
  double prefilter_backend_switch = 0.25;

  /// Database blocks for the CPU/GPU pipeline (paper Fig. 12).
  std::size_t db_blocks = 4;

  /// CPU worker threads for gapped extension and traceback.
  std::size_t cpu_threads = 4;

  /// Host worker threads the SIMT engine uses to execute blocks
  /// (SM-sharded; see DESIGN.md). 1 = serial engine. Any value yields
  /// bit-identical results and metrics.
  int engine_workers = 1;

  /// Modeled GPUs in the scatter–gather fleet (DESIGN.md §17): a
  /// core::ShardedSession partitions the database blocks contiguously
  /// across this many core::EngineShard units, scatters each query to all
  /// of them, and merges with aggregate Karlin–Altschul statistics.
  /// 1 = today's single-engine layout (core::SearchSession is the K=1
  /// special case). Clamped to the block count; any value yields results
  /// bit-identical to the single-engine search.
  std::size_t shards = 1;

  /// Runs every kernel under the simtcheck hazard analyzer (racecheck/
  /// synccheck/memcheck; see simt/simtcheck.hpp) and fills
  /// SearchReport::hazards. false still honours the REPRO_SIMTCHECK
  /// environment toggle the Engine reads at construction.
  bool simtcheck = false;

  /// Runs the host-side concurrency analyzer (util/svccheck.hpp): lock-
  /// order graph over the service/pool mutexes, blocked-while-locked
  /// waits, and cancellation checkpoint-coverage assertions, surfaced as
  /// SearchReport::hazards. false still honours the REPRO_SVCCHECK
  /// environment toggle, read when a session or service is constructed.
  bool svccheck = false;

  /// Fault-injection schedule installed into util::FaultInjector for the
  /// duration of each search() (see util/fault.hpp for the grammar).
  /// Empty = leave the process-wide (env-driven) schedule untouched.
  std::string fault_schedule;
  std::uint64_t fault_seed = 0;  ///< 0 = util::default_fault_seed()

  /// Non-empty: search() records a Chrome-trace session and writes it here
  /// (see util/trace.hpp; load in chrome://tracing or Perfetto). Empty:
  /// the REPRO_TRACE environment variable supplies the path instead, and
  /// if neither is set tracing stays off (one branch per site). When an
  /// outer session is already active (e.g. blastp_cli --trace spanning
  /// several queries), search() joins it rather than starting its own.
  std::string trace_path;

  /// Non-empty: the process metrics registry is exported here after
  /// search() (".prom"/".txt" = Prometheus text, ".json" = JSON; any other
  /// extension is a SearchError{kInvalidArgument}). Empty: the
  /// REPRO_METRICS environment variable is honoured the same way.
  std::string metrics_path;

  /// Non-empty: the session's continuous profiler (simt/simtprof.hpp)
  /// exports its cumulative "cublastp.profile.v1" JSON here after every
  /// search/batch, so the file always holds the run-to-date aggregate.
  /// Must end in ".json". Empty: the REPRO_PROFILE environment variable is
  /// honoured the same way; if neither is set nothing is written (the
  /// profiler still aggregates — collection is always on and cheap).
  std::string profile_path;

  [[nodiscard]] int detection_warps() const {
    return detection_blocks * detection_block_threads / 32;
  }
};

}  // namespace repro::core
