// The staged cuBLASTP search pipeline (DESIGN.md §12).
//
// CuBlastp::search used to be one ~550-line monolith; these are its stages,
// each with a narrow interface so they are individually testable and can be
// scheduled independently of one another:
//
//   stage 1  query preparation            query_context.hpp
//   stage 2  database residency (H2D)     BlockResidency — upload once
//   stage 3  per-block GPU attempt with   run_block_ladder (rungs: GPU,
//            the degradation ladder        GPU w/ cache off, CPU fallback)
//   stage 4  CPU gapped + traceback       run_block_cpu_stage
//   stage 5  finalize (rank, e-values)    run_finalize
//   model    Fig. 12 overlap walk         walk_pipeline / walk_batch_pipeline
//
// A SearchSession (search_session.hpp) owns the long-lived state (engine,
// residency) and threads the stages together; the stages themselves hold no
// hidden state beyond what their signatures say.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "bio/database.hpp"
#include "blast/results.hpp"
#include "blast/types.hpp"
#include "core/cancellation.hpp"
#include "core/config.hpp"
#include "core/device_data.hpp"
#include "core/errors.hpp"
#include "core/kernels.hpp"
#include "core/query_context.hpp"
#include "simt/engine.hpp"
#include "util/makespan.hpp"

namespace repro::core {

/// Validates and normalizes a Config the way every entry point must:
/// throws std::invalid_argument for contract violations (bins not a power
/// of two) and clamps zero/negative tunables to their minimums.
[[nodiscard]] Config normalized_config(Config config);

/// Stage 2: device residency of the database blocks, owned by a session.
/// Each block is uploaded at most once — lazily, inside the first search
/// that touches it, so the `h2d_block` transfer lands in that search's
/// trace/profile — and the device image is reused by every later search.
/// A failed upload (injected alloc/transfer fault) leaves the block
/// non-resident so the next attempt retries the transfer.
class BlockResidency {
 public:
  BlockResidency(const bio::SequenceDatabase& db,
                 std::vector<std::pair<std::size_t, std::size_t>> blocks);

  [[nodiscard]] std::size_t num_blocks() const { return blocks_.size(); }
  [[nodiscard]] const std::pair<std::size_t, std::size_t>& range(
      std::size_t bi) const {
    return blocks_[bi];
  }

  /// Returns the device image of block `bi`, uploading it first if this is
  /// the first use. Throws std::bad_alloc / simt::DeviceError /
  /// util::FaultInjectedError on (injected) allocation or transfer
  /// failures.
  const BlockDevice& ensure(simt::Engine& engine, std::size_t bi);

  /// Total `h2d_block` bytes this residency has transferred. After any
  /// fault-free search the value equals the database image size and never
  /// grows again — the amortization a session exists to provide.
  [[nodiscard]] std::uint64_t uploaded_bytes() const {
    return uploaded_bytes_;
  }
  /// Uploads performed (fault-free: exactly one per block per session).
  [[nodiscard]] std::uint64_t uploads() const { return uploads_; }

 private:
  const bio::SequenceDatabase* db_;
  std::vector<std::pair<std::size_t, std::size_t>> blocks_;
  std::vector<std::optional<BlockDevice>> resident_;
  std::uint64_t uploaded_bytes_ = 0;
  std::uint64_t uploads_ = 0;
};

/// Everything one database block contributes to the report, whichever rung
/// of the ladder produced it.
struct BlockOutcome {
  std::vector<blast::UngappedExtension> extensions;  ///< global seq indices
  std::uint64_t hits_detected = 0;
  std::uint64_t hits_after_filter = 0;
  std::uint64_t ungapped_extensions = 0;
  double cpu_fallback_seconds = 0.0;  ///< host critical-phase cost (rung 3)
};

/// One GPU attempt at a block: K1 with bounded capacity growth, then K2-K5
/// and the D2H copy, against an already-resident device block. Throws
/// simt::DeviceError / std::bad_alloc / util::FaultInjectedError on device
/// failures, and SearchError with kBinOverflowExhausted when capacity
/// growth hits its retry or size caps.
[[nodiscard]] BlockOutcome run_block_on_gpu(simt::Engine& engine,
                                            const Config& config,
                                            const QueryDevice& query,
                                            const BlockDevice& block,
                                            std::uint32_t& bin_capacity,
                                            std::uint64_t& overflow_retries,
                                            SurvivorView survivors = {});

/// The coarse backend for one block (auto-mode dense-block routing): the
/// fused kernel of core/coarse_block.hpp with bounded output-capacity
/// growth, normalized to the same BlockOutcome contract as the fine path.
/// Produces the identical qualifying-extension set — the gapped stage
/// sorts and de-duplicates, so emission order differences are invisible.
[[nodiscard]] BlockOutcome run_block_on_coarse(simt::Engine& engine,
                                               const Config& config,
                                               const QueryDevice& query,
                                               const BlockDevice& block,
                                               std::uint64_t& overflow_retries);

/// The last rung of the ladder: the block's critical phases on the host,
/// via the same scalar routines the FSA-BLAST baseline runs. Produces the
/// same qualifying-extension set as the fine-grained kernels (the
/// reproduction's §4.3 correctness anchor).
[[nodiscard]] BlockOutcome run_block_on_cpu(const blast::WordLookup& lookup,
                                            const bio::Pssm& pssm,
                                            const bio::SequenceDatabase& db,
                                            std::size_t begin, std::size_t end,
                                            std::size_t query_length,
                                            const blast::SearchParams& params);

/// Stage 3 result: the block outcome plus what the ladder did to get it.
struct BlockLadderResult {
  BlockOutcome outcome;
  std::uint32_t failed_attempts = 0;  ///< GPU rungs that failed (0..2)
  bool cache_off_retry = false;       ///< rung 2 was attempted
  bool degraded = false;              ///< rung 3 (CPU fallback) served it
  BlockBackend backend = BlockBackend::kFine;  ///< who served the block
  std::uint64_t prefilter_seqs = 0;       ///< sequences the filter scored
  std::uint64_t prefilter_survivors = 0;  ///< sequences that passed
  bool prefilter_degraded = false;  ///< filter failed; served unfiltered
  /// Words the serving backend actually scanned: survivor words when the
  /// filtered fine path served the block, the whole block otherwise.
  std::uint64_t words_scanned = 0;
};

/// Stage 3: one database block through the full degradation ladder —
/// rung 1 the fine-grained GPU pipeline (behind the pre-filter router when
/// `prefilter` is non-null: kOn serves survivors on the fine path, kAuto
/// additionally routes dense blocks to the coarse backend), rung 2 one
/// more unfiltered GPU attempt with the read-only cache disabled, rung 3
/// the CPU fallback. A filter failure degrades to the unfiltered fine path
/// inside rung 1 — the filter can only be skipped, never drop results.
/// Every rung produces the same extension set. Restores the engine's cache
/// setting to `config.use_readonly_cache` before returning (also when the
/// ladder unwinds). Throws SearchError{kDegradationExhausted} when all
/// three rungs fail.
///
/// `cancel` (empty by default) is polled at the ladder's internal stage
/// boundaries — entry, between GPU rungs, and before the CPU fallback — so
/// a cancelled or expired request aborts between attempts with
/// SearchError{kCancelled}/{kDeadlineExceeded} instead of grinding through
/// retries it no longer wants.
[[nodiscard]] BlockLadderResult run_block_ladder(
    simt::Engine& engine, const Config& config, const QueryContext& ctx,
    const bio::SequenceDatabase& db, BlockResidency& residency,
    std::size_t bi, std::uint32_t& bin_capacity,
    std::uint64_t& overflow_retries,
    const PrefilterDevice* prefilter = nullptr, int prefilter_threshold = 0,
    const CancellationToken& cancel = {});

/// Stage 4 result for one block: gapped/traceback work, modeled makespans,
/// and (while tracing) the greedy schedule placements the modeled Fig. 12
/// timeline draws.
struct BlockCpuResult {
  std::vector<blast::Alignment> alignments;  ///< unranked, no e-values yet
  double gapped_makespan_seconds = 0.0;
  double traceback_makespan_seconds = 0.0;
  std::uint64_t gapped_extensions = 0;
  std::uint64_t tracebacks = 0;
  std::vector<util::ScheduledTask> gapped_schedule;
  std::vector<util::ScheduledTask> traceback_schedule;
};

/// Stage 4: gapped extension + traceback for one block's qualifying
/// ungapped extensions. Pure with respect to the engine and the session —
/// it reads only the query context and the host database — so one query's
/// CPU stage can run concurrently with another query's GPU stages.
[[nodiscard]] BlockCpuResult run_block_cpu_stage(
    const QueryContext& ctx, const bio::SequenceDatabase& db,
    std::span<const blast::UngappedExtension> extensions,
    const Config& config);

/// Stage 5: merges per-block alignments, attaches e-values/bit scores,
/// filters and ranks. Returns the host seconds spent.
double run_finalize(std::vector<blast::Alignment>& alignments,
                    const QueryContext& ctx, const Config& config);

// ---------------------------------------------------------------------------
// Pipeline model (paper Fig. 12), generalized across queries.
// ---------------------------------------------------------------------------

/// One database block on the modeled timeline.
struct ModeledBlock {
  std::size_t query_index = 0;
  std::size_t block_index = 0;
  double gpu_s = 0.0;       ///< H2D + kernels + D2H chain for this block
  double cpu_s = 0.0;       ///< gapped + traceback makespans + fallback
  double fallback_s = 0.0;  ///< CPU-fallback part of cpu_s (rung 3)
  // Greedy-schedule placements, kept only while tracing so the modeled
  // Fig. 12 timeline can draw per-worker spans.
  std::vector<util::ScheduledTask> gapped_schedule;
  std::vector<util::ScheduledTask> traceback_schedule;
};

struct PipelineTotals {
  double overlapped_s = 0.0;  ///< makespan of the two-resource walk
  double serial_s = 0.0;      ///< sum of every phase (no overlap)
};

/// Single-query Fig. 12 walk: the GPU/PCIe chain processes blocks in
/// order; the CPU phases of block i start when both its GPU chain and the
/// CPU phases of block i-1 are done. While tracing (and `emit_modeled` is
/// set — batch reports pass false and emit the cross-query walk instead),
/// the walk is emitted as the synthetic "modeled pipeline" process of the
/// trace.
[[nodiscard]] PipelineTotals walk_pipeline(std::span<const ModeledBlock> blocks,
                                           std::size_t cpu_threads,
                                           bool emit_modeled = true);

/// One query's contribution to the batch walk.
struct ModeledQuery {
  double prep_s = 0.0;      ///< query preparation (CPU, gates the GPU chain)
  double finalize_s = 0.0;  ///< result finalization (CPU)
  std::vector<ModeledBlock> blocks;
};

/// Cross-query generalization of the Fig. 12 walk (DESIGN.md §12): one GPU
/// chain and one CPU resource shared by every query, so query q+1's GPU
/// blocks run while query q's CPU phases drain — the paper's intra-query
/// overlap applied across a batch. Reduces to prep + walk_pipeline +
/// finalize for a single query. While tracing, the batch walk is emitted
/// as the modeled-pipeline process. Returns the batch makespan in seconds.
[[nodiscard]] double walk_batch_pipeline(std::span<const ModeledQuery> queries,
                                         std::size_t cpu_threads);

}  // namespace repro::core
