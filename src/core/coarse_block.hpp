// The fused coarse kernel (paper §3.1 / Algorithm 1) as a reusable
// per-block unit: one lane = one subject sequence, hit detection + two-hit
// logic + inline ungapped extension run to completion in a single launch.
// Historically this lived inside the coarse baselines; it moved here so the
// adaptive pre-filter router (DESIGN.md §13) can serve dense database
// blocks with it, while `baselines::CoarseSession` keeps calling the same
// code for the CUDA-BLASTP / GPU-BLASTP reproductions.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "blast/types.hpp"
#include "core/device_data.hpp"
#include "simt/engine.hpp"

namespace repro::core {

/// Profile-registry name of the fused kernel (shared with the baselines).
inline constexpr const char* kKernelCoarse = "coarse_fused";

struct CoarseBlockConfig {
  blast::SearchParams params;
  int grid_blocks = 8;
  int block_threads = 128;
  /// GPU-BLASTP's atomic work queue vs CUDA-BLASTP's static assignment.
  /// The core router always uses the static assignment (deterministic for
  /// any engine worker count); the baselines choose per reproduction.
  bool dynamic_queue = false;
};

struct CoarseBlockOutput {
  /// Qualifying extensions (score >= ungapped_cutoff), seq ids block-local.
  std::vector<blast::UngappedExtension> extensions;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t hits_detected = 0;
  std::uint64_t extensions_run = 0;  ///< two-hit triggers (extension calls)
  bool overflowed = false;           ///< output capacity exhausted; retry
};

/// Runs the fused kernel over one resident block with a fixed per-grid-block
/// output capacity. On overflow the partial output is discarded and
/// `overflowed` is set; callers own the grow-and-retry policy.
[[nodiscard]] CoarseBlockOutput run_coarse_block(simt::Engine& engine,
                                                 const CoarseBlockConfig& config,
                                                 const QueryDevice& query,
                                                 const BlockDevice& block,
                                                 std::uint32_t output_capacity);

}  // namespace repro::core
