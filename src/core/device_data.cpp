#include "core/device_data.hpp"

#include <algorithm>
#include <limits>

#include "simt/simtcheck.hpp"

namespace repro::core {

QueryDevice::QueryDevice(std::span<const std::uint8_t> query_residues,
                         const blast::WordLookup& lookup,
                         const bio::Pssm& host_pssm)
    : query_length(static_cast<std::uint32_t>(query_residues.size())) {
  simt::DeviceAllocSite site("core.query_device");
  word_offsets.assign(lookup.offset_buffer().begin(),
                      lookup.offset_buffer().end());
  word_positions.assign(lookup.position_buffer().begin(),
                        lookup.position_buffer().end());

  presence_bitmap.assign((lookup.num_words() + 31) / 32, 0);
  for (std::uint32_t w = 0; w < lookup.num_words(); ++w)
    if (!lookup.positions(w).empty())
      presence_bitmap[w / 32] |= 1u << (w % 32);

  pssm.assign(host_pssm.device_buffer().begin(),
              host_pssm.device_buffer().end());
  const auto& padded = bio::Blosum62::instance().padded();
  blosum.assign(padded.begin(), padded.end());
  query.assign(query_residues.begin(), query_residues.end());
}

std::uint64_t QueryDevice::h2d_bytes() const {
  return word_offsets.size() * sizeof(std::uint32_t) +
         word_positions.size() * sizeof(std::uint32_t) +
         presence_bitmap.size() * sizeof(std::uint32_t) +
         pssm.size() * sizeof(std::int16_t) +
         blosum.size() * sizeof(std::int16_t) + query.size();
}

PrefilterDevice::PrefilterDevice(const bio::Pssm& host_pssm) {
  simt::DeviceAllocSite site("core.prefilter_device");
  constexpr std::size_t kRows = static_cast<std::size_t>(bio::kPaddedMatrixDim);
  constexpr std::size_t kReal = static_cast<std::size_t>(bio::kAlphabetSize);
  best_residue.assign(kRows, 0);
  std::int32_t table_max = std::numeric_limits<std::int32_t>::min();
  for (std::size_t r = 0; r < kReal; ++r) {
    std::int32_t best = std::numeric_limits<std::int32_t>::min();
    for (std::size_t pos = 0; pos < host_pssm.query_length(); ++pos)
      best = std::max(best, static_cast<std::int32_t>(host_pssm.score(
                                pos, static_cast<std::uint8_t>(r))));
    best_residue[r] = best;
    table_max = std::max(table_max, best);
  }
  // Padding rows can never hold real residues (the alphabet is 24 wide),
  // but fill them with the table max so a stray gather only over-survives.
  for (std::size_t r = kReal; r < kRows; ++r) best_residue[r] = table_max;
}

BlockDevice::BlockDevice(const bio::SequenceDatabase& db, std::size_t begin,
                         std::size_t end)
    : num_seqs(static_cast<std::uint32_t>(end - begin)),
      first_seq(static_cast<std::uint32_t>(begin)) {
  const std::uint64_t base = db.offsets()[begin];
  const std::uint64_t stop = db.offsets()[end];
  residues.assign(db.buffer().begin() + static_cast<std::ptrdiff_t>(base),
                  db.buffer().begin() + static_cast<std::ptrdiff_t>(stop));
  offsets.resize(num_seqs + 1);
  for (std::size_t i = begin; i <= end; ++i)
    offsets[i - begin] = static_cast<std::uint32_t>(db.offsets()[i] - base);
  // The host-side fill above models the H2D staging copy; tell initcheck
  // the whole buffer is defined (element writes through operator[] are not
  // instrumented, only allocator-level fills are).
  simt::mark_device_initialized(offsets.data(),
                                offsets.size() * sizeof(std::uint32_t));
  for (std::size_t i = begin; i < end; ++i)
    max_seq_len =
        std::max(max_seq_len, static_cast<std::uint32_t>(db.length(i)));
}

}  // namespace repro::core
