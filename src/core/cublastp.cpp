#include "core/cublastp.hpp"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bio/karlin.hpp"
#include "bio/pssm.hpp"
#include "blast/results.hpp"
#include "blast/ungapped.hpp"
#include "blast/wordlookup.hpp"
#include "core/bins.hpp"
#include "core/device_data.hpp"
#include "core/kernels.hpp"
#include "util/fault.hpp"
#include "util/makespan.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace repro::core {

namespace {

/// Modeled GPU time accumulated in `registry` for one kernel name (ms).
double kernel_ms(const simt::ProfileRegistry& registry, const char* name) {
  return registry.has(name) ? registry.at(name).time_ms : 0.0;
}

/// Everything one database block contributes to the report, whichever rung
/// of the ladder produced it.
struct BlockOutcome {
  std::vector<blast::UngappedExtension> extensions;  ///< global seq indices
  std::uint64_t hits_detected = 0;
  std::uint64_t hits_after_filter = 0;
  std::uint64_t ungapped_extensions = 0;
  double cpu_fallback_seconds = 0.0;  ///< host critical-phase cost (rung 3)
};

/// One GPU attempt at a block: H2D, K1 with bounded capacity growth, then
/// K2-K5 and the D2H copy. Throws simt::DeviceError / std::bad_alloc /
/// util::FaultInjectedError on device failures, and SearchError with
/// kBinOverflowExhausted when capacity growth hits its retry or size caps.
BlockOutcome run_block_on_gpu(simt::Engine& engine, const Config& config,
                              const QueryDevice& query,
                              const bio::SequenceDatabase& db,
                              std::size_t begin, std::size_t end,
                              std::uint32_t& bin_capacity,
                              std::uint64_t& overflow_retries) {
  BlockOutcome out;
  BlockDevice device_block(db, begin, end);
  engine.transfer("h2d_block", device_block.h2d_bytes());

  // K1 with overflow-driven capacity growth: a real implementation must
  // re-run when its fixed-size bins overflow (paper §3.2) — but only a
  // bounded number of times, and only up to a bounded capacity.
  for (int retry = 0;; ++retry) {
    BinGrid bins(config.detection_warps(), config.num_bins_per_warp,
                 bin_capacity);
    const DetectionResult detection =
        launch_hit_detection(engine, config, query, device_block, bins);
    if (!detection.overflowed) {
      // K2-K4.
      AssembledBins assembled = launch_assemble(engine, bins);
      launch_sort(engine, assembled);
      FilteredBins filtered = launch_filter(engine, config, assembled);

      // K5.
      ExtensionResult extension = launch_extension(engine, config, query,
                                                   device_block, filtered);
      engine.transfer("d2h_extensions", extension.records_d2h_bytes);

      out.hits_detected = detection.total_hits;
      out.hits_after_filter = filtered.total_survivors;
      out.ungapped_extensions = extension.extensions_run;
      out.extensions = std::move(extension.extensions);
      for (auto& ext : out.extensions) ext.seq += device_block.first_seq;
      return out;
    }
    ++overflow_retries;
    if (util::trace_enabled()) {
      util::trace_instant(
          "bin_overflow_retry", "degrade",
          {util::targ("retry", retry),
           util::targ("capacity", static_cast<std::uint64_t>(bin_capacity))});
      util::trace_counter("bin_capacity", static_cast<double>(bin_capacity));
    }
    if (retry >= config.max_bin_retries)
      throw SearchError(
          SearchErrorCode::kBinOverflowExhausted,
          "bin overflow persisted after " +
              std::to_string(config.max_bin_retries) + " capacity retries");
    if (bin_capacity >= config.max_bin_capacity)
      throw SearchError(SearchErrorCode::kBinOverflowExhausted,
                        "bin capacity cap (" +
                            std::to_string(config.max_bin_capacity) +
                            ") reached while still overflowing");
    bin_capacity = bin_capacity <= config.max_bin_capacity / 2
                       ? bin_capacity * 2
                       : config.max_bin_capacity;
  }
}

/// The last rung of the ladder: the block's critical phases on the host,
/// via the same scalar routines the FSA-BLAST baseline runs. Produces the
/// same qualifying-extension set as the fine-grained kernels (that is the
/// reproduction's §4.3 correctness anchor), so a degraded search still
/// returns complete, bit-identical alignments.
BlockOutcome run_block_on_cpu(const blast::WordLookup& lookup,
                              const bio::Pssm& pssm,
                              const bio::SequenceDatabase& db,
                              std::size_t begin, std::size_t end,
                              std::size_t query_length,
                              const blast::SearchParams& params) {
  // "core.cpu_fallback" lets chaos tests exhaust the whole ladder.
  util::fault_point_throw("core.cpu_fallback");
  util::TraceSpan span("cpu_fallback", "degrade");
  if (span.active()) {
    span.arg("first_seq", static_cast<std::uint64_t>(begin));
    span.arg("end_seq", static_cast<std::uint64_t>(end));
  }
  BlockOutcome out;
  util::Timer timer;
  blast::TwoHitTracker tracker(query_length + db.max_length() + 2);
  for (std::size_t i = begin; i < end; ++i) {
    const auto counters = blast::run_ungapped_phase(
        lookup, pssm, db.residues(i), static_cast<std::uint32_t>(i), params,
        tracker, out.extensions);
    out.hits_detected += counters.hits;
    out.hits_after_filter += counters.extensions_run;
    out.ungapped_extensions += counters.extensions_run;
  }
  out.cpu_fallback_seconds = timer.seconds();
  return out;
}

/// Last finish time in a modeled schedule (its makespan).
double schedule_finish(std::span<const util::ScheduledTask> tasks) {
  double finish = 0.0;
  for (const auto& t : tasks) finish = std::max(finish, t.finish);
  return finish;
}

std::uint64_t model_ns(double seconds) {
  return static_cast<std::uint64_t>(seconds * 1e9);
}

/// One CPU phase of one block on the modeled timeline: a span per worker
/// covering that worker's busy window in the greedy schedule (per-task
/// spans would overwhelm the trace; the task count rides as an arg).
void emit_modeled_worker_phase(const char* name, std::size_t bi,
                               double phase_start_s,
                               std::span<const util::ScheduledTask> tasks,
                               std::size_t cpu_threads) {
  std::vector<double> finish(cpu_threads, 0.0);
  std::vector<std::uint64_t> count(cpu_threads, 0);
  for (const auto& t : tasks) {
    finish[t.worker] = std::max(finish[t.worker], t.finish);
    ++count[t.worker];
  }
  for (std::size_t w = 0; w < cpu_threads; ++w) {
    if (count[w] == 0) continue;
    util::TraceEvent e;
    e.phase = 'X';
    e.name = name;
    e.category = "modeled";
    e.ts_ns = model_ns(phase_start_s);
    e.dur_ns = model_ns(finish[w]);
    e.args.push_back(util::targ("block", static_cast<std::uint64_t>(bi)));
    e.args.push_back(util::targ("tasks", count[w]));
    util::Tracer::instance().record_modeled(
        "cpu-worker-" + std::to_string(w) + " (modeled)", std::move(e));
  }
}

/// One database block on the modeled Fig. 12 timeline (pid 2 of the
/// trace): the GPU+PCIe chain span, then the CPU fallback (if the block
/// degraded) and the gapped/traceback phases as per-worker spans of the
/// same greedy schedule the makespan model priced.
void emit_modeled_block(std::size_t bi, double gpu_start_s, double gpu_s,
                        double cpu_start_s, double fallback_s,
                        std::span<const util::ScheduledTask> gapped,
                        std::span<const util::ScheduledTask> traceback,
                        std::size_t cpu_threads) {
  util::TraceEvent gpu_event;
  gpu_event.phase = 'X';
  gpu_event.name = "gpu chain";
  gpu_event.category = "modeled";
  gpu_event.ts_ns = model_ns(gpu_start_s);
  gpu_event.dur_ns = model_ns(gpu_s);
  gpu_event.args.push_back(
      util::targ("block", static_cast<std::uint64_t>(bi)));
  util::Tracer::instance().record_modeled("GPU + PCIe (modeled)",
                                          std::move(gpu_event));

  double t = cpu_start_s;
  if (fallback_s > 0.0) {
    util::TraceEvent e;
    e.phase = 'X';
    e.name = "cpu_fallback";
    e.category = "modeled";
    e.ts_ns = model_ns(t);
    e.dur_ns = model_ns(fallback_s);
    e.args.push_back(util::targ("block", static_cast<std::uint64_t>(bi)));
    util::Tracer::instance().record_modeled("cpu-worker-0 (modeled)",
                                            std::move(e));
    t += fallback_s;
  }
  emit_modeled_worker_phase("gapped", bi, t, gapped, cpu_threads);
  t += schedule_finish(gapped);
  emit_modeled_worker_phase("traceback", bi, t, traceback, cpu_threads);
}

}  // namespace

CuBlastp::CuBlastp(Config config) : config_(std::move(config)) {
  if (config_.num_bins_per_warp <= 0 ||
      (config_.num_bins_per_warp & (config_.num_bins_per_warp - 1)) != 0)
    throw std::invalid_argument("num_bins_per_warp must be a power of two");
  if (config_.db_blocks == 0) config_.db_blocks = 1;
  if (config_.cpu_threads == 0) config_.cpu_threads = 1;
  if (config_.bin_capacity == 0) config_.bin_capacity = 256;
  if (config_.engine_workers < 1) config_.engine_workers = 1;
  if (config_.max_bin_retries < 0) config_.max_bin_retries = 0;
  if (config_.max_bin_capacity <
      static_cast<std::uint32_t>(config_.bin_capacity))
    config_.max_bin_capacity =
        static_cast<std::uint32_t>(config_.bin_capacity);
}

SearchReport CuBlastp::search(std::span<const std::uint8_t> query,
                              const bio::SequenceDatabase& db) const {
  if (query.size() >= 32768)
    throw SearchError(
        SearchErrorCode::kInvalidArgument,
        "query longer than the 16-bit diagonal field allows");
  if (db.max_length() >= 65536)
    throw SearchError(
        SearchErrorCode::kInvalidArgument,
        "subject longer than the 16-bit position field allows "
        "(paper Fig. 7 layout)");

  std::optional<util::FaultScope> fault_scope;
  if (!config_.fault_schedule.empty())
    fault_scope.emplace(config_.fault_schedule,
                        config_.fault_seed != 0 ? config_.fault_seed
                                                : util::default_fault_seed());
  const std::uint64_t fires_at_start =
      util::FaultInjector::instance().total_fires();

  // Observability session: Config::trace_path, else REPRO_TRACE. If an
  // outer owner (the CLI) already started a session this scope is passive
  // and the outer owner writes the file.
  std::string trace_path = config_.trace_path;
  if (trace_path.empty())
    if (const char* env = std::getenv("REPRO_TRACE")) trace_path = env;
  std::optional<util::TraceSession> trace_session;
  if (!trace_path.empty()) trace_session.emplace(trace_path);

  util::Timer search_timer;
  util::TraceSpan search_span("cublastp.search", "core");
  if (search_span.active()) {
    search_span.arg("query_length", static_cast<std::uint64_t>(query.size()));
    search_span.arg("db_sequences", static_cast<std::uint64_t>(db.size()));
    search_span.arg("db_blocks", static_cast<std::uint64_t>(config_.db_blocks));
    search_span.arg("engine_workers", config_.engine_workers);
  }

  SearchReport report;
  simt::Engine engine;
  engine.set_readonly_cache_enabled(config_.use_readonly_cache);
  engine.set_workers(config_.engine_workers);
  if (config_.simtcheck) engine.set_simtcheck_enabled(true);

  // --- query preprocessing (the "Other" phase of Fig. 19d) ---------------
  util::Timer other_timer;
  util::TraceSpan prep_span("query_prep", "core");
  blast::WordLookup lookup(query, bio::Blosum62::instance(), config_.params);
  bio::Pssm pssm(query, bio::Blosum62::instance());
  bio::EvalueCalculator evalue(bio::blosum62_gapped_11_1(), query.size(),
                               db.total_residues(), db.size());
  QueryDevice device_query(query, lookup, pssm);
  prep_span.end();
  report.other_seconds += other_timer.seconds();
  report.h2d_ms += engine.transfer("h2d_query", device_query.h2d_bytes());

  // --- per-block GPU pipeline with the degradation ladder -----------------
  //
  // Rung 1: the fine-grained GPU pipeline (bounded bin-capacity growth).
  // Rung 2: one more GPU attempt with the read-only cache disabled.
  // Rung 3: the block's critical phases on the CPU (FSA path).
  //
  // Every rung produces the same extension set, so alignments stay
  // bit-identical to a fault-free run however far a block has to fall.
  const auto blocks = db.split_blocks(config_.db_blocks);
  struct BlockWork {
    double gpu_chain_ms = 0.0;  ///< H2D + kernels + D2H for this block
    double cpu_fallback_seconds = 0.0;
    std::vector<blast::UngappedExtension> extensions;
    // Greedy-schedule placements of the CPU tasks, kept only while tracing
    // so the modeled Fig. 12 timeline can draw per-worker spans.
    std::vector<util::ScheduledTask> gapped_schedule;
    std::vector<util::ScheduledTask> traceback_schedule;
  };
  std::vector<BlockWork> work(blocks.size());
  report.retry_counts.assign(blocks.size(), 0);

  std::uint32_t bin_capacity = static_cast<std::uint32_t>(config_.bin_capacity);

  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    const auto [begin, end] = blocks[bi];
    util::TraceSpan block_span;
    if (util::trace_enabled()) {
      block_span.open("db_block " + std::to_string(bi), "core");
      block_span.arg("first_seq", static_cast<std::uint64_t>(begin));
      block_span.arg("end_seq", static_cast<std::uint64_t>(end));
    }
    const double gpu_ms_before = engine.profile().total_time_ms();

    std::optional<BlockOutcome> outcome;
    for (int rung = 0; rung < 2 && !outcome; ++rung) {
      const bool cache_enabled = rung == 0 && config_.use_readonly_cache;
      Config attempt_config = config_;
      attempt_config.use_readonly_cache = cache_enabled;
      engine.set_readonly_cache_enabled(cache_enabled);
      util::TraceSpan attempt_span;
      if (util::trace_enabled()) {
        attempt_span.open("gpu_attempt", "core");
        attempt_span.arg("rung", rung);
        attempt_span.arg("readonly_cache", cache_enabled ? "on" : "off");
      }
      std::string failure;
      try {
        outcome = run_block_on_gpu(engine, attempt_config, device_query, db,
                                   begin, end, bin_capacity,
                                   report.bin_overflow_retries);
      } catch (const SearchError& e) {
        failure = e.what();
      } catch (const simt::DeviceError& e) {
        failure = e.what();
      } catch (const util::FaultInjectedError& e) {
        failure = e.what();
      } catch (const std::bad_alloc&) {
        failure = "std::bad_alloc";
      }
      // Anything else — std::invalid_argument contract violations above
      // all — propagates: a retry cannot fix a malformed launch, and the
      // CPU path must not paper over a misconfigured pipeline.
      if (!outcome) {
        ++report.retry_counts[bi];
        if (rung == 0) ++report.cache_off_retries;
        if (attempt_span.active()) {
          attempt_span.arg("failed", failure);
          attempt_span.end();
          // One instant per ladder transition: rung 0 -> retry with the
          // read-only cache off, rung 1 -> fall through to the CPU.
          util::trace_instant(
              rung == 0 ? "degrade.cache_off_retry"
                        : "degrade.gpu_exhausted",
              "degrade",
              {util::targ("block", static_cast<std::uint64_t>(bi)),
               util::targ("error", failure)});
        }
      }
    }
    engine.set_readonly_cache_enabled(config_.use_readonly_cache);

    if (!outcome) {
      if (util::trace_enabled())
        util::trace_instant(
            "degrade.cpu_fallback", "degrade",
            {util::targ("block", static_cast<std::uint64_t>(bi))});
      try {
        outcome = run_block_on_cpu(lookup, pssm, db, begin, end, query.size(),
                                   config_.params);
      } catch (const std::exception& e) {
        throw SearchError(
            SearchErrorCode::kDegradationExhausted,
            "block " + std::to_string(bi) +
                " failed on GPU, on GPU with the cache disabled, and on the "
                "CPU fallback: " + e.what());
      }
      ++report.degraded_blocks;
    }

    report.result.counters.hits_detected += outcome->hits_detected;
    report.result.counters.hits_after_filter += outcome->hits_after_filter;
    report.result.counters.ungapped_extensions +=
        outcome->ungapped_extensions;
    work[bi].extensions = std::move(outcome->extensions);
    work[bi].cpu_fallback_seconds = outcome->cpu_fallback_seconds;

    for (std::size_t s = begin; s < end; ++s)
      if (db.length(s) >= static_cast<std::size_t>(config_.params.word_length))
        report.result.counters.words_scanned +=
            db.length(s) - static_cast<std::size_t>(config_.params.word_length) + 1;

    work[bi].gpu_chain_ms =
        engine.profile().total_time_ms() - gpu_ms_before;
    if (util::trace_enabled()) {
      util::trace_counter(
          "hits_detected_total",
          static_cast<double>(report.result.counters.hits_detected));
      util::trace_counter(
          "hits_after_filter_total",
          static_cast<double>(report.result.counters.hits_after_filter));
    }
  }

  // --- CPU phases per block (gapped extension + traceback) ----------------
  std::vector<double> cpu_block_seconds(blocks.size(), 0.0);
  double fallback_seconds = 0.0;
  std::vector<blast::Alignment> alignments;
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    util::TraceSpan gapped_span;
    if (util::trace_enabled()) {
      gapped_span.open("gapped_stage", "cpu");
      gapped_span.arg("block", static_cast<std::uint64_t>(bi));
    }
    auto stage = blast::process_gapped_stage(pssm, db, work[bi].extensions,
                                             config_.params, evalue);
    const double gapped = util::list_schedule_makespan(
        stage.gapped_task_costs, config_.cpu_threads);
    const double traceback = util::list_schedule_makespan(
        stage.traceback_task_costs, config_.cpu_threads);
    if (gapped_span.active()) {
      gapped_span.arg("gapped_tasks",
                      static_cast<std::uint64_t>(
                          stage.gapped_task_costs.size()));
      gapped_span.arg("traceback_tasks",
                      static_cast<std::uint64_t>(
                          stage.traceback_task_costs.size()));
      // Keep the greedy placements so the modeled timeline can draw the
      // per-worker CPU tracks of Fig. 12.
      work[bi].gapped_schedule =
          util::list_schedule(stage.gapped_task_costs, config_.cpu_threads);
      work[bi].traceback_schedule = util::list_schedule(
          stage.traceback_task_costs, config_.cpu_threads);
    }
    report.gapped_seconds += gapped;
    report.traceback_seconds += traceback;
    cpu_block_seconds[bi] =
        gapped + traceback + work[bi].cpu_fallback_seconds;
    fallback_seconds += work[bi].cpu_fallback_seconds;
    report.result.counters.gapped_extensions += stage.gapped_extensions;
    report.result.counters.tracebacks += stage.tracebacks;
    alignments.insert(alignments.end(),
                      std::make_move_iterator(stage.alignments.begin()),
                      std::make_move_iterator(stage.alignments.end()));
  }

  // --- finalization --------------------------------------------------------
  {
    util::TraceSpan finalize_span("finalize", "cpu");
    util::ScopedAccumulator finalize_time(report.other_seconds);
    report.result.alignments = std::move(alignments);
    blast::finalize_results(report.result.alignments, config_.params,
                            evalue);
  }

  // --- time bookkeeping ----------------------------------------------------
  report.profile = engine.profile();
  report.hazards = engine.hazards();
  report.detection_ms = kernel_ms(report.profile, kKernelDetection);
  report.scan_ms = kernel_ms(report.profile, kKernelScan);
  report.assemble_ms = kernel_ms(report.profile, kKernelAssemble);
  report.sort_ms = kernel_ms(report.profile, kKernelSort);
  report.filter_ms = kernel_ms(report.profile, kKernelFilter);
  report.extension_ms = kernel_ms(report.profile, kKernelExtension);
  report.h2d_ms = kernel_ms(report.profile, "h2d_query") +
                  kernel_ms(report.profile, "h2d_block");
  report.d2h_ms = kernel_ms(report.profile, "d2h_extensions");

  // Pipeline model (paper Fig. 12): the GPU/PCIe chain processes blocks in
  // order; the CPU phases of block i start when both its GPU chain and the
  // CPU phases of block i-1 are done. While tracing, the same walk is
  // emitted as the synthetic "modeled pipeline" process of the trace.
  double gpu_done_s = 0.0, cpu_done_s = 0.0, serial_s = 0.0;
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    const double gpu_s = work[bi].gpu_chain_ms / 1e3;
    const double gpu_start_s = gpu_done_s;
    gpu_done_s += gpu_s;
    const double cpu_start_s = std::max(cpu_done_s, gpu_done_s);
    cpu_done_s = cpu_start_s + cpu_block_seconds[bi];
    serial_s += gpu_s + cpu_block_seconds[bi];
    if (util::trace_enabled())
      emit_modeled_block(bi, gpu_start_s, gpu_s, cpu_start_s,
                         work[bi].cpu_fallback_seconds,
                         work[bi].gapped_schedule,
                         work[bi].traceback_schedule, config_.cpu_threads);
  }
  report.overlapped_total_seconds = cpu_done_s + report.other_seconds;
  report.serial_total_seconds = serial_s + report.other_seconds;

  // Map into the common PhaseTimings (GPU ms -> seconds). Degraded blocks
  // fold their host-side critical-phase cost into hit detection, where the
  // work they replaced lives.
  report.result.timings.hit_detection =
      (report.detection_ms + report.scan_ms + report.assemble_ms +
       report.sort_ms + report.filter_ms) /
          1e3 +
      fallback_seconds;
  report.result.timings.ungapped_extension = report.extension_ms / 1e3;
  report.result.timings.gapped_extension = report.gapped_seconds;
  report.result.timings.traceback = report.traceback_seconds;
  report.result.timings.other =
      report.other_seconds + (report.h2d_ms + report.d2h_ms) / 1e3;

  report.faults_encountered =
      util::FaultInjector::instance().total_fires() - fires_at_start;
  if (util::trace_enabled() && report.faults_encountered > 0)
    util::trace_instant("faults_absorbed", "degrade",
                        {util::targ("count", report.faults_encountered)});
  if (search_span.active()) {
    search_span.arg("alignments",
                    static_cast<std::uint64_t>(report.result.alignments.size()));
    search_span.arg("degraded_blocks", report.degraded_blocks);
    search_span.arg("faults_absorbed", report.faults_encountered);
  }
  search_span.end();

  // Metrics are always on (lock-free recording; see util/metrics.hpp) —
  // only the export below is gated on a destination being configured.
  auto& registry = util::metrics::Registry::instance();
  registry.counter("core.searches").add(1);
  registry.counter("core.alignments").add(report.result.alignments.size());
  registry.counter("core.bin_overflow_retries")
      .add(report.bin_overflow_retries);
  registry.counter("core.cache_off_retries").add(report.cache_off_retries);
  registry.counter("core.degraded_blocks").add(report.degraded_blocks);
  registry.counter("core.faults_absorbed").add(report.faults_encountered);
  registry.histogram("core.search_wall_seconds")
      .observe(search_timer.seconds());

  std::string metrics_path = config_.metrics_path;
  if (metrics_path.empty())
    if (const char* env = std::getenv("REPRO_METRICS")) metrics_path = env;
  if (!metrics_path.empty()) registry.write_file(metrics_path);

  return report;
}

}  // namespace repro::core
