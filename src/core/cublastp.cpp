#include "core/cublastp.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "bio/karlin.hpp"
#include "bio/pssm.hpp"
#include "blast/results.hpp"
#include "blast/ungapped.hpp"
#include "blast/wordlookup.hpp"
#include "core/bins.hpp"
#include "core/device_data.hpp"
#include "core/kernels.hpp"
#include "util/fault.hpp"
#include "util/makespan.hpp"
#include "util/timer.hpp"

namespace repro::core {

namespace {

/// Modeled GPU time accumulated in `registry` for one kernel name (ms).
double kernel_ms(const simt::ProfileRegistry& registry, const char* name) {
  return registry.has(name) ? registry.at(name).time_ms : 0.0;
}

/// Everything one database block contributes to the report, whichever rung
/// of the ladder produced it.
struct BlockOutcome {
  std::vector<blast::UngappedExtension> extensions;  ///< global seq indices
  std::uint64_t hits_detected = 0;
  std::uint64_t hits_after_filter = 0;
  std::uint64_t ungapped_extensions = 0;
  double cpu_fallback_seconds = 0.0;  ///< host critical-phase cost (rung 3)
};

/// One GPU attempt at a block: H2D, K1 with bounded capacity growth, then
/// K2-K5 and the D2H copy. Throws simt::DeviceError / std::bad_alloc /
/// util::FaultInjectedError on device failures, and SearchError with
/// kBinOverflowExhausted when capacity growth hits its retry or size caps.
BlockOutcome run_block_on_gpu(simt::Engine& engine, const Config& config,
                              const QueryDevice& query,
                              const bio::SequenceDatabase& db,
                              std::size_t begin, std::size_t end,
                              std::uint32_t& bin_capacity,
                              std::uint64_t& overflow_retries) {
  BlockOutcome out;
  BlockDevice device_block(db, begin, end);
  engine.transfer("h2d_block", device_block.h2d_bytes());

  // K1 with overflow-driven capacity growth: a real implementation must
  // re-run when its fixed-size bins overflow (paper §3.2) — but only a
  // bounded number of times, and only up to a bounded capacity.
  for (int retry = 0;; ++retry) {
    BinGrid bins(config.detection_warps(), config.num_bins_per_warp,
                 bin_capacity);
    const DetectionResult detection =
        launch_hit_detection(engine, config, query, device_block, bins);
    if (!detection.overflowed) {
      // K2-K4.
      AssembledBins assembled = launch_assemble(engine, bins);
      launch_sort(engine, assembled);
      FilteredBins filtered = launch_filter(engine, config, assembled);

      // K5.
      ExtensionResult extension = launch_extension(engine, config, query,
                                                   device_block, filtered);
      engine.transfer("d2h_extensions", extension.records_d2h_bytes);

      out.hits_detected = detection.total_hits;
      out.hits_after_filter = filtered.total_survivors;
      out.ungapped_extensions = extension.extensions_run;
      out.extensions = std::move(extension.extensions);
      for (auto& ext : out.extensions) ext.seq += device_block.first_seq;
      return out;
    }
    ++overflow_retries;
    if (retry >= config.max_bin_retries)
      throw SearchError(
          SearchErrorCode::kBinOverflowExhausted,
          "bin overflow persisted after " +
              std::to_string(config.max_bin_retries) + " capacity retries");
    if (bin_capacity >= config.max_bin_capacity)
      throw SearchError(SearchErrorCode::kBinOverflowExhausted,
                        "bin capacity cap (" +
                            std::to_string(config.max_bin_capacity) +
                            ") reached while still overflowing");
    bin_capacity = bin_capacity <= config.max_bin_capacity / 2
                       ? bin_capacity * 2
                       : config.max_bin_capacity;
  }
}

/// The last rung of the ladder: the block's critical phases on the host,
/// via the same scalar routines the FSA-BLAST baseline runs. Produces the
/// same qualifying-extension set as the fine-grained kernels (that is the
/// reproduction's §4.3 correctness anchor), so a degraded search still
/// returns complete, bit-identical alignments.
BlockOutcome run_block_on_cpu(const blast::WordLookup& lookup,
                              const bio::Pssm& pssm,
                              const bio::SequenceDatabase& db,
                              std::size_t begin, std::size_t end,
                              std::size_t query_length,
                              const blast::SearchParams& params) {
  // "core.cpu_fallback" lets chaos tests exhaust the whole ladder.
  util::fault_point_throw("core.cpu_fallback");
  BlockOutcome out;
  util::Timer timer;
  blast::TwoHitTracker tracker(query_length + db.max_length() + 2);
  for (std::size_t i = begin; i < end; ++i) {
    const auto counters = blast::run_ungapped_phase(
        lookup, pssm, db.residues(i), static_cast<std::uint32_t>(i), params,
        tracker, out.extensions);
    out.hits_detected += counters.hits;
    out.hits_after_filter += counters.extensions_run;
    out.ungapped_extensions += counters.extensions_run;
  }
  out.cpu_fallback_seconds = timer.seconds();
  return out;
}

}  // namespace

CuBlastp::CuBlastp(Config config) : config_(std::move(config)) {
  if (config_.num_bins_per_warp <= 0 ||
      (config_.num_bins_per_warp & (config_.num_bins_per_warp - 1)) != 0)
    throw std::invalid_argument("num_bins_per_warp must be a power of two");
  if (config_.db_blocks == 0) config_.db_blocks = 1;
  if (config_.cpu_threads == 0) config_.cpu_threads = 1;
  if (config_.bin_capacity == 0) config_.bin_capacity = 256;
  if (config_.engine_workers < 1) config_.engine_workers = 1;
  if (config_.max_bin_retries < 0) config_.max_bin_retries = 0;
  if (config_.max_bin_capacity <
      static_cast<std::uint32_t>(config_.bin_capacity))
    config_.max_bin_capacity =
        static_cast<std::uint32_t>(config_.bin_capacity);
}

SearchReport CuBlastp::search(std::span<const std::uint8_t> query,
                              const bio::SequenceDatabase& db) const {
  if (query.size() >= 32768)
    throw SearchError(
        SearchErrorCode::kInvalidArgument,
        "query longer than the 16-bit diagonal field allows");
  if (db.max_length() >= 65536)
    throw SearchError(
        SearchErrorCode::kInvalidArgument,
        "subject longer than the 16-bit position field allows "
        "(paper Fig. 7 layout)");

  std::optional<util::FaultScope> fault_scope;
  if (!config_.fault_schedule.empty())
    fault_scope.emplace(config_.fault_schedule,
                        config_.fault_seed != 0 ? config_.fault_seed
                                                : util::default_fault_seed());
  const std::uint64_t fires_at_start =
      util::FaultInjector::instance().total_fires();

  SearchReport report;
  simt::Engine engine;
  engine.set_readonly_cache_enabled(config_.use_readonly_cache);
  engine.set_workers(config_.engine_workers);
  if (config_.simtcheck) engine.set_simtcheck_enabled(true);

  // --- query preprocessing (the "Other" phase of Fig. 19d) ---------------
  util::Timer other_timer;
  blast::WordLookup lookup(query, bio::Blosum62::instance(), config_.params);
  bio::Pssm pssm(query, bio::Blosum62::instance());
  bio::EvalueCalculator evalue(bio::blosum62_gapped_11_1(), query.size(),
                               db.total_residues(), db.size());
  QueryDevice device_query(query, lookup, pssm);
  report.other_seconds += other_timer.seconds();
  report.h2d_ms += engine.transfer("h2d_query", device_query.h2d_bytes());

  // --- per-block GPU pipeline with the degradation ladder -----------------
  //
  // Rung 1: the fine-grained GPU pipeline (bounded bin-capacity growth).
  // Rung 2: one more GPU attempt with the read-only cache disabled.
  // Rung 3: the block's critical phases on the CPU (FSA path).
  //
  // Every rung produces the same extension set, so alignments stay
  // bit-identical to a fault-free run however far a block has to fall.
  const auto blocks = db.split_blocks(config_.db_blocks);
  struct BlockWork {
    double gpu_chain_ms = 0.0;  ///< H2D + kernels + D2H for this block
    double cpu_fallback_seconds = 0.0;
    std::vector<blast::UngappedExtension> extensions;
  };
  std::vector<BlockWork> work(blocks.size());
  report.retry_counts.assign(blocks.size(), 0);

  std::uint32_t bin_capacity = static_cast<std::uint32_t>(config_.bin_capacity);

  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    const auto [begin, end] = blocks[bi];
    const double gpu_ms_before = engine.profile().total_time_ms();

    std::optional<BlockOutcome> outcome;
    for (int rung = 0; rung < 2 && !outcome; ++rung) {
      const bool cache_enabled = rung == 0 && config_.use_readonly_cache;
      Config attempt_config = config_;
      attempt_config.use_readonly_cache = cache_enabled;
      engine.set_readonly_cache_enabled(cache_enabled);
      try {
        outcome = run_block_on_gpu(engine, attempt_config, device_query, db,
                                   begin, end, bin_capacity,
                                   report.bin_overflow_retries);
      } catch (const SearchError&) {
      } catch (const simt::DeviceError&) {
      } catch (const util::FaultInjectedError&) {
      } catch (const std::bad_alloc&) {
      }
      // Anything else — std::invalid_argument contract violations above
      // all — propagates: a retry cannot fix a malformed launch, and the
      // CPU path must not paper over a misconfigured pipeline.
      if (!outcome) {
        ++report.retry_counts[bi];
        if (rung == 0) ++report.cache_off_retries;
      }
    }
    engine.set_readonly_cache_enabled(config_.use_readonly_cache);

    if (!outcome) {
      try {
        outcome = run_block_on_cpu(lookup, pssm, db, begin, end, query.size(),
                                   config_.params);
      } catch (const std::exception& e) {
        throw SearchError(
            SearchErrorCode::kDegradationExhausted,
            "block " + std::to_string(bi) +
                " failed on GPU, on GPU with the cache disabled, and on the "
                "CPU fallback: " + e.what());
      }
      ++report.degraded_blocks;
    }

    report.result.counters.hits_detected += outcome->hits_detected;
    report.result.counters.hits_after_filter += outcome->hits_after_filter;
    report.result.counters.ungapped_extensions +=
        outcome->ungapped_extensions;
    work[bi].extensions = std::move(outcome->extensions);
    work[bi].cpu_fallback_seconds = outcome->cpu_fallback_seconds;

    for (std::size_t s = begin; s < end; ++s)
      if (db.length(s) >= static_cast<std::size_t>(config_.params.word_length))
        report.result.counters.words_scanned +=
            db.length(s) - static_cast<std::size_t>(config_.params.word_length) + 1;

    work[bi].gpu_chain_ms =
        engine.profile().total_time_ms() - gpu_ms_before;
  }

  // --- CPU phases per block (gapped extension + traceback) ----------------
  std::vector<double> cpu_block_seconds(blocks.size(), 0.0);
  double fallback_seconds = 0.0;
  std::vector<blast::Alignment> alignments;
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    auto stage = blast::process_gapped_stage(pssm, db, work[bi].extensions,
                                             config_.params, evalue);
    const double gapped = util::list_schedule_makespan(
        stage.gapped_task_costs, config_.cpu_threads);
    const double traceback = util::list_schedule_makespan(
        stage.traceback_task_costs, config_.cpu_threads);
    report.gapped_seconds += gapped;
    report.traceback_seconds += traceback;
    cpu_block_seconds[bi] =
        gapped + traceback + work[bi].cpu_fallback_seconds;
    fallback_seconds += work[bi].cpu_fallback_seconds;
    report.result.counters.gapped_extensions += stage.gapped_extensions;
    report.result.counters.tracebacks += stage.tracebacks;
    alignments.insert(alignments.end(),
                      std::make_move_iterator(stage.alignments.begin()),
                      std::make_move_iterator(stage.alignments.end()));
  }

  // --- finalization --------------------------------------------------------
  {
    util::ScopedAccumulator finalize_time(report.other_seconds);
    report.result.alignments = std::move(alignments);
    blast::finalize_results(report.result.alignments, config_.params,
                            evalue);
  }

  // --- time bookkeeping ----------------------------------------------------
  report.profile = engine.profile();
  report.hazards = engine.hazards();
  report.detection_ms = kernel_ms(report.profile, kKernelDetection);
  report.scan_ms = kernel_ms(report.profile, kKernelScan);
  report.assemble_ms = kernel_ms(report.profile, kKernelAssemble);
  report.sort_ms = kernel_ms(report.profile, kKernelSort);
  report.filter_ms = kernel_ms(report.profile, kKernelFilter);
  report.extension_ms = kernel_ms(report.profile, kKernelExtension);
  report.h2d_ms = kernel_ms(report.profile, "h2d_query") +
                  kernel_ms(report.profile, "h2d_block");
  report.d2h_ms = kernel_ms(report.profile, "d2h_extensions");

  // Pipeline model (paper Fig. 12): the GPU/PCIe chain processes blocks in
  // order; the CPU phases of block i start when both its GPU chain and the
  // CPU phases of block i-1 are done.
  double gpu_done_s = 0.0, cpu_done_s = 0.0, serial_s = 0.0;
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    const double gpu_s = work[bi].gpu_chain_ms / 1e3;
    gpu_done_s += gpu_s;
    cpu_done_s = std::max(cpu_done_s, gpu_done_s) + cpu_block_seconds[bi];
    serial_s += gpu_s + cpu_block_seconds[bi];
  }
  report.overlapped_total_seconds = cpu_done_s + report.other_seconds;
  report.serial_total_seconds = serial_s + report.other_seconds;

  // Map into the common PhaseTimings (GPU ms -> seconds). Degraded blocks
  // fold their host-side critical-phase cost into hit detection, where the
  // work they replaced lives.
  report.result.timings.hit_detection =
      (report.detection_ms + report.scan_ms + report.assemble_ms +
       report.sort_ms + report.filter_ms) /
          1e3 +
      fallback_seconds;
  report.result.timings.ungapped_extension = report.extension_ms / 1e3;
  report.result.timings.gapped_extension = report.gapped_seconds;
  report.result.timings.traceback = report.traceback_seconds;
  report.result.timings.other =
      report.other_seconds + (report.h2d_ms + report.d2h_ms) / 1e3;

  report.faults_encountered =
      util::FaultInjector::instance().total_fires() - fires_at_start;
  return report;
}

}  // namespace repro::core
