#include "core/cublastp.hpp"

#include <algorithm>
#include <stdexcept>

#include "bio/karlin.hpp"
#include "bio/pssm.hpp"
#include "blast/results.hpp"
#include "blast/wordlookup.hpp"
#include "core/bins.hpp"
#include "core/device_data.hpp"
#include "core/kernels.hpp"
#include "util/makespan.hpp"
#include "util/timer.hpp"

namespace repro::core {

namespace {

/// Modeled GPU time accumulated in `registry` for one kernel name (ms).
double kernel_ms(const simt::ProfileRegistry& registry, const char* name) {
  return registry.has(name) ? registry.at(name).time_ms : 0.0;
}

}  // namespace

CuBlastp::CuBlastp(Config config) : config_(config) {
  if (config_.num_bins_per_warp <= 0 ||
      (config_.num_bins_per_warp & (config_.num_bins_per_warp - 1)) != 0)
    throw std::invalid_argument("num_bins_per_warp must be a power of two");
  if (config_.db_blocks == 0) config_.db_blocks = 1;
  if (config_.cpu_threads == 0) config_.cpu_threads = 1;
  if (config_.bin_capacity == 0) config_.bin_capacity = 256;
  if (config_.engine_workers < 1) config_.engine_workers = 1;
}

SearchReport CuBlastp::search(std::span<const std::uint8_t> query,
                              const bio::SequenceDatabase& db) const {
  if (query.size() >= 32768)
    throw std::invalid_argument(
        "cuBLASTP: query longer than the 16-bit diagonal field allows");
  if (db.max_length() >= 65536)
    throw std::invalid_argument(
        "cuBLASTP: subject longer than the 16-bit position field allows "
        "(paper Fig. 7 layout)");

  SearchReport report;
  simt::Engine engine;
  engine.set_readonly_cache_enabled(config_.use_readonly_cache);
  engine.set_workers(config_.engine_workers);

  // --- query preprocessing (the "Other" phase of Fig. 19d) ---------------
  util::Timer other_timer;
  blast::WordLookup lookup(query, bio::Blosum62::instance(), config_.params);
  bio::Pssm pssm(query, bio::Blosum62::instance());
  bio::EvalueCalculator evalue(bio::blosum62_gapped_11_1(), query.size(),
                               db.total_residues(), db.size());
  QueryDevice device_query(query, lookup, pssm);
  report.other_seconds += other_timer.seconds();
  report.h2d_ms += engine.transfer("h2d_query", device_query.h2d_bytes());

  // --- per-block GPU pipeline --------------------------------------------
  const auto blocks = db.split_blocks(config_.db_blocks);
  struct BlockWork {
    double gpu_chain_ms = 0.0;  ///< H2D + kernels + D2H for this block
    std::vector<blast::UngappedExtension> extensions;
  };
  std::vector<BlockWork> work(blocks.size());

  std::uint32_t bin_capacity = static_cast<std::uint32_t>(config_.bin_capacity);

  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    const auto [begin, end] = blocks[bi];
    BlockDevice device_block(db, begin, end);

    const double gpu_ms_before = engine.profile().total_time_ms();

    engine.transfer("h2d_block", device_block.h2d_bytes());

    // K1 with overflow-driven capacity growth: a real implementation must
    // also re-run when its fixed-size bins overflow.
    DetectionResult detection;
    for (;;) {
      BinGrid bins(config_.detection_warps(), config_.num_bins_per_warp,
                   bin_capacity);
      detection = launch_hit_detection(engine, config_, device_query,
                                       device_block, bins);
      if (!detection.overflowed) {
        // K2-K4.
        AssembledBins assembled = launch_assemble(engine, bins);
        launch_sort(engine, assembled);
        FilteredBins filtered = launch_filter(engine, config_, assembled);

        // K5.
        ExtensionResult extension = launch_extension(
            engine, config_, device_query, device_block, filtered);
        engine.transfer("d2h_extensions", extension.records_d2h_bytes);

        report.result.counters.hits_detected += detection.total_hits;
        report.result.counters.hits_after_filter += filtered.total_survivors;
        report.result.counters.ungapped_extensions +=
            extension.extensions_run;

        work[bi].extensions = std::move(extension.extensions);
        for (auto& ext : work[bi].extensions) {
          ext.seq += device_block.first_seq;
        }
        break;
      }
      ++report.bin_overflow_retries;
      bin_capacity *= 2;
    }

    for (std::size_t s = begin; s < end; ++s)
      if (db.length(s) >= static_cast<std::size_t>(config_.params.word_length))
        report.result.counters.words_scanned +=
            db.length(s) - static_cast<std::size_t>(config_.params.word_length) + 1;

    work[bi].gpu_chain_ms =
        engine.profile().total_time_ms() - gpu_ms_before;
  }

  // --- CPU phases per block (gapped extension + traceback) ----------------
  std::vector<double> cpu_block_seconds(blocks.size(), 0.0);
  std::vector<blast::Alignment> alignments;
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    auto stage = blast::process_gapped_stage(pssm, db, work[bi].extensions,
                                             config_.params, evalue);
    const double gapped = util::list_schedule_makespan(
        stage.gapped_task_costs, config_.cpu_threads);
    const double traceback = util::list_schedule_makespan(
        stage.traceback_task_costs, config_.cpu_threads);
    report.gapped_seconds += gapped;
    report.traceback_seconds += traceback;
    cpu_block_seconds[bi] = gapped + traceback;
    report.result.counters.gapped_extensions += stage.gapped_extensions;
    report.result.counters.tracebacks += stage.tracebacks;
    alignments.insert(alignments.end(),
                      std::make_move_iterator(stage.alignments.begin()),
                      std::make_move_iterator(stage.alignments.end()));
  }

  // --- finalization --------------------------------------------------------
  {
    util::ScopedAccumulator finalize_time(report.other_seconds);
    report.result.alignments = std::move(alignments);
    blast::finalize_results(report.result.alignments, config_.params,
                            evalue);
  }

  // --- time bookkeeping ----------------------------------------------------
  report.profile = engine.profile();
  report.detection_ms = kernel_ms(report.profile, kKernelDetection);
  report.scan_ms = kernel_ms(report.profile, kKernelScan);
  report.assemble_ms = kernel_ms(report.profile, kKernelAssemble);
  report.sort_ms = kernel_ms(report.profile, kKernelSort);
  report.filter_ms = kernel_ms(report.profile, kKernelFilter);
  report.extension_ms = kernel_ms(report.profile, kKernelExtension);
  report.h2d_ms = kernel_ms(report.profile, "h2d_query") +
                  kernel_ms(report.profile, "h2d_block");
  report.d2h_ms = kernel_ms(report.profile, "d2h_extensions");

  // Pipeline model (paper Fig. 12): the GPU/PCIe chain processes blocks in
  // order; the CPU phases of block i start when both its GPU chain and the
  // CPU phases of block i-1 are done.
  double gpu_done_s = 0.0, cpu_done_s = 0.0, serial_s = 0.0;
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    const double gpu_s = work[bi].gpu_chain_ms / 1e3;
    gpu_done_s += gpu_s;
    cpu_done_s = std::max(cpu_done_s, gpu_done_s) + cpu_block_seconds[bi];
    serial_s += gpu_s + cpu_block_seconds[bi];
  }
  report.overlapped_total_seconds = cpu_done_s + report.other_seconds;
  report.serial_total_seconds = serial_s + report.other_seconds;

  // Map into the common PhaseTimings (GPU ms -> seconds).
  report.result.timings.hit_detection =
      (report.detection_ms + report.scan_ms + report.assemble_ms +
       report.sort_ms + report.filter_ms) /
      1e3;
  report.result.timings.ungapped_extension = report.extension_ms / 1e3;
  report.result.timings.gapped_extension = report.gapped_seconds;
  report.result.timings.traceback = report.traceback_seconds;
  report.result.timings.other =
      report.other_seconds + (report.h2d_ms + report.d2h_ms) / 1e3;

  return report;
}

}  // namespace repro::core
