#include "core/cublastp.hpp"

#include <utility>

#include "core/pipeline.hpp"
#include "core/search_session.hpp"

namespace repro::core {

CuBlastp::CuBlastp(Config config)
    : config_(normalized_config(std::move(config))) {}

SearchReport CuBlastp::search(std::span<const std::uint8_t> query,
                              const bio::SequenceDatabase& db) const {
  // One-shot session: a fresh engine and a fresh database upload, exactly
  // the pre-session behavior. Callers answering many queries against one
  // database should hold a SearchSession instead (search_session.hpp) —
  // it uploads the database once and can overlap queries.
  SearchSession session(config_, db);
  return session.search(query);
}

}  // namespace repro::core
