// The fine-grained cuBLASTP kernels (paper §3.2–3.4):
//   K1 hit detection with binning        (Algorithm 2, Fig. 5)
//   K2 hit assembling                    (Fig. 6a)
//   K3 hit sorting                       (Fig. 6b; gpualgo segmented sort)
//   K4 hit filtering + segment indexing  (Fig. 6c)
//   K5 ungapped extension                (Algorithms 3/4/5, Fig. 9)
#pragma once

#include <cstdint>
#include <vector>

#include "blast/types.hpp"
#include "core/bins.hpp"
#include "core/config.hpp"
#include "core/device_data.hpp"
#include "simt/engine.hpp"

namespace repro::core {

/// Kernel names as they appear in the profile registry (Fig. 19 rows).
inline constexpr const char* kKernelDetection = "hit_detection";
inline constexpr const char* kKernelAssemble = "hit_assemble";
inline constexpr const char* kKernelScan = "bin_scan";
inline constexpr const char* kKernelSort = "hit_sort";
inline constexpr const char* kKernelFilter = "hit_filter";
inline constexpr const char* kKernelExtension = "ungapped_extension";

struct DetectionResult {
  std::uint64_t total_hits = 0;
  bool overflowed = false;
};

/// Optional pre-filter survivor list for hit detection (prefilter.hpp):
/// when `ids` is set, detection iterates the `count` listed block-local
/// sequence indices instead of every sequence. Default-constructed =
/// unfiltered, with an instruction stream identical to the pre-filter era.
struct SurvivorView {
  const std::uint32_t* ids = nullptr;
  std::uint32_t count = 0;
};

/// K1: warp-per-sequence, lane-per-word hit detection writing packed hits
/// into the warp's bins (shared-memory top[] counters, paper Algorithm 2).
DetectionResult launch_hit_detection(simt::Engine& engine,
                                     const Config& config,
                                     const QueryDevice& query,
                                     const BlockDevice& block, BinGrid& bins,
                                     SurvivorView survivors = {});

struct AssembledBins {
  simt::DeviceVector<std::uint64_t> hits;  ///< contiguous, pow2-padded bins
  std::vector<std::uint32_t> offsets;      ///< total_bins+1 padded offsets
  simt::DeviceVector<std::uint32_t> counts;  ///< true count per bin
  std::uint64_t total_hits = 0;
};

/// K2: compacts the fixed-capacity bins into one contiguous buffer (block
/// per bin, coalesced copy), padding each bin to a power of two for the
/// bitonic segmented sort.
AssembledBins launch_assemble(simt::Engine& engine, const BinGrid& bins);

/// K3: sorts every bin by the packed (seq | diagonal | spos) key.
void launch_sort(simt::Engine& engine, AssembledBins& assembled);

struct FilteredBins {
  simt::DeviceVector<std::uint64_t> hits;       ///< survivors per bin region
  std::vector<std::uint32_t> offsets;           ///< same regions as assembled
  simt::DeviceVector<std::uint32_t> counts;     ///< survivors per bin
  simt::DeviceVector<std::uint32_t> seg_starts; ///< bin-relative indices
  simt::DeviceVector<std::uint32_t> seg_counts; ///< segments per bin
  std::uint64_t total_survivors = 0;
  std::uint64_t total_segments = 0;
};

/// K4: two-hit filter — a hit survives iff its left neighbour in the sorted
/// bin is on the same (sequence, diagonal) within the window A — plus
/// (seq, diagonal)-segment start indexing for the extension kernels.
FilteredBins launch_filter(simt::Engine& engine, const Config& config,
                           const AssembledBins& assembled);

struct ExtensionResult {
  /// Qualifying extensions (score >= ungapped_cutoff), de-duplicated,
  /// seq indices block-local (caller rebases by BlockDevice::first_seq).
  std::vector<blast::UngappedExtension> extensions;
  std::uint64_t extensions_run = 0;   ///< includes hit-based redundancy
  std::uint64_t records_d2h_bytes = 0;
};

/// K5: one of the three fine-grained extension kernels per
/// config.strategy.
ExtensionResult launch_extension(simt::Engine& engine, const Config& config,
                                 const QueryDevice& query,
                                 const BlockDevice& block,
                                 const FilteredBins& filtered);

}  // namespace repro::core
