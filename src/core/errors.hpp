// Structured error taxonomy for the search pipeline. Every failure the
// pipeline can surface carries a SearchErrorCode, so callers (CLI tools,
// services) can decide between retry, degradation, and hard failure
// without parsing message strings.
#pragma once

#include <stdexcept>
#include <string>

namespace repro::core {

enum class SearchErrorCode {
  kInvalidArgument,       ///< input violates a pipeline contract
  kBinOverflowExhausted,  ///< bin capacity growth hit its retry/size caps
  kDeviceAllocation,      ///< device-buffer allocation failed
  kDeviceTransfer,        ///< H2D/D2H transfer failed
  kDeviceLaunch,          ///< kernel launch failed
  kWorkerFailed,          ///< a host worker thread threw
  kIngest,                ///< FASTA/database ingest failed
  kDegradationExhausted,  ///< every rung of the ladder failed for a block
  kRejected,              ///< admission control refused the request
  kCancelled,             ///< caller cancelled the request (cooperative)
  kDeadlineExceeded,      ///< the request's deadline expired mid-flight
  kShutdown,              ///< the service is draining / shut down
};

[[nodiscard]] constexpr const char* to_string(SearchErrorCode code) {
  switch (code) {
    case SearchErrorCode::kInvalidArgument: return "invalid_argument";
    case SearchErrorCode::kBinOverflowExhausted:
      return "bin_overflow_exhausted";
    case SearchErrorCode::kDeviceAllocation: return "device_allocation";
    case SearchErrorCode::kDeviceTransfer: return "device_transfer";
    case SearchErrorCode::kDeviceLaunch: return "device_launch";
    case SearchErrorCode::kWorkerFailed: return "worker_failed";
    case SearchErrorCode::kIngest: return "ingest";
    case SearchErrorCode::kDegradationExhausted:
      return "degradation_exhausted";
    case SearchErrorCode::kRejected: return "rejected";
    case SearchErrorCode::kCancelled: return "cancelled";
    case SearchErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case SearchErrorCode::kShutdown: return "shutdown";
  }
  return "unknown";
}

class SearchError : public std::runtime_error {
 public:
  SearchError(SearchErrorCode code, const std::string& message)
      : std::runtime_error(std::string("cuBLASTP [") + to_string(code) +
                           "]: " + message),
        code_(code) {}

  [[nodiscard]] SearchErrorCode code() const { return code_; }

 private:
  SearchErrorCode code_;
};

}  // namespace repro::core
