// Internals shared by the two session front-ends (DESIGN.md §12/§17):
// core::SearchSession (one engine) and core::ShardedSession (a scatter–
// gather fleet of core::EngineShard units). Both assemble the same
// SearchReport from the same per-query state, so the report mapping, the
// metrics recording, and the svccheck checkpoint-coverage contract live
// here exactly once — the sharded merge can never drift from the
// single-engine path it must stay bit-identical to.
//
// Not part of the public core API: include only from core/*.cpp.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/cancellation.hpp"
#include "core/config.hpp"
#include "core/cublastp.hpp"
#include "core/pipeline.hpp"
#include "core/query_context.hpp"
#include "simt/simtprof.hpp"
#include "util/svccheck.hpp"
#include "util/timer.hpp"

namespace repro::core::detail {

/// Modeled GPU time accumulated in `registry` for one kernel name (ms).
[[nodiscard]] double kernel_ms(const simt::ProfileRegistry& registry,
                               const char* name);

// The cancellation checkpoints a successful search must poll (svccheck
// coverage contract; DESIGN.md §15/§17). Coverage scopes are per thread:
// the single-engine search polls everything on the session thread, while a
// sharded search splits the sets between the gathering main thread (which
// also runs the serial CPU half, so it owns the cpu_phase checkpoints) and
// the per-shard workers (which own the GPU-block checkpoints).
inline constexpr const char* kSearchAlwaysCheckpoints[] = {
    "search.entry", "query.start", "finalize"};
inline constexpr const char* kSearchPerBlockCheckpoints[] = {
    "gpu_phase.block", "block_ladder.entry", "cpu_phase.block"};
inline constexpr const char* kShardedMainCheckpoints[] = {
    "search.entry", "query.start", "shard.gather", "finalize"};
inline constexpr const char* kShardedMainPerBlockCheckpoints[] = {
    "cpu_phase.block"};
inline constexpr const char* kShardWorkerCheckpoints[] = {"shard.dispatch"};
inline constexpr const char* kShardWorkerPerBlockCheckpoints[] = {
    "gpu_phase.block", "block_ladder.entry"};

/// Appends a kCheckpointGap hazard for every required checkpoint the scope
/// never saw polled: every name in `always`, plus every name in
/// `per_block` when `has_blocks`.
void append_checkpoint_gaps(const util::svc::CheckpointScope& scope,
                            std::span<const char* const> always,
                            std::span<const char* const> per_block,
                            bool has_blocks, simt::HazardReport& sink);

/// Config::trace_path / Config::metrics_path / Config::profile_path fall
/// back to the matching environment toggle when unset.
[[nodiscard]] std::string path_or_env(const std::string& configured,
                                      const char* env_name);

/// Everything one in-flight query carries between its GPU half and its CPU
/// half — filled by SearchSession on the session thread, or merged from
/// per-shard results by ShardedSession's gather step.
struct QueryRun {
  std::size_t query_index = 0;
  util::Timer wall;  ///< starts when the run is created (GPU-phase entry)
  double wall_seconds = 0.0;  ///< set when the CPU half completes

  /// Cooperative stop token, polled at every stage boundary. Empty for
  /// token-less searches and the whole batch path.
  CancellationToken cancel;

  std::optional<QueryContext> ctx;
  SearchReport report;

  // Snapshots for per-query attribution against the shared engine(s).
  simt::ProfileRegistry profile_before;
  simt::ProfileRegistry profile_delta;  ///< taken when the GPU half ends
  simt::HazardReport hazards;
  std::uint64_t fires_before = 0;

  double prep_s = 0.0;
  std::vector<std::vector<blast::UngappedExtension>> block_extensions;
  std::vector<double> block_fallback_s;  ///< global block order
  std::vector<double> block_gpu_ms;      ///< global block order

  /// Per-shard summaries for the v4 report (one entry for SearchSession,
  /// K entries in shard order for ShardedSession). Moved into
  /// SearchReport::shards by finish_search_report.
  std::vector<ShardSummary> shards;

  /// CPU-half outputs, reset whole at every run_cpu_phases entry so the
  /// batch path can re-run the stage after an injected worker fault.
  struct CpuOut {
    double gapped_s = 0.0;
    double traceback_s = 0.0;
    double finalize_s = 0.0;
    std::uint64_t gapped_extensions = 0;
    std::uint64_t tracebacks = 0;
    std::vector<blast::Alignment> alignments;
    std::vector<ModeledBlock> modeled;
  } cpu;
};

/// Assembles the SearchReport (profile delta, pipeline walk, timings,
/// metrics, continuous-profiler fold-in) from a query whose two halves
/// have both finished. Shared verbatim by both session front-ends.
void finish_search_report(QueryRun& run, const Config& config,
                          simt::prof::ContinuousProfiler& profiler,
                          bool emit_modeled_trace);

/// Writes the process metrics registry to Config::metrics_path (or
/// REPRO_METRICS); no-op when neither is set.
void export_metrics_if_configured(const Config& config);

/// Writes the profiler's cumulative JSON to Config::profile_path (or
/// REPRO_PROFILE); no-op when neither is set.
void export_profile_if_configured(const Config& config,
                                  const simt::prof::ContinuousProfiler& prof);

}  // namespace repro::core::detail
