#include "core/search_session.hpp"

#include <future>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/errors.hpp"
#include "core/prefilter.hpp"
#include "core/query_context.hpp"
#include "core/session_detail.hpp"
#include "simt/simtcheck.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/svccheck.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace repro::core {

using detail::QueryRun;

SearchSession::SearchSession(Config config, const bio::SequenceDatabase& db)
    : config_(normalized_config(std::move(config))),
      db_(&db),
      shard_(config_, db, /*shard_index=*/0, /*first_block=*/0,
             db.split_blocks(config_.db_blocks)) {
  check_search_limits({}, db);
  if (config_.svccheck || util::svc::svccheck_env_enabled())
    util::svc::set_svccheck_enabled(true);
  // Everything allocated from here on belongs to this session for
  // leakcheck purposes; see leak_check().
  session_generation_ = simt::begin_device_generation();
  profiler_.set_device(shard_.engine().spec());
}

std::uint64_t SearchSession::leak_check(simt::HazardReport& sink) const {
  return simt::device_leak_check(sink, session_generation_);
}

void SearchSession::run_gpu_phases(std::span<const std::uint8_t> query,
                                   QueryRun& run, std::size_t query_index) {
  run.query_index = query_index;
  run.fires_before = util::FaultInjector::instance().total_fires();
  run.cancel.throw_if_stopped("query.start");

  // --- stage 1: query preparation (the "Other" phase of Fig. 19d) --------
  {
    util::Timer prep_timer;
    util::TraceSpan prep_span("query_prep", "core");
    run.ctx.emplace(query, *db_, config_);
    prep_span.end();
    run.prep_s = prep_timer.seconds();
  }

  // --- stages 2+3: the shard's GPU half (upload, pre-filter, ladder) -----
  ShardGpuResult gpu = shard_.run_gpu_blocks(*run.ctx, run.cancel);

  run.report.prefilter_mode = config_.prefilter;
  if (config_.prefilter != PrefilterMode::kOff)
    run.report.prefilter_threshold =
        prefilter_threshold_for(config_, run.ctx->evalue);

  run.shards.clear();
  run.shards.push_back(summarize_shard(shard_.index(), shard_.first_block(),
                                       gpu));

  run.report.bin_overflow_retries = gpu.bin_overflow_retries;
  run.report.cache_off_retries = gpu.cache_off_retries;
  run.report.degraded_blocks = gpu.degraded_blocks;
  run.report.prefilter_sequences = gpu.prefilter_sequences;
  run.report.prefilter_survivors = gpu.prefilter_survivors;
  run.report.prefilter_degraded_blocks = gpu.prefilter_degraded_blocks;
  run.report.retry_counts = std::move(gpu.retry_counts);
  run.report.block_backends = std::move(gpu.block_backends);

  auto& counters = run.report.result.counters;
  counters.hits_detected = gpu.hits_detected;
  counters.hits_after_filter = gpu.hits_after_filter;
  counters.ungapped_extensions = gpu.ungapped_extensions;
  counters.words_scanned = gpu.words_scanned;

  run.block_extensions = std::move(gpu.block_extensions);
  run.block_fallback_s = std::move(gpu.block_fallback_s);
  run.block_gpu_ms = std::move(gpu.block_gpu_ms);
  run.profile_delta = std::move(gpu.profile_delta);
  run.hazards = std::move(gpu.hazards);
}

void SearchSession::run_cpu_phases(QueryRun& run) {
  run.cpu = {};
  const std::size_t num_blocks = shard_.num_blocks();

  // --- stage 4: gapped extension + traceback, block by block -------------
  for (std::size_t bi = 0; bi < num_blocks; ++bi) {
    run.cancel.throw_if_stopped("cpu_phase.block");
    util::TraceSpan gapped_span;
    if (util::trace_enabled()) {
      gapped_span.open("gapped_stage", "cpu");
      gapped_span.arg("block", static_cast<std::uint64_t>(bi));
    }
    BlockCpuResult stage = run_block_cpu_stage(
        *run.ctx, *db_, run.block_extensions[bi], config_);
    if (gapped_span.active()) {
      gapped_span.arg("gapped_tasks",
                      static_cast<std::uint64_t>(stage.gapped_schedule.size()));
      gapped_span.arg(
          "traceback_tasks",
          static_cast<std::uint64_t>(stage.traceback_schedule.size()));
    }
    run.cpu.gapped_s += stage.gapped_makespan_seconds;
    run.cpu.traceback_s += stage.traceback_makespan_seconds;
    run.cpu.gapped_extensions += stage.gapped_extensions;
    run.cpu.tracebacks += stage.tracebacks;

    ModeledBlock modeled;
    modeled.query_index = run.query_index;
    modeled.block_index = bi;
    modeled.gpu_s = run.block_gpu_ms[bi] / 1e3;
    modeled.cpu_s = stage.gapped_makespan_seconds +
                    stage.traceback_makespan_seconds +
                    run.block_fallback_s[bi];
    modeled.fallback_s = run.block_fallback_s[bi];
    modeled.gapped_schedule = std::move(stage.gapped_schedule);
    modeled.traceback_schedule = std::move(stage.traceback_schedule);
    run.cpu.modeled.push_back(std::move(modeled));

    run.cpu.alignments.insert(
        run.cpu.alignments.end(),
        std::make_move_iterator(stage.alignments.begin()),
        std::make_move_iterator(stage.alignments.end()));
  }

  // --- stage 5: finalization ---------------------------------------------
  run.cancel.throw_if_stopped("finalize");
  run.cpu.finalize_s = run_finalize(run.cpu.alignments, *run.ctx, config_);
  run.wall_seconds = run.wall.seconds();
}

SearchReport SearchSession::search(std::span<const std::uint8_t> query,
                                   const CancellationToken& cancel) {
  check_search_limits(query, *db_);
  // svccheck coverage scope: collects every checkpoint this thread polls
  // during the search; gaps against the required stage-boundary set are
  // reported below. The leak floor is this query's own generation, so the
  // resident database and earlier queries' (already-scanned) state never
  // alias into this query's scan.
  util::svc::CheckpointScope checkpoints;
  const std::uint64_t query_generation = simt::begin_device_generation();
  cancel.throw_if_stopped("search.entry");

  std::optional<util::FaultScope> fault_scope;
  if (!config_.fault_schedule.empty())
    fault_scope.emplace(config_.fault_schedule,
                        config_.fault_seed != 0 ? config_.fault_seed
                                                : util::default_fault_seed());

  // Observability session: Config::trace_path, else REPRO_TRACE. If an
  // outer owner (the CLI) already started a session this scope is passive
  // and the outer owner writes the file.
  const std::string trace_path =
      detail::path_or_env(config_.trace_path, "REPRO_TRACE");
  std::optional<util::TraceSession> trace_session;
  if (!trace_path.empty()) trace_session.emplace(trace_path);

  SearchReport report;
  {
    QueryRun run;
    run.cancel = cancel;
    util::TraceSpan search_span("cublastp.search", "core");
    if (search_span.active()) {
      search_span.arg("query_length", static_cast<std::uint64_t>(query.size()));
      search_span.arg("db_sequences", static_cast<std::uint64_t>(db_->size()));
      search_span.arg("db_blocks",
                      static_cast<std::uint64_t>(config_.db_blocks));
      search_span.arg("engine_workers", config_.engine_workers);
    }

    run_gpu_phases(query, run, 0);
    run_cpu_phases(run);
    detail::finish_search_report(run, config_, profiler_,
                                 /*emit_modeled_trace=*/true);

    if (search_span.active()) {
      search_span.arg(
          "alignments",
          static_cast<std::uint64_t>(run.report.result.alignments.size()));
      search_span.arg("degraded_blocks", run.report.degraded_blocks);
      search_span.arg("faults_absorbed", run.report.faults_encountered);
    }
    search_span.end();
    report = std::move(run.report);
  }  // QueryRun dies here: its QueryContext device buffers must all be gone
     // before the leak scan below, or they would read as leaks.

  // leakcheck: any device allocation made during this query and still live
  // now outlived it (the DeviceResidentScope-tagged database image is
  // exempt — outliving queries is its purpose).
  if (shard_.engine().simtcheck_enabled())
    simt::device_leak_check(report.hazards, query_generation);
  // svccheck: assert the stage-boundary checkpoint coverage contract.
  if (util::svc::svccheck_enabled())
    detail::append_checkpoint_gaps(
        checkpoints, detail::kSearchAlwaysCheckpoints,
        detail::kSearchPerBlockCheckpoints, shard_.num_blocks() > 0,
        report.hazards);

  detail::export_metrics_if_configured(config_);
  export_profile();
  return report;
}

BatchReport SearchSession::search_batch(
    std::span<const std::span<const std::uint8_t>> queries) {
  BatchReport batch;
  if (queries.empty()) return batch;
  // Fail fast on any invalid query before any work is scheduled.
  for (const auto& query : queries) check_search_limits(query, *db_);
  // Leakcheck floor for the whole batch (scanned once, after every run's
  // device buffers are destroyed).
  const std::uint64_t batch_generation = simt::begin_device_generation();

  // One fault scope around the whole batch: the schedule's fire counters
  // run across all queries, like one long-lived service would see.
  std::optional<util::FaultScope> fault_scope;
  if (!config_.fault_schedule.empty())
    fault_scope.emplace(config_.fault_schedule,
                        config_.fault_seed != 0 ? config_.fault_seed
                                                : util::default_fault_seed());

  const std::string trace_path =
      detail::path_or_env(config_.trace_path, "REPRO_TRACE");
  std::optional<util::TraceSession> trace_session;
  if (!trace_path.empty()) trace_session.emplace(trace_path);

  const std::uint64_t uploads_before = shard_.block_uploads();
  const std::uint64_t bytes_before = shard_.resident_bytes();

  util::Timer batch_timer;
  util::TraceSpan batch_span("cublastp.search_batch", "core");
  if (batch_span.active()) {
    batch_span.arg("queries", static_cast<std::uint64_t>(queries.size()));
    batch_span.arg("db_sequences", static_cast<std::uint64_t>(db_->size()));
    batch_span.arg("db_blocks", static_cast<std::uint64_t>(config_.db_blocks));
    batch_span.arg("engine_workers", config_.engine_workers);
  }

  // Cross-query overlap (Fig. 12 generalized): the main thread drives
  // query q+1's GPU phases while one worker drains query q's engine-free
  // CPU stage. A single worker keeps the CPU stages in query order, which
  // is also what the real pipeline's one-CPU-resource model assumes.
  std::vector<std::unique_ptr<QueryRun>> runs(queries.size());
  std::vector<std::future<void>> cpu_done(queries.size());
  {
    util::ThreadPool cpu_pool(1, "batch-cpu");
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      runs[qi] = std::make_unique<QueryRun>();
      util::TraceSpan query_span;
      if (util::trace_enabled()) {
        query_span.open("batch.query " + std::to_string(qi), "core");
        query_span.arg("query_length",
                       static_cast<std::uint64_t>(queries[qi].size()));
      }
      run_gpu_phases(queries[qi], *runs[qi], qi);
      QueryRun* run = runs[qi].get();
      cpu_done[qi] = cpu_pool.submit([this, run] { run_cpu_phases(*run); });
    }
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      try {
        cpu_done[qi].get();
      } catch (...) {
        // The CPU stage is engine-free and resets its outputs at entry, so
        // a worker-side failure (an injected fault, an allocation failure)
        // is retried inline; a second failure propagates to the caller.
        run_cpu_phases(*runs[qi]);
      }
    }
  }

  for (auto& run : runs)
    detail::finish_search_report(*run, config_, profiler_,
                                 /*emit_modeled_trace=*/false);

  batch.reports.reserve(queries.size());
  batch.per_query_wall_seconds.reserve(queries.size());
  std::vector<ModeledQuery> modeled(queries.size());
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    modeled[qi].prep_s = runs[qi]->prep_s;
    modeled[qi].finalize_s = runs[qi]->cpu.finalize_s;
    modeled[qi].blocks = std::move(runs[qi]->cpu.modeled);
    batch.per_query_wall_seconds.push_back(runs[qi]->wall_seconds);
    batch.prefilter_sequences += runs[qi]->report.prefilter_sequences;
    batch.prefilter_survivors += runs[qi]->report.prefilter_survivors;
    batch.reports.push_back(std::move(runs[qi]->report));
  }

  // leakcheck over the batch: destroy every run (and with it every query's
  // device buffers) first, then scan. Findings land on the first report —
  // per-query attribution is impossible once queries overlap.
  runs.clear();
  if (shard_.engine().simtcheck_enabled())
    simt::device_leak_check(batch.reports[0].hazards, batch_generation);

  batch.batch_wall_seconds = batch_timer.seconds();
  batch.h2d_block_uploads = shard_.block_uploads() - uploads_before;
  batch.h2d_block_bytes = shard_.resident_bytes() - bytes_before;
  batch.db_device_bytes = db_device_bytes();

  batch.modeled_batch_seconds =
      walk_batch_pipeline(modeled, config_.cpu_threads);
  // What N one-shot sessions would model: each query runs its own Fig. 12
  // walk (already in overlapped_total_seconds) and pays the full database
  // upload, priced by the same PCIe model, minus whatever upload time its
  // profile already contains.
  double full_upload_ms = 0.0;
  for (std::size_t bi = 0; bi < shard_.num_blocks(); ++bi) {
    const auto [begin, end] = shard_.block_range(bi);
    const std::uint64_t block_bytes =
        db_->offsets()[end] - db_->offsets()[begin] +
        (end - begin + 1) * sizeof(std::uint32_t);
    full_upload_ms += shard_.engine().cost_model().transfer_ms(
        shard_.engine().spec(), block_bytes);
  }
  for (const auto& report : batch.reports)
    batch.modeled_sequential_seconds +=
        report.overlapped_total_seconds +
        (full_upload_ms - detail::kernel_ms(report.profile, "h2d_block")) / 1e3;

  if (batch_span.active()) {
    batch_span.arg("h2d_block_bytes", batch.h2d_block_bytes);
    batch_span.arg("modeled_batch_seconds", batch.modeled_batch_seconds);
    batch_span.arg("modeled_sequential_seconds",
                   batch.modeled_sequential_seconds);
  }
  batch_span.end();

  auto& registry = util::metrics::Registry::instance();
  registry.counter("core.batches").add(1);
  registry.counter("core.batch_queries").add(queries.size());
  registry.histogram("core.batch_wall_seconds")
      .observe(batch.batch_wall_seconds);
  detail::export_metrics_if_configured(config_);
  export_profile();
  return batch;
}

void SearchSession::export_profile() const {
  detail::export_profile_if_configured(config_, profiler_);
}

}  // namespace repro::core
