#include "core/search_session.hpp"

#include <cstdlib>
#include <future>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/coarse_block.hpp"
#include "core/errors.hpp"
#include "core/kernels.hpp"
#include "core/prefilter.hpp"
#include "core/query_context.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/svccheck.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace repro::core {

namespace {

/// Modeled GPU time accumulated in `registry` for one kernel name (ms).
double kernel_ms(const simt::ProfileRegistry& registry, const char* name) {
  return registry.has(name) ? registry.at(name).time_ms : 0.0;
}

/// The cancellation checkpoints every successful single-query search must
/// poll (svccheck coverage contract; DESIGN.md §15). The first three are
/// unconditional; the per-block ones require at least one database block.
constexpr const char* kAlwaysCheckpoints[] = {"search.entry", "query.start",
                                              "finalize"};
constexpr const char* kPerBlockCheckpoints[] = {
    "gpu_phase.block", "block_ladder.entry", "cpu_phase.block"};

/// Appends a kCheckpointGap hazard for every required checkpoint the scope
/// never saw polled.
void append_checkpoint_gaps(const util::svc::CheckpointScope& scope,
                            bool has_blocks, simt::HazardReport& sink) {
  auto append = [&](std::span<const char* const> required) {
    for (const std::string& name : scope.missing(required)) {
      simt::HazardRecord record;
      record.kind = simt::HazardKind::kCheckpointGap;
      record.kernel = "search";
      record.detail = "cancellation checkpoint '" + name +
                      "' was never polled during this search — requests "
                      "cannot stop at that stage boundary";
      sink.add(std::move(record));
    }
  };
  append(kAlwaysCheckpoints);
  if (has_blocks) append(kPerBlockCheckpoints);
}

/// Config::trace_path / Config::metrics_path fall back to the matching
/// environment toggle when unset.
std::string path_or_env(const std::string& configured, const char* env_name) {
  if (!configured.empty()) return configured;
  if (const char* env = std::getenv(env_name)) return env;
  return {};
}

}  // namespace

/// Everything one in-flight query carries between the GPU half (main
/// thread) and the CPU half (possibly a batch worker thread).
struct SearchSession::QueryRun {
  std::size_t query_index = 0;
  util::Timer wall;  ///< starts when the run is created (GPU-phase entry)
  double wall_seconds = 0.0;  ///< set when the CPU half completes

  /// Cooperative stop token, polled at every stage boundary. Empty for
  /// token-less searches and the whole batch path.
  CancellationToken cancel;

  std::optional<QueryContext> ctx;
  SearchReport report;

  // Snapshots for per-query attribution against the shared engine.
  simt::ProfileRegistry profile_before;
  simt::ProfileRegistry profile_delta;  ///< taken when the GPU half ends
  simt::HazardReport hazards;
  std::uint64_t fires_before = 0;

  double prep_s = 0.0;
  std::vector<std::vector<blast::UngappedExtension>> block_extensions;
  std::vector<double> block_fallback_s;
  std::vector<double> block_gpu_ms;

  /// CPU-half outputs, reset whole at every run_cpu_phases entry so the
  /// batch path can re-run the stage after an injected worker fault.
  struct CpuOut {
    double gapped_s = 0.0;
    double traceback_s = 0.0;
    double finalize_s = 0.0;
    std::uint64_t gapped_extensions = 0;
    std::uint64_t tracebacks = 0;
    std::vector<blast::Alignment> alignments;
    std::vector<ModeledBlock> modeled;
  } cpu;
};

SearchSession::SearchSession(Config config, const bio::SequenceDatabase& db)
    : config_(normalized_config(std::move(config))),
      db_(&db),
      residency_(db, db.split_blocks(config_.db_blocks)) {
  check_search_limits({}, db);
  engine_.set_readonly_cache_enabled(config_.use_readonly_cache);
  engine_.set_workers(config_.engine_workers);
  if (config_.simtcheck) engine_.set_simtcheck_enabled(true);
  if (config_.svccheck || util::svc::svccheck_env_enabled())
    util::svc::set_svccheck_enabled(true);
  // Everything allocated from here on belongs to this session for
  // leakcheck purposes; see leak_check().
  session_generation_ = simt::begin_device_generation();
  profiler_.set_device(engine_.spec());
}

std::uint64_t SearchSession::leak_check(simt::HazardReport& sink) const {
  return simt::device_leak_check(sink, session_generation_);
}

std::uint64_t SearchSession::db_device_bytes() const {
  // Mirrors BlockDevice::h2d_bytes without staging anything: the block's
  // residues plus its (num_seqs + 1) 32-bit offsets.
  std::uint64_t bytes = 0;
  for (std::size_t bi = 0; bi < residency_.num_blocks(); ++bi) {
    const auto [begin, end] = residency_.range(bi);
    bytes += db_->offsets()[end] - db_->offsets()[begin];
    bytes += (end - begin + 1) * sizeof(std::uint32_t);
  }
  return bytes;
}

void SearchSession::run_gpu_phases(std::span<const std::uint8_t> query,
                                   QueryRun& run, std::size_t query_index) {
  run.query_index = query_index;
  run.fires_before = util::FaultInjector::instance().total_fires();
  run.profile_before = engine_.profile();
  engine_.clear_hazards();

  // Install the request's root cancel flag on the engine for the duration
  // of the GPU half: an in-flight launch then skips its remaining shards
  // once the client cancels, instead of running them to completion before
  // the next checkpoint can abort. Cleared on every exit path (a null flag
  // changes nothing for token-less queries).
  engine_.set_cancel_flag(run.cancel.root_flag());
  struct FlagClear {
    simt::Engine& engine;
    ~FlagClear() { engine.set_cancel_flag(nullptr); }
  } flag_clear{engine_};
  run.cancel.throw_if_stopped("query.start");

  // --- stage 1: query preparation (the "Other" phase of Fig. 19d) --------
  {
    util::Timer prep_timer;
    util::TraceSpan prep_span("query_prep", "core");
    run.ctx.emplace(query, *db_, config_);
    prep_span.end();
    run.prep_s = prep_timer.seconds();
  }
  engine_.transfer("h2d_query", run.ctx->device.h2d_bytes());

  const std::size_t num_blocks = residency_.num_blocks();

  // --- stage 1b: SSV pre-filter table (DESIGN.md §13) --------------------
  // Built per query (it depends on the PSSM) and uploaded once; every
  // block's filter launch reads it. A failure here is recoverable: the
  // whole query degrades to the unfiltered path, never dropping results.
  std::optional<PrefilterDevice> prefilter;
  int prefilter_threshold = 0;
  run.report.prefilter_mode = config_.prefilter;
  if (config_.prefilter != PrefilterMode::kOff) {
    prefilter_threshold = prefilter_threshold_for(config_, run.ctx->evalue);
    run.report.prefilter_threshold = prefilter_threshold;
    try {
      prefilter.emplace(run.ctx->pssm);
      engine_.transfer("h2d_prefilter", prefilter->h2d_bytes());
    } catch (const simt::DeviceError&) {
      prefilter.reset();
    } catch (const util::FaultInjectedError&) {
      prefilter.reset();
    } catch (const std::bad_alloc&) {
      prefilter.reset();
    }
    if (!prefilter.has_value()) {
      // Every block of this query is served unfiltered.
      run.report.prefilter_degraded_blocks = num_blocks;
      if (util::trace_enabled())
        util::trace_instant(
            "degrade.prefilter_off", "degrade",
            {util::targ("blocks", static_cast<std::uint64_t>(num_blocks))});
    }
  }

  run.report.retry_counts.assign(num_blocks, 0);
  run.report.block_backends.reserve(num_blocks);
  run.block_extensions.resize(num_blocks);
  run.block_fallback_s.assign(num_blocks, 0.0);
  run.block_gpu_ms.assign(num_blocks, 0.0);

  // Bin capacity starts from the configured value for every query (growth
  // is a per-search adaptation, so session results match one-shot runs).
  std::uint32_t bin_capacity = static_cast<std::uint32_t>(config_.bin_capacity);

  // --- stages 2+3: residency + the degradation ladder, block by block ----
  for (std::size_t bi = 0; bi < num_blocks; ++bi) {
    run.cancel.throw_if_stopped("gpu_phase.block");
    const auto [begin, end] = residency_.range(bi);
    util::TraceSpan block_span;
    if (util::trace_enabled()) {
      block_span.open("db_block " + std::to_string(bi), "core");
      block_span.arg("first_seq", static_cast<std::uint64_t>(begin));
      block_span.arg("end_seq", static_cast<std::uint64_t>(end));
    }
    const double gpu_ms_before = engine_.profile().total_time_ms();

    BlockLadderResult ladder = run_block_ladder(
        engine_, config_, *run.ctx, *db_, residency_, bi, bin_capacity,
        run.report.bin_overflow_retries,
        prefilter.has_value() ? &*prefilter : nullptr, prefilter_threshold,
        run.cancel);

    run.report.retry_counts[bi] = ladder.failed_attempts;
    if (ladder.cache_off_retry) ++run.report.cache_off_retries;
    if (ladder.degraded) ++run.report.degraded_blocks;
    run.report.block_backends.push_back(ladder.backend);
    run.report.prefilter_sequences += ladder.prefilter_seqs;
    run.report.prefilter_survivors += ladder.prefilter_survivors;
    if (ladder.prefilter_degraded) ++run.report.prefilter_degraded_blocks;

    auto& counters = run.report.result.counters;
    counters.hits_detected += ladder.outcome.hits_detected;
    counters.hits_after_filter += ladder.outcome.hits_after_filter;
    counters.ungapped_extensions += ladder.outcome.ungapped_extensions;
    counters.words_scanned += ladder.words_scanned;
    run.block_extensions[bi] = std::move(ladder.outcome.extensions);
    run.block_fallback_s[bi] = ladder.outcome.cpu_fallback_seconds;

    run.block_gpu_ms[bi] = engine_.profile().total_time_ms() - gpu_ms_before;
    if (util::trace_enabled()) {
      util::trace_counter("hits_detected_total",
                          static_cast<double>(counters.hits_detected));
      util::trace_counter("hits_after_filter_total",
                          static_cast<double>(counters.hits_after_filter));
    }
  }

  // Attribute this query's engine work now: the CPU half never touches the
  // engine, but in a batch the next query's kernels run before this
  // query's report is assembled.
  run.profile_delta = engine_.profile().diff(run.profile_before);
  run.hazards = engine_.hazards();
}

void SearchSession::run_cpu_phases(QueryRun& run) {
  run.cpu = {};
  const std::size_t num_blocks = residency_.num_blocks();

  // --- stage 4: gapped extension + traceback, block by block -------------
  for (std::size_t bi = 0; bi < num_blocks; ++bi) {
    run.cancel.throw_if_stopped("cpu_phase.block");
    util::TraceSpan gapped_span;
    if (util::trace_enabled()) {
      gapped_span.open("gapped_stage", "cpu");
      gapped_span.arg("block", static_cast<std::uint64_t>(bi));
    }
    BlockCpuResult stage = run_block_cpu_stage(
        *run.ctx, *db_, run.block_extensions[bi], config_);
    if (gapped_span.active()) {
      gapped_span.arg("gapped_tasks",
                      static_cast<std::uint64_t>(stage.gapped_schedule.size()));
      gapped_span.arg(
          "traceback_tasks",
          static_cast<std::uint64_t>(stage.traceback_schedule.size()));
    }
    run.cpu.gapped_s += stage.gapped_makespan_seconds;
    run.cpu.traceback_s += stage.traceback_makespan_seconds;
    run.cpu.gapped_extensions += stage.gapped_extensions;
    run.cpu.tracebacks += stage.tracebacks;

    ModeledBlock modeled;
    modeled.query_index = run.query_index;
    modeled.block_index = bi;
    modeled.gpu_s = run.block_gpu_ms[bi] / 1e3;
    modeled.cpu_s = stage.gapped_makespan_seconds +
                    stage.traceback_makespan_seconds +
                    run.block_fallback_s[bi];
    modeled.fallback_s = run.block_fallback_s[bi];
    modeled.gapped_schedule = std::move(stage.gapped_schedule);
    modeled.traceback_schedule = std::move(stage.traceback_schedule);
    run.cpu.modeled.push_back(std::move(modeled));

    run.cpu.alignments.insert(
        run.cpu.alignments.end(),
        std::make_move_iterator(stage.alignments.begin()),
        std::make_move_iterator(stage.alignments.end()));
  }

  // --- stage 5: finalization ---------------------------------------------
  run.cancel.throw_if_stopped("finalize");
  run.cpu.finalize_s = run_finalize(run.cpu.alignments, *run.ctx, config_);
  run.wall_seconds = run.wall.seconds();
}

void SearchSession::finish_report(QueryRun& run, bool emit_modeled_trace) {
  SearchReport& report = run.report;
  report.result.alignments = std::move(run.cpu.alignments);
  report.gapped_seconds = run.cpu.gapped_s;
  report.traceback_seconds = run.cpu.traceback_s;
  report.result.counters.gapped_extensions = run.cpu.gapped_extensions;
  report.result.counters.tracebacks = run.cpu.tracebacks;
  report.other_seconds = run.prep_s + run.cpu.finalize_s;

  report.profile = std::move(run.profile_delta);
  report.hazards = std::move(run.hazards);
  report.detection_ms = kernel_ms(report.profile, kKernelDetection);
  report.scan_ms = kernel_ms(report.profile, kKernelScan);
  report.assemble_ms = kernel_ms(report.profile, kKernelAssemble);
  report.sort_ms = kernel_ms(report.profile, kKernelSort);
  report.filter_ms = kernel_ms(report.profile, kKernelFilter);
  report.extension_ms = kernel_ms(report.profile, kKernelExtension);
  report.prefilter_ms = kernel_ms(report.profile, kKernelPrefilter);
  report.coarse_ms = kernel_ms(report.profile, kKernelCoarse);
  report.h2d_ms = kernel_ms(report.profile, "h2d_query") +
                  kernel_ms(report.profile, "h2d_block") +
                  kernel_ms(report.profile, "h2d_prefilter") +
                  kernel_ms(report.profile, "h2d_survivors");
  report.d2h_ms = kernel_ms(report.profile, "d2h_extensions") +
                  kernel_ms(report.profile, "d2h_prefilter");

  const PipelineTotals totals =
      walk_pipeline(run.cpu.modeled, config_.cpu_threads, emit_modeled_trace);
  report.overlapped_total_seconds = totals.overlapped_s + report.other_seconds;
  report.serial_total_seconds = totals.serial_s + report.other_seconds;

  double fallback_seconds = 0.0;
  for (const double s : run.block_fallback_s) fallback_seconds += s;

  // Map into the common PhaseTimings (GPU ms -> seconds). Degraded blocks
  // fold their host-side critical-phase cost into hit detection, where the
  // work they replaced lives; so do the pre-filter and coarse-backend
  // kernels, which substitute for (parts of) hit detection.
  report.result.timings.hit_detection =
      (report.detection_ms + report.scan_ms + report.assemble_ms +
       report.sort_ms + report.filter_ms + report.prefilter_ms +
       report.coarse_ms) /
          1e3 +
      fallback_seconds;
  report.result.timings.ungapped_extension = report.extension_ms / 1e3;
  report.result.timings.gapped_extension = report.gapped_seconds;
  report.result.timings.traceback = report.traceback_seconds;
  report.result.timings.other =
      report.other_seconds + (report.h2d_ms + report.d2h_ms) / 1e3;

  report.wall_ms = run.wall_seconds * 1e3;
  report.status = report.degraded() ? "degraded" : "ok";

  report.faults_encountered =
      util::FaultInjector::instance().total_fires() - run.fires_before;
  if (util::trace_enabled() && report.faults_encountered > 0)
    util::trace_instant("faults_absorbed", "degrade",
                        {util::targ("count", report.faults_encountered)});

  // Metrics are always on (lock-free recording; see util/metrics.hpp) —
  // only the export is gated on a destination being configured.
  auto& registry = util::metrics::Registry::instance();
  registry.counter("core.searches").add(1);
  registry.counter("core.alignments").add(report.result.alignments.size());
  registry.counter("core.bin_overflow_retries")
      .add(report.bin_overflow_retries);
  registry.counter("core.cache_off_retries").add(report.cache_off_retries);
  registry.counter("core.degraded_blocks").add(report.degraded_blocks);
  registry.counter("core.faults_absorbed").add(report.faults_encountered);
  registry.counter("core.prefilter_sequences").add(report.prefilter_sequences);
  registry.counter("core.prefilter_survivors").add(report.prefilter_survivors);
  registry.counter("core.prefilter_degraded_blocks")
      .add(report.prefilter_degraded_blocks);
  registry.histogram("core.search_wall_seconds").observe(run.wall_seconds);

  // Continuous profiler: fold this query's per-kernel delta into the
  // session-lifetime aggregate (simtprof; DESIGN.md §16). Collection is
  // unconditional — it reads counters the engine already measured, so it
  // cannot perturb results — and export stays gated on a path.
  profiler_.record_search(report.profile, report.wall_ms);
}

void SearchSession::export_metrics() const {
  const std::string metrics_path =
      path_or_env(config_.metrics_path, "REPRO_METRICS");
  if (metrics_path.empty()) return;
  try {
    util::metrics::Registry::instance().write_file(metrics_path);
  } catch (const std::invalid_argument& e) {
    // The util layer cannot name SearchError (layering); translate here so
    // a typo'd --metrics path surfaces through the core error taxonomy.
    throw SearchError(SearchErrorCode::kInvalidArgument, e.what());
  }
}

void SearchSession::export_profile() const {
  const std::string profile_path =
      path_or_env(config_.profile_path, "REPRO_PROFILE");
  if (profile_path.empty()) return;
  try {
    profiler_.write_file(profile_path);
  } catch (const std::invalid_argument& e) {
    throw SearchError(SearchErrorCode::kInvalidArgument, e.what());
  }
}

SearchReport SearchSession::search(std::span<const std::uint8_t> query,
                                   const CancellationToken& cancel) {
  check_search_limits(query, *db_);
  // svccheck coverage scope: collects every checkpoint this thread polls
  // during the search; gaps against the required stage-boundary set are
  // reported below. The leak floor is this query's own generation, so the
  // resident database and earlier queries' (already-scanned) state never
  // alias into this query's scan.
  util::svc::CheckpointScope checkpoints;
  const std::uint64_t query_generation = simt::begin_device_generation();
  cancel.throw_if_stopped("search.entry");

  std::optional<util::FaultScope> fault_scope;
  if (!config_.fault_schedule.empty())
    fault_scope.emplace(config_.fault_schedule,
                        config_.fault_seed != 0 ? config_.fault_seed
                                                : util::default_fault_seed());

  // Observability session: Config::trace_path, else REPRO_TRACE. If an
  // outer owner (the CLI) already started a session this scope is passive
  // and the outer owner writes the file.
  const std::string trace_path = path_or_env(config_.trace_path, "REPRO_TRACE");
  std::optional<util::TraceSession> trace_session;
  if (!trace_path.empty()) trace_session.emplace(trace_path);

  SearchReport report;
  {
    QueryRun run;
    run.cancel = cancel;
    util::TraceSpan search_span("cublastp.search", "core");
    if (search_span.active()) {
      search_span.arg("query_length", static_cast<std::uint64_t>(query.size()));
      search_span.arg("db_sequences", static_cast<std::uint64_t>(db_->size()));
      search_span.arg("db_blocks",
                      static_cast<std::uint64_t>(config_.db_blocks));
      search_span.arg("engine_workers", config_.engine_workers);
    }

    run_gpu_phases(query, run, 0);
    run_cpu_phases(run);
    finish_report(run, /*emit_modeled_trace=*/true);

    if (search_span.active()) {
      search_span.arg(
          "alignments",
          static_cast<std::uint64_t>(run.report.result.alignments.size()));
      search_span.arg("degraded_blocks", run.report.degraded_blocks);
      search_span.arg("faults_absorbed", run.report.faults_encountered);
    }
    search_span.end();
    report = std::move(run.report);
  }  // QueryRun dies here: its QueryContext device buffers must all be gone
     // before the leak scan below, or they would read as leaks.

  // leakcheck: any device allocation made during this query and still live
  // now outlived it (the DeviceResidentScope-tagged database image is
  // exempt — outliving queries is its purpose).
  if (engine_.simtcheck_enabled())
    simt::device_leak_check(report.hazards, query_generation);
  // svccheck: assert the stage-boundary checkpoint coverage contract.
  if (util::svc::svccheck_enabled())
    append_checkpoint_gaps(checkpoints, residency_.num_blocks() > 0,
                           report.hazards);

  export_metrics();
  export_profile();
  return report;
}

BatchReport SearchSession::search_batch(
    std::span<const std::span<const std::uint8_t>> queries) {
  BatchReport batch;
  if (queries.empty()) return batch;
  // Fail fast on any invalid query before any work is scheduled.
  for (const auto& query : queries) check_search_limits(query, *db_);
  // Leakcheck floor for the whole batch (scanned once, after every run's
  // device buffers are destroyed).
  const std::uint64_t batch_generation = simt::begin_device_generation();

  // One fault scope around the whole batch: the schedule's fire counters
  // run across all queries, like one long-lived service would see.
  std::optional<util::FaultScope> fault_scope;
  if (!config_.fault_schedule.empty())
    fault_scope.emplace(config_.fault_schedule,
                        config_.fault_seed != 0 ? config_.fault_seed
                                                : util::default_fault_seed());

  const std::string trace_path = path_or_env(config_.trace_path, "REPRO_TRACE");
  std::optional<util::TraceSession> trace_session;
  if (!trace_path.empty()) trace_session.emplace(trace_path);

  const std::uint64_t uploads_before = residency_.uploads();
  const std::uint64_t bytes_before = residency_.uploaded_bytes();

  util::Timer batch_timer;
  util::TraceSpan batch_span("cublastp.search_batch", "core");
  if (batch_span.active()) {
    batch_span.arg("queries", static_cast<std::uint64_t>(queries.size()));
    batch_span.arg("db_sequences", static_cast<std::uint64_t>(db_->size()));
    batch_span.arg("db_blocks", static_cast<std::uint64_t>(config_.db_blocks));
    batch_span.arg("engine_workers", config_.engine_workers);
  }

  // Cross-query overlap (Fig. 12 generalized): the main thread drives
  // query q+1's GPU phases while one worker drains query q's engine-free
  // CPU stage. A single worker keeps the CPU stages in query order, which
  // is also what the real pipeline's one-CPU-resource model assumes.
  std::vector<std::unique_ptr<QueryRun>> runs(queries.size());
  std::vector<std::future<void>> cpu_done(queries.size());
  {
    util::ThreadPool cpu_pool(1, "batch-cpu");
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      runs[qi] = std::make_unique<QueryRun>();
      util::TraceSpan query_span;
      if (util::trace_enabled()) {
        query_span.open("batch.query " + std::to_string(qi), "core");
        query_span.arg("query_length",
                       static_cast<std::uint64_t>(queries[qi].size()));
      }
      run_gpu_phases(queries[qi], *runs[qi], qi);
      QueryRun* run = runs[qi].get();
      cpu_done[qi] = cpu_pool.submit([this, run] { run_cpu_phases(*run); });
    }
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      try {
        cpu_done[qi].get();
      } catch (...) {
        // The CPU stage is engine-free and resets its outputs at entry, so
        // a worker-side failure (an injected fault, an allocation failure)
        // is retried inline; a second failure propagates to the caller.
        run_cpu_phases(*runs[qi]);
      }
    }
  }

  for (auto& run : runs) finish_report(*run, /*emit_modeled_trace=*/false);

  batch.reports.reserve(queries.size());
  batch.per_query_wall_seconds.reserve(queries.size());
  std::vector<ModeledQuery> modeled(queries.size());
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    modeled[qi].prep_s = runs[qi]->prep_s;
    modeled[qi].finalize_s = runs[qi]->cpu.finalize_s;
    modeled[qi].blocks = std::move(runs[qi]->cpu.modeled);
    batch.per_query_wall_seconds.push_back(runs[qi]->wall_seconds);
    batch.prefilter_sequences += runs[qi]->report.prefilter_sequences;
    batch.prefilter_survivors += runs[qi]->report.prefilter_survivors;
    batch.reports.push_back(std::move(runs[qi]->report));
  }

  // leakcheck over the batch: destroy every run (and with it every query's
  // device buffers) first, then scan. Findings land on the first report —
  // per-query attribution is impossible once queries overlap.
  runs.clear();
  if (engine_.simtcheck_enabled())
    simt::device_leak_check(batch.reports[0].hazards, batch_generation);

  batch.batch_wall_seconds = batch_timer.seconds();
  batch.h2d_block_uploads = residency_.uploads() - uploads_before;
  batch.h2d_block_bytes = residency_.uploaded_bytes() - bytes_before;
  batch.db_device_bytes = db_device_bytes();

  batch.modeled_batch_seconds =
      walk_batch_pipeline(modeled, config_.cpu_threads);
  // What N one-shot sessions would model: each query runs its own Fig. 12
  // walk (already in overlapped_total_seconds) and pays the full database
  // upload, priced by the same PCIe model, minus whatever upload time its
  // profile already contains.
  double full_upload_ms = 0.0;
  for (std::size_t bi = 0; bi < residency_.num_blocks(); ++bi) {
    const auto [begin, end] = residency_.range(bi);
    const std::uint64_t block_bytes =
        db_->offsets()[end] - db_->offsets()[begin] +
        (end - begin + 1) * sizeof(std::uint32_t);
    full_upload_ms += engine_.cost_model().transfer_ms(engine_.spec(),
                                                       block_bytes);
  }
  for (const auto& report : batch.reports)
    batch.modeled_sequential_seconds +=
        report.overlapped_total_seconds +
        (full_upload_ms - kernel_ms(report.profile, "h2d_block")) / 1e3;

  if (batch_span.active()) {
    batch_span.arg("h2d_block_bytes", batch.h2d_block_bytes);
    batch_span.arg("modeled_batch_seconds", batch.modeled_batch_seconds);
    batch_span.arg("modeled_sequential_seconds",
                   batch.modeled_sequential_seconds);
  }
  batch_span.end();

  auto& registry = util::metrics::Registry::instance();
  registry.counter("core.batches").add(1);
  registry.counter("core.batch_queries").add(queries.size());
  registry.histogram("core.batch_wall_seconds")
      .observe(batch.batch_wall_seconds);
  export_metrics();
  export_profile();
  return batch;
}

}  // namespace repro::core
