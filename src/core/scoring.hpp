// Device-side residue-pair scoring for the extension kernels, realizing the
// paper's §3.5 trade-off (Fig. 15):
//
//  * PSSM in shared memory — one shared load per pair, but the PSSM is
//    64 bytes per query column, so long queries eat the 48 kB budget and
//    crush occupancy (and past the budget it falls back to global memory
//    through the read-only cache);
//  * BLOSUM62 in shared memory — fixed 2 kB, full occupancy, but costs an
//    extra shared load (the query residue) per pair.
//
// DeviceScoring::setup() allocates and cooperatively fills the shared
// buffers for one block, charging the copy like a real kernel prologue.
#pragma once

#include <span>

#include "core/config.hpp"
#include "core/device_data.hpp"
#include "simt/engine.hpp"

namespace repro::core {

class DeviceScoring {
 public:
  enum class Impl {
    kPssmShared,
    kPssmGlobal,          ///< global memory through the read-only cache
    kPssmGlobalUncached,  ///< plain global memory (coarse baselines)
    kBlosumShared,
  };

  /// Picks the implementation for a query under the configured mode.
  [[nodiscard]] static Impl select(const Config& config,
                                   std::size_t query_length);

  /// Allocates shared buffers in `ctx` and fills them cooperatively.
  static DeviceScoring setup(simt::BlockCtx& ctx, const Config& config,
                             const QueryDevice& query);

  /// PSSM kept in plain global memory (no shared staging, no read-only
  /// cache tagging): the pre-Kepler configuration the coarse-grained
  /// baselines use.
  static DeviceScoring plain_global_pssm(const QueryDevice& query);

  [[nodiscard]] Impl impl() const { return impl_; }

  /// One warp-level scoring step: out[lane] = score(query[qpos], sres).
  void score_step(simt::WarpExec& w,
                  const simt::LaneArray<std::uint32_t>& qpos,
                  const simt::LaneArray<std::uint8_t>& sres,
                  simt::LaneArray<int>& out) const;

 private:
  Impl impl_ = Impl::kBlosumShared;
  std::span<const std::int16_t> pssm_shared_;
  const std::int16_t* pssm_global_ = nullptr;
  std::span<const std::int16_t> blosum_shared_;
  std::span<const std::uint8_t> query_shared_;
};

}  // namespace repro::core
