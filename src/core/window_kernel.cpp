// Algorithm 5: window-based ungapped extension (paper §3.4, Fig. 8/9d).
//
// A warp is divided into windows of `window_size` lanes; each window walks
// one (sequence, diagonal) segment and extends its hits cooperatively: per
// round, the window's lanes score `window_size` consecutive positions,
// compute the running score with an inclusive plus-scan (the CUB-style
// PrefixSum of Fig. 8), the running best with an inclusive max-scan, the
// ChangeSinceBest/DropFlag per position, and stop at the first flagged
// position. The result is bit-identical to the scalar x-drop extension —
// verified by tests — while replacing the per-lane serial loop with
// log2(window) warp steps per window of positions.
#include <climits>

#include "core/extension_internal.hpp"
#include "core/scoring.hpp"

namespace repro::core::detail {

namespace {

using simt::BlockCtx;
using simt::LaneArray;
using simt::WarpExec;

constexpr int kNegInf = INT_MIN / 4;
constexpr std::uint32_t kBig = 1u << 30;
constexpr int kBoundaryScore = -100000;  ///< forces a DropFlag at the edge

/// One direction of the window-based extension. Direction is encoded by
/// the position mapping: `right` maps round offsets past the seed word,
/// left maps them before it. All inputs are window-uniform.
struct WindowHalf {
  LaneArray<int> gain{};            ///< best accumulated gain
  LaneArray<std::uint32_t> off{};   ///< scalar-compatible best offset
};

template <class PosMap>
WindowHalf window_extend_half(WarpExec& w, const DeviceScoring& scoring,
                              const std::uint8_t* residues, int window_size,
                              int xdrop, PosMap&& map) {
  WindowHalf half;
  LaneArray<std::uint8_t> done{};
  LaneArray<std::uint32_t> round{};
  LaneArray<int> carry_run{};
  LaneArray<int> carry_best{};

  w.loop_while(
      [&](int lane) { return done[lane] == 0; },
      [&] {
        // Per-lane position of this round.
        LaneArray<std::uint32_t> offset{};
        LaneArray<std::uint32_t> qp{};
        LaneArray<std::uint32_t> sidx{};
        LaneArray<std::uint8_t> valid{};
        w.vec([&](int lane) {
          offset[lane] = round[lane] * static_cast<std::uint32_t>(
                                           window_size) +
                         static_cast<std::uint32_t>(lane % window_size);
          valid[lane] = map(lane, offset[lane], qp[lane], sidx[lane]) ? 1 : 0;
        });

        LaneArray<int> vals{};
        w.if_then_else(
            [&](int lane) { return valid[lane] != 0; },
            [&] {
              LaneArray<std::uint8_t> sres{};
              w.gather(residues, sidx, sres);
              scoring.score_step(w, qp, sres, vals);
            },
            [&] { w.vec([&](int lane) { vals[lane] = kBoundaryScore; }); });

        // PrefixSum (Fig. 8) with the carry from previous rounds.
        w.window_inclusive_scan(vals, window_size);
        LaneArray<int> prefix{};
        w.vec([&](int lane) { prefix[lane] = carry_run[lane] + vals[lane]; });

        // Running best including previous rounds.
        LaneArray<int> best_scan = prefix;
        w.window_inclusive_max_scan(best_scan, window_size);
        LaneArray<int> best_up_to{};
        w.vec([&](int lane) {
          best_up_to[lane] = std::max(carry_best[lane], best_scan[lane]);
        });

        // DropFlag and the first flagged position of each window.
        LaneArray<std::uint32_t> flag_key{};
        w.vec([&](int lane) {
          const bool drop = best_up_to[lane] - prefix[lane] > xdrop;
          flag_key[lane] =
              drop ? static_cast<std::uint32_t>(
                         window_size - lane % window_size)
                   : 0u;
        });
        LaneArray<std::uint32_t> first_key = flag_key;
        w.window_reduce_max(first_key, window_size);

        LaneArray<std::uint32_t> limit{};
        LaneArray<std::uint8_t> flagged{};
        w.vec([&](int lane) {
          flagged[lane] = first_key[lane] > 0 ? 1 : 0;
          limit[lane] = flagged[lane]
                            ? static_cast<std::uint32_t>(window_size) -
                                  first_key[lane]
                            : static_cast<std::uint32_t>(window_size - 1);
        });

        // Best score over positions up to the limit (monotone scan makes
        // this the value at the limit lane; reduce to broadcast it).
        LaneArray<int> bounded{};
        w.vec([&](int lane) {
          bounded[lane] =
              static_cast<std::uint32_t>(lane % window_size) <= limit[lane]
                  ? best_up_to[lane]
                  : kNegInf;
        });
        w.window_reduce_max(bounded, window_size);

        // Arg of the new best (first position attaining it), if improved.
        LaneArray<std::uint32_t> arg_key{};
        w.vec([&](int lane) {
          const bool attains =
              static_cast<std::uint32_t>(lane % window_size) <=
                  limit[lane] &&
              prefix[lane] == bounded[lane] &&
              bounded[lane] > carry_best[lane];
          arg_key[lane] = attains ? kBig - offset[lane] : 0u;
        });
        w.window_reduce_max(arg_key, window_size);

        // Carry-out of the running sum (value at the window's last lane).
        LaneArray<int> carry_key{};
        w.vec([&](int lane) {
          carry_key[lane] =
              lane % window_size == window_size - 1 ? prefix[lane] : kNegInf;
        });
        w.window_reduce_max(carry_key, window_size);

        w.vec([&](int lane) {
          if (bounded[lane] > carry_best[lane]) {
            carry_best[lane] = bounded[lane];
            half.off[lane] = kBig - arg_key[lane];  // offset of the best
          }
          if (flagged[lane] != 0) {
            done[lane] = 1;
          } else {
            carry_run[lane] = carry_key[lane];
            ++round[lane];
          }
        });
      });

  w.vec([&](int lane) { half.gain[lane] = std::max(0, carry_best[lane]); });
  return half;
}

}  // namespace

void run_window_extension_kernel(simt::Engine& engine, const Config& config,
                                 const QueryDevice& query,
                                 const BlockDevice& block,
                                 const FilteredBins& filtered,
                                 const simt::LaunchConfig& cfg,
                                 const std::vector<std::uint32_t>& region_base,
                                 ExtensionRecords& records,
                                 std::vector<std::uint32_t>& emitted,
                                 std::atomic<std::uint64_t>& extensions_run) {
  const std::size_t total_bins = filtered.counts.size();
  const int ws = config.window_size;
  if (ws < 2 || ws > 32 || (ws & (ws - 1)) != 0)
    throw std::invalid_argument(
        "window extension: window_size must be a power of two in [2, 32]");
  const int windows_per_warp = 32 / ws;

  const auto cutoff = config.params.ungapped_cutoff;
  const auto word = static_cast<std::uint32_t>(config.params.word_length);
  const int xdrop = config.params.ungapped_xdrop;
  const std::uint32_t qlen = query.query_length;

  engine.launch(cfg, [&](BlockCtx& ctx) {
    const DeviceScoring scoring = DeviceScoring::setup(ctx, config, query);
    ctx.par([&](WarpExec& w) {
      const auto total_warps =
          static_cast<std::size_t>(w.num_warps_total());
      for (std::size_t b = static_cast<std::size_t>(w.global_warp_id());
           b < total_bins; b += total_warps) {
      const std::uint32_t base = filtered.offsets[b];
      const std::uint32_t count = filtered.counts[b];
      const std::uint32_t num_segs = filtered.seg_counts[b];
      const std::uint32_t out_base = region_base[b];
      std::uint32_t cursor = 0;

      // Window-uniform segment iteration: window k starts at segment k.
      LaneArray<std::uint32_t> seg{};
      w.vec([&](int lane) {
        seg[lane] = static_cast<std::uint32_t>(lane / ws);
      });
      w.loop_while(
          [&](int lane) { return seg[lane] < num_segs; },
          [&] {
            LaneArray<std::uint32_t> sidx{};
            LaneArray<std::uint32_t> seg_begin{};
            LaneArray<std::uint32_t> seg_end{};
            w.vec([&](int lane) { sidx[lane] = base + seg[lane]; });
            w.gather(filtered.seg_starts.data(), sidx, seg_begin);
            w.if_then_else(
                [&](int lane) { return seg[lane] + 1 < num_segs; },
                [&] {
                  LaneArray<std::uint32_t> nidx{};
                  w.vec([&](int lane) { nidx[lane] = sidx[lane] + 1; });
                  w.gather(filtered.seg_starts.data(), nidx, seg_end);
                },
                [&] { w.vec([&](int lane) { seg_end[lane] = count; }); });

            LaneArray<std::uint32_t> k = seg_begin;
            LaneArray<std::int32_t> ext_reach{};
            w.vec([&](int lane) { ext_reach[lane] = -1; });

            w.loop_while(
                [&](int lane) { return k[lane] < seg_end[lane]; },
                [&] {
                  // Window-uniform hit fetch.
                  LaneArray<std::uint32_t> hidx{};
                  LaneArray<std::uint64_t> packed{};
                  w.vec([&](int lane) { hidx[lane] = base + k[lane]; });
                  w.gather(filtered.hits.data(), hidx, packed);
                  LaneArray<std::uint32_t> seq{}, spos{}, qpos{}, seq_off{},
                      seq_len{};
                  LaneArray<std::int32_t> diag{};
                  w.vec([&](int lane) {
                    seq[lane] = hit_seq(packed[lane]);
                    diag[lane] = hit_diagonal(packed[lane]);
                    spos[lane] = hit_spos(packed[lane]);
                    qpos[lane] = hit_qpos(packed[lane]);
                  });
                  LaneArray<std::uint32_t> next{}, hi{};
                  w.gather(block.offsets.data(), seq, seq_off);
                  w.vec([&](int lane) { next[lane] = seq[lane] + 1; });
                  w.gather(block.offsets.data(), next, hi);
                  w.vec([&](int lane) {
                    seq_len[lane] = hi[lane] - seq_off[lane];
                  });

                  w.if_then(
                      [&](int lane) {
                        return static_cast<std::int32_t>(spos[lane]) >
                               ext_reach[lane];
                      },
                      [&] {
                        // Seed-word score (window-uniform broadcast loads).
                        LaneArray<int> word_score{};
                        for (std::uint32_t i = 0; i < word; ++i) {
                          LaneArray<std::uint32_t> qp{}, sx{};
                          LaneArray<std::uint8_t> sres{};
                          LaneArray<int> sc{};
                          w.vec([&](int lane) {
                            qp[lane] = qpos[lane] + i;
                            sx[lane] = seq_off[lane] + spos[lane] + i;
                          });
                          w.gather(block.residues.data(), sx, sres);
                          scoring.score_step(w, qp, sres, sc);
                          w.vec([&](int lane) {
                            word_score[lane] += sc[lane];
                          });
                        }

                        // Right window (paper Fig. 8, right of the hit).
                        const WindowHalf right = window_extend_half(
                            w, scoring, block.residues.data(), ws, xdrop,
                            [&](int lane, std::uint32_t offset,
                                std::uint32_t& qp, std::uint32_t& sx) {
                              const std::uint32_t q =
                                  qpos[lane] + word + offset;
                              const std::uint32_t s =
                                  spos[lane] + word + offset;
                              qp = q;
                              sx = seq_off[lane] + s;
                              return q < qlen && s < seq_len[lane];
                            });

                        // Left window (opposite direction, concurrently in
                        // the paper; sequential rounds here, same result).
                        const WindowHalf left = window_extend_half(
                            w, scoring, block.residues.data(), ws, xdrop,
                            [&](int lane, std::uint32_t offset,
                                std::uint32_t& qp, std::uint32_t& sx) {
                              const std::uint32_t dist = offset + 1;
                              const bool ok = dist <= qpos[lane] &&
                                              dist <= spos[lane];
                              qp = ok ? qpos[lane] - dist : 0;
                              sx = ok ? seq_off[lane] + spos[lane] - dist
                                      : seq_off[lane];
                              return ok;
                            });

                        extensions_run.fetch_add(
                            static_cast<std::uint64_t>(
                                w.active_lanes() / ws),
                            std::memory_order_relaxed);

                        LaneArray<std::uint32_t> q_start{}, q_end{};
                        LaneArray<int> total{};
                        LaneArray<std::uint8_t> emit{};
                        LaneArray<std::uint32_t> diag_biased{};
                        w.vec([&](int lane) {
                          const std::uint32_t right_off =
                              right.gain[lane] > 0 ? right.off[lane] + 1 : 0;
                          const std::uint32_t left_off =
                              left.gain[lane] > 0 ? left.off[lane] + 1 : 0;
                          total[lane] = word_score[lane] +
                                        right.gain[lane] + left.gain[lane];
                          q_start[lane] = qpos[lane] - left_off;
                          q_end[lane] = qpos[lane] + word - 1 + right_off;
                          ext_reach[lane] =
                              static_cast<std::int32_t>(q_end[lane]) +
                              diag[lane];
                          emit[lane] = (lane % ws == 0 &&
                                        total[lane] >= cutoff)
                                           ? 1
                                           : 0;
                          diag_biased[lane] = static_cast<std::uint32_t>(
                              diag[lane] + kDiagonalBias);
                        });
                        emit_records(w, records, out_base, cursor, emit, seq,
                                     diag_biased, spos, q_start, q_end,
                                     total);
                      });
                  w.vec([&](int lane) { ++k[lane]; });
                });
            w.vec([&](int lane) {
              seg[lane] += static_cast<std::uint32_t>(windows_per_warp);
            });
          });
      emitted[b] = cursor;
      }
    });
  });
}

}  // namespace repro::core::detail
