// Ablation: gapped extension ON the GPU.
//
// Paper §3.6 keeps gapped extension and traceback on the CPU, noting that
// prior work (CUDA-BLASTP) "had to modify the dynamic programming method
// of the gapped extension on GPU for the performance". This kernel
// implements that modified method — a per-lane, statically-banded DP with
// linear gap costs (bounded state per thread, no traceback) — so the
// design decision can be measured: the bench compares its modeled time and
// its score agreement against the exact CPU affine x-drop extension.
//
// With linear gaps at (open + extend) per residue, every banded-linear
// score is a lower bound on the exact affine score (each gap residue costs
// at least as much), a property the tests rely on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "blast/types.hpp"
#include "core/config.hpp"
#include "core/device_data.hpp"
#include "simt/engine.hpp"

namespace repro::core {

inline constexpr const char* kKernelGpuGapped = "gapped_extension_gpu";

struct GpuGappedResult {
  /// Banded-linear gapped score per input seed (same order).
  std::vector<std::int32_t> scores;
};

/// Runs the banded gapped-extension kernel over the seed points of
/// `extensions` (seq indices block-local). `band` is the total band width
/// in diagonals (odd, <= 31).
[[nodiscard]] GpuGappedResult launch_gapped_extension_gpu(
    simt::Engine& engine, const Config& config, const QueryDevice& query,
    const BlockDevice& block,
    std::span<const blast::UngappedExtension> extensions, int band = 15);

}  // namespace repro::core
