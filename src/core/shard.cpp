#include "core/shard.hpp"

#include <new>
#include <optional>
#include <string>
#include <utility>

#include "core/prefilter.hpp"
#include "util/fault.hpp"
#include "util/trace.hpp"

namespace repro::core {

ShardSummary summarize_shard(std::size_t shard_index, std::size_t first_block,
                             const ShardGpuResult& gpu) {
  ShardSummary summary;
  summary.shard = static_cast<std::uint32_t>(shard_index);
  summary.first_block = static_cast<std::uint32_t>(first_block);
  summary.num_blocks = static_cast<std::uint32_t>(gpu.block_backends.size());
  summary.backends = gpu.block_backends;
  for (const std::uint32_t attempts : gpu.retry_counts)
    summary.retry_attempts += attempts;
  summary.degraded_blocks = gpu.degraded_blocks;
  summary.cache_off_retries = gpu.cache_off_retries;
  summary.bin_overflow_retries = gpu.bin_overflow_retries;
  summary.prefilter_degraded_blocks = gpu.prefilter_degraded_blocks;
  summary.kernel_ms = gpu.profile_delta.total_time_ms();
  return summary;
}

EngineShard::EngineShard(
    const Config& config, const bio::SequenceDatabase& db,
    std::size_t shard_index, std::size_t first_block,
    std::vector<std::pair<std::size_t, std::size_t>> block_ranges)
    : config_(&config),
      db_(&db),
      index_(shard_index),
      first_block_(first_block),
      residency_(db, std::move(block_ranges)) {
  engine_.set_readonly_cache_enabled(config.use_readonly_cache);
  engine_.set_workers(config.engine_workers);
  if (config.simtcheck) engine_.set_simtcheck_enabled(true);
}

std::uint64_t EngineShard::db_device_bytes() const {
  // Mirrors BlockDevice::h2d_bytes without staging anything: each block's
  // residues plus its (num_seqs + 1) 32-bit offsets.
  std::uint64_t bytes = 0;
  for (std::size_t bi = 0; bi < residency_.num_blocks(); ++bi) {
    const auto [begin, end] = residency_.range(bi);
    bytes += db_->offsets()[end] - db_->offsets()[begin];
    bytes += (end - begin + 1) * sizeof(std::uint32_t);
  }
  return bytes;
}

ShardGpuResult EngineShard::run_gpu_blocks(const QueryContext& ctx,
                                           const CancellationToken& cancel) {
  ShardGpuResult out;
  const simt::ProfileRegistry profile_before = engine_.profile();
  engine_.clear_hazards();

  // Install the request's root cancel flag on the engine for the duration
  // of the GPU half: an in-flight launch then skips its remaining shards
  // once the client cancels, instead of running them to completion before
  // the next checkpoint can abort. Cleared on every exit path (a null flag
  // changes nothing for token-less queries).
  engine_.set_cancel_flag(cancel.root_flag());
  struct FlagClear {
    simt::Engine& engine;
    ~FlagClear() { engine.set_cancel_flag(nullptr); }
  } flag_clear{engine_};

  engine_.transfer("h2d_query", ctx.device.h2d_bytes());

  const std::size_t num_blocks = residency_.num_blocks();

  // --- SSV pre-filter table (DESIGN.md §13) ------------------------------
  // Built per query (it depends on the PSSM) and uploaded once per shard;
  // every owned block's filter launch reads it. A failure here is
  // recoverable: this shard degrades to the unfiltered path — its siblings
  // keep filtering — and never drops results. The threshold derives from
  // the aggregate-search-space e-value calculator inside `ctx`, so every
  // shard filters at the identical score.
  std::optional<PrefilterDevice> prefilter;
  int prefilter_threshold = 0;
  if (config_->prefilter != PrefilterMode::kOff) {
    prefilter_threshold = prefilter_threshold_for(*config_, ctx.evalue);
    try {
      prefilter.emplace(ctx.pssm);
      engine_.transfer("h2d_prefilter", prefilter->h2d_bytes());
    } catch (const simt::DeviceError&) {
      prefilter.reset();
    } catch (const util::FaultInjectedError&) {
      prefilter.reset();
    } catch (const std::bad_alloc&) {
      prefilter.reset();
    }
    if (!prefilter.has_value()) {
      // Every block of this shard is served unfiltered.
      out.prefilter_degraded_blocks = num_blocks;
      if (util::trace_enabled())
        util::trace_instant(
            "degrade.prefilter_off", "degrade",
            {util::targ("blocks", static_cast<std::uint64_t>(num_blocks))});
    }
  }

  out.retry_counts.assign(num_blocks, 0);
  out.block_backends.reserve(num_blocks);
  out.block_extensions.resize(num_blocks);
  out.block_fallback_s.assign(num_blocks, 0.0);
  out.block_gpu_ms.assign(num_blocks, 0.0);

  // Bin capacity starts from the configured value for every query (growth
  // is a per-search, per-shard adaptation, so session results match
  // one-shot runs and fleet results match single-engine runs).
  std::uint32_t bin_capacity =
      static_cast<std::uint32_t>(config_->bin_capacity);

  // --- residency + the degradation ladder, block by block ----------------
  for (std::size_t bi = 0; bi < num_blocks; ++bi) {
    cancel.throw_if_stopped("gpu_phase.block");
    const auto [begin, end] = residency_.range(bi);
    util::TraceSpan block_span;
    if (util::trace_enabled()) {
      block_span.open("db_block " + std::to_string(first_block_ + bi),
                      "core");
      block_span.arg("first_seq", static_cast<std::uint64_t>(begin));
      block_span.arg("end_seq", static_cast<std::uint64_t>(end));
      block_span.arg("shard", static_cast<std::uint64_t>(index_));
    }
    const double gpu_ms_before = engine_.profile().total_time_ms();

    BlockLadderResult ladder = run_block_ladder(
        engine_, *config_, ctx, *db_, residency_, bi, bin_capacity,
        out.bin_overflow_retries,
        prefilter.has_value() ? &*prefilter : nullptr, prefilter_threshold,
        cancel);

    out.retry_counts[bi] = ladder.failed_attempts;
    if (ladder.cache_off_retry) ++out.cache_off_retries;
    if (ladder.degraded) ++out.degraded_blocks;
    out.block_backends.push_back(ladder.backend);
    out.prefilter_sequences += ladder.prefilter_seqs;
    out.prefilter_survivors += ladder.prefilter_survivors;
    if (ladder.prefilter_degraded) ++out.prefilter_degraded_blocks;

    out.hits_detected += ladder.outcome.hits_detected;
    out.hits_after_filter += ladder.outcome.hits_after_filter;
    out.ungapped_extensions += ladder.outcome.ungapped_extensions;
    out.words_scanned += ladder.words_scanned;
    out.block_extensions[bi] = std::move(ladder.outcome.extensions);
    out.block_fallback_s[bi] = ladder.outcome.cpu_fallback_seconds;

    out.block_gpu_ms[bi] = engine_.profile().total_time_ms() - gpu_ms_before;
    if (util::trace_enabled()) {
      util::trace_counter("hits_detected_total",
                          static_cast<double>(out.hits_detected));
      util::trace_counter("hits_after_filter_total",
                          static_cast<double>(out.hits_after_filter));
    }
  }

  // Attribute this query's engine work now: the CPU half never touches the
  // engine, but a later query's kernels may run before this query's report
  // is assembled.
  out.profile_delta = engine_.profile().diff(profile_before);
  out.hazards = engine_.hazards();
  return out;
}

}  // namespace repro::core
