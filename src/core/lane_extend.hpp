// Per-lane ungapped x-drop extension in SIMT form.
//
// Each active lane extends its own word hit along its diagonal; the warp
// steps all lanes in lockstep, so lanes whose extension terminates early
// idle until the longest extension in the warp finishes — exactly the load
// imbalance the paper attributes to hit-based extension (§3.4) and the
// divergence Fig. 16b measures. The arithmetic mirrors
// blast::extend_ungapped step for step, so the kernels reproduce the
// scalar reference bit-for-bit.
#pragma once

#include "blast/types.hpp"
#include "core/scoring.hpp"
#include "simt/warp.hpp"

namespace repro::core {

struct LaneExtendIo {
  // Inputs (per lane): word-hit coordinates and subject extent.
  simt::LaneArray<std::uint32_t> qpos{};
  simt::LaneArray<std::uint32_t> spos{};
  simt::LaneArray<std::uint32_t> seq_off{};  ///< offset into block residues
  simt::LaneArray<std::uint32_t> seq_len{};
  // Outputs (per lane).
  simt::LaneArray<int> score{};
  simt::LaneArray<std::uint32_t> q_start{};
  simt::LaneArray<std::uint32_t> q_end{};
};

/// Runs the extension for every active lane of `w`.
inline void lane_extend_ungapped(simt::WarpExec& w,
                                 const DeviceScoring& scoring,
                                 const std::uint8_t* residues,
                                 std::uint32_t query_length,
                                 const blast::SearchParams& params,
                                 LaneExtendIo& io) {
  const auto word = static_cast<std::uint32_t>(params.word_length);
  const int xdrop = params.ungapped_xdrop;

  simt::LaneArray<std::uint32_t> sidx{};
  simt::LaneArray<std::uint8_t> sres{};
  simt::LaneArray<std::uint32_t> qp{};
  simt::LaneArray<int> pair_score{};

  // Seed-word score: W lockstep steps.
  simt::LaneArray<int> word_score{};
  for (std::uint32_t k = 0; k < word; ++k) {
    w.vec([&](int lane) {
      qp[lane] = io.qpos[lane] + k;
      sidx[lane] = io.seq_off[lane] + io.spos[lane] + k;
    });
    w.gather(residues, sidx, sres);
    scoring.score_step(w, qp, sres, pair_score);
    w.vec([&](int lane) { word_score[lane] += pair_score[lane]; });
  }

  // Rightward extension.
  simt::LaneArray<int> running{};
  simt::LaneArray<int> best{};
  simt::LaneArray<std::uint32_t> best_off{};
  simt::LaneArray<std::uint32_t> k{};
  simt::LaneArray<std::uint8_t> done{};
  w.loop_while(
      [&](int lane) {
        return done[lane] == 0 &&
               io.qpos[lane] + word + k[lane] < query_length &&
               io.spos[lane] + word + k[lane] < io.seq_len[lane];
      },
      [&] {
        w.vec([&](int lane) {
          qp[lane] = io.qpos[lane] + word + k[lane];
          sidx[lane] = io.seq_off[lane] + io.spos[lane] + word + k[lane];
        });
        w.gather(residues, sidx, sres);
        scoring.score_step(w, qp, sres, pair_score);
        w.vec([&](int lane) {
          running[lane] += pair_score[lane];
          if (running[lane] > best[lane]) {
            best[lane] = running[lane];
            best_off[lane] = k[lane] + 1;
          }
          if (best[lane] - running[lane] > xdrop) done[lane] = 1;
          ++k[lane];
        });
      });
  simt::LaneArray<int> right_gain = best;
  simt::LaneArray<std::uint32_t> right_off = best_off;

  // Leftward extension.
  w.vec([&](int lane) {
    running[lane] = 0;
    best[lane] = 0;
    best_off[lane] = 0;
    k[lane] = 1;
    done[lane] = 0;
  });
  w.loop_while(
      [&](int lane) {
        return done[lane] == 0 && k[lane] <= io.qpos[lane] &&
               k[lane] <= io.spos[lane];
      },
      [&] {
        w.vec([&](int lane) {
          qp[lane] = io.qpos[lane] - k[lane];
          sidx[lane] = io.seq_off[lane] + io.spos[lane] - k[lane];
        });
        w.gather(residues, sidx, sres);
        scoring.score_step(w, qp, sres, pair_score);
        w.vec([&](int lane) {
          running[lane] += pair_score[lane];
          if (running[lane] > best[lane]) {
            best[lane] = running[lane];
            best_off[lane] = k[lane];
          }
          if (best[lane] - running[lane] > xdrop) done[lane] = 1;
          ++k[lane];
        });
      });

  w.vec([&](int lane) {
    io.score[lane] = word_score[lane] + right_gain[lane] + best[lane];
    io.q_start[lane] = io.qpos[lane] - best_off[lane];
    io.q_end[lane] = io.qpos[lane] + word - 1 + right_off[lane];
  });
}

}  // namespace repro::core
