#include "core/gapped_kernel.hpp"

#include <algorithm>
#include <array>
#include <climits>
#include <stdexcept>

#include "core/scoring.hpp"

namespace repro::core {

namespace {

using simt::BlockCtx;
using simt::LaneArray;
using simt::WarpExec;

constexpr int kMaxBand = 31;
constexpr int kNegInf = INT_MIN / 4;

/// One direction of the banded-linear gapped extension for all active
/// lanes. Lane state: a band of kMaxBand cells in "registers".
/// map(lane, i, j, qp, sidx) -> valid translates (query offset i, subject
/// offset j) relative to the seed into absolute indices.
template <class PosMap>
void banded_half(WarpExec& w, const DeviceScoring& scoring,
                 const std::uint8_t* residues, int band, int gap_cost,
                 int xdrop, LaneArray<int>& gain, PosMap&& map) {
  const int center = band / 2;
  std::array<LaneArray<int>, kMaxBand> prev;
  LaneArray<int> best{};
  LaneArray<std::uint32_t> row{};
  LaneArray<std::uint8_t> done{};

  // Row 0: only the seed diagonal (and leading gaps in the query) exist.
  w.vec([&](int lane) {
    row[lane] = 1;
    for (int k = 0; k < band; ++k) {
      const int d = k - center;
      prev[static_cast<std::size_t>(k)][lane] =
          d == 0 ? 0 : (d > 0 ? -gap_cost * d : kNegInf);
    }
  });

  w.loop_while(
      [&](int lane) { return done[lane] == 0; },
      [&] {
        std::array<LaneArray<int>, kMaxBand> cur;
        LaneArray<int> row_max{};
        w.vec([&](int lane) { row_max[lane] = kNegInf; });

        for (int k = 0; k < band; ++k) {
          const int d = k - center;
          LaneArray<std::uint32_t> qp{};
          LaneArray<std::uint32_t> sidx{};
          LaneArray<std::uint8_t> valid{};
          w.vec([&](int lane) {
            const auto i = row[lane];
            const std::int64_t j = static_cast<std::int64_t>(i) + d;
            valid[lane] =
                j >= 1 && map(lane, i, static_cast<std::uint32_t>(j),
                              qp[lane], sidx[lane])
                    ? 1
                    : 0;
          });

          LaneArray<int> subst{};
          w.if_then_else(
              [&](int lane) { return valid[lane] != 0; },
              [&] {
                LaneArray<std::uint8_t> sres{};
                w.gather(residues, sidx, sres);
                scoring.score_step(w, qp, sres, subst);
              },
              [&] { w.vec([&](int lane) { subst[lane] = kNegInf; }); });

          w.vec([&](int lane) {
            const auto ks = static_cast<std::size_t>(k);
            if (valid[lane] == 0) {
              cur[ks][lane] = kNegInf;
              return;
            }
            int v = prev[ks][lane] == kNegInf ? kNegInf
                                              : prev[ks][lane] + subst[lane];
            if (k > 0 && cur[ks - 1][lane] != kNegInf)
              v = std::max(v, cur[ks - 1][lane] - gap_cost);
            if (k + 1 < band && prev[ks + 1][lane] != kNegInf)
              v = std::max(v, prev[ks + 1][lane] - gap_cost);
            cur[ks][lane] = v;
            if (v > best[lane]) best[lane] = v;
            if (v > row_max[lane]) row_max[lane] = v;
          });
        }

        w.vec([&](int lane) {
          for (int k = 0; k < band; ++k)
            prev[static_cast<std::size_t>(k)][lane] =
                cur[static_cast<std::size_t>(k)][lane];
          ++row[lane];
          if (row_max[lane] == kNegInf ||
              best[lane] - row_max[lane] > xdrop)
            done[lane] = 1;
        });
      });

  w.vec([&](int lane) { gain[lane] = std::max(0, best[lane]); });
}

}  // namespace

GpuGappedResult launch_gapped_extension_gpu(
    simt::Engine& engine, const Config& config, const QueryDevice& query,
    const BlockDevice& block,
    std::span<const blast::UngappedExtension> extensions, int band) {
  if (band < 3 || band > kMaxBand || band % 2 == 0)
    throw std::invalid_argument(
        "gapped_extension_gpu: band must be odd, in [3, 31]");

  const auto num_seeds = static_cast<std::uint32_t>(extensions.size());
  GpuGappedResult result;
  result.scores.assign(num_seeds, 0);
  if (num_seeds == 0) return result;

  // Stage the seed points device-side.
  simt::DeviceAllocSite site("core.gapped_gpu");
  simt::DeviceVector<std::uint32_t> seed_seq(num_seeds);
  simt::DeviceVector<std::uint32_t> seed_q(num_seeds);
  simt::DeviceVector<std::uint32_t> seed_s(num_seeds);
  for (std::uint32_t i = 0; i < num_seeds; ++i) {
    seed_seq[i] = extensions[i].seq;
    seed_q[i] = extensions[i].q_seed();
    seed_s[i] = extensions[i].s_seed();
  }
  // Host-loop staging (the H2D copy analogue) — mark the seed arrays
  // defined for initcheck; per-element stores are not instrumented.
  simt::mark_device_initialized(seed_seq.data(),
                                num_seeds * sizeof(std::uint32_t));
  simt::mark_device_initialized(seed_q.data(),
                                num_seeds * sizeof(std::uint32_t));
  simt::mark_device_initialized(seed_s.data(),
                                num_seeds * sizeof(std::uint32_t));
  simt::DeviceVector<std::int32_t> out(num_seeds);

  const int gap_cost = config.params.gap_open + config.params.gap_extend;
  const int xdrop = config.params.gapped_xdrop;
  const std::uint32_t qlen = query.query_length;

  simt::LaunchConfig cfg;
  cfg.name = kKernelGpuGapped;
  cfg.grid_blocks = 13;
  cfg.block_threads = 128;
  cfg.regs_per_thread = 64;  // the banded state is register-hungry

  engine.launch(cfg, [&](BlockCtx& ctx) {
    const DeviceScoring scoring = DeviceScoring::setup(ctx, config, query);
    ctx.par([&](WarpExec& w) {
      const auto stride = static_cast<std::uint32_t>(w.num_warps_total()) * 32;
      LaneArray<std::uint32_t> idx{};
      w.vec([&](int lane) {
        idx[lane] = static_cast<std::uint32_t>(w.thread_id(lane));
      });
      w.loop_while(
          [&](int lane) { return idx[lane] < num_seeds; },
          [&] {
            LaneArray<std::uint32_t> qseed{}, sseed{}, seq{}, seq_off{},
                seq_len{};
            w.gather(seed_q.data(), idx, qseed);
            w.gather(seed_s.data(), idx, sseed);
            w.gather(seed_seq.data(), idx, seq);
            LaneArray<std::uint32_t> next{}, hi{};
            w.gather(block.offsets.data(), seq, seq_off);
            w.vec([&](int lane) { next[lane] = seq[lane] + 1; });
            w.gather(block.offsets.data(), next, hi);
            w.vec([&](int lane) {
              seq_len[lane] = hi[lane] - seq_off[lane];
            });

            // Seed-pair score.
            LaneArray<int> seed_score{};
            {
              LaneArray<std::uint32_t> sidx{};
              LaneArray<std::uint8_t> sres{};
              w.vec([&](int lane) {
                sidx[lane] = seq_off[lane] + sseed[lane];
              });
              w.gather(block.residues.data(), sidx, sres);
              scoring.score_step(w, qseed, sres, seed_score);
            }

            LaneArray<int> right{};
            banded_half(w, scoring, block.residues.data(), band, gap_cost,
                        xdrop, right,
                        [&](int lane, std::uint32_t i, std::uint32_t j,
                            std::uint32_t& qp, std::uint32_t& sidx) {
                          const std::uint32_t q = qseed[lane] + i;
                          const std::uint32_t s = sseed[lane] + j;
                          qp = q;
                          sidx = seq_off[lane] + s;
                          return q < qlen && s < seq_len[lane];
                        });
            LaneArray<int> left{};
            banded_half(w, scoring, block.residues.data(), band, gap_cost,
                        xdrop, left,
                        [&](int lane, std::uint32_t i, std::uint32_t j,
                            std::uint32_t& qp, std::uint32_t& sidx) {
                          const bool ok =
                              i <= qseed[lane] && j <= sseed[lane];
                          qp = ok ? qseed[lane] - i : 0;
                          sidx = ok ? seq_off[lane] + sseed[lane] - j
                                    : seq_off[lane];
                          return ok;
                        });

            LaneArray<std::int32_t> total{};
            w.vec([&](int lane) {
              total[lane] =
                  seed_score[lane] + right[lane] + left[lane];
            });
            w.scatter(out.data(), idx, total);
            w.vec([&](int lane) { idx[lane] += stride; });
          });
    });
  });

  for (std::uint32_t i = 0; i < num_seeds; ++i) result.scores[i] = out[i];
  return result;
}

}  // namespace repro::core
