#include "core/scoring.hpp"

namespace repro::core {

namespace {

/// Shared budget we allow the PSSM before falling back to global memory:
/// leave headroom for the other shared allocations of the kernel.
constexpr std::size_t kPssmSharedBudget = 40 * 1024;

/// Cooperative copy of a global int16 buffer into shared memory.
void copy_to_shared(simt::BlockCtx& ctx, const std::int16_t* src,
                    std::span<std::int16_t> dst) {
  ctx.par([&](simt::WarpExec& w) {
    const auto n = static_cast<std::uint32_t>(dst.size());
    const auto stride = static_cast<std::uint32_t>(w.warps_per_block()) * 32;
    simt::LaneArray<std::uint32_t> idx{};
    w.vec([&](int lane) {
      idx[lane] = static_cast<std::uint32_t>(w.warp_in_block()) * 32 +
                  static_cast<std::uint32_t>(lane);
    });
    w.loop_while([&](int lane) { return idx[lane] < n; }, [&] {
      simt::LaneArray<std::int16_t> vals{};
      w.gather(src, idx, vals);
      w.sh_scatter(dst, idx, vals);
      w.vec([&](int lane) { idx[lane] += stride; });
    });
  });
}

void copy_to_shared_u8(simt::BlockCtx& ctx, const std::uint8_t* src,
                       std::span<std::uint8_t> dst) {
  ctx.par([&](simt::WarpExec& w) {
    const auto n = static_cast<std::uint32_t>(dst.size());
    const auto stride = static_cast<std::uint32_t>(w.warps_per_block()) * 32;
    simt::LaneArray<std::uint32_t> idx{};
    w.vec([&](int lane) {
      idx[lane] = static_cast<std::uint32_t>(w.warp_in_block()) * 32 +
                  static_cast<std::uint32_t>(lane);
    });
    w.loop_while([&](int lane) { return idx[lane] < n; }, [&] {
      simt::LaneArray<std::uint8_t> vals{};
      w.gather(src, idx, vals);
      w.sh_scatter(dst, idx, vals);
      w.vec([&](int lane) { idx[lane] += stride; });
    });
  });
}

}  // namespace

DeviceScoring::Impl DeviceScoring::select(const Config& config,
                                          std::size_t query_length) {
  switch (config.scoring) {
    case ScoringMode::kBlosum:
      return Impl::kBlosumShared;
    case ScoringMode::kPssm:
      // Past the shared budget the PSSM falls back to plain global memory
      // (paper: "we put it into the global memory"; the read-only cache of
      // Fig. 10 serves the DFA, not the PSSM).
      return query_length * 64 <= kPssmSharedBudget
                 ? Impl::kPssmShared
                 : Impl::kPssmGlobalUncached;
    case ScoringMode::kAuto:
      if (query_length <= config.auto_pssm_max_query)
        return Impl::kPssmShared;
      return Impl::kBlosumShared;
  }
  return Impl::kBlosumShared;
}

DeviceScoring DeviceScoring::setup(simt::BlockCtx& ctx, const Config& config,
                                   const QueryDevice& query) {
  DeviceScoring scoring;
  scoring.impl_ = select(config, query.query_length);
  switch (scoring.impl_) {
    case Impl::kPssmShared: {
      auto dst = ctx.shared().alloc<std::int16_t>(query.pssm.size());
      copy_to_shared(ctx, query.pssm.data(), dst);
      scoring.pssm_shared_ = dst;
      break;
    }
    case Impl::kPssmGlobal:
    case Impl::kPssmGlobalUncached:
      scoring.pssm_global_ = query.pssm.data();
      break;
    case Impl::kBlosumShared: {
      auto matrix = ctx.shared().alloc<std::int16_t>(query.blosum.size());
      copy_to_shared(ctx, query.blosum.data(), matrix);
      scoring.blosum_shared_ = matrix;
      auto q = ctx.shared().alloc<std::uint8_t>(query.query.size());
      copy_to_shared_u8(ctx, query.query.data(), q);
      scoring.query_shared_ = q;
      break;
    }
  }
  return scoring;
}

DeviceScoring DeviceScoring::plain_global_pssm(const QueryDevice& query) {
  DeviceScoring scoring;
  scoring.impl_ = Impl::kPssmGlobalUncached;
  scoring.pssm_global_ = query.pssm.data();
  return scoring;
}

void DeviceScoring::score_step(simt::WarpExec& w,
                               const simt::LaneArray<std::uint32_t>& qpos,
                               const simt::LaneArray<std::uint8_t>& sres,
                               simt::LaneArray<int>& out) const {
  simt::LaneArray<std::uint32_t> idx{};
  simt::LaneArray<std::int16_t> score{};
  switch (impl_) {
    case Impl::kPssmShared:
      w.vec([&](int lane) {
        idx[lane] = qpos[lane] * bio::kPaddedMatrixDim + sres[lane];
      });
      w.sh_gather<std::int16_t, std::uint32_t>(pssm_shared_, idx,
                                                     score);
      break;
    case Impl::kPssmGlobal:
    case Impl::kPssmGlobalUncached:
      w.vec([&](int lane) {
        idx[lane] = qpos[lane] * bio::kPaddedMatrixDim + sres[lane];
      });
      w.gather(pssm_global_, idx, score,
               impl_ == Impl::kPssmGlobal ? simt::MemKind::kReadOnly
                                          : simt::MemKind::kGlobal);
      break;
    case Impl::kBlosumShared: {
      simt::LaneArray<std::uint8_t> qres{};
      w.sh_gather<std::uint8_t, std::uint32_t>(query_shared_, qpos,
                                                     qres);
      w.vec([&](int lane) {
        idx[lane] = static_cast<std::uint32_t>(qres[lane]) *
                        bio::kPaddedMatrixDim +
                    sres[lane];
      });
      w.sh_gather<std::int16_t, std::uint32_t>(blosum_shared_, idx,
                                                     score);
      break;
    }
  }
  w.vec([&](int lane) { out[lane] = score[lane]; });
}

}  // namespace repro::core
