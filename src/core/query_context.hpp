// Stage 1 of the staged search pipeline: everything derived from one query
// before any database block is touched — the DFA word lookup, the PSSM,
// the e-value calculator, and the device-resident query image (the paper's
// "Other" phase of Fig. 19d). Built once per query, then shared read-only
// by every later stage, so the GPU ladder and the CPU gapped stage can run
// for different queries concurrently without touching each other's state.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "bio/database.hpp"
#include "bio/karlin.hpp"
#include "bio/pssm.hpp"
#include "blast/wordlookup.hpp"
#include "core/config.hpp"
#include "core/device_data.hpp"

namespace repro::core {

/// Throws SearchError{kInvalidArgument} when the query or a database
/// subject exceeds the 16-bit packed-hit field widths (paper Fig. 7
/// layout). Called by SearchSession before any stage runs.
void check_search_limits(std::span<const std::uint8_t> query,
                         const bio::SequenceDatabase& db);

struct QueryContext {
  std::span<const std::uint8_t> query;  ///< caller-owned, outlives the search
  blast::WordLookup lookup;
  bio::Pssm pssm;
  bio::EvalueCalculator evalue;
  QueryDevice device;

  /// `space`, when set, pins the Karlin–Altschul effective-length
  /// adjustment to an explicit (aggregate) search space instead of `db`'s
  /// own statistics. A sharded session passes the fleet-wide totals here so
  /// every shard — whatever database slice it holds — derives the same
  /// cutoffs, e-values, and pre-filter threshold as a single-engine search
  /// over the whole database. Unset: derived from `db` (identical values
  /// when `db` is the whole database).
  QueryContext(std::span<const std::uint8_t> query_residues,
               const bio::SequenceDatabase& db, const Config& config,
               std::optional<bio::SearchSpace> space = std::nullopt);
};

}  // namespace repro::core
