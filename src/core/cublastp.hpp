// The cuBLASTP engine: fine-grained GPU phases (hit detection with binning,
// assembling, sorting, filtering, ungapped extension) pipelined with the
// multithreaded CPU phases (gapped extension, alignment with traceback),
// per paper Fig. 12.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bio/database.hpp"
#include "blast/types.hpp"
#include "core/config.hpp"
#include "core/errors.hpp"
#include "simt/engine.hpp"

namespace repro::core {

/// One engine shard's contribution to a query (schema v4 "shards" section;
/// DESIGN.md §17): which contiguous database-block slice it owned, which
/// backend served each of its blocks, how far down the degradation ladder
/// it went, and the modeled device milliseconds it ran. A single-engine
/// SearchSession reports exactly one summary (shard 0, every block), so
/// the section shape is identical at every fleet size.
struct ShardSummary {
  std::uint32_t shard = 0;        ///< fleet index
  std::uint32_t first_block = 0;  ///< global index of its first block
  std::uint32_t num_blocks = 0;   ///< contiguous blocks it owns
  std::vector<BlockBackend> backends;  ///< per owned block, in block order
  std::uint64_t retry_attempts = 0;    ///< failed ladder rungs, summed
  std::uint64_t degraded_blocks = 0;   ///< blocks its CPU fallback served
  std::uint64_t cache_off_retries = 0;
  std::uint64_t bin_overflow_retries = 0;
  std::uint64_t prefilter_degraded_blocks = 0;
  double kernel_ms = 0.0;  ///< modeled device ms this shard executed
};

/// Everything a cuBLASTP search reports: the BLAST result (identical to
/// FSA-BLAST's, paper §4.3), modeled GPU kernel times, measured/makespan
/// CPU times, transfer times, and the per-kernel profile (Fig. 19 inputs).
struct SearchReport {
  blast::SearchResult result;

  /// End-to-end host wall-clock of this query in milliseconds (GPU-phase
  /// entry through the end of finalization). Schema v3 field.
  double wall_ms = 0.0;

  /// Terminal status of the query: "ok" | "degraded" for completed
  /// searches (set by the session), and "cancelled" | "deadline_exceeded" |
  /// "rejected" when a core::SearchService terminated the request before a
  /// result existed (the service stamps the otherwise-empty report so the
  /// JSON document still says what happened). Schema v3 field.
  std::string status = "ok";

  // Modeled device-side milliseconds, per kernel family.
  double detection_ms = 0.0;
  double scan_ms = 0.0;      ///< bin-offset scan (part of assembling)
  double assemble_ms = 0.0;
  double sort_ms = 0.0;
  double filter_ms = 0.0;
  double extension_ms = 0.0;
  double prefilter_ms = 0.0;  ///< SSV pre-filter kernel (DESIGN.md §13)
  double coarse_ms = 0.0;     ///< fused coarse backend (auto-mode routing)
  double h2d_ms = 0.0;
  double d2h_ms = 0.0;

  // CPU-side seconds (T-worker makespans of measured per-task costs).
  double gapped_seconds = 0.0;
  double traceback_seconds = 0.0;
  double other_seconds = 0.0;  ///< DFA/PSSM build, finalization

  // Pipeline totals (seconds): with and without CPU/GPU/PCIe overlap.
  double overlapped_total_seconds = 0.0;
  double serial_total_seconds = 0.0;

  // Diagnostics.
  std::uint64_t bin_overflow_retries = 0;
  simt::ProfileRegistry profile;

  /// Hazards found by the simtcheck analyzer (empty unless
  /// Config::simtcheck or REPRO_SIMTCHECK enabled it; see simtcheck.hpp).
  simt::HazardReport hazards;

  // Degradation-ladder observability (see DESIGN.md §9). A fault-free
  // search has degraded_blocks == 0, all-zero retry_counts, and
  // faults_encountered == 0, so callers can alert on any nonzero value.
  std::uint64_t degraded_blocks = 0;   ///< blocks served by the CPU fallback
  std::uint64_t cache_off_retries = 0; ///< blocks retried with rocache off
  std::vector<std::uint32_t> retry_counts;  ///< per block: failed attempts
  std::uint64_t faults_encountered = 0;     ///< injected faults absorbed

  // Pre-filter observability (DESIGN.md §13): what the filter measured and
  // which backend served each block. All zero / kFine when the filter is
  // off — results are bit-identical in every mode.
  PrefilterMode prefilter_mode = PrefilterMode::kOff;
  int prefilter_threshold = 0;             ///< effective calibrated threshold
  std::uint64_t prefilter_sequences = 0;   ///< sequences the filter scored
  std::uint64_t prefilter_survivors = 0;   ///< sequences that passed
  std::vector<BlockBackend> block_backends;  ///< per block: who served it
  std::uint64_t prefilter_degraded_blocks = 0;  ///< filter failed, ran unfiltered

  // Scatter–gather fleet observability (schema v4; DESIGN.md §17): one
  // summary per engine shard, in shard (= global block) order. A
  // single-engine search carries exactly one entry covering every block.
  std::vector<ShardSummary> shards;

  [[nodiscard]] double prefilter_pass_rate() const {
    return prefilter_sequences == 0
               ? 0.0
               : static_cast<double>(prefilter_survivors) /
                     static_cast<double>(prefilter_sequences);
  }

  [[nodiscard]] bool degraded() const {
    return degraded_blocks != 0 || cache_off_retries != 0;
  }

  [[nodiscard]] double gpu_critical_ms() const {
    return detection_ms + scan_ms + assemble_ms + sort_ms + filter_ms +
           extension_ms + prefilter_ms + coarse_ms;
  }
  /// "Hit sorting" as the paper groups it in Fig. 14: assembling + scan +
  /// the segmented sort.
  [[nodiscard]] double sorting_group_ms() const {
    return scan_ms + assemble_ms + sort_ms;
  }

  /// Machine-readable run report (schema "cublastp.search_report.v4"):
  /// phase times, pipeline totals, work counters, degradation ladder,
  /// hazards, and the full per-kernel profile — everything CI and bench
  /// scripts previously scraped from stdout. v3 added the top-level
  /// `wall_ms` and terminal `status` fields; v4 adds the per-shard
  /// `shards` section (DESIGN.md §17). See core/report.cpp.
  [[nodiscard]] std::string to_json() const;

  /// Human-readable phase/profile tables (util::Table) for --report.
  [[nodiscard]] std::string to_table() const;
};

/// One-shot search entry point: each call builds a fresh one-query
/// SearchSession (fresh engine, fresh database upload), so results and
/// profiles are private to the call. For many queries against the same
/// database, hold a core::SearchSession (search_session.hpp) instead — it
/// keeps the database device-resident across queries and can batch them.
class CuBlastp {
 public:
  explicit CuBlastp(Config config);

  /// Runs a full search. Deterministic; the SIMT engine (and its profile)
  /// is private to each call.
  [[nodiscard]] SearchReport search(std::span<const std::uint8_t> query,
                                    const bio::SequenceDatabase& db) const;

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
};

}  // namespace repro::core
