// The bin data structure bridging hit detection and ungapped extension
// (paper §3.2-3.3, Fig. 5 and Fig. 7).
//
// Each detection warp owns num_bins bins; a hit on diagonal d goes to bin
// d mod num_bins. Bin elements pack (sequence number | diagonal | subject
// position) into one 64-bit integer (paper Fig. 7) so a single ascending
// sort groups hits by sequence, then diagonal, then subject position, and
// the extension kernels recover everything with one memory access.
#pragma once

#include <cstdint>

#include "simt/device_buffer.hpp"

namespace repro::core {

/// Bias so the 16-bit diagonal field holds negative diagonals.
inline constexpr std::int32_t kDiagonalBias = 32768;

/// Packs a hit into the 64-bit bin element of paper Fig. 7:
/// bits [63:32] sequence, [31:16] biased diagonal, [15:0] subject position.
[[nodiscard]] constexpr std::uint64_t pack_hit(std::uint32_t seq,
                                               std::int32_t diagonal,
                                               std::uint32_t spos) {
  return (static_cast<std::uint64_t>(seq) << 32) |
         (static_cast<std::uint64_t>(
              static_cast<std::uint16_t>(diagonal + kDiagonalBias))
          << 16) |
         static_cast<std::uint16_t>(spos);
}

[[nodiscard]] constexpr std::uint32_t hit_seq(std::uint64_t packed) {
  return static_cast<std::uint32_t>(packed >> 32);
}
[[nodiscard]] constexpr std::int32_t hit_diagonal(std::uint64_t packed) {
  return static_cast<std::int32_t>(
             static_cast<std::uint16_t>(packed >> 16)) -
         kDiagonalBias;
}
[[nodiscard]] constexpr std::uint32_t hit_spos(std::uint64_t packed) {
  return static_cast<std::uint16_t>(packed);
}
/// Query position = subject position - diagonal.
[[nodiscard]] constexpr std::uint32_t hit_qpos(std::uint64_t packed) {
  return static_cast<std::uint32_t>(
      static_cast<std::int32_t>(hit_spos(packed)) - hit_diagonal(packed));
}

/// Per-launch bin storage: num_warps x num_bins bins of fixed capacity in
/// one device buffer, plus the per-bin counters the detection kernel's
/// shared-memory `top[]` is flushed into.
struct BinGrid {
  int num_warps = 0;
  int num_bins = 0;
  std::uint32_t capacity = 0;

  simt::DeviceVector<std::uint64_t> slots;
  simt::DeviceVector<std::uint32_t> counts;     ///< per bin, post-kernel
  simt::DeviceVector<std::uint32_t> overflow;   ///< single counter

  BinGrid(int warps, int bins, std::uint32_t cap)
      : num_warps(warps),
        num_bins(bins),
        capacity(cap),
        slots(static_cast<std::size_t>(warps) * static_cast<std::size_t>(bins) *
              cap),
        // counts/overflow are zero-filled (the cudaMemset a real grid setup
        // performs): the kernels atomically bump them with no prior store.
        // slots needs no memset — only claimed slots are ever read back.
        counts(static_cast<std::size_t>(warps) *
                   static_cast<std::size_t>(bins),
               0),
        overflow(1, 0) {}

  [[nodiscard]] std::size_t total_bins() const {
    return static_cast<std::size_t>(num_warps) *
           static_cast<std::size_t>(num_bins);
  }
  [[nodiscard]] std::size_t slot_index(std::size_t bin,
                                       std::uint32_t i) const {
    return bin * capacity + i;
  }
  [[nodiscard]] bool overflowed() const { return overflow[0] != 0; }
  void clear() {
    counts.assign(counts.size(), 0);
    overflow[0] = 0;
  }
};

}  // namespace repro::core
