// Internals shared by the ungapped-extension kernels (kernels.cpp and
// window_kernel.cpp). Not part of the public API.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

#include "core/bins.hpp"
#include "core/config.hpp"
#include "core/device_data.hpp"
#include "core/kernels.hpp"
#include "simt/engine.hpp"

namespace repro::core::detail {

/// Device-side extension record (SoA), one slot per surviving hit.
struct ExtensionRecords {
  simt::DeviceVector<std::uint32_t> seq;
  simt::DeviceVector<std::uint32_t> q_start;
  simt::DeviceVector<std::uint32_t> q_end;
  simt::DeviceVector<std::uint32_t> diag_biased;
  simt::DeviceVector<std::int32_t> score;
  simt::DeviceVector<std::uint32_t> seed_spos;

  explicit ExtensionRecords(std::size_t n)
      : seq(n), q_start(n), q_end(n), diag_biased(n), score(n),
        seed_spos(n) {}

  [[nodiscard]] static constexpr std::size_t bytes_per_record() { return 24; }
};

/// Emits per-lane extension results into the record arrays with a warp
/// compaction (no global atomics, mirroring the per-block output buffering
/// the paper adopts from GPU-BLASTP).
inline void emit_records(simt::WarpExec& w, ExtensionRecords& records,
                         std::uint32_t region_base, std::uint32_t& cursor,
                         const simt::LaneArray<std::uint8_t>& emit,
                         const simt::LaneArray<std::uint32_t>& seq,
                         const simt::LaneArray<std::uint32_t>& diag_biased,
                         const simt::LaneArray<std::uint32_t>& seed_spos,
                         const simt::LaneArray<std::uint32_t>& q_start,
                         const simt::LaneArray<std::uint32_t>& q_end,
                         const simt::LaneArray<int>& score) {
  const simt::Mask mask =
      w.ballot([&](int lane) { return emit[lane] != 0; });
  if (mask == 0) return;
  // Exclusive compaction rank from the ballot mask (the __ballot_sync +
  // __popc idiom): each emitting lane counts the emitting lanes below it.
  // A width-32 shuffle scan here would read inactive peers' registers when
  // the caller is divergent (this runs inside if_then/loop_while bodies) —
  // undefined on hardware, and a synccheck divergent-collective hazard.
  simt::LaneArray<std::uint32_t> rank{};
  w.vec([&](int lane) {
    rank[lane] = static_cast<std::uint32_t>(
        std::popcount(mask & ((simt::Mask{1} << lane) - 1u)));
  });
  w.if_then(
      [&](int lane) { return ((mask >> lane) & 1u) != 0; },
      [&] {
        simt::LaneArray<std::uint32_t> dst{};
        w.vec([&](int lane) {
          dst[lane] = region_base + cursor + rank[lane];
        });
        simt::LaneArray<std::int32_t> sc{};
        w.vec([&](int lane) { sc[lane] = score[lane]; });
        w.scatter(records.seq.data(), dst, seq);
        w.scatter(records.q_start.data(), dst, q_start);
        w.scatter(records.q_end.data(), dst, q_end);
        w.scatter(records.diag_biased.data(), dst, diag_biased);
        w.scatter(records.score.data(), dst, sc);
        w.scatter(records.seed_spos.data(), dst, seed_spos);
      });
  cursor += static_cast<std::uint32_t>(std::popcount(mask));
}

/// Algorithm 5 (window-based extension) kernel launcher; defined in
/// window_kernel.cpp.
void run_window_extension_kernel(simt::Engine& engine, const Config& config,
                                 const QueryDevice& query,
                                 const BlockDevice& block,
                                 const FilteredBins& filtered,
                                 const simt::LaunchConfig& cfg,
                                 const std::vector<std::uint32_t>& region_base,
                                 ExtensionRecords& records,
                                 std::vector<std::uint32_t>& emitted,
                                 std::atomic<std::uint64_t>& extensions_run);

}  // namespace repro::core::detail
