#include "core/sharded_session.hpp"

#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "core/errors.hpp"
#include "core/prefilter.hpp"
#include "core/query_context.hpp"
#include "core/session_detail.hpp"
#include "simt/simtcheck.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace repro::core {

using detail::QueryRun;

ShardedSession::ShardedSession(Config config, const bio::SequenceDatabase& db)
    : config_(normalized_config(std::move(config))), db_(&db) {
  check_search_limits({}, db);
  const auto split = db.split_blocks(config_.db_blocks);
  const std::size_t num_blocks = split.size();
  std::size_t k = config_.shards;
  if (k < 1) k = 1;
  if (k > num_blocks) k = num_blocks;
  config_.shards = k;

  shards_.reserve(k);
  for (std::size_t s = 0; s < k; ++s) {
    const std::size_t first = s * num_blocks / k;
    const std::size_t last = (s + 1) * num_blocks / k;
    shards_.push_back(std::make_unique<EngineShard>(
        config_, db, s, first,
        std::vector<std::pair<std::size_t, std::size_t>>(
            split.begin() + static_cast<std::ptrdiff_t>(first),
            split.begin() + static_cast<std::ptrdiff_t>(last))));
  }

  if (config_.svccheck || util::svc::svccheck_env_enabled())
    util::svc::set_svccheck_enabled(true);
  pool_ = std::make_unique<util::ThreadPool>(k, "shard");
  session_generation_ = simt::begin_device_generation();
  profiler_.set_device(shards_[0]->engine().spec());
}

std::uint64_t ShardedSession::resident_bytes() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->resident_bytes();
  return total;
}

std::uint64_t ShardedSession::block_uploads() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->block_uploads();
  return total;
}

std::uint64_t ShardedSession::db_device_bytes() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->db_device_bytes();
  return total;
}

std::uint64_t ShardedSession::leak_check(simt::HazardReport& sink) const {
  return simt::device_leak_check(sink, session_generation_);
}

void ShardedSession::export_profile() const {
  detail::export_profile_if_configured(config_, profiler_);
}

void ShardedSession::run_query(std::span<const std::uint8_t> query,
                               QueryRun& run, std::size_t query_index) {
  run.query_index = query_index;
  run.fires_before = util::FaultInjector::instance().total_fires();
  run.cancel.throw_if_stopped("query.start");

  // --- stage 1: query preparation, once for the whole fleet --------------
  // The explicit aggregate search space makes the calculator (and with it
  // every cutoff, e-value, and the pre-filter threshold) identical on
  // every shard — and identical to the K=1 calculator, whose defaults are
  // these same whole-database totals.
  {
    util::Timer prep_timer;
    util::TraceSpan prep_span("query_prep", "core");
    run.ctx.emplace(query, *db_, config_,
                    bio::SearchSpace{db_->total_residues(), db_->size()});
    prep_span.end();
    run.prep_s = prep_timer.seconds();
  }

  run.report.prefilter_mode = config_.prefilter;
  if (config_.prefilter != PrefilterMode::kOff)
    run.report.prefilter_threshold =
        prefilter_threshold_for(config_, run.ctx->evalue);

  // --- scatter: the GPU half of the query on every shard ------------------
  // Only the device-side half fans out. The CPU half (gapped extension,
  // traceback) runs serially on the gathering thread below: the host CPU
  // is one shared resource however many modeled GPUs the fleet has, and
  // the per-task costs it measures feed the pipeline model — measuring
  // them under K-way self-contention would inflate every modeled makespan
  // (DESIGN.md §17).
  const std::size_t k = shards_.size();
  std::vector<std::optional<ShardGpuResult>> gathered(k);

  auto shard_task = [&](std::size_t s) {
    // Worker-side svccheck coverage scope: this thread owns the GPU
    // block-granularity cancellation checkpoints for its shard.
    util::svc::CheckpointScope worker_scope;
    run.cancel.throw_if_stopped("shard.dispatch");
    EngineShard& shard = *shards_[s];

    util::TraceSpan shard_span;
    if (util::trace_enabled()) {
      shard_span.open("search.shard " + std::to_string(s), "core");
      shard_span.arg("shard", static_cast<std::uint64_t>(s));
      shard_span.arg("first_block",
                     static_cast<std::uint64_t>(shard.first_block()));
      shard_span.arg("blocks", static_cast<std::uint64_t>(shard.num_blocks()));
    }

    ShardGpuResult out = shard.run_gpu_blocks(*run.ctx, run.cancel);

    // Worker-side checkpoint-coverage contract (this thread's scope).
    if (util::svc::svccheck_enabled())
      detail::append_checkpoint_gaps(
          worker_scope, detail::kShardWorkerCheckpoints,
          detail::kShardWorkerPerBlockCheckpoints, shard.num_blocks() > 0,
          out.hazards);

    // Publish under the gather lock: the slot indices are disjoint, but
    // the named lock keeps the scatter/gather handoff visible to the
    // svccheck lock-order analyzer (and to TSan).
    std::lock_guard gather_lock(gather_mu_);
    gathered[s] = std::move(out);
  };

  // With a fault schedule installed the scatter is serialized: the global
  // launch/fault-point ordering then matches the K=1 path exactly, so
  // launch-indexed schedules hit the same block at every fleet size (a
  // deterministic-degradation requirement; DESIGN.md §17). Fault-free
  // queries scatter across the fleet pool.
  if (util::FaultInjector::instance().enabled()) {
    for (std::size_t s = 0; s < k; ++s) shard_task(s);
  } else {
    pool_->run_shards(k, shard_task, run.cancel.root_flag());
  }

  // --- gather, in shard order = global block order -------------------------
  run.cancel.throw_if_stopped("shard.gather");
  {
    std::lock_guard gather_lock(gather_mu_);
    for (std::size_t s = 0; s < k; ++s)
      if (!gathered[s].has_value())
        throw SearchError(SearchErrorCode::kWorkerFailed,
                          "shard " + std::to_string(s) +
                              " produced no result after scatter");
  }

  SearchReport& report = run.report;
  auto& counters = report.result.counters;
  simt::ProfileRegistry merged_profile;
  for (std::size_t s = 0; s < k; ++s) {
    ShardGpuResult& gpu = *gathered[s];
    run.shards.push_back(summarize_shard(s, shards_[s]->first_block(), gpu));

    report.bin_overflow_retries += gpu.bin_overflow_retries;
    report.cache_off_retries += gpu.cache_off_retries;
    report.degraded_blocks += gpu.degraded_blocks;
    report.prefilter_sequences += gpu.prefilter_sequences;
    report.prefilter_survivors += gpu.prefilter_survivors;
    report.prefilter_degraded_blocks += gpu.prefilter_degraded_blocks;
    counters.hits_detected += gpu.hits_detected;
    counters.hits_after_filter += gpu.hits_after_filter;
    counters.ungapped_extensions += gpu.ungapped_extensions;
    counters.words_scanned += gpu.words_scanned;

    report.retry_counts.insert(report.retry_counts.end(),
                               gpu.retry_counts.begin(),
                               gpu.retry_counts.end());
    report.block_backends.insert(report.block_backends.end(),
                                 gpu.block_backends.begin(),
                                 gpu.block_backends.end());
    run.block_fallback_s.insert(run.block_fallback_s.end(),
                                gpu.block_fallback_s.begin(),
                                gpu.block_fallback_s.end());
    run.block_gpu_ms.insert(run.block_gpu_ms.end(), gpu.block_gpu_ms.begin(),
                            gpu.block_gpu_ms.end());

    for (const auto& [name, stats] : gpu.profile_delta.kernels())
      merged_profile.add(stats);
    run.hazards.merge(gpu.hazards);

    // CPU half of this shard's blocks, serial on the gathering thread in
    // shard (= global block) order — the exact per-block loop, summation
    // order, and uncontended cost measurements of the K=1 path.
    for (std::size_t bi = 0; bi < shards_[s]->num_blocks(); ++bi) {
      run.cancel.throw_if_stopped("cpu_phase.block");
      const std::size_t global_bi = shards_[s]->first_block() + bi;
      util::TraceSpan gapped_span;
      if (util::trace_enabled()) {
        gapped_span.open("gapped_stage", "cpu");
        gapped_span.arg("block", static_cast<std::uint64_t>(global_bi));
        gapped_span.arg("shard", static_cast<std::uint64_t>(s));
      }
      BlockCpuResult stage = run_block_cpu_stage(
          *run.ctx, *db_, gpu.block_extensions[bi], config_);
      if (gapped_span.active()) {
        gapped_span.arg(
            "gapped_tasks",
            static_cast<std::uint64_t>(stage.gapped_schedule.size()));
        gapped_span.arg(
            "traceback_tasks",
            static_cast<std::uint64_t>(stage.traceback_schedule.size()));
      }
      run.cpu.gapped_s += stage.gapped_makespan_seconds;
      run.cpu.traceback_s += stage.traceback_makespan_seconds;
      run.cpu.gapped_extensions += stage.gapped_extensions;
      run.cpu.tracebacks += stage.tracebacks;

      ModeledBlock modeled;
      modeled.query_index = run.query_index;
      modeled.block_index = global_bi;
      modeled.gpu_s = gpu.block_gpu_ms[bi] / 1e3;
      modeled.cpu_s = stage.gapped_makespan_seconds +
                      stage.traceback_makespan_seconds +
                      gpu.block_fallback_s[bi];
      modeled.fallback_s = gpu.block_fallback_s[bi];
      modeled.gapped_schedule = std::move(stage.gapped_schedule);
      modeled.traceback_schedule = std::move(stage.traceback_schedule);
      run.cpu.modeled.push_back(std::move(modeled));

      run.cpu.alignments.insert(
          run.cpu.alignments.end(),
          std::make_move_iterator(stage.alignments.begin()),
          std::make_move_iterator(stage.alignments.end()));
    }
  }
  run.profile_delta = std::move(merged_profile);

  // --- stage 5: finalization over the merged fleet-wide alignments --------
  run.cancel.throw_if_stopped("finalize");
  run.cpu.finalize_s = run_finalize(run.cpu.alignments, *run.ctx, config_);
  run.wall_seconds = run.wall.seconds();
}

SearchReport ShardedSession::search(std::span<const std::uint8_t> query,
                                    const CancellationToken& cancel) {
  check_search_limits(query, *db_);
  util::svc::CheckpointScope checkpoints;
  const std::uint64_t query_generation = simt::begin_device_generation();
  cancel.throw_if_stopped("search.entry");

  std::optional<util::FaultScope> fault_scope;
  if (!config_.fault_schedule.empty())
    fault_scope.emplace(config_.fault_schedule,
                        config_.fault_seed != 0 ? config_.fault_seed
                                                : util::default_fault_seed());

  const std::string trace_path =
      detail::path_or_env(config_.trace_path, "REPRO_TRACE");
  std::optional<util::TraceSession> trace_session;
  if (!trace_path.empty()) trace_session.emplace(trace_path);

  SearchReport report;
  {
    QueryRun run;
    run.cancel = cancel;
    util::TraceSpan search_span("cublastp.search", "core");
    if (search_span.active()) {
      search_span.arg("query_length", static_cast<std::uint64_t>(query.size()));
      search_span.arg("db_sequences", static_cast<std::uint64_t>(db_->size()));
      search_span.arg("db_blocks",
                      static_cast<std::uint64_t>(config_.db_blocks));
      search_span.arg("engine_workers", config_.engine_workers);
      search_span.arg("shards", static_cast<std::uint64_t>(shards_.size()));
    }

    run_query(query, run, 0);
    detail::finish_search_report(run, config_, profiler_,
                                 /*emit_modeled_trace=*/true);

    if (search_span.active()) {
      search_span.arg(
          "alignments",
          static_cast<std::uint64_t>(run.report.result.alignments.size()));
      search_span.arg("degraded_blocks", run.report.degraded_blocks);
      search_span.arg("faults_absorbed", run.report.faults_encountered);
    }
    search_span.end();
    report = std::move(run.report);
  }

  if (shards_[0]->engine().simtcheck_enabled())
    simt::device_leak_check(report.hazards, query_generation);
  if (util::svc::svccheck_enabled())
    detail::append_checkpoint_gaps(
        checkpoints, detail::kShardedMainCheckpoints,
        detail::kShardedMainPerBlockCheckpoints,
        /*has_blocks=*/!shards_.empty() && shards_[0]->num_blocks() > 0,
        report.hazards);

  detail::export_metrics_if_configured(config_);
  export_profile();
  return report;
}

BatchReport ShardedSession::search_batch(
    std::span<const std::span<const std::uint8_t>> queries) {
  BatchReport batch;
  batch.shards = shards_.size();
  if (queries.empty()) return batch;
  for (const auto& query : queries) check_search_limits(query, *db_);
  const std::uint64_t batch_generation = simt::begin_device_generation();

  std::optional<util::FaultScope> fault_scope;
  if (!config_.fault_schedule.empty())
    fault_scope.emplace(config_.fault_schedule,
                        config_.fault_seed != 0 ? config_.fault_seed
                                                : util::default_fault_seed());

  const std::string trace_path =
      detail::path_or_env(config_.trace_path, "REPRO_TRACE");
  std::optional<util::TraceSession> trace_session;
  if (!trace_path.empty()) trace_session.emplace(trace_path);

  const std::uint64_t uploads_before = block_uploads();
  const std::uint64_t bytes_before = resident_bytes();

  util::Timer batch_timer;
  util::TraceSpan batch_span("cublastp.search_batch", "core");
  if (batch_span.active()) {
    batch_span.arg("queries", static_cast<std::uint64_t>(queries.size()));
    batch_span.arg("db_sequences", static_cast<std::uint64_t>(db_->size()));
    batch_span.arg("db_blocks", static_cast<std::uint64_t>(config_.db_blocks));
    batch_span.arg("shards", static_cast<std::uint64_t>(shards_.size()));
  }

  // Queries run in input order, each scattered across the whole fleet (the
  // fleet's parallelism is across shards, not across queries, so per-query
  // reports stay bit-identical to sequential search() calls). The modeled
  // fleet makespan below is the slowest shard's cross-query Fig. 12 walk.
  std::vector<std::vector<ModeledQuery>> shard_modeled(
      shards_.size(), std::vector<ModeledQuery>(queries.size()));
  {
    std::vector<std::unique_ptr<QueryRun>> runs(queries.size());
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      runs[qi] = std::make_unique<QueryRun>();
      util::TraceSpan query_span;
      if (util::trace_enabled()) {
        query_span.open("batch.query " + std::to_string(qi), "core");
        query_span.arg("query_length",
                       static_cast<std::uint64_t>(queries[qi].size()));
      }
      run_query(queries[qi], *runs[qi], qi);
      detail::finish_search_report(*runs[qi], config_, profiler_,
                                   /*emit_modeled_trace=*/false);

      // Re-partition the global modeled-block list back into per-shard
      // lists (contiguous global block ranges) for the fleet walk.
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        ModeledQuery& mq = shard_modeled[s][qi];
        mq.prep_s = runs[qi]->prep_s;
        mq.finalize_s = runs[qi]->cpu.finalize_s;
        const std::size_t first = shards_[s]->first_block();
        const std::size_t end = first + shards_[s]->num_blocks();
        for (ModeledBlock& block : runs[qi]->cpu.modeled)
          if (block.block_index >= first && block.block_index < end)
            mq.blocks.push_back(std::move(block));
      }

      batch.per_query_wall_seconds.push_back(runs[qi]->wall_seconds);
      batch.prefilter_sequences += runs[qi]->report.prefilter_sequences;
      batch.prefilter_survivors += runs[qi]->report.prefilter_survivors;
      batch.reports.push_back(std::move(runs[qi]->report));
    }
    runs.clear();
  }
  if (shards_[0]->engine().simtcheck_enabled())
    simt::device_leak_check(batch.reports[0].hazards, batch_generation);

  batch.batch_wall_seconds = batch_timer.seconds();
  batch.h2d_block_uploads = block_uploads() - uploads_before;
  batch.h2d_block_bytes = resident_bytes() - bytes_before;
  batch.db_device_bytes = db_device_bytes();

  // Modeled fleet makespan: every shard walks its own cross-query pipeline
  // (its GPU chain + its CPU resource) concurrently; the batch finishes
  // when the slowest shard does.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const double shard_makespan =
        walk_batch_pipeline(shard_modeled[s], config_.cpu_threads);
    if (shard_makespan > batch.modeled_batch_seconds)
      batch.modeled_batch_seconds = shard_makespan;
  }

  // Sequential baseline: N one-shot single-engine sessions, exactly as
  // SearchSession models it (full database upload per query on one link).
  double full_upload_ms = 0.0;
  const simt::Engine& cost_engine = shards_[0]->engine();
  for (const auto& shard : shards_) {
    for (std::size_t bi = 0; bi < shard->num_blocks(); ++bi) {
      const auto [begin, end] = shard->block_range(bi);
      const std::uint64_t block_bytes =
          db_->offsets()[end] - db_->offsets()[begin] +
          (end - begin + 1) * sizeof(std::uint32_t);
      full_upload_ms +=
          cost_engine.cost_model().transfer_ms(cost_engine.spec(), block_bytes);
    }
  }
  for (const auto& report : batch.reports)
    batch.modeled_sequential_seconds +=
        report.overlapped_total_seconds +
        (full_upload_ms - detail::kernel_ms(report.profile, "h2d_block")) / 1e3;

  if (batch_span.active()) {
    batch_span.arg("h2d_block_bytes", batch.h2d_block_bytes);
    batch_span.arg("modeled_batch_seconds", batch.modeled_batch_seconds);
    batch_span.arg("modeled_sequential_seconds",
                   batch.modeled_sequential_seconds);
  }
  batch_span.end();

  auto& registry = util::metrics::Registry::instance();
  registry.counter("core.batches").add(1);
  registry.counter("core.batch_queries").add(queries.size());
  registry.histogram("core.batch_wall_seconds")
      .observe(batch.batch_wall_seconds);
  detail::export_metrics_if_configured(config_);
  export_profile();
  return batch;
}

BatchReport ShardedSession::search_all_vs_all(std::size_t limit) {
  std::size_t count = db_->size();
  if (limit != 0 && limit < count) count = limit;
  std::vector<std::span<const std::uint8_t>> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) queries.push_back(db_->residues(i));
  return search_batch(queries);
}

}  // namespace repro::core
