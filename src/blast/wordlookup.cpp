#include "blast/wordlookup.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace repro::blast {

namespace {

std::uint32_t pow_alphabet(int w) {
  std::uint32_t n = 1;
  for (int i = 0; i < w; ++i) n *= bio::kAlphabetSize;
  return n;
}

}  // namespace

WordLookup::WordLookup(std::span<const std::uint8_t> query,
                       const bio::Blosum62& matrix,
                       const SearchParams& params)
    : w_(params.word_length),
      query_length_(query.size()),
      num_words_(0) {
  if (w_ < 2 || w_ > 5)
    throw std::invalid_argument("WordLookup: word_length must be in [2,5]");
  num_words_ = pow_alphabet(w_);

  const int t = params.neighbor_threshold;
  const int max_pair = matrix.max_score();
  const auto num_positions =
      query.size() >= static_cast<std::size_t>(w_)
          ? query.size() - static_cast<std::size_t>(w_) + 1
          : 0;

  // Enumerate, for each query word position, all W-mers of standard amino
  // acids scoring >= T against it. Depth-first with optimistic pruning: a
  // partial word is abandoned when even perfect remaining matches cannot
  // reach T.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> entries;  // word, pos
  std::array<std::uint8_t, 8> word{};
  for (std::size_t pos = 0; pos < num_positions; ++pos) {
    const std::uint8_t* q = query.data() + pos;

    // Iterative DFS over word letters.
    int depth = 0;
    word[0] = 0;
    std::array<int, 8> partial{};  // score of word[0..depth)
    while (depth >= 0) {
      if (word[static_cast<std::size_t>(depth)] >=
          bio::kNumRealAminoAcids) {
        --depth;
        if (depth >= 0) ++word[static_cast<std::size_t>(depth)];
        continue;
      }
      const int score =
          partial[static_cast<std::size_t>(depth)] +
          matrix.score(q[depth], word[static_cast<std::size_t>(depth)]);
      const int remaining = (w_ - depth - 1) * max_pair;
      if (score + remaining < t) {
        ++word[static_cast<std::size_t>(depth)];
        continue;
      }
      if (depth + 1 == w_) {
        if (score >= t)
          entries.emplace_back(word_index(word.data(), w_),
                               static_cast<std::uint32_t>(pos));
        ++word[static_cast<std::size_t>(depth)];
      } else {
        partial[static_cast<std::size_t>(depth + 1)] = score;
        ++depth;
        word[static_cast<std::size_t>(depth)] = 0;
      }
    }
  }

  // Bucket entries by word index (counting sort keeps position order stable
  // and ascending, which downstream code relies on).
  offsets_.assign(num_words_ + 1, 0);
  for (const auto& [word_idx, pos] : entries) ++offsets_[word_idx + 1];
  for (std::uint32_t i = 0; i < num_words_; ++i)
    offsets_[i + 1] += offsets_[i];
  positions_.resize(entries.size());
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [word_idx, pos] : entries)
    positions_[cursor[word_idx]++] = pos;
}

Dfa::Dfa(const WordLookup& lookup)
    : lookup_(&lookup),
      num_states_(0) {
  if (lookup.word_length() != 3)
    throw std::invalid_argument("Dfa requires word_length == 3");
  num_states_ = static_cast<std::uint32_t>(bio::kAlphabetSize) *
                bio::kAlphabetSize;
}

}  // namespace repro::blast
