// Common value types shared by every search engine (the fine-grained
// cuBLASTP core and all four baselines), so that "output identical to
// FSA-BLAST" (paper §4.3) is a checkable property.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace repro::blast {

/// Search parameters. Defaults are the FSA-BLAST/NCBI BLASTP defaults used
/// throughout the paper (W=3, T=11, two-hit window A=40, BLOSUM62 with gap
/// open 11 / extend 1).
struct SearchParams {
  int word_length = 3;        ///< W
  int neighbor_threshold = 11;  ///< T: word neighborhood score threshold
  int two_hit_window = 40;    ///< A: max distance between paired hits
  int ungapped_xdrop = 16;    ///< X_u (raw score units)
  int ungapped_cutoff = 38;   ///< raw ungapped score that triggers gapped ext
  int gapped_xdrop = 38;      ///< X_g
  int gap_open = 11;          ///< affine gap open cost (first residue: 12)
  int gap_extend = 1;         ///< affine gap extension cost per residue
  double max_evalue = 10.0;   ///< report threshold
  bool one_hit = false;       ///< ablation: trigger extension on single hits
};

/// A word hit: query/subject positions of a matching W-mer.
struct Hit {
  std::uint32_t seq = 0;   ///< subject sequence index in the database
  std::uint32_t qpos = 0;  ///< word start in the query
  std::uint32_t spos = 0;  ///< word start in the subject

  /// Diagonal number. The paper offsets by the query length to keep it
  /// non-negative; we keep the signed value and offset at bin time.
  [[nodiscard]] std::int32_t diagonal() const {
    return static_cast<std::int32_t>(spos) - static_cast<std::int32_t>(qpos);
  }

  friend bool operator==(const Hit&, const Hit&) = default;
  friend auto operator<=>(const Hit&, const Hit&) = default;
};

/// Result of one ungapped x-drop extension: the maximal-scoring segment on a
/// diagonal. Coordinates are inclusive.
struct UngappedExtension {
  std::uint32_t seq = 0;
  std::uint32_t q_start = 0, q_end = 0;
  std::uint32_t s_start = 0, s_end = 0;
  std::int32_t score = 0;

  [[nodiscard]] std::int32_t diagonal() const {
    return static_cast<std::int32_t>(s_start) -
           static_cast<std::int32_t>(q_start);
  }
  /// Seed point handed to the gapped stage (center of the segment).
  [[nodiscard]] std::uint32_t q_seed() const { return (q_start + q_end) / 2; }
  [[nodiscard]] std::uint32_t s_seed() const {
    return s_start + (q_seed() - q_start);
  }

  friend bool operator==(const UngappedExtension&,
                         const UngappedExtension&) = default;
  friend auto operator<=>(const UngappedExtension&,
                          const UngappedExtension&) = default;
};

/// A final gapped alignment with traceback.
struct Alignment {
  std::uint32_t seq = 0;
  std::int32_t score = 0;
  double bit_score = 0.0;
  double evalue = 0.0;
  std::uint32_t q_start = 0, q_end = 0;  ///< inclusive
  std::uint32_t s_start = 0, s_end = 0;  ///< inclusive
  /// Edit transcript: 'M' aligned pair, 'D' gap in subject (query residue
  /// unmatched), 'I' gap in query (subject residue unmatched).
  std::string ops;

  [[nodiscard]] std::size_t alignment_length() const { return ops.size(); }

  friend bool operator==(const Alignment&, const Alignment&) = default;
};

/// Wall-clock (or modeled, for device kernels) seconds per BLASTP phase.
struct PhaseTimings {
  double hit_detection = 0.0;      ///< includes binning/sorting/filtering
  double ungapped_extension = 0.0;
  double gapped_extension = 0.0;
  double traceback = 0.0;
  double other = 0.0;  ///< DFA/PSSM build, output, transfers not overlapped

  [[nodiscard]] double critical() const {
    return hit_detection + ungapped_extension;
  }
  [[nodiscard]] double total() const {
    return hit_detection + ungapped_extension + gapped_extension + traceback +
           other;
  }
};

/// Work counters used by tests and by the profiling bench (Fig. 19 and the
/// §3.3 "5–11 % of hits survive filtering" claim).
struct SearchCounters {
  std::uint64_t words_scanned = 0;
  std::uint64_t hits_detected = 0;
  std::uint64_t hits_after_filter = 0;
  std::uint64_t ungapped_extensions = 0;
  std::uint64_t gapped_extensions = 0;
  std::uint64_t tracebacks = 0;

  [[nodiscard]] double filter_survival_ratio() const {
    return hits_detected
               ? static_cast<double>(hits_after_filter) /
                     static_cast<double>(hits_detected)
               : 0.0;
  }
};

/// Everything a search returns.
struct SearchResult {
  std::vector<Alignment> alignments;  ///< ranked: best first
  PhaseTimings timings;
  SearchCounters counters;
};

}  // namespace repro::blast
