#include "blast/results.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "bio/alphabet.hpp"
#include "blast/gapped.hpp"
#include "util/timer.hpp"

namespace repro::blast {

namespace {

/// Unique gapped seed: one gapped extension is run per distinct seed point.
struct Seed {
  std::uint32_t seq;
  std::uint32_t q_seed;
  std::uint32_t s_seed;

  friend bool operator==(const Seed&, const Seed&) = default;
  friend auto operator<=>(const Seed&, const Seed&) = default;
};

/// Drops exact-duplicate alignments and strictly-contained lower-scoring
/// ones within each subject sequence.
void dedupe_alignments(std::vector<Alignment>& alignments) {
  // The tie-break on ops makes the order (and hence which of two
  // equal-coordinate, equal-score alignments survives de-duplication)
  // independent of input order — required for engines that process the
  // database in different block partitions to produce identical output.
  std::sort(alignments.begin(), alignments.end(),
            [](const Alignment& a, const Alignment& b) {
              return std::tie(a.seq, b.score, a.q_start, a.s_start, a.q_end,
                              a.s_end, a.ops) <
                     std::tie(b.seq, a.score, b.q_start, b.s_start, b.q_end,
                              b.s_end, b.ops);
            });
  std::vector<Alignment> kept;
  kept.reserve(alignments.size());
  std::size_t seq_first = 0;  // first kept alignment of the current seq
  for (auto& cand : alignments) {
    if (!kept.empty() && kept.back().seq != cand.seq)
      seq_first = kept.size();
    bool redundant = false;
    for (std::size_t i = seq_first; i < kept.size(); ++i) {
      const Alignment& k = kept[i];
      const bool contained = cand.q_start >= k.q_start &&
                             cand.q_end <= k.q_end &&
                             cand.s_start >= k.s_start &&
                             cand.s_end <= k.s_end;
      if (contained && cand.score <= k.score) {
        redundant = true;
        break;
      }
    }
    if (!redundant) kept.push_back(std::move(cand));
  }
  alignments = std::move(kept);
}

}  // namespace

void dedupe_extensions(std::vector<UngappedExtension>& extensions) {
  std::sort(extensions.begin(), extensions.end(),
            [](const UngappedExtension& a, const UngappedExtension& b) {
              return std::tie(a.seq, a.s_start, a.q_start, b.s_end, b.score) <
                     std::tie(b.seq, b.s_start, b.q_start, a.s_end, a.score);
            });
  std::vector<UngappedExtension> kept;
  kept.reserve(extensions.size());
  for (auto& ext : extensions) {
    if (!kept.empty()) {
      const UngappedExtension& prev = kept.back();
      if (prev == ext) continue;  // exact duplicate
      // Same diagonal, contained in the previous segment, not better.
      if (prev.seq == ext.seq && prev.diagonal() == ext.diagonal() &&
          ext.s_start >= prev.s_start && ext.s_end <= prev.s_end &&
          ext.score <= prev.score)
        continue;
    }
    kept.push_back(ext);
  }
  extensions = std::move(kept);
}

GappedStageOutput process_gapped_stage(
    const bio::Pssm& pssm, const bio::SequenceDatabase& db,
    std::span<const UngappedExtension> extensions, const SearchParams& params,
    const bio::EvalueCalculator& evalue) {
  GappedStageOutput out;

  // One gapped extension per distinct seed point, in deterministic order.
  std::vector<Seed> seeds;
  seeds.reserve(extensions.size());
  for (const auto& ext : extensions)
    seeds.push_back(Seed{ext.seq, ext.q_seed(), ext.s_seed()});
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());

  const int traceback_cutoff =
      evalue.min_significant_score(params.max_evalue);

  for (const Seed& seed : seeds) {
    const auto subject = db.residues(seed.seq);
    util::Timer gapped_timer;
    const GappedScore gs =
        gapped_score(pssm, subject, seed.q_seed, seed.s_seed, params);
    const double gapped_cost = gapped_timer.seconds();
    out.gapped_seconds += gapped_cost;
    out.gapped_task_costs.push_back(gapped_cost);
    ++out.gapped_extensions;
    if (gs.score < traceback_cutoff) continue;

    util::Timer traceback_timer;
    Alignment alignment = gapped_traceback(pssm, subject, seed.seq,
                                           seed.q_seed, seed.s_seed, params);
    const double tb_cost = traceback_timer.seconds();
    out.traceback_seconds += tb_cost;
    out.traceback_task_costs.push_back(tb_cost);
    ++out.tracebacks;
    out.alignments.push_back(std::move(alignment));
  }

  dedupe_alignments(out.alignments);
  return out;
}

void finalize_results(std::vector<Alignment>& alignments,
                      const SearchParams& params,
                      const bio::EvalueCalculator& evalue) {
  for (auto& a : alignments) {
    a.bit_score = evalue.bit_score(a.score);
    a.evalue = evalue.evalue(a.score);
  }
  std::erase_if(alignments, [&](const Alignment& a) {
    return a.evalue > params.max_evalue;
  });
  std::sort(alignments.begin(), alignments.end(),
            [](const Alignment& a, const Alignment& b) {
              return std::tie(b.score, a.seq, a.q_start, a.s_start, a.q_end,
                              a.s_end, a.ops) <
                     std::tie(a.score, b.seq, b.q_start, b.s_start, b.q_end,
                              b.s_end, b.ops);
            });
}

std::string format_alignment(std::span<const std::uint8_t> query,
                             const bio::SequenceDatabase& db,
                             const Alignment& alignment, std::size_t width) {
  const auto subject = db.residues(alignment.seq);
  const auto& matrix = bio::Blosum62::instance();

  std::string q_row, mid_row, s_row;
  std::uint32_t qi = alignment.q_start, si = alignment.s_start;
  for (const char op : alignment.ops) {
    switch (op) {
      case 'M': {
        const char qc = bio::decode_letter(query[qi]);
        const char sc = bio::decode_letter(subject[si]);
        q_row.push_back(qc);
        s_row.push_back(sc);
        if (qc == sc)
          mid_row.push_back(qc);
        else if (matrix.score(query[qi], subject[si]) > 0)
          mid_row.push_back('+');
        else
          mid_row.push_back(' ');
        ++qi;
        ++si;
        break;
      }
      case 'D':
        q_row.push_back(bio::decode_letter(query[qi]));
        s_row.push_back('-');
        mid_row.push_back(' ');
        ++qi;
        break;
      case 'I':
        q_row.push_back('-');
        s_row.push_back(bio::decode_letter(subject[si]));
        mid_row.push_back(' ');
        ++si;
        break;
      default:
        break;
    }
  }

  std::ostringstream text;
  text << "> " << db.id(alignment.seq);
  if (!db.description(alignment.seq).empty())
    text << " " << db.description(alignment.seq);
  text << "\n  Score = " << alignment.bit_score << " bits (" << alignment.score
       << "), Expect = " << alignment.evalue << "\n";
  std::uint32_t q_coord = alignment.q_start + 1;
  std::uint32_t s_coord = alignment.s_start + 1;
  for (std::size_t i = 0; i < q_row.size(); i += width) {
    const std::size_t n = std::min(width, q_row.size() - i);
    const std::string q_chunk = q_row.substr(i, n);
    const std::string m_chunk = mid_row.substr(i, n);
    const std::string s_chunk = s_row.substr(i, n);
    const auto q_used = static_cast<std::uint32_t>(
        std::count_if(q_chunk.begin(), q_chunk.end(),
                      [](char c) { return c != '-'; }));
    const auto s_used = static_cast<std::uint32_t>(
        std::count_if(s_chunk.begin(), s_chunk.end(),
                      [](char c) { return c != '-'; }));
    text << "  Query " << q_coord << "\t" << q_chunk << "\t"
         << q_coord + q_used - 1 << "\n";
    text << "        \t" << m_chunk << "\n";
    text << "  Sbjct " << s_coord << "\t" << s_chunk << "\t"
         << s_coord + s_used - 1 << "\n\n";
    q_coord += q_used;
    s_coord += s_used;
  }
  return text.str();
}

}  // namespace repro::blast
