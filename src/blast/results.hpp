// Final-phase plumbing shared by all engines: running the gapped and
// traceback stages over ungapped survivors, de-duplicating HSPs, attaching
// e-values, and ranking — so that two engines that agree on the ungapped
// survivors provably produce identical SearchResults.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bio/database.hpp"
#include "bio/karlin.hpp"
#include "bio/pssm.hpp"
#include "blast/types.hpp"

namespace repro::blast {

/// Seeds that survived the ungapped stage, grouped however the engine
/// produced them. process_gapped_stage sorts and de-duplicates internally.
struct GappedStageOutput {
  std::vector<Alignment> alignments;  ///< unranked, evalue not yet attached
  std::uint64_t gapped_extensions = 0;
  std::uint64_t tracebacks = 0;
  double gapped_seconds = 0.0;
  double traceback_seconds = 0.0;
  /// Per-seed costs (seconds), for the makespan scheduling model.
  std::vector<double> gapped_task_costs;
  std::vector<double> traceback_task_costs;
};

/// Runs gapped extension (score pass) and alignment-with-traceback for
/// every qualifying seed. Seeds whose gapped score fails the e-value cutoff
/// are dropped before traceback, as in BLAST. Deterministic regardless of
/// the input order of `extensions`.
[[nodiscard]] GappedStageOutput process_gapped_stage(
    const bio::Pssm& pssm, const bio::SequenceDatabase& db,
    std::span<const UngappedExtension> extensions, const SearchParams& params,
    const bio::EvalueCalculator& evalue);

/// Attaches e-values/bit scores, filters by params.max_evalue, and ranks
/// best-first (score desc, then seq, then coordinates — a total order, so
/// ranking is deterministic).
void finalize_results(std::vector<Alignment>& alignments,
                      const SearchParams& params,
                      const bio::EvalueCalculator& evalue);

/// Removes duplicate and strictly-contained HSPs per subject sequence.
/// Exposed for the hit-based extension path, which produces redundant
/// extensions by design (paper Algorithm 4 requires a de-duplication step).
void dedupe_extensions(std::vector<UngappedExtension>& extensions);

/// Pretty-prints an alignment the way blastp output does (three-row blocks:
/// query, midline, subject).
[[nodiscard]] std::string format_alignment(
    std::span<const std::uint8_t> query, const bio::SequenceDatabase& db,
    const Alignment& alignment, std::size_t width = 60);

}  // namespace repro::blast
