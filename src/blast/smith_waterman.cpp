#include "blast/smith_waterman.hpp"

#include <algorithm>
#include <climits>
#include <vector>

namespace repro::blast {

namespace {
constexpr int kNegInf = INT_MIN / 4;
}

int smith_waterman_score(const bio::Pssm& pssm,
                         std::span<const std::uint8_t> subject,
                         const SearchParams& params) {
  const std::size_t m = pssm.query_length();
  const std::size_t n = subject.size();
  if (m == 0 || n == 0) return 0;
  const int open = params.gap_open + params.gap_extend;
  const int extend = params.gap_extend;

  std::vector<int> h(n + 1, 0);  // H(i-1, j) rolling into H(i, j)
  std::vector<int> e(n + 1, kNegInf);  // gap in query
  int best = 0;
  for (std::size_t i = 1; i <= m; ++i) {
    int diag = 0;      // H(i-1, j-1)
    int f = kNegInf;   // gap in subject along this row
    h[0] = 0;
    for (std::size_t j = 1; j <= n; ++j) {
      e[j] = std::max(h[j] - open, e[j] - extend);
      f = std::max(h[j - 1] - open, f - extend);
      const int match = diag + pssm.score(i - 1, subject[j - 1]);
      diag = h[j];
      h[j] = std::max({0, match, e[j], f});
      best = std::max(best, h[j]);
    }
  }
  return best;
}

Alignment smith_waterman_align(const bio::Pssm& pssm,
                               std::span<const std::uint8_t> subject,
                               std::uint32_t seq_index,
                               const SearchParams& params) {
  const std::size_t m = pssm.query_length();
  const std::size_t n = subject.size();
  Alignment result;
  result.seq = seq_index;
  if (m == 0 || n == 0) return result;
  const int open = params.gap_open + params.gap_extend;
  const int extend = params.gap_extend;

  // Full matrices (test-scale): H plus direction bytes.
  // dir bits: 0-1 H source (0 stop, 1 diag, 2 E, 3 F); 2 E-from-E; 3 F-from-F.
  const std::size_t stride = n + 1;
  std::vector<int> h((m + 1) * stride, 0);
  std::vector<int> e(stride, kNegInf);
  std::vector<std::uint8_t> dir((m + 1) * stride, 0);
  int best = 0;
  std::size_t bi = 0, bj = 0;
  for (std::size_t i = 1; i <= m; ++i) {
    int f = kNegInf;
    for (std::size_t j = 1; j <= n; ++j) {
      std::uint8_t d = 0;
      const int e_open = h[(i - 1) * stride + j] - open;
      const int e_ext = e[j] - extend;
      e[j] = std::max(e_open, e_ext);
      if (e[j] == e_ext) d |= 1 << 2;
      const int f_open = h[i * stride + j - 1] - open;
      const int f_ext = f - extend;
      f = std::max(f_open, f_ext);
      if (f == f_ext) d |= 1 << 3;
      const int match =
          h[(i - 1) * stride + j - 1] + pssm.score(i - 1, subject[j - 1]);
      int v = 0;
      if (match >= v) v = match;
      if (e[j] > v) v = e[j];
      if (f > v) v = f;
      if (v == 0) {
        d |= 0;
      } else if (v == match) {
        d |= 1;
      } else if (v == e[j]) {
        d |= 2;
      } else {
        d |= 3;
      }
      h[i * stride + j] = v;
      dir[i * stride + j] = d;
      if (v > best) {
        best = v;
        bi = i;
        bj = j;
      }
    }
  }

  result.score = best;
  if (best == 0) return result;

  // Traceback from (bi, bj) until a zero cell.
  std::string ops;
  std::size_t i = bi, j = bj;
  enum class State { H, E, F } state = State::H;
  while (i > 0 && j > 0) {
    const std::uint8_t d = dir[i * stride + j];
    if (state == State::H) {
      const int src = d & 3;
      if (src == 0 || h[i * stride + j] == 0) break;
      if (src == 1) {
        ops.push_back('M');
        --i;
        --j;
      } else if (src == 2) {
        state = State::E;
      } else {
        state = State::F;
      }
    } else if (state == State::E) {
      // E consumed query residue i (gap in subject).
      ops.push_back('D');
      state = (d & (1 << 2)) ? State::E : State::H;
      --i;
    } else {
      ops.push_back('I');
      state = (d & (1 << 3)) ? State::F : State::H;
      --j;
    }
  }
  std::reverse(ops.begin(), ops.end());
  result.ops = std::move(ops);
  result.q_start = static_cast<std::uint32_t>(i);
  result.s_start = static_cast<std::uint32_t>(j);
  result.q_end = static_cast<std::uint32_t>(bi - 1);
  result.s_end = static_cast<std::uint32_t>(bj - 1);
  return result;
}

}  // namespace repro::blast
