#include "blast/seeding.hpp"

namespace repro::blast {

std::uint64_t scan_subject(
    const WordLookup& lookup, std::span<const std::uint8_t> subject,
    const std::function<void(std::uint32_t, std::uint32_t)>& sink) {
  const int w = lookup.word_length();
  if (subject.size() < static_cast<std::size_t>(w)) return 0;
  const std::size_t num_words = subject.size() - static_cast<std::size_t>(w) + 1;
  for (std::size_t spos = 0; spos < num_words; ++spos) {
    const std::uint32_t word =
        WordLookup::word_index(subject.data() + spos, w);
    for (const std::uint32_t qpos : lookup.positions(word))
      sink(qpos, static_cast<std::uint32_t>(spos));
  }
  return num_words;
}

std::uint64_t scan_subject_dfa(
    const Dfa& dfa, std::span<const std::uint8_t> subject,
    const std::function<void(std::uint32_t, std::uint32_t)>& sink) {
  const int w = dfa.lookup().word_length();
  if (subject.size() < static_cast<std::size_t>(w)) return 0;
  // Prime the state with the first W-1 letters, then feed one letter per
  // word (exactly the walk of paper Fig. 2a).
  std::uint16_t state = 0;
  for (int i = 0; i < w - 1; ++i)
    state = dfa.next_state(state, subject[static_cast<std::size_t>(i)]);
  const std::size_t num_words = subject.size() - static_cast<std::size_t>(w) + 1;
  for (std::size_t spos = 0; spos < num_words; ++spos) {
    const std::uint8_t letter = subject[spos + static_cast<std::size_t>(w) - 1];
    for (const std::uint32_t qpos : dfa.positions(state, letter))
      sink(qpos, static_cast<std::uint32_t>(spos));
    state = dfa.next_state(state, letter);
  }
  return num_words;
}

std::vector<Hit> collect_hits(const WordLookup& lookup,
                              std::span<const std::uint8_t> subject,
                              std::uint32_t seq_index) {
  std::vector<Hit> hits;
  scan_subject(lookup, subject,
               [&](std::uint32_t qpos, std::uint32_t spos) {
                 hits.push_back(Hit{seq_index, qpos, spos});
               });
  return hits;
}

}  // namespace repro::blast
