// Query preprocessing for hit detection: the neighborhood word lookup table
// and the DFA built over it (paper Fig. 2a, [20]).
//
// For every possible W-mer of standard amino acids, the lookup stores the
// query positions whose W-mer scores >= T against it under BLOSUM62. Hit
// detection then walks the subject sequence and, for each subject word,
// retrieves the matching query positions in O(1).
//
// The Dfa view reorganizes the same data the way FSA-BLAST does: a state
// per (W-1)-letter prefix with one transition per next letter, so hit
// detection needs only one state step and one entry load per subject letter.
// The split matters for the paper's hierarchical buffering (§3.5, Fig. 10):
// the fixed-size state table lives in GPU shared memory while the variable-
// size position lists go through the read-only cache.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bio/alphabet.hpp"
#include "bio/blosum.hpp"
#include "blast/types.hpp"

namespace repro::blast {

class WordLookup {
 public:
  /// Builds the table for `query`. Supports word_length in [2, 5].
  WordLookup(std::span<const std::uint8_t> query,
             const bio::Blosum62& matrix, const SearchParams& params);

  [[nodiscard]] int word_length() const { return w_; }
  [[nodiscard]] std::size_t query_length() const { return query_length_; }

  /// Number of distinct word indices (kAlphabetSize^W).
  [[nodiscard]] std::uint32_t num_words() const { return num_words_; }

  /// Query positions matching this word index (may be empty).
  [[nodiscard]] std::span<const std::uint32_t> positions(
      std::uint32_t word) const {
    return {positions_.data() + offsets_[word],
            offsets_[word + 1] - offsets_[word]};
  }

  /// Base-kAlphabetSize index of the word starting at `p`.
  [[nodiscard]] static std::uint32_t word_index(const std::uint8_t* p,
                                                int w) {
    std::uint32_t idx = 0;
    for (int i = 0; i < w; ++i)
      idx = idx * bio::kAlphabetSize + p[static_cast<std::size_t>(i)];
    return idx;
  }

  /// Total number of (word, query position) entries — the size of the
  /// position buffer the paper routes through the read-only cache.
  [[nodiscard]] std::size_t total_entries() const {
    return positions_.size();
  }

  /// Raw buffers (device views used by the SIMT kernels).
  [[nodiscard]] std::span<const std::uint32_t> offset_buffer() const {
    return offsets_;
  }
  [[nodiscard]] std::span<const std::uint32_t> position_buffer() const {
    return positions_;
  }

 private:
  int w_;
  std::size_t query_length_;
  std::uint32_t num_words_;
  std::vector<std::uint32_t> offsets_;    ///< num_words()+1 entries
  std::vector<std::uint32_t> positions_;  ///< grouped by word index
};

/// DFA over (W-1)-letter prefixes; a thin reorganization of WordLookup.
/// Only defined for W == 3 (the protein default), as in FSA-BLAST.
class Dfa {
 public:
  explicit Dfa(const WordLookup& lookup);

  /// Number of states: kAlphabetSize^(W-1).
  [[nodiscard]] std::uint32_t num_states() const { return num_states_; }

  /// Transition: feed the next subject letter.
  [[nodiscard]] std::uint16_t next_state(std::uint16_t state,
                                         std::uint8_t letter) const {
    return static_cast<std::uint16_t>(
        (state % kPrefixStride) * bio::kAlphabetSize + letter);
  }

  /// Query positions of the word formed by `state`'s prefix plus `letter`.
  [[nodiscard]] std::span<const std::uint32_t> positions(
      std::uint16_t state, std::uint8_t letter) const {
    return lookup_->positions(static_cast<std::uint32_t>(state) *
                                  bio::kAlphabetSize +
                              letter);
  }

  /// Bytes of the state-transition structure — the shared-memory resident
  /// part in the paper's hierarchical buffering.
  [[nodiscard]] std::size_t state_table_bytes() const {
    return static_cast<std::size_t>(num_states_) * bio::kAlphabetSize *
           sizeof(std::uint32_t);
  }

  [[nodiscard]] const WordLookup& lookup() const { return *lookup_; }

 private:
  static constexpr std::uint32_t kPrefixStride = bio::kAlphabetSize;

  const WordLookup* lookup_;
  std::uint32_t num_states_;
};

}  // namespace repro::blast
