// Gapped x-drop extension (paper phase 3) and alignment with traceback
// (phase 4).
//
// From the seed point of a high-scoring ungapped extension, dynamic
// programming with affine gaps extends in both directions, pruning cells
// whose score falls more than X_g below the running best (Zhang et al.'s
// x-drop band, as in NCBI BLAST). The traceback variant records per-cell
// direction bytes inside the same band, so the score-only and traceback
// passes provably agree — which keeps phase 3 (GPU-era score filter) and
// phase 4 (final alignments) consistent across all engines.
#pragma once

#include <cstdint>
#include <span>

#include "bio/pssm.hpp"
#include "blast/types.hpp"

namespace repro::blast {

/// Score and extent of a gapped extension (no traceback).
struct GappedScore {
  std::int32_t score = 0;
  std::uint32_t q_start = 0, q_end = 0;  ///< inclusive
  std::uint32_t s_start = 0, s_end = 0;  ///< inclusive
};

/// Score-only gapped extension from seed (qseed, sseed).
[[nodiscard]] GappedScore gapped_score(const bio::Pssm& pssm,
                                       std::span<const std::uint8_t> subject,
                                       std::uint32_t qseed,
                                       std::uint32_t sseed,
                                       const SearchParams& params);

/// Full gapped extension with traceback. Returns an Alignment with score,
/// coordinates and the edit transcript; bit_score/evalue are left at zero
/// for the caller (results.cpp) to fill in.
[[nodiscard]] Alignment gapped_traceback(const bio::Pssm& pssm,
                                         std::span<const std::uint8_t> subject,
                                         std::uint32_t seq_index,
                                         std::uint32_t qseed,
                                         std::uint32_t sseed,
                                         const SearchParams& params);

}  // namespace repro::blast
