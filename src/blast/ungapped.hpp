// Ungapped x-drop extension and the two-hit trigger.
//
// These scalar routines define the semantics every engine must reproduce:
//
//  * extend_ungapped — from a word hit, extend left and right along the
//    diagonal, keeping the maximal-scoring segment, stopping when the
//    running score drops more than X_u below the best (paper Fig. 8).
//
//  * TwoHitTracker — the lasthit_arr logic of paper Algorithm 1, with the
//    coverage rule made explicit: a hit triggers an extension iff
//      (a) the previous hit on its diagonal is within the window A
//          (or params.one_hit is set), and
//      (b) the hit is not already covered by the previous extension on the
//          diagonal (spos > ext_reach).
//    These are exactly the conditions the fine-grained pipeline evaluates in
//    its filtering kernel (a) and extension kernels (b), which is what makes
//    "output identical to FSA-BLAST" (paper §4.3) provable here.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "bio/pssm.hpp"
#include "blast/types.hpp"

namespace repro::blast {

/// Ungapped x-drop extension of the word hit (qpos, spos). Scores via PSSM.
[[nodiscard]] UngappedExtension extend_ungapped(
    const bio::Pssm& pssm, std::span<const std::uint8_t> subject,
    std::uint32_t seq_index, std::uint32_t qpos, std::uint32_t spos,
    const SearchParams& params);

/// Per-sequence two-hit state over all diagonals (classic lasthit_arr).
/// Reusable across sequences via reset(); allocation is O(max diagonals).
class TwoHitTracker {
 public:
  /// `max_diagonals` must cover query_length + max subject length.
  explicit TwoHitTracker(std::size_t max_diagonals);

  /// Starts a new subject sequence (O(1): epoch trick).
  void reset();

  /// Feeds one hit (column-major order required). Returns true if the hit
  /// triggers an ungapped extension per the rules above; the caller performs
  /// the extension and must then report it via record_extension().
  bool feed(std::uint32_t qpos, std::uint32_t spos,
            std::size_t query_length, const SearchParams& params);

  /// Records the subject-end of the extension just performed for this
  /// diagonal, so later hits covered by it are skipped.
  void record_extension(std::uint32_t qpos, std::uint32_t spos,
                        std::size_t query_length,
                        const UngappedExtension& ext);

 private:
  struct DiagonalState {
    std::uint64_t epoch = 0;
    std::int64_t last_spos = -1;   ///< previous hit position
    std::int64_t ext_reach = -1;   ///< subject end of previous extension
  };

  std::vector<DiagonalState> diagonals_;
  std::uint64_t epoch_ = 0;
};

/// Runs hit detection + two-hit ungapped extension over one subject
/// sequence, appending qualifying extensions (score >= ungapped_cutoff) to
/// `out` and returning counters. This is the reference "critical phases"
/// implementation shared by the CPU baselines.
struct UngappedPhaseCounters {
  std::uint64_t words_scanned = 0;
  std::uint64_t hits = 0;
  std::uint64_t extensions_run = 0;
};

class WordLookup;  // seeding.hpp provides the scan

UngappedPhaseCounters run_ungapped_phase(
    const WordLookup& lookup, const bio::Pssm& pssm,
    std::span<const std::uint8_t> subject, std::uint32_t seq_index,
    const SearchParams& params, TwoHitTracker& tracker,
    std::vector<UngappedExtension>& out);

}  // namespace repro::blast
