// Scalar hit detection: the column-major subject scan of classic BLASTP
// (paper Fig. 3). Used directly by the CPU baselines and as the reference
// oracle for the fine-grained GPU kernels.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "blast/types.hpp"
#include "blast/wordlookup.hpp"

namespace repro::blast {

/// Invokes `sink(qpos, spos)` for every word hit between the query (via its
/// lookup table) and `subject`, in column-major order: ascending subject
/// position, and ascending query position within a column. Returns the
/// number of words scanned.
std::uint64_t scan_subject(
    const WordLookup& lookup, std::span<const std::uint8_t> subject,
    const std::function<void(std::uint32_t qpos, std::uint32_t spos)>& sink);

/// Same scan but driven through the DFA (identical hits; exercised by tests
/// to prove the DFA view equals the flat lookup).
std::uint64_t scan_subject_dfa(
    const Dfa& dfa, std::span<const std::uint8_t> subject,
    const std::function<void(std::uint32_t qpos, std::uint32_t spos)>& sink);

/// Collects all hits of one subject sequence into a vector (testing and
/// small-scale use; engines stream instead).
[[nodiscard]] std::vector<Hit> collect_hits(
    const WordLookup& lookup, std::span<const std::uint8_t> subject,
    std::uint32_t seq_index);

}  // namespace repro::blast
