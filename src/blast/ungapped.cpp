#include "blast/ungapped.hpp"

#include <cassert>

#include "blast/seeding.hpp"
#include "blast/wordlookup.hpp"

namespace repro::blast {

UngappedExtension extend_ungapped(const bio::Pssm& pssm,
                                  std::span<const std::uint8_t> subject,
                                  std::uint32_t seq_index, std::uint32_t qpos,
                                  std::uint32_t spos,
                                  const SearchParams& params) {
  const auto w = static_cast<std::uint32_t>(params.word_length);
  const auto qlen = static_cast<std::uint32_t>(pssm.query_length());
  const auto slen = static_cast<std::uint32_t>(subject.size());
  assert(qpos + w <= qlen && spos + w <= slen);

  // Score of the seed word itself.
  int word_score = 0;
  for (std::uint32_t i = 0; i < w; ++i)
    word_score += pssm.score(qpos + i, subject[spos + i]);

  // Extend right of the word.
  int right_gain = 0;
  std::uint32_t right_offset = 0;  // residues adopted past the word
  {
    int running = 0, best = 0;
    for (std::uint32_t k = 0;
         qpos + w + k < qlen && spos + w + k < slen; ++k) {
      running += pssm.score(qpos + w + k, subject[spos + w + k]);
      if (running > best) {
        best = running;
        right_offset = k + 1;
      }
      if (best - running > params.ungapped_xdrop) break;
    }
    right_gain = best;
  }

  // Extend left of the word.
  int left_gain = 0;
  std::uint32_t left_offset = 0;
  {
    int running = 0, best = 0;
    for (std::uint32_t k = 1; k <= qpos && k <= spos; ++k) {
      running += pssm.score(qpos - k, subject[spos - k]);
      if (running > best) {
        best = running;
        left_offset = k;
      }
      if (best - running > params.ungapped_xdrop) break;
    }
    left_gain = best;
  }

  UngappedExtension ext;
  ext.seq = seq_index;
  ext.q_start = qpos - left_offset;
  ext.s_start = spos - left_offset;
  ext.q_end = qpos + w - 1 + right_offset;
  ext.s_end = spos + w - 1 + right_offset;
  ext.score = word_score + left_gain + right_gain;
  return ext;
}

TwoHitTracker::TwoHitTracker(std::size_t max_diagonals)
    : diagonals_(max_diagonals) {}

void TwoHitTracker::reset() { ++epoch_; }

bool TwoHitTracker::feed(std::uint32_t qpos, std::uint32_t spos,
                         std::size_t query_length,
                         const SearchParams& params) {
  const std::size_t diag =
      static_cast<std::size_t>(static_cast<std::int64_t>(spos) -
                               static_cast<std::int64_t>(qpos) +
                               static_cast<std::int64_t>(query_length) - 1);
  assert(diag < diagonals_.size());
  DiagonalState& state = diagonals_[diag];
  if (state.epoch != epoch_) {
    state.epoch = epoch_;
    state.last_spos = -1;
    state.ext_reach = -1;
  }
  const std::int64_t prev = state.last_spos;
  state.last_spos = spos;
  if (static_cast<std::int64_t>(spos) <= state.ext_reach)
    return false;  // covered by the previous extension on this diagonal
  if (params.one_hit) return true;
  return prev >= 0 && static_cast<std::int64_t>(spos) - prev <=
                          static_cast<std::int64_t>(params.two_hit_window);
}

void TwoHitTracker::record_extension(std::uint32_t qpos, std::uint32_t spos,
                                     std::size_t query_length,
                                     const UngappedExtension& ext) {
  const std::size_t diag =
      static_cast<std::size_t>(static_cast<std::int64_t>(spos) -
                               static_cast<std::int64_t>(qpos) +
                               static_cast<std::int64_t>(query_length) - 1);
  assert(diag < diagonals_.size());
  diagonals_[diag].ext_reach = static_cast<std::int64_t>(ext.s_end);
}

UngappedPhaseCounters run_ungapped_phase(
    const WordLookup& lookup, const bio::Pssm& pssm,
    std::span<const std::uint8_t> subject, std::uint32_t seq_index,
    const SearchParams& params, TwoHitTracker& tracker,
    std::vector<UngappedExtension>& out) {
  UngappedPhaseCounters counters;
  tracker.reset();
  counters.words_scanned = scan_subject(
      lookup, subject, [&](std::uint32_t qpos, std::uint32_t spos) {
        ++counters.hits;
        if (!tracker.feed(qpos, spos, pssm.query_length(), params)) return;
        const UngappedExtension ext = extend_ungapped(
            pssm, subject, seq_index, qpos, spos, params);
        ++counters.extensions_run;
        tracker.record_extension(qpos, spos, pssm.query_length(), ext);
        if (ext.score >= params.ungapped_cutoff) out.push_back(ext);
      });
  return counters;
}

}  // namespace repro::blast
