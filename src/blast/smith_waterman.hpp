// Smith-Waterman: the optimal local-alignment algorithm BLAST approximates
// (paper §2.1). Used as the gold-standard oracle in tests and for
// measuring the heuristic's sensitivity on synthetic homologs.
#pragma once

#include <cstdint>
#include <span>

#include "bio/pssm.hpp"
#include "blast/types.hpp"

namespace repro::blast {

/// Optimal local alignment score of the query (via its PSSM) against
/// `subject` with affine gaps (params.gap_open / gap_extend). O(m*n) time,
/// O(n) space.
[[nodiscard]] int smith_waterman_score(const bio::Pssm& pssm,
                                       std::span<const std::uint8_t> subject,
                                       const SearchParams& params);

/// Full Smith-Waterman with traceback; returns the optimal Alignment
/// (bit_score/evalue left zero). O(m*n) time and space — test-scale only.
[[nodiscard]] Alignment smith_waterman_align(
    const bio::Pssm& pssm, std::span<const std::uint8_t> subject,
    std::uint32_t seq_index, const SearchParams& params);

}  // namespace repro::blast
