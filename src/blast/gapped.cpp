#include "blast/gapped.hpp"

#include <algorithm>
#include <cassert>
#include <climits>
#include <functional>
#include <string>
#include <vector>

namespace repro::blast {

namespace {

constexpr int kNegInf = INT_MIN / 4;

// Direction byte layout for traceback.
enum HSource : std::uint8_t { kDiag = 0, kFromE = 1, kFromF = 2, kStart = 3 };
constexpr std::uint8_t kESrcExtend = 1 << 2;  // E came from E (else from H)
constexpr std::uint8_t kFSrcExtend = 1 << 3;  // F came from F (else from H)

struct HalfResult {
  int score = 0;
  std::uint32_t q_reach = 0;  ///< query residues consumed past the seed
  std::uint32_t s_reach = 0;  ///< subject residues consumed past the seed
  std::string ops;            ///< in sequence order away from the seed
};

/// Reusable per-thread scratch to avoid reallocating DP rows per seed.
struct Scratch {
  std::vector<int> h_prev, f_prev, h_cur, f_cur;
  std::vector<std::uint8_t> dirs;          // all rows, flattened
  std::vector<int> row_lo, row_hi;         // per-row band
  std::vector<std::size_t> row_offset;     // row start in dirs
};

thread_local Scratch tls_scratch;

/// One x-drop half extension. score_at(i, j) gives the substitution score
/// of the i-th query residue vs the j-th subject residue away from the seed
/// (both 1-based). q_avail/s_avail bound i/j.
HalfResult extend_half(const std::function<int(int, int)>& score_at,
                       std::size_t q_avail, std::size_t s_avail,
                       const SearchParams& params, bool want_traceback) {
  HalfResult result;
  if (q_avail == 0 && s_avail == 0) return result;

  const int x = params.gapped_xdrop;
  const int open_cost = params.gap_open + params.gap_extend;
  const int extend_cost = params.gap_extend;

  Scratch& sc = tls_scratch;
  const std::size_t width = s_avail + 2;
  if (sc.h_prev.size() < width) {
    sc.h_prev.resize(width);
    sc.f_prev.resize(width);
    sc.h_cur.resize(width);
    sc.f_cur.resize(width);
  }
  sc.dirs.clear();
  sc.row_lo.clear();
  sc.row_hi.clear();
  sc.row_offset.clear();

  int best = 0, best_i = 0, best_j = 0;

  // Row 0: leading gap in the query (consuming subject residues).
  int lo = 0, hi = 0;
  sc.h_prev[0] = 0;
  sc.f_prev[0] = kNegInf;
  if (want_traceback) {
    sc.row_lo.push_back(0);
    sc.row_offset.push_back(0);
    sc.dirs.push_back(kStart);
  }
  for (int j = 1; j <= static_cast<int>(s_avail); ++j) {
    const int val = -(open_cost + (j - 1) * extend_cost);
    if (val < best - x) break;
    sc.h_prev[static_cast<std::size_t>(j)] = val;
    sc.f_prev[static_cast<std::size_t>(j)] = kNegInf;
    hi = j;
    if (want_traceback)
      sc.dirs.push_back(static_cast<std::uint8_t>(
          kFromE | (j > 1 ? kESrcExtend : 0)));
  }
  if (want_traceback) sc.row_hi.push_back(hi);

  // Subsequent rows.
  for (int i = 1; i <= static_cast<int>(q_avail); ++i) {
    const int prev_lo = lo, prev_hi = hi;
    int new_lo = -1, new_hi = -1;
    int e = kNegInf;         // E(i, j) running along the row
    int h_left = kNegInf;    // H(i, j-1)
    const std::size_t dir_base = sc.dirs.size();
    int row_start_j = prev_lo;  // leftmost cell this row can populate

    for (int j = row_start_j; j <= static_cast<int>(s_avail); ++j) {
      // Candidate values.
      int h_diag = kNegInf;
      if (j == 0) {
        // Leading gap in the subject: H(i,0) via the F chain only.
        const int val = -(open_cost + (i - 1) * extend_cost);
        const int f0 = val;
        const int h0 = val;
        std::uint8_t dir = kFromF;
        if (i > 1) dir |= kFSrcExtend;
        if (h0 >= best - x) {
          sc.h_cur[0] = h0;
          sc.f_cur[0] = f0;
          if (new_lo < 0) new_lo = 0;
          new_hi = 0;
          if (want_traceback) sc.dirs.push_back(dir);
          h_left = h0;
        } else {
          h_left = kNegInf;
          if (new_lo < 0) row_start_j = j + 1;
        }
        e = kNegInf;
        continue;
      }
      if (j - 1 >= prev_lo && j - 1 <= prev_hi)
        h_diag = sc.h_prev[static_cast<std::size_t>(j - 1)] + score_at(i, j);

      const int e_open = h_left == kNegInf ? kNegInf : h_left - open_cost;
      const int e_ext = e == kNegInf ? kNegInf : e - extend_cost;
      const int e_val = std::max(e_open, e_ext);

      int f_open = kNegInf, f_ext = kNegInf;
      if (j >= prev_lo && j <= prev_hi) {
        f_open = sc.h_prev[static_cast<std::size_t>(j)] - open_cost;
        if (sc.f_prev[static_cast<std::size_t>(j)] != kNegInf)
          f_ext = sc.f_prev[static_cast<std::size_t>(j)] - extend_cost;
      }
      const int f_val = std::max(f_open, f_ext);

      int h = std::max({h_diag, e_val, f_val});
      std::uint8_t dir;
      if (h == kNegInf) {
        dir = kStart;
      } else if (h == h_diag) {
        dir = kDiag;
      } else if (h == e_val) {
        dir = kFromE;
      } else {
        dir = kFromF;
      }
      if (e_val != kNegInf && e_val == e_ext) dir |= kESrcExtend;
      if (f_val != kNegInf && f_val == f_ext) dir |= kFSrcExtend;

      const bool alive =
          (h != kNegInf && h >= best - x) ||
          (e_val != kNegInf && e_val >= best - x) ||
          (f_val != kNegInf && f_val >= best - x);

      if (!alive) {
        if (new_lo < 0) {
          // Still hunting for the first live cell of this row.
          h_left = kNegInf;
          e = kNegInf;
          row_start_j = j + 1;
          continue;
        }
        // Past the live region: nothing to the right can revive once we
        // are beyond the previous row's band (no diag/F feed) and the E
        // chain is dead.
        if (j > prev_hi + 1) break;
        h_left = kNegInf;
        e = e_val;
        // Record a dead cell so traceback indexing stays dense.
        sc.h_cur[static_cast<std::size_t>(j)] = kNegInf;
        sc.f_cur[static_cast<std::size_t>(j)] = kNegInf;
        new_hi = j;
        if (want_traceback) sc.dirs.push_back(dir);
        continue;
      }

      if (new_lo < 0) new_lo = j;
      new_hi = j;
      sc.h_cur[static_cast<std::size_t>(j)] = h;
      sc.f_cur[static_cast<std::size_t>(j)] = f_val;
      if (want_traceback) sc.dirs.push_back(dir);
      h_left = h;
      e = e_val;

      if (h > best) {
        best = h;
        best_i = i;
        best_j = j;
      }
    }

    if (new_lo < 0) break;  // row empty: extension exhausted
    lo = new_lo;
    hi = new_hi;
    if (want_traceback) {
      sc.row_lo.push_back(lo);
      sc.row_hi.push_back(hi);
      sc.row_offset.push_back(dir_base + static_cast<std::size_t>(
          lo - row_start_j > 0 ? 0 : 0));
      // dirs for this row start at dir_base and cover [row_start_actual, hi];
      // row_start_actual equals new_lo only if no dead prefix was recorded.
      // We recorded bytes starting at the first *recorded* cell, which is
      // new_lo (dead prefix cells were skipped, dead suffix cells recorded).
      sc.row_offset.back() = dir_base;
    }
    std::swap(sc.h_prev, sc.h_cur);
    std::swap(sc.f_prev, sc.f_cur);
  }

  result.score = best;
  result.q_reach = static_cast<std::uint32_t>(best_i);
  result.s_reach = static_cast<std::uint32_t>(best_j);

  if (want_traceback && (best_i > 0 || best_j > 0)) {
    // Walk direction bytes from (best_i, best_j) back to (0, 0).
    auto dir_at = [&](int i, int j) -> std::uint8_t {
      const std::size_t row = static_cast<std::size_t>(i);
      assert(row < sc.row_lo.size());
      assert(j >= sc.row_lo[row] && j <= sc.row_hi[row]);
      return sc.dirs[sc.row_offset[row] +
                     static_cast<std::size_t>(j - sc.row_lo[row])];
    };
    std::string ops;
    int i = best_i, j = best_j;
    enum class State { H, E, F } state = State::H;
    while (i > 0 || j > 0) {
      const std::uint8_t d = dir_at(i, j);
      switch (state) {
        case State::H:
          switch (d & 0x3) {
            case kDiag:
              ops.push_back('M');
              --i;
              --j;
              break;
            case kFromE:
              state = State::E;
              break;
            case kFromF:
              state = State::F;
              break;
            default:
              assert(false && "traceback hit a start cell prematurely");
              i = 0;
              j = 0;
              break;
          }
          break;
        case State::E:
          ops.push_back('I');
          state = (d & kESrcExtend) ? State::E : State::H;
          --j;
          break;
        case State::F:
          ops.push_back('D');
          state = (d & kFSrcExtend) ? State::F : State::H;
          --i;
          break;
      }
    }
    // Emitted far-end-first; callers want seed-outward order reversed into
    // sequence order, which they assemble themselves. Keep far-first here.
    result.ops = std::move(ops);
  }
  return result;
}

}  // namespace

GappedScore gapped_score(const bio::Pssm& pssm,
                         std::span<const std::uint8_t> subject,
                         std::uint32_t qseed, std::uint32_t sseed,
                         const SearchParams& params) {
  const auto qlen = static_cast<std::uint32_t>(pssm.query_length());
  const auto slen = static_cast<std::uint32_t>(subject.size());
  assert(qseed < qlen && sseed < slen);

  const int seed_score = pssm.score(qseed, subject[sseed]);

  const HalfResult right = extend_half(
      [&](int i, int j) {
        return pssm.score(qseed + static_cast<std::uint32_t>(i),
                          subject[sseed + static_cast<std::uint32_t>(j)]);
      },
      qlen - 1 - qseed, slen - 1 - sseed, params, /*want_traceback=*/false);

  const HalfResult left = extend_half(
      [&](int i, int j) {
        return pssm.score(qseed - static_cast<std::uint32_t>(i),
                          subject[sseed - static_cast<std::uint32_t>(j)]);
      },
      qseed, sseed, params, /*want_traceback=*/false);

  GappedScore out;
  out.score = seed_score + left.score + right.score;
  out.q_start = qseed - left.q_reach;
  out.s_start = sseed - left.s_reach;
  out.q_end = qseed + right.q_reach;
  out.s_end = sseed + right.s_reach;
  return out;
}

Alignment gapped_traceback(const bio::Pssm& pssm,
                           std::span<const std::uint8_t> subject,
                           std::uint32_t seq_index, std::uint32_t qseed,
                           std::uint32_t sseed, const SearchParams& params) {
  const auto qlen = static_cast<std::uint32_t>(pssm.query_length());
  const auto slen = static_cast<std::uint32_t>(subject.size());
  assert(qseed < qlen && sseed < slen);

  const int seed_score = pssm.score(qseed, subject[sseed]);

  const HalfResult right = extend_half(
      [&](int i, int j) {
        return pssm.score(qseed + static_cast<std::uint32_t>(i),
                          subject[sseed + static_cast<std::uint32_t>(j)]);
      },
      qlen - 1 - qseed, slen - 1 - sseed, params, /*want_traceback=*/true);
  // right.ops is emitted far-end first: reversing yields seed->right order.
  std::string right_ops(right.ops.rbegin(), right.ops.rend());

  const HalfResult left = extend_half(
      [&](int i, int j) {
        return pssm.score(qseed - static_cast<std::uint32_t>(i),
                          subject[sseed - static_cast<std::uint32_t>(j)]);
      },
      qseed, sseed, params, /*want_traceback=*/true);
  // left.ops is emitted far-end first, and for the left half "far end" is
  // the leftmost (sequence-order first) residue — already in order.
  const std::string& left_ops = left.ops;

  Alignment alignment;
  alignment.seq = seq_index;
  alignment.score = seed_score + left.score + right.score;
  alignment.q_start = qseed - left.q_reach;
  alignment.s_start = sseed - left.s_reach;
  alignment.q_end = qseed + right.q_reach;
  alignment.s_end = sseed + right.s_reach;
  alignment.ops.reserve(left_ops.size() + 1 + right_ops.size());
  alignment.ops += left_ops;
  alignment.ops.push_back('M');
  alignment.ops += right_ops;
  return alignment;
}

}  // namespace repro::blast
