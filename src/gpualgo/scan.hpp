// Block/grid prefix scan expressed as SIMT kernels (the CUB-scan stand-in
// of DESIGN.md §1). Used to turn per-bin hit counts into bin offsets during
// hit assembling.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "simt/engine.hpp"

namespace repro::gpualgo {

/// Exclusive plus-scan of `input`, executed on the SIMT engine.
/// Returns input.size() + 1 values; the last is the total.
[[nodiscard]] std::vector<std::uint32_t> exclusive_scan_device(
    simt::Engine& engine, std::span<const std::uint32_t> input,
    const std::string& kernel_name = "scan");

}  // namespace repro::gpualgo
