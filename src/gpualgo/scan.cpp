#include "gpualgo/scan.hpp"

#include <algorithm>

#include "simt/device_buffer.hpp"

namespace repro::gpualgo {

namespace {

constexpr int kBlockThreads = 128;
constexpr int kWarpsPerBlock = kBlockThreads / simt::kWarpSize;

/// One scan level: tiles of kBlockThreads elements are scanned per block
/// (warp scan + cross-warp combine through shared memory); per-tile totals
/// land in `tile_sums`.
void scan_tiles(simt::Engine& engine, std::span<const std::uint32_t> input,
                std::span<std::uint32_t> output,
                std::span<std::uint32_t> tile_sums,
                const std::string& kernel_name) {
  const auto n = static_cast<std::uint32_t>(input.size());
  const int num_tiles = static_cast<int>(tile_sums.size());

  simt::LaunchConfig config;
  config.name = kernel_name;
  config.grid_blocks = num_tiles;
  config.block_threads = kBlockThreads;
  config.regs_per_thread = 16;

  engine.launch(config, [&](simt::BlockCtx& ctx) {
    auto warp_sums = ctx.shared().alloc<std::uint32_t>(kWarpsPerBlock);
    auto tile_vals = ctx.shared().alloc<std::uint32_t>(kBlockThreads);
    const auto tile_base = static_cast<std::uint32_t>(ctx.block_id()) *
                           kBlockThreads;

    // Region 1: each warp loads and inclusive-scans its 32 elements.
    ctx.par([&](simt::WarpExec& w) {
      simt::LaneArray<std::uint32_t> idx{};
      simt::LaneArray<std::uint32_t> vals{};
      w.vec([&](int lane) {
        idx[static_cast<std::size_t>(lane)] =
            tile_base +
            static_cast<std::uint32_t>(w.warp_in_block() * simt::kWarpSize +
                                       lane);
      });
      w.if_then(
          [&](int lane) { return idx[static_cast<std::size_t>(lane)] < n; },
          [&] { w.gather(input.data(), idx, vals); });
      w.vec([&](int lane) {
        if (idx[static_cast<std::size_t>(lane)] >= n)
          vals[static_cast<std::size_t>(lane)] = 0;
      });
      w.window_inclusive_scan(vals, simt::kWarpSize);
      // Stash the scanned values and the warp total.
      simt::LaneArray<std::uint32_t> local{};
      w.vec([&](int lane) {
        local[static_cast<std::size_t>(lane)] = static_cast<std::uint32_t>(
            w.warp_in_block() * simt::kWarpSize + lane);
      });
      w.sh_scatter<std::uint32_t, std::uint32_t>(tile_vals, local, vals);
      w.if_then([&](int lane) { return lane == simt::kWarpSize - 1; }, [&] {
        simt::LaneArray<std::uint32_t> widx{};
        simt::LaneArray<std::uint32_t> wval{};
        w.vec([&](int lane) {
          widx[static_cast<std::size_t>(lane)] =
              static_cast<std::uint32_t>(w.warp_in_block());
          wval[static_cast<std::size_t>(lane)] =
              vals[static_cast<std::size_t>(lane)];
        });
        w.sh_scatter<std::uint32_t, std::uint32_t>(warp_sums, widx, wval);
      });
    });

    // Region 2: warp 0 scans the per-warp totals (exclusive).
    ctx.par([&](simt::WarpExec& w) {
      if (w.warp_in_block() != 0) return;
      simt::LaneArray<std::uint32_t> idx{};
      simt::LaneArray<std::uint32_t> sums{};
      w.vec([&](int lane) {
        idx[static_cast<std::size_t>(lane)] = static_cast<std::uint32_t>(
            lane < kWarpsPerBlock ? lane : kWarpsPerBlock - 1);
      });
      w.sh_gather<std::uint32_t, std::uint32_t>(warp_sums, idx, sums);
      w.vec([&](int lane) {
        if (lane >= kWarpsPerBlock) sums[static_cast<std::size_t>(lane)] = 0;
      });
      w.window_inclusive_scan(sums, simt::kWarpSize);
      w.if_then([&](int lane) { return lane < kWarpsPerBlock; }, [&] {
        w.sh_scatter<std::uint32_t, std::uint32_t>(warp_sums, idx, sums);
      });
    });

    // Region 3: convert to exclusive, add warp offsets, write out, and the
    // last thread records the tile total.
    ctx.par([&](simt::WarpExec& w) {
      simt::LaneArray<std::uint32_t> local{};
      simt::LaneArray<std::uint32_t> vals{};
      simt::LaneArray<std::uint32_t> orig{};
      simt::LaneArray<std::uint32_t> gidx{};
      w.vec([&](int lane) {
        local[static_cast<std::size_t>(lane)] = static_cast<std::uint32_t>(
            w.warp_in_block() * simt::kWarpSize + lane);
        gidx[static_cast<std::size_t>(lane)] =
            tile_base + local[static_cast<std::size_t>(lane)];
      });
      w.sh_gather<std::uint32_t, std::uint32_t>(tile_vals, local, vals);
      w.if_then(
          [&](int lane) { return gidx[static_cast<std::size_t>(lane)] < n; },
          [&] { w.gather(input.data(), gidx, orig); });
      // Warp offset = inclusive sum of preceding warps.
      simt::LaneArray<std::uint32_t> warp_off{};
      if (w.warp_in_block() > 0) {
        simt::LaneArray<std::uint32_t> widx{};
        w.vec([&](int lane) {
          widx[static_cast<std::size_t>(lane)] =
              static_cast<std::uint32_t>(w.warp_in_block() - 1);
        });
        w.sh_gather<std::uint32_t, std::uint32_t>(warp_sums, widx, warp_off);
      }
      w.vec([&](int lane) {
        const auto l = static_cast<std::size_t>(lane);
        // exclusive = inclusive - original element
        vals[l] = vals[l] - (gidx[l] < n ? orig[l] : 0) + warp_off[l];
      });
      w.if_then(
          [&](int lane) { return gidx[static_cast<std::size_t>(lane)] < n; },
          [&] { w.scatter(output.data(), gidx, vals); });
      // Tile total: last warp, last lane.
      if (w.warp_in_block() == kWarpsPerBlock - 1) {
        w.if_then([&](int lane) { return lane == simt::kWarpSize - 1; }, [&] {
          simt::LaneArray<std::uint32_t> tidx{};
          simt::LaneArray<std::uint32_t> total{};
          w.vec([&](int lane) {
            tidx[static_cast<std::size_t>(lane)] =
                static_cast<std::uint32_t>(ctx.block_id());
            const auto l = static_cast<std::size_t>(lane);
            total[l] = vals[l] + (gidx[l] < n ? orig[l] : 0);
          });
          w.scatter(tile_sums.data(), tidx, total);
        });
      }
    });
  });
}

}  // namespace

std::vector<std::uint32_t> exclusive_scan_device(
    simt::Engine& engine, std::span<const std::uint32_t> input,
    const std::string& kernel_name) {
  std::vector<std::uint32_t> out(input.size() + 1, 0);
  if (input.empty()) return out;

  // Kernel-visible buffers must be device allocations: device-code access
  // to a plain host vector is what simtcheck's memcheck flags (an invalid
  // pointer on real hardware). Inputs already inside a device buffer pass
  // through untouched — keeping whatever (mis)alignment the caller chose —
  // and anything else is staged, modeling the implicit H2D copy.
  std::span<const std::uint32_t> in = input;
  simt::DeviceVector<std::uint32_t> staged;
  if (!simt::is_device_address(input.data(), input.size_bytes())) {
    staged.assign(input.begin(), input.end());
    in = {staged.data(), staged.size()};
  }
  const int num_tiles =
      static_cast<int>((input.size() + kBlockThreads - 1) / kBlockThreads);
  simt::DeviceVector<std::uint32_t> tile_sums(
      static_cast<std::size_t>(num_tiles));
  simt::DeviceVector<std::uint32_t> scanned(input.size());
  scan_tiles(engine, in, {scanned.data(), scanned.size()},
             {tile_sums.data(), tile_sums.size()}, kernel_name);

  // Scan the per-tile totals (recursively on the device for large inputs,
  // directly for the final small level).
  std::vector<std::uint32_t> tile_offsets;
  if (tile_sums.size() > 1) {
    tile_offsets = exclusive_scan_device(
        engine, {tile_sums.data(), tile_sums.size()}, kernel_name);
  } else {
    tile_offsets = {0, tile_sums[0]};
  }

  for (std::size_t i = 0; i < input.size(); ++i)
    out[i] = scanned[i] + tile_offsets[i / kBlockThreads];
  out[input.size()] = tile_offsets.back();
  return out;
}

}  // namespace repro::gpualgo
