// Segmented sort of 64-bit keys, expressed as a SIMT kernel: one block per
// segment running an in-place bitonic network (the ModernGPU segmented-sort
// stand-in of DESIGN.md §1). cuBLASTP sorts each hit bin with this; the
// packed (sequence | diagonal | subject-position) key (paper Fig. 7) makes
// one ascending sort order the hits for the extension kernels.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "simt/engine.hpp"

namespace repro::gpualgo {

/// Sentinel used to pad segments to a power of two; sorts to the end.
inline constexpr std::uint64_t kSortPad = ~0ULL;

/// Next power of two (>= 1).
[[nodiscard]] constexpr std::uint32_t next_pow2(std::uint32_t n) {
  std::uint32_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Sorts each segment of `data` ascending. seg_offsets has num_segments+1
/// entries; each segment's length must be a power of two (pad with
/// kSortPad). Segments of length <= 1 are untouched.
void segmented_sort_u64(simt::Engine& engine, std::span<std::uint64_t> data,
                        std::span<const std::uint32_t> seg_offsets,
                        const std::string& kernel_name = "hit_sort");

}  // namespace repro::gpualgo
