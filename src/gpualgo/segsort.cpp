#include "gpualgo/segsort.hpp"

#include <stdexcept>

namespace repro::gpualgo {

namespace {

constexpr int kBlockThreads = 128;

/// Segments up to this many elements are staged in shared memory (32 kB of
/// the 48 kB budget), sorted there, and written back — the ModernGPU
/// approach. Larger segments fall back to compare-exchange in global
/// memory.
constexpr std::uint32_t kMaxSharedElems = 4096;

using simt::BlockCtx;
using simt::LaneArray;
using simt::WarpExec;

/// One bitonic (k, j) pass over `n` elements accessed through `get`/`put`.
template <class Get, class Put>
void bitonic_pass(BlockCtx& ctx, std::uint32_t n, std::uint32_t k,
                  std::uint32_t j, Get&& get, Put&& put) {
  const std::uint32_t pairs = n / 2;
  ctx.par([&](WarpExec& w) {
    LaneArray<std::uint32_t> l{};
    w.vec([&](int lane) {
      l[lane] = static_cast<std::uint32_t>(w.warp_in_block() *
                                               simt::kWarpSize +
                                           lane);
    });
    w.loop_while(
        [&](int lane) { return l[lane] < pairs; },
        [&] {
          LaneArray<std::uint32_t> i{};
          LaneArray<std::uint32_t> partner{};
          LaneArray<std::uint64_t> a{};
          LaneArray<std::uint64_t> b{};
          w.vec([&](int lane) {
            const auto s = static_cast<std::size_t>(lane);
            // Expand leader index: insert a 0 bit at position log2(j).
            const std::uint32_t low = l[s] & (j - 1);
            const std::uint32_t high = (l[s] & ~(j - 1)) << 1;
            i[s] = high | low;
            partner[s] = i[s] | j;
          });
          get(w, i, a);
          get(w, partner, b);
          w.vec([&](int lane) {
            const auto s = static_cast<std::size_t>(lane);
            const bool ascending = (i[s] & k) == 0;
            if ((a[s] > b[s]) == ascending) std::swap(a[s], b[s]);
          });
          put(w, i, a);
          put(w, partner, b);
          w.vec([&](int lane) { l[lane] += kBlockThreads; });
        });
  });
}

/// Cooperative copy between global and shared.
void copy_seg(BlockCtx& ctx, std::uint32_t n, std::uint64_t* global,
              std::span<std::uint64_t> shared, bool to_shared) {
  ctx.par([&](WarpExec& w) {
    LaneArray<std::uint32_t> i{};
    w.vec([&](int lane) {
      i[lane] = static_cast<std::uint32_t>(w.warp_in_block() *
                                               simt::kWarpSize +
                                           lane);
    });
    w.loop_while([&](int lane) { return i[lane] < n; }, [&] {
      LaneArray<std::uint64_t> v{};
      if (to_shared) {
        w.gather(global, i, v);
        w.sh_scatter(shared, i, v);
      } else {
        w.sh_gather<std::uint64_t, std::uint32_t>(shared, i, v);
        w.scatter(global, i, v);
      }
      w.vec([&](int lane) { i[lane] += kBlockThreads; });
    });
  });
}

}  // namespace

void segmented_sort_u64(simt::Engine& engine, std::span<std::uint64_t> data,
                        std::span<const std::uint32_t> seg_offsets,
                        const std::string& kernel_name) {
  if (seg_offsets.size() < 2) return;
  const int num_segments = static_cast<int>(seg_offsets.size() - 1);

  simt::LaunchConfig config;
  config.name = kernel_name;
  config.grid_blocks = num_segments;
  config.block_threads = kBlockThreads;
  config.regs_per_thread = 24;

  engine.launch(config, [&](BlockCtx& ctx) {
    const std::uint32_t seg_begin =
        seg_offsets[static_cast<std::size_t>(ctx.block_id())];
    const std::uint32_t seg_end =
        seg_offsets[static_cast<std::size_t>(ctx.block_id()) + 1];
    const std::uint32_t n = seg_end - seg_begin;
    if (n <= 1) return;
    if ((n & (n - 1)) != 0)
      throw std::invalid_argument(
          "segmented_sort_u64: segment length must be a power of two");

    std::uint64_t* seg = data.data() + seg_begin;

    if (n <= kMaxSharedElems) {
      // Stage the segment in shared memory and sort there.
      auto buffer = ctx.shared().alloc<std::uint64_t>(n);
      copy_seg(ctx, n, seg, buffer, /*to_shared=*/true);
      auto get = [&](WarpExec& w, const LaneArray<std::uint32_t>& idx,
                     LaneArray<std::uint64_t>& out) {
        w.sh_gather<std::uint64_t, std::uint32_t>(buffer, idx, out);
      };
      auto put = [&](WarpExec& w, const LaneArray<std::uint32_t>& idx,
                     const LaneArray<std::uint64_t>& vals) {
        w.sh_scatter<std::uint64_t, std::uint32_t>(buffer, idx, vals);
      };
      for (std::uint32_t k = 2; k <= n; k <<= 1)
        for (std::uint32_t j = k >> 1; j >= 1; j >>= 1)
          bitonic_pass(ctx, n, k, j, get, put);
      copy_seg(ctx, n, seg, buffer, /*to_shared=*/false);
    } else {
      // Oversized segment: sort in place in global memory.
      auto get = [&](WarpExec& w, const LaneArray<std::uint32_t>& idx,
                     LaneArray<std::uint64_t>& out) {
        w.gather(seg, idx, out);
      };
      auto put = [&](WarpExec& w, const LaneArray<std::uint32_t>& idx,
                     const LaneArray<std::uint64_t>& vals) {
        w.scatter(seg, idx, vals);
      };
      for (std::uint32_t k = 2; k <= n; k <<= 1)
        for (std::uint32_t j = k >> 1; j >= 1; j >>= 1)
          bitonic_pass(ctx, n, k, j, get, put);
    }
  });
}

}  // namespace repro::gpualgo
