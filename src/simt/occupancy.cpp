#include "simt/occupancy.hpp"

#include <algorithm>

namespace repro::simt {

OccupancyResult compute_occupancy(const DeviceSpec& spec, int block_threads,
                                  std::size_t shared_bytes,
                                  int regs_per_thread) {
  OccupancyResult out;
  if (block_threads <= 0 || block_threads > spec.max_threads_per_block ||
      shared_bytes > spec.shared_mem_per_block) {
    out.limiter = "launch-invalid";
    return out;
  }

  int limit = spec.max_blocks_per_sm;
  const char* limiter = "block-slots";

  const int by_threads = spec.max_threads_per_sm / block_threads;
  if (by_threads < limit) {
    limit = by_threads;
    limiter = "threads";
  }

  if (shared_bytes > 0) {
    const int by_shared =
        static_cast<int>(spec.shared_mem_per_sm / shared_bytes);
    if (by_shared < limit) {
      limit = by_shared;
      limiter = "shared-memory";
    }
  }

  if (regs_per_thread > 0) {
    const int by_regs =
        spec.registers_per_sm / (regs_per_thread * block_threads);
    if (by_regs < limit) {
      limit = by_regs;
      limiter = "registers";
    }
  }

  out.blocks_per_sm = std::max(0, limit);
  out.active_threads_per_sm = out.blocks_per_sm * block_threads;
  out.occupancy = static_cast<double>(out.active_threads_per_sm) /
                  static_cast<double>(spec.max_threads_per_sm);
  out.limiter = out.blocks_per_sm == 0 ? "does-not-fit" : limiter;
  return out;
}

}  // namespace repro::simt
