#include "simt/metrics.hpp"

#include <algorithm>

namespace repro::simt {

KernelStats& KernelStats::operator+=(const KernelStats& other) {
  vec_ops += other.vec_ops;
  active_lane_sum += other.active_lane_sum;
  ld_requests += other.ld_requests;
  ld_bytes_requested += other.ld_bytes_requested;
  ld_transactions += other.ld_transactions;
  st_requests += other.st_requests;
  st_bytes_requested += other.st_bytes_requested;
  st_transactions += other.st_transactions;
  rocache_hits += other.rocache_hits;
  rocache_misses += other.rocache_misses;
  shared_ops += other.shared_ops;
  shared_conflict_passes += other.shared_conflict_passes;
  atomic_ops += other.atomic_ops;
  atomic_serial_passes += other.atomic_serial_passes;
  simtcheck_hazards += other.simtcheck_hazards;
  num_blocks += other.num_blocks;
  shared_bytes = std::max(shared_bytes, other.shared_bytes);
  return *this;
}

void KernelStats::merge(const KernelStats& other) {
  *this += other;
  block_threads = other.block_threads;
  regs_per_thread = other.regs_per_thread;
  // Weight occupancy by block count so repeated launches average sensibly.
  if (num_blocks > 0) {
    const double prev_blocks =
        static_cast<double>(num_blocks - other.num_blocks);
    occupancy = (occupancy * prev_blocks +
                 other.occupancy * static_cast<double>(other.num_blocks)) /
                static_cast<double>(num_blocks);
  }
  time_ms += other.time_ms;
}

void ProfileRegistry::add(const KernelStats& stats) {
  auto [it, inserted] = kernels_.try_emplace(stats.name, stats);
  if (!inserted) it->second.merge(stats);
}

ProfileRegistry ProfileRegistry::diff(const ProfileRegistry& baseline) const {
  ProfileRegistry delta;
  for (const auto& [name, after] : kernels_) {
    if (!baseline.has(name)) {
      // Same no-work drop as below, so a zero-byte transfer is absent from
      // the delta whether or not the baseline ever saw the kernel — a
      // fresh engine's first search and a warm session's Nth search
      // produce the same kernel set for the same query.
      const bool saw_work = after.num_blocks != 0 || after.vec_ops != 0 ||
                            after.st_bytes_requested != 0 ||
                            after.time_ms != 0.0;
      if (saw_work) delta.kernels_.emplace(name, after);
      continue;
    }
    const KernelStats& before = baseline.at(name);
    KernelStats d = after;
    d.vec_ops -= before.vec_ops;
    d.active_lane_sum -= before.active_lane_sum;
    d.ld_requests -= before.ld_requests;
    d.ld_bytes_requested -= before.ld_bytes_requested;
    d.ld_transactions -= before.ld_transactions;
    d.st_requests -= before.st_requests;
    d.st_bytes_requested -= before.st_bytes_requested;
    d.st_transactions -= before.st_transactions;
    d.rocache_hits -= before.rocache_hits;
    d.rocache_misses -= before.rocache_misses;
    d.shared_ops -= before.shared_ops;
    d.shared_conflict_passes -= before.shared_conflict_passes;
    d.atomic_ops -= before.atomic_ops;
    d.atomic_serial_passes -= before.atomic_serial_passes;
    d.simtcheck_hazards -= before.simtcheck_hazards;
    d.num_blocks -= before.num_blocks;
    d.time_ms -= before.time_ms;
    // occupancy * num_blocks is additive under merge()'s weighting, so the
    // snapshot-window average is recoverable exactly.
    if (d.num_blocks > 0)
      d.occupancy =
          (after.occupancy * static_cast<double>(after.num_blocks) -
           before.occupancy * static_cast<double>(before.num_blocks)) /
          static_cast<double>(d.num_blocks);
    const bool saw_work = d.num_blocks != 0 || d.vec_ops != 0 ||
                          d.st_bytes_requested != 0 || d.time_ms != 0.0;
    if (saw_work) delta.kernels_.emplace(name, std::move(d));
  }
  return delta;
}

double ProfileRegistry::total_time_ms() const {
  double total = 0.0;
  for (const auto& [name, stats] : kernels_) total += stats.time_ms;
  return total;
}

}  // namespace repro::simt
