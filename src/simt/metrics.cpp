#include "simt/metrics.hpp"

#include <algorithm>

namespace repro::simt {

KernelStats& KernelStats::operator+=(const KernelStats& other) {
  vec_ops += other.vec_ops;
  active_lane_sum += other.active_lane_sum;
  ld_requests += other.ld_requests;
  ld_bytes_requested += other.ld_bytes_requested;
  ld_transactions += other.ld_transactions;
  st_requests += other.st_requests;
  st_bytes_requested += other.st_bytes_requested;
  st_transactions += other.st_transactions;
  rocache_hits += other.rocache_hits;
  rocache_misses += other.rocache_misses;
  shared_ops += other.shared_ops;
  shared_conflict_passes += other.shared_conflict_passes;
  atomic_ops += other.atomic_ops;
  atomic_serial_passes += other.atomic_serial_passes;
  simtcheck_hazards += other.simtcheck_hazards;
  num_blocks += other.num_blocks;
  shared_bytes = std::max(shared_bytes, other.shared_bytes);
  return *this;
}

void KernelStats::merge(const KernelStats& other) {
  *this += other;
  block_threads = other.block_threads;
  regs_per_thread = other.regs_per_thread;
  // Weight occupancy by block count so repeated launches average sensibly.
  if (num_blocks > 0) {
    const double prev_blocks =
        static_cast<double>(num_blocks - other.num_blocks);
    occupancy = (occupancy * prev_blocks +
                 other.occupancy * static_cast<double>(other.num_blocks)) /
                static_cast<double>(num_blocks);
  }
  time_ms += other.time_ms;
}

void ProfileRegistry::add(const KernelStats& stats) {
  auto [it, inserted] = kernels_.try_emplace(stats.name, stats);
  if (!inserted) it->second.merge(stats);
}

double ProfileRegistry::total_time_ms() const {
  double total = 0.0;
  for (const auto& [name, stats] : kernels_) total += stats.time_ms;
  return total;
}

}  // namespace repro::simt
