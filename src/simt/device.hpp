// Device specification for the SIMT execution engine.
//
// Defaults model the NVIDIA Tesla K20c (Kepler GK110) the paper evaluates
// on: 13 SMs at 706 MHz, 2048 resident threads and 48 kB of shared memory
// per SM, a 48 kB read-only data cache, and PCIe gen2 transfers.
#pragma once

#include <cstddef>

namespace repro::simt {

inline constexpr int kWarpSize = 32;

struct DeviceSpec {
  const char* name = "K20c-sim";
  int num_sms = 13;
  double clock_ghz = 0.706;
  int max_threads_per_sm = 2048;
  int max_blocks_per_sm = 16;
  std::size_t shared_mem_per_sm = 48 * 1024;
  std::size_t shared_mem_per_block = 48 * 1024;
  int registers_per_sm = 65536;
  int max_threads_per_block = 1024;
  std::size_t readonly_cache_bytes = 48 * 1024;
  std::size_t memory_transaction_bytes = 128;
  double pcie_gbytes_per_sec = 6.0;  ///< effective H2D/D2H bandwidth
};

}  // namespace repro::simt
