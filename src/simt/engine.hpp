// Kernel launching: grids of blocks of warps, executed deterministically.
//
// A kernel is a function of BlockCtx. Within a block, parallel regions are
// expressed with BlockCtx::par(...), which runs the region for every warp
// of the block; consecutive par() calls are separated by an implicit
// __syncthreads() barrier (warps of a region complete before the next
// region starts), which is exactly the structure block-cooperative GPU
// algorithms (e.g. the segmented bitonic sort) need.
//
// Kernels and regions are taken as template parameters, not std::function:
// launch() and par() sit on the hot path of every simulated instruction, so
// the callable must be inlinable and must not allocate. The non-template
// bookkeeping (validation, occupancy, cost model, profile registry) lives
// in engine.cpp behind small helpers.
//
// Execution modes:
//  - serial (workers == 1, the default): blocks run in grid order 0..N-1,
//    exactly as the original engine did.
//  - SM-sharded parallel (set_workers(n > 1)): worker w owns the SMs
//    {s : s % num_workers == w} and runs each owned SM's blocks
//    (b = s, s + num_sms, s + 2*num_sms, ...) in increasing order. Because
//    a block's SM assignment is b % num_sms in both modes, every per-SM
//    read-only cache observes the same access sequence as serial execution,
//    and each worker accumulates into a private KernelStats shard that is
//    merged deterministically (in shard order) after the join — so metrics
//    and results are bit-identical for any worker count.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "simt/cost_model.hpp"
#include "simt/device.hpp"
#include "simt/metrics.hpp"
#include "simt/occupancy.hpp"
#include "simt/rocache.hpp"
#include "simt/shared_memory.hpp"
#include "simt/simtcheck.hpp"
#include "simt/warp.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace repro::simt {

struct LaunchConfig {
  std::string name;
  int grid_blocks = 1;
  int block_threads = 128;   ///< must be a positive multiple of 32
  int regs_per_thread = 32;  ///< declared estimate, feeds occupancy
};

/// Device-layer failure (transfer or launch) — the software analogue of a
/// nonzero cudaError_t. Kept simt-local so the core pipeline can translate
/// it into its own SearchError taxonomy; allocation failures surface as
/// std::bad_alloc from DeviceAllocator, matching cudaMalloc semantics.
class DeviceError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Execution context of one block.
class BlockCtx {
 public:
  BlockCtx(KernelStats& stats, ReadOnlyCache* rocache, int block_id,
           int grid_blocks, int warps_per_block, std::size_t shared_capacity,
           BlockChecker* check = nullptr)
      : stats_(&stats),
        rocache_(rocache),
        block_id_(block_id),
        grid_blocks_(grid_blocks),
        warps_per_block_(warps_per_block),
        shared_(shared_capacity),
        check_(check) {
    if (check_ != nullptr) {
      check_->attach_shared(shared_.base(), shared_.capacity());
      shared_.set_checker(check_);
    }
  }

  [[nodiscard]] int block_id() const { return block_id_; }
  [[nodiscard]] int grid_blocks() const { return grid_blocks_; }
  [[nodiscard]] int warps_per_block() const { return warps_per_block_; }
  [[nodiscard]] SharedMemory& shared() { return shared_; }

  /// Runs `region` for every warp of the block, then joins (barrier).
  /// With the hazard analyzer attached, each region is one barrier epoch
  /// and every warp's mask is checked at the implicit barrier (synccheck).
  template <class Region>
  void par(Region&& region) {
    if (check_ != nullptr) check_->begin_region();
    for (int w = 0; w < warps_per_block_; ++w) {
      WarpExec warp(*stats_, rocache_, block_id_, w, warps_per_block_,
                    grid_blocks_, check_);
      region(warp);
      if (check_ != nullptr) check_->on_barrier(w, warp.active_mask());
    }
  }

 private:
  KernelStats* stats_;
  ReadOnlyCache* rocache_;
  int block_id_;
  int grid_blocks_;
  int warps_per_block_;
  SharedMemory shared_;
  BlockChecker* check_;
};

class Engine {
 public:
  explicit Engine(DeviceSpec spec = {}, CostModel cost = {});

  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }
  [[nodiscard]] const CostModel& cost_model() const { return cost_; }

  /// Enables/disables the read-only cache model (paper Fig. 17 toggle).
  void set_readonly_cache_enabled(bool enabled);
  [[nodiscard]] bool readonly_cache_enabled() const {
    return rocache_enabled_;
  }

  /// Sets the number of host worker threads used to execute blocks.
  /// Clamped to [1, num_sms] — SMs are the sharding unit, so more workers
  /// than SMs cannot help. 1 (the default) keeps the original serial walk.
  /// Any value produces bit-identical metrics and results.
  void set_workers(int workers);
  [[nodiscard]] int workers() const { return workers_; }

  /// Enables the simtcheck hazard analyzer (racecheck/synccheck/memcheck/
  /// initcheck; see simtcheck.hpp). Defaults to the REPRO_SIMTCHECK
  /// environment toggle. Enabling also turns on the sticky process-wide
  /// device-shadow switch so allocations made from here on carry initcheck
  /// definedness state (allocations that predate it are grandfathered
  /// all-defined). Disabled, instrumentation is one predictable branch per
  /// op and every metric stays bit-identical.
  void set_simtcheck_enabled(bool enabled) {
    simtcheck_enabled_ = enabled;
    if (enabled) set_device_shadow_enabled(true);
  }
  [[nodiscard]] bool simtcheck_enabled() const { return simtcheck_enabled_; }

  /// Hazards accumulated across every checked launch of this engine.
  [[nodiscard]] const HazardReport& hazards() const { return hazards_; }
  void clear_hazards() { hazards_.clear(); }

  /// Caller-owned cooperative cancel flag (null = none, the default). When
  /// it reads true mid-launch, remaining blocks/shards of the launch are
  /// skipped — the launch returns partial stats and the caller is expected
  /// to abort the query at its next cancellation checkpoint. A flag that
  /// never fires leaves every result and metric bit-identical. The session
  /// layer installs the active request's flag around each query so
  /// service-side cancellation reaches shard granularity.
  void set_cancel_flag(const std::atomic<bool>* flag) { cancel_flag_ = flag; }
  [[nodiscard]] const std::atomic<bool>* cancel_flag() const {
    return cancel_flag_;
  }

  /// Launches a kernel and returns its measured stats (time filled in by
  /// the cost model, occupancy from the launch shape and the shared-memory
  /// high-water mark). Also accumulates into the profile registry.
  template <class Kernel>
  KernelStats launch(const LaunchConfig& config, Kernel&& kernel) {
    const int warps_per_block = validate_launch(config);
    // One span per kernel launch; block count / occupancy / modeled ms are
    // attached after the cost model runs. Disabled tracing is the single
    // relaxed-load branch inside the TraceSpan constructor.
    util::TraceSpan span(config.name, "kernel");
    KernelStats stats = begin_stats(config);
    std::size_t shared_high_water = 0;

    // Opt-in hazard analyzer: one slot per block so any worker schedule
    // produces the same report (merged in block-id order in finalize()).
    std::unique_ptr<LaunchChecker> checker;
    if (simtcheck_enabled_)
      checker =
          std::make_unique<LaunchChecker>(config.name, config.grid_blocks);

    const int shards = shard_count(config.grid_blocks);
    if (shards <= 1) {
      for (int b = 0; b < config.grid_blocks; ++b) {
        if (cancel_flag_ != nullptr &&
            cancel_flag_->load(std::memory_order_acquire))
          break;  // partial stats; the caller aborts at its next checkpoint
        // Round-robin block -> SM assignment for the read-only cache model.
        ReadOnlyCache* cache =
            rocache_enabled_
                ? &sm_caches_[static_cast<std::size_t>(b % spec_.num_sms)]
                : nullptr;
        BlockCtx block(stats, cache, b, config.grid_blocks, warps_per_block,
                       spec_.shared_mem_per_block,
                       checker ? &checker->block(b) : nullptr);
        kernel(block);
        shared_high_water =
            std::max(shared_high_water, block.shared().high_water());
      }
    } else {
      // Each worker owns a disjoint set of SMs and therefore a disjoint set
      // of blocks and caches; stats go to a private shard. Kernels may still
      // share global buffers across blocks only through WarpExec's global
      // atomics, which use real std::atomic RMWs.
      std::vector<KernelStats> shard_stats(static_cast<std::size_t>(shards));
      std::vector<std::size_t> shard_high(static_cast<std::size_t>(shards), 0);
      pool_->run_shards(
          static_cast<std::size_t>(shards), [&](std::size_t shard) {
            util::TraceSpan shard_span;
            if (util::trace_enabled()) {
              shard_span.open(config.name + "/shard", "simt.shard");
              shard_span.arg("shard", static_cast<std::uint64_t>(shard));
            }
            KernelStats& local = shard_stats[shard];
            std::size_t high = 0;
            for (int sm = static_cast<int>(shard); sm < spec_.num_sms;
                 sm += shards) {
              ReadOnlyCache* cache =
                  rocache_enabled_
                      ? &sm_caches_[static_cast<std::size_t>(sm)]
                      : nullptr;
              for (int b = sm; b < config.grid_blocks; b += spec_.num_sms) {
                BlockCtx block(local, cache, b, config.grid_blocks,
                               warps_per_block, spec_.shared_mem_per_block,
                               checker ? &checker->block(b) : nullptr);
                kernel(block);
                high = std::max(high, block.shared().high_water());
              }
            }
            shard_high[shard] = high;
          },
          cancel_flag_);
      // Deterministic merge: shard order is fixed and every counter is a
      // sum (or max), so totals match serial execution bit-for-bit.
      for (std::size_t s = 0; s < shard_stats.size(); ++s) {
        stats += shard_stats[s];
        shared_high_water = std::max(shared_high_water, shard_high[s]);
      }
    }

    // After the join: merge per-block hazards + the cross-block global
    // store analysis, deterministically, on the launching thread.
    if (checker) stats.simtcheck_hazards = checker->finalize(hazards_);

    KernelStats out = finalize_launch(config, stats, shared_high_water);
    if (span.active()) {
      span.arg("grid_blocks", config.grid_blocks);
      span.arg("block_threads", config.block_threads);
      span.arg("workers", shards);
      span.arg("occupancy", out.occupancy);
      span.arg("modeled_ms", out.time_ms);
    }
    return out;
  }

  /// Models a PCIe transfer and accounts it under `label` in the profile.
  double transfer(const std::string& label, std::uint64_t bytes);

  [[nodiscard]] ProfileRegistry& profile() { return profile_; }
  [[nodiscard]] const ProfileRegistry& profile() const { return profile_; }

  /// Clears the per-SM read-only caches (cold-start boundary).
  void reset_caches();

 private:
  /// Throws on an invalid launch shape; returns warps per block.
  int validate_launch(const LaunchConfig& config) const;
  /// Stats header for a launch (name, shape, block count).
  KernelStats begin_stats(const LaunchConfig& config) const;
  /// Occupancy + cost model + profile accumulation; returns final stats.
  KernelStats finalize_launch(const LaunchConfig& config, KernelStats stats,
                              std::size_t shared_high_water);
  /// How many worker shards to use for a launch of `grid_blocks` blocks.
  [[nodiscard]] int shard_count(int grid_blocks) const {
    if (workers_ <= 1 || !pool_) return 1;
    return std::min({workers_, spec_.num_sms, grid_blocks});
  }

  DeviceSpec spec_;
  CostModel cost_;
  bool rocache_enabled_ = true;
  bool simtcheck_enabled_ = false;
  int workers_ = 1;
  const std::atomic<bool>* cancel_flag_ = nullptr;
  std::unique_ptr<util::ThreadPool> pool_;
  std::vector<ReadOnlyCache> sm_caches_;
  ProfileRegistry profile_;
  HazardReport hazards_;
};

}  // namespace repro::simt
