// Kernel launching: grids of blocks of warps, executed deterministically.
//
// A kernel is a function of BlockCtx. Within a block, parallel regions are
// expressed with BlockCtx::par(...), which runs the region for every warp
// of the block; consecutive par() calls are separated by an implicit
// __syncthreads() barrier (warps of a region complete before the next
// region starts), which is exactly the structure block-cooperative GPU
// algorithms (e.g. the segmented bitonic sort) need.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "simt/cost_model.hpp"
#include "simt/device.hpp"
#include "simt/metrics.hpp"
#include "simt/occupancy.hpp"
#include "simt/rocache.hpp"
#include "simt/shared_memory.hpp"
#include "simt/warp.hpp"

namespace repro::simt {

struct LaunchConfig {
  std::string name;
  int grid_blocks = 1;
  int block_threads = 128;   ///< must be a positive multiple of 32
  int regs_per_thread = 32;  ///< declared estimate, feeds occupancy
};

class Engine;

/// Execution context of one block.
class BlockCtx {
 public:
  BlockCtx(Engine& engine, KernelStats& stats, ReadOnlyCache* rocache,
           int block_id, int grid_blocks, int warps_per_block,
           std::size_t shared_capacity)
      : engine_(&engine),
        stats_(&stats),
        rocache_(rocache),
        block_id_(block_id),
        grid_blocks_(grid_blocks),
        warps_per_block_(warps_per_block),
        shared_(shared_capacity) {}

  [[nodiscard]] int block_id() const { return block_id_; }
  [[nodiscard]] int grid_blocks() const { return grid_blocks_; }
  [[nodiscard]] int warps_per_block() const { return warps_per_block_; }
  [[nodiscard]] SharedMemory& shared() { return shared_; }

  /// Runs `region` for every warp of the block, then joins (barrier).
  void par(const std::function<void(WarpExec&)>& region) {
    for (int w = 0; w < warps_per_block_; ++w) {
      WarpExec warp(*stats_, rocache_, block_id_, w, warps_per_block_,
                    grid_blocks_);
      region(warp);
    }
  }

 private:
  Engine* engine_;
  KernelStats* stats_;
  ReadOnlyCache* rocache_;
  int block_id_;
  int grid_blocks_;
  int warps_per_block_;
  SharedMemory shared_;
};

class Engine {
 public:
  explicit Engine(DeviceSpec spec = {}, CostModel cost = {});

  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }
  [[nodiscard]] const CostModel& cost_model() const { return cost_; }

  /// Enables/disables the read-only cache model (paper Fig. 17 toggle).
  void set_readonly_cache_enabled(bool enabled);
  [[nodiscard]] bool readonly_cache_enabled() const {
    return rocache_enabled_;
  }

  /// Launches a kernel and returns its measured stats (time filled in by
  /// the cost model, occupancy from the launch shape and the shared-memory
  /// high-water mark). Also accumulates into the profile registry.
  KernelStats launch(const LaunchConfig& config,
                     const std::function<void(BlockCtx&)>& kernel);

  /// Models a PCIe transfer and accounts it under `label` in the profile.
  double transfer(const std::string& label, std::uint64_t bytes);

  [[nodiscard]] ProfileRegistry& profile() { return profile_; }
  [[nodiscard]] const ProfileRegistry& profile() const { return profile_; }

  /// Clears the per-SM read-only caches (cold-start boundary).
  void reset_caches();

 private:
  DeviceSpec spec_;
  CostModel cost_;
  bool rocache_enabled_ = true;
  std::vector<ReadOnlyCache> sm_caches_;
  ProfileRegistry profile_;
};

}  // namespace repro::simt
