// Warp-synchronous execution with measured divergence and coalescing.
//
// Kernels are written against this API in the explicitly-masked SIMT style:
// per-lane work goes through vec()/gather()/scatter()/atomic ops, control
// flow through if_then()/loop_while(). The engine executes the 32 lanes of
// a warp in lockstep (serially, with an active mask) and records, for every
// warp-level step, how many lanes were active and how many 128-byte memory
// transactions the lane addresses required. Divergence overhead and global
// load efficiency in the paper's Fig. 19 are computed from these traces —
// measured from the same algorithmic behaviour as on real hardware, not
// assumed.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <span>
#include <type_traits>
#include <utility>

#include "simt/metrics.hpp"
#include "simt/rocache.hpp"
#include "simt/simtcheck.hpp"

namespace repro::simt {

template <class T>
using LaneArray = std::array<T, kWarpSize>;

using Mask = std::uint32_t;
inline constexpr Mask kFullMask = 0xffffffffu;

enum class MemKind { kGlobal, kReadOnly };

class WarpExec {
 public:
  WarpExec(KernelStats& stats, ReadOnlyCache* rocache, int block_id,
           int warp_in_block, int warps_per_block, int grid_blocks,
           BlockChecker* check = nullptr)
      : stats_(&stats),
        rocache_(rocache),
        block_id_(block_id),
        warp_in_block_(warp_in_block),
        warps_per_block_(warps_per_block),
        grid_blocks_(grid_blocks),
        check_(check) {}

  // --- identity -----------------------------------------------------------
  [[nodiscard]] int block_id() const { return block_id_; }
  [[nodiscard]] int warp_in_block() const { return warp_in_block_; }
  [[nodiscard]] int warps_per_block() const { return warps_per_block_; }
  [[nodiscard]] int grid_blocks() const { return grid_blocks_; }
  [[nodiscard]] int global_warp_id() const {
    return block_id_ * warps_per_block_ + warp_in_block_;
  }
  [[nodiscard]] int num_warps_total() const {
    return grid_blocks_ * warps_per_block_;
  }
  [[nodiscard]] int thread_id(int lane) const {
    return (block_id_ * warps_per_block_ + warp_in_block_) * kWarpSize + lane;
  }

  [[nodiscard]] Mask active_mask() const { return active_; }
  [[nodiscard]] int active_lanes() const { return std::popcount(active_); }
  [[nodiscard]] bool lane_active(int lane) const {
    return (active_ >> lane) & 1u;
  }

  // --- instruction issue ---------------------------------------------------
  /// One warp-level ALU step: f(lane) runs for every active lane.
  template <class F>
  void vec(F&& f) {
    note_op();
    for_active(std::forward<F>(f));
  }

  /// Warp vote: evaluates pred(lane) on active lanes.
  template <class P>
  [[nodiscard]] Mask ballot(P&& pred) {
    note_op();
    Mask m = 0;
    for_active([&](int lane) {
      if (pred(lane)) m |= 1u << lane;
    });
    return m;
  }

  template <class P>
  [[nodiscard]] bool any(P&& pred) {
    return ballot(std::forward<P>(pred)) != 0;
  }

  /// Structured branch: lanes where pred holds execute then_fn under a
  /// narrowed mask. Divergence shows up as reduced active-lane counts on
  /// every op inside.
  template <class P, class F>
  void if_then(P&& pred, F&& then_fn) {
    const Mask taken = ballot(std::forward<P>(pred));
    if (taken) {
      const Mask saved = active_;
      active_ = taken;
      then_fn();
      active_ = saved;
    }
  }

  /// Two-sided branch: both paths execute serially when both are non-empty
  /// (the SIMT serialization of Fig. 4).
  template <class P, class F, class G>
  void if_then_else(P&& pred, F&& then_fn, G&& else_fn) {
    const Mask taken = ballot(std::forward<P>(pred));
    const Mask saved = active_;
    if (taken) {
      active_ = taken;
      then_fn();
      active_ = saved;
    }
    const Mask not_taken = saved & ~taken;
    if (not_taken) {
      active_ = not_taken;
      else_fn();
      active_ = saved;
    }
  }

  /// SIMT loop: iterates while any active lane's cond holds; lanes that
  /// finish early sit idle (and are charged as divergence) until the last
  /// lane exits.
  template <class C, class B>
  void loop_while(C&& cond, B&& body) {
    const Mask saved = active_;
    for (;;) {
      const Mask live = ballot(cond);
      if (!live) break;
      active_ = live;
      body();
    }
    active_ = saved;
  }

  // --- global memory -------------------------------------------------------
  /// Gathers base[idx[lane]] for active lanes; counts one load request and
  /// the distinct 128-byte segments it touches.
  template <class T, class I>
  void gather(const T* base, const LaneArray<I>& idx, LaneArray<T>& out,
              MemKind kind = MemKind::kGlobal) {
    if (check_ != nullptr) check_global(base, idx, AccessKind::kRead);
    note_op();
    ++stats_->ld_requests;
    begin_segments();
    for_active([&](int lane) {
      const T* p = base + idx[static_cast<std::size_t>(lane)];
      out[static_cast<std::size_t>(lane)] = *p;
      stats_->ld_bytes_requested += sizeof(T);
      add_segment(reinterpret_cast<std::uintptr_t>(p));
    });
    commit_load_segments(kind);
  }

  /// Scatters vals to base[idx[lane]]. Lane order is the commit order, so
  /// colliding lanes resolve deterministically (highest lane wins, matching
  /// one legal CUDA outcome).
  template <class T, class I>
  void scatter(T* base, const LaneArray<I>& idx, const LaneArray<T>& vals) {
    if (check_ != nullptr) check_global(base, idx, AccessKind::kWrite);
    note_op();
    ++stats_->st_requests;
    begin_segments();
    for_active([&](int lane) {
      T* p = base + idx[static_cast<std::size_t>(lane)];
      *p = vals[static_cast<std::size_t>(lane)];
      stats_->st_bytes_requested += sizeof(T);
      add_segment(reinterpret_cast<std::uintptr_t>(p));
    });
    stats_->st_transactions += static_cast<std::uint64_t>(num_segments_);
  }

  /// Atomic fetch-add on global memory. Colliding addresses within the warp
  /// serialize: lanes commit in lane order and the extra passes are charged.
  /// The RMW itself is a real std::atomic fetch-add, so blocks running on
  /// different host workers (the SM-sharded engine) may target the same
  /// counter race-free; like on hardware, only the final sum — not the
  /// per-lane `old` values — is deterministic under such cross-block
  /// contention.
  template <class T, class I>
  void atomic_add_global(T* base, const LaneArray<I>& idx,
                         const LaneArray<T>& vals, LaneArray<T>& old) {
    if (check_ != nullptr) check_global(base, idx, AccessKind::kAtomic);
    note_op();
    ++stats_->atomic_ops;
    begin_segments();
    std::uint64_t max_collisions =
        do_atomic_add<true>(base, idx, vals, old);
    stats_->st_transactions += static_cast<std::uint64_t>(num_segments_);
    if (max_collisions > 1)
      stats_->atomic_serial_passes += max_collisions - 1;
  }

  // --- shared memory -------------------------------------------------------
  /// Shared-memory gather with bank-conflict accounting (32 banks of 4 B).
  template <class T, class I>
  void sh_gather(std::span<const T> region, const LaneArray<I>& idx,
                 LaneArray<T>& out) {
    if (check_ != nullptr)
      check_shared(region.data(), region.size(), idx, AccessKind::kRead);
    note_op();
    ++stats_->shared_ops;
    // Single pass: move the data and tally bank pressure together.
    std::array<std::uint8_t, kWarpSize> bank_load{};
    std::uint8_t worst = 1;
    for_active([&](int lane) {
      const auto j =
          static_cast<std::size_t>(idx[static_cast<std::size_t>(lane)]);
      const auto addr = reinterpret_cast<std::uintptr_t>(region.data() + j);
      worst = std::max(
          worst, ++bank_load[static_cast<std::size_t>((addr >> 2) & 31u)]);
      out[static_cast<std::size_t>(lane)] = region[j];
    });
    if (worst > 1) stats_->shared_conflict_passes += worst - 1;
  }

  template <class T, class I>
  void sh_scatter(std::span<T> region, const LaneArray<I>& idx,
                  const LaneArray<T>& vals) {
    if (check_ != nullptr)
      check_shared(region.data(), region.size(), idx, AccessKind::kWrite);
    note_op();
    ++stats_->shared_ops;
    std::array<std::uint8_t, kWarpSize> bank_load{};
    std::uint8_t worst = 1;
    for_active([&](int lane) {
      const auto j =
          static_cast<std::size_t>(idx[static_cast<std::size_t>(lane)]);
      const auto addr = reinterpret_cast<std::uintptr_t>(region.data() + j);
      worst = std::max(
          worst, ++bank_load[static_cast<std::size_t>((addr >> 2) & 31u)]);
      region[j] = vals[static_cast<std::size_t>(lane)];
    });
    if (worst > 1) stats_->shared_conflict_passes += worst - 1;
  }

  /// Atomic fetch-add on shared memory (paper Alg. 2's top[] counters):
  /// cheaper than global atomics but still serializes on collisions.
  template <class T, class I>
  void atomic_add_shared(std::span<T> region, const LaneArray<I>& idx,
                         const LaneArray<T>& vals, LaneArray<T>& old) {
    if (check_ != nullptr)
      check_shared(region.data(), region.size(), idx, AccessKind::kAtomic);
    note_op();
    ++stats_->shared_ops;
    ++stats_->atomic_ops;
    std::uint64_t max_collisions =
        do_atomic_add<false>(region.data(), idx, vals, old);
    if (max_collisions > 1)
      stats_->atomic_serial_passes += max_collisions - 1;
  }

  // --- warp collectives ----------------------------------------------------
  /// Inclusive plus-scan within fixed-width windows (CUB-style; the paper's
  /// window-based extension uses width 8). Charged log2(width) steps.
  template <class T>
  void window_inclusive_scan(LaneArray<T>& vals, int width) {
    if (check_ != nullptr)
      check_->on_collective(warp_in_block_, active_, width,
                            "window_inclusive_scan");
    for (int delta = 1; delta < width; delta <<= 1) {
      note_op();
      LaneArray<T> prev = vals;
      for_active([&](int lane) {
        if (lane % width >= delta)
          vals[static_cast<std::size_t>(lane)] +=
              prev[static_cast<std::size_t>(lane - delta)];
      });
    }
  }

  /// Inclusive max-scan within fixed-width windows: lane i of a window ends
  /// with max(vals[first..i]). The window-based extension uses this to get
  /// the running best score per position (paper Fig. 8's "highest score").
  template <class T>
  void window_inclusive_max_scan(LaneArray<T>& vals, int width) {
    if (check_ != nullptr)
      check_->on_collective(warp_in_block_, active_, width,
                            "window_inclusive_max_scan");
    for (int delta = 1; delta < width; delta <<= 1) {
      note_op();
      LaneArray<T> prev = vals;
      for_active([&](int lane) {
        if (lane % width >= delta)
          vals[static_cast<std::size_t>(lane)] =
              std::max(vals[static_cast<std::size_t>(lane)],
                       prev[static_cast<std::size_t>(lane - delta)]);
      });
    }
  }

  /// Maximum over each width-lane window, broadcast to the window's lanes.
  /// Like __shfl_down_sync-based reductions, this assumes the active mask
  /// is uniform within each window: a lane may read an inactive peer's
  /// value, which on hardware would be undefined.
  template <class T>
  void window_reduce_max(LaneArray<T>& vals, int width) {
    if (check_ != nullptr)
      check_->on_collective(warp_in_block_, active_, width,
                            "window_reduce_max");
    for (int delta = width / 2; delta >= 1; delta >>= 1) {
      note_op();
      LaneArray<T> prev = vals;
      for_active([&](int lane) {
        const int peer = (lane % width < width - delta) ? lane + delta : lane;
        vals[static_cast<std::size_t>(lane)] =
            std::max(vals[static_cast<std::size_t>(lane)],
                     prev[static_cast<std::size_t>(peer)]);
      });
    }
    // The delta loop is a shfl_down-style reduction, not a symmetric
    // butterfly: lane i only ever combines with higher lanes (peer =
    // lane + delta), so after the loop lane i holds the max of the window
    // *suffix* starting at i — only the window's lane 0 holds the max of
    // the whole window (width 4, deltas 2,1: lane 1 ends with
    // max(v1,v2,v3), never seeing v0). The broadcast pass below is
    // therefore required to hand lane 0's value to every lane.
    note_op();
    LaneArray<T> prev = vals;
    for_active([&](int lane) {
      vals[static_cast<std::size_t>(lane)] =
          prev[static_cast<std::size_t>(lane - lane % width)];
    });
  }

  /// Shuffle-up by delta within windows.
  template <class T>
  void shfl_up(LaneArray<T>& vals, int delta, int width = kWarpSize) {
    if (check_ != nullptr)
      check_->on_collective(warp_in_block_, active_, width, "shfl_up");
    note_op();
    LaneArray<T> prev = vals;
    for_active([&](int lane) {
      if (lane % width >= delta)
        vals[static_cast<std::size_t>(lane)] =
            prev[static_cast<std::size_t>(lane - delta)];
    });
  }

 private:
  // --- simtcheck instrumentation (cold; reached only with a checker) ------
  // ballot/if_then/loop_while are deliberately not flagged: predication via
  // __ballot_sync is mask-safe on hardware. Only ops that read peer lanes
  // (the window collectives) or touch memory feed the analyzer.
  template <class T, class I>
  void check_global(const T* base, const LaneArray<I>& idx, AccessKind kind) {
    for_active([&](int lane) {
      const auto addr =
          reinterpret_cast<std::uintptr_t>(base) +
          static_cast<std::uintptr_t>(idx[static_cast<std::size_t>(lane)]) *
              sizeof(T);
      check_->global_access(warp_in_block_, addr, sizeof(T), kind);
    });
  }

  template <class T, class I>
  void check_shared(const T* data, std::size_t size, const LaneArray<I>& idx,
                    AccessKind kind) {
    for_active([&](int lane) {
      const auto j =
          static_cast<std::size_t>(idx[static_cast<std::size_t>(lane)]);
      const auto addr = reinterpret_cast<std::uintptr_t>(data) +
                        static_cast<std::uintptr_t>(j) * sizeof(T);
      check_->shared_access(warp_in_block_, addr, sizeof(T), kind,
                            /*span_oob=*/j >= size);
    });
  }

  template <class F>
  void for_active(F&& f) {
    // Fast path: converged warps (the common case by far) take a straight
    // counted loop the compiler can unroll instead of the bit-scan walk.
    if (active_ == kFullMask) {
      for (int lane = 0; lane < kWarpSize; ++lane) f(lane);
      return;
    }
    Mask m = active_;
    while (m) {
      const int lane = std::countr_zero(m);
      f(lane);
      m &= m - 1;
    }
  }

  void note_op() {
    ++stats_->vec_ops;
    stats_->active_lane_sum += static_cast<std::uint64_t>(active_lanes());
  }

  void begin_segments() { num_segments_ = 0; }

  void add_segment(std::uintptr_t address) {
    // 32-byte sectors: the granularity Kepler's L2 serves and the one
    // nvprof's gld_efficiency counts (the paper's Fig. 19a metric).
    const std::uintptr_t seg = address >> 5;
    // Coalesced lane addresses revisit the sector just inserted, so check
    // it before the linear scan.
    if (num_segments_ > 0 &&
        segments_[static_cast<std::size_t>(num_segments_ - 1)] == seg)
      return;
    for (int i = 0; i < num_segments_ - 1; ++i)
      if (segments_[static_cast<std::size_t>(i)] == seg) return;
    segments_[static_cast<std::size_t>(num_segments_++)] = seg;
  }

  void commit_load_segments(MemKind kind) {
    for (int i = 0; i < num_segments_; ++i) {
      if (kind == MemKind::kReadOnly && rocache_ != nullptr) {
        if (rocache_->access(segments_[static_cast<std::size_t>(i)] << 5)) {
          ++stats_->rocache_hits;
          continue;  // served by the read-only cache: no global transaction
        }
        ++stats_->rocache_misses;
      }
      ++stats_->ld_transactions;
    }
  }

  /// kGlobal selects the global-memory flavour: the update is a relaxed
  /// std::atomic_ref fetch-add (cross-block safe under the SM-sharded
  /// engine) and the touched 32-byte sectors are tracked. Shared memory is
  /// private to a block — and each block runs on exactly one worker — so
  /// the plain read-modify-write stays.
  template <bool kGlobal, class T, class I>
  std::uint64_t do_atomic_add(T* base, const LaneArray<I>& idx,
                              const LaneArray<T>& vals, LaneArray<T>& old) {
    // Commit in lane order; count the worst per-address collision depth.
    std::array<T*, kWarpSize> addrs{};
    int n = 0;
    for_active([&](int lane) {
      T* p = base + idx[static_cast<std::size_t>(lane)];
      if constexpr (kGlobal) {
        static_assert(std::is_integral_v<T>,
                      "atomic_add_global requires an integral counter type");
        old[static_cast<std::size_t>(lane)] =
            std::atomic_ref<T>(*p).fetch_add(
                vals[static_cast<std::size_t>(lane)],
                std::memory_order_relaxed);
      } else {
        old[static_cast<std::size_t>(lane)] = *p;
        *p += vals[static_cast<std::size_t>(lane)];
      }
      addrs[static_cast<std::size_t>(n++)] = p;
      if constexpr (kGlobal) {
        stats_->st_bytes_requested += sizeof(T);
        add_segment(reinterpret_cast<std::uintptr_t>(p));
      }
    });
    std::uint64_t worst = 0;
    for (int i = 0; i < n; ++i) {
      std::uint64_t count = 0;
      for (int j = 0; j < n; ++j)
        if (addrs[static_cast<std::size_t>(j)] ==
            addrs[static_cast<std::size_t>(i)])
          ++count;
      worst = std::max(worst, count);
    }
    return worst;
  }

  KernelStats* stats_;
  ReadOnlyCache* rocache_;
  int block_id_;
  int warp_in_block_;
  int warps_per_block_;
  int grid_blocks_;
  BlockChecker* check_;
  Mask active_ = kFullMask;

  std::array<std::uintptr_t, kWarpSize> segments_{};
  int num_segments_ = 0;
};

}  // namespace repro::simt
