// Read-only data cache model (Kepler's 48 kB per-SM texture-path cache).
//
// Direct-mapped over 128-byte lines: cheap enough to probe on every lane
// access, and captures the first-order behaviour the paper exploits in
// §3.5/Fig. 10 — DFA query positions are touched repeatedly and mostly fit,
// so subsequent warps hit in cache instead of re-reading global memory.
#pragma once

#include <cstdint>
#include <vector>

#include "simt/device.hpp"

namespace repro::simt {

class ReadOnlyCache {
 public:
  ReadOnlyCache(std::size_t capacity_bytes, std::size_t line_bytes);

  /// Probes the line containing `address`; inserts on miss.
  /// Returns true on hit.
  bool access(std::uintptr_t address);

  void clear();

  [[nodiscard]] std::size_t num_lines() const { return tags_.size(); }

 private:
  std::size_t line_shift_;
  std::vector<std::uintptr_t> tags_;  ///< 0 = empty
};

}  // namespace repro::simt
