// Per-kernel execution metrics, measured (not assumed) from the executed
// lane traces. These are the quantities the paper profiles in Fig. 19:
// global memory load efficiency, branch-divergence overhead, and achieved
// occupancy — plus the inputs of the kernel-time cost model.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace repro::simt {

struct KernelStats {
  std::string name;

  // Instruction issue.
  std::uint64_t vec_ops = 0;          ///< warp-level instruction steps issued
  std::uint64_t active_lane_sum = 0;  ///< sum of active lanes over vec ops

  // Global memory.
  std::uint64_t ld_requests = 0;
  std::uint64_t ld_bytes_requested = 0;
  std::uint64_t ld_transactions = 0;  ///< 32-byte sectors actually fetched
  std::uint64_t st_requests = 0;
  std::uint64_t st_bytes_requested = 0;
  std::uint64_t st_transactions = 0;

  // Read-only cache.
  std::uint64_t rocache_hits = 0;
  std::uint64_t rocache_misses = 0;

  // Shared memory.
  std::uint64_t shared_ops = 0;
  std::uint64_t shared_conflict_passes = 0;  ///< extra serialized passes

  // Atomics.
  std::uint64_t atomic_ops = 0;
  std::uint64_t atomic_serial_passes = 0;  ///< address-collision passes

  // Hazard analyzer (simtcheck.hpp): hazards this launch detected.
  // Always 0 when the checker is disabled, so disabled-mode metrics are
  // bit-identical to an unchecked build.
  std::uint64_t simtcheck_hazards = 0;

  // Launch shape / resources.
  std::uint64_t num_blocks = 0;
  int block_threads = 0;
  int regs_per_thread = 0;
  std::size_t shared_bytes = 0;
  double occupancy = 0.0;

  // Modeled execution time (see cost_model.hpp).
  double time_ms = 0.0;

  /// Fraction of issue slots wasted to inactive lanes (divergence +
  /// predication) — 0 for a fully converged kernel.
  [[nodiscard]] double divergence_overhead() const {
    return vec_ops == 0
               ? 0.0
               : 1.0 - static_cast<double>(active_lane_sum) /
                           (32.0 * static_cast<double>(vec_ops));
  }

  /// requested bytes / (32 B x sectors): nvprof's gld_efficiency on
  /// Kepler, whose L2 serves 32-byte sectors.
  [[nodiscard]] double global_load_efficiency() const {
    return ld_transactions == 0
               ? 1.0
               : static_cast<double>(ld_bytes_requested) /
                     (32.0 * static_cast<double>(ld_transactions));
  }

  [[nodiscard]] double global_store_efficiency() const {
    return st_transactions == 0
               ? 1.0
               : static_cast<double>(st_bytes_requested) /
                     (32.0 * static_cast<double>(st_transactions));
  }

  [[nodiscard]] double rocache_hit_ratio() const {
    const std::uint64_t total = rocache_hits + rocache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(rocache_hits) /
                            static_cast<double>(total);
  }

  /// Pure counter merge: sums every measured counter (and takes the max of
  /// the shared-memory high-water mark). Integer addition is associative
  /// and commutative, so merging per-worker shards of one launch in any
  /// order yields bit-identical totals — the property the SM-sharded
  /// parallel engine relies on. Launch-shape fields (block_threads,
  /// regs_per_thread, occupancy) are left untouched.
  KernelStats& operator+=(const KernelStats& other);

  /// Merges another launch of the same kernel (weighted by work).
  void merge(const KernelStats& other);
};

/// Accumulates stats across launches, keyed by kernel name.
class ProfileRegistry {
 public:
  void add(const KernelStats& stats);
  void clear() { kernels_.clear(); }

  [[nodiscard]] const std::map<std::string, KernelStats>& kernels() const {
    return kernels_;
  }
  [[nodiscard]] bool has(const std::string& name) const {
    return kernels_.count(name) > 0;
  }
  [[nodiscard]] const KernelStats& at(const std::string& name) const {
    return kernels_.at(name);
  }

  /// Sum of modeled kernel time across all launches (ms).
  [[nodiscard]] double total_time_ms() const;

  /// The per-kernel difference against an earlier snapshot of the same
  /// registry: every additive counter (and time_ms) is subtracted, and
  /// kernels that saw no work since the snapshot are dropped — so a
  /// long-lived engine (a SearchSession) can attribute exactly one
  /// search's launches to that search's report. Occupancy is recovered
  /// from the block-weighted average merge() maintains; shared_bytes (a
  /// running max) keeps the current value.
  [[nodiscard]] ProfileRegistry diff(const ProfileRegistry& baseline) const;

 private:
  std::map<std::string, KernelStats> kernels_;
};

}  // namespace repro::simt
