// CUDA-style occupancy calculation: how many blocks of a kernel fit on one
// SM given its thread, block-slot, shared-memory and register limits, and
// the resulting fraction of the SM's resident-thread capacity.
//
// The paper leans on this twice: more bins per warp raise shared-memory use
// and "decrease the occupancy of the kernel" (Fig. 14), and a PSSM larger
// than shared memory forces the scoring-matrix fallback (Fig. 15).
#pragma once

#include <cstddef>

#include "simt/device.hpp"

namespace repro::simt {

struct OccupancyResult {
  int blocks_per_sm = 0;
  int active_threads_per_sm = 0;
  double occupancy = 0.0;  ///< active threads / max threads
  const char* limiter = "none";
};

[[nodiscard]] OccupancyResult compute_occupancy(const DeviceSpec& spec,
                                                int block_threads,
                                                std::size_t shared_bytes,
                                                int regs_per_thread);

}  // namespace repro::simt
