#include "simt/simtcheck.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

#include "simt/device.hpp"

namespace repro::simt {

namespace simtcheck_detail {
// Shared with DeviceAllocator's construct hook (device_buffer.hpp declares
// it extern so the per-element definedness gate stays one relaxed load
// without pulling this header into the allocator).
std::atomic<bool> device_shadow_flag{false};
}  // namespace simtcheck_detail

namespace {

/// Leakcheck thread-local attribution state (see DeviceAllocSite /
/// DeviceResidentScope). Plain thread_locals: allocation and tagging happen
/// on the same thread by construction.
thread_local const char* tls_alloc_site = nullptr;
thread_local bool tls_resident = false;

/// Session-generation counter. Starts at 1 so generation 0 unambiguously
/// means "allocated before any query/session began".
std::atomic<std::uint64_t> g_device_generation{1};

/// Process-wide table of live device allocations, keyed by begin address.
/// DeviceAllocator registers/unregisters under a mutex; BlockChecker reads
/// under the same mutex but caches the last hit, so steady-state kernel
/// accesses rarely take the lock.
class DeviceMemoryRegistry {
 public:
  static DeviceMemoryRegistry& instance() {
    static DeviceMemoryRegistry registry;
    return registry;
  }

  struct Allocation {
    std::uintptr_t end = 0;
    const char* site = nullptr;       ///< string literal or null (untagged)
    std::uint64_t generation = 0;     ///< device generation at creation
    bool resident = false;            ///< DeviceResidentScope was active
    std::shared_ptr<DeviceShadow> shadow;  ///< null: grandfathered defined
  };

  void insert(std::uintptr_t begin, std::uintptr_t end) {
    Allocation alloc;
    alloc.end = end;
    alloc.site = tls_alloc_site;
    alloc.generation = g_device_generation.load(std::memory_order_relaxed);
    alloc.resident = tls_resident;
    if (simtcheck_detail::device_shadow_flag.load(std::memory_order_relaxed) &&
        end > begin) {
      alloc.shadow = std::make_shared<DeviceShadow>();
      alloc.shadow->defined.assign(end - begin, 0);
      alloc.shadow->undefined_count.store(end - begin,
                                          std::memory_order_relaxed);
    }
    const std::lock_guard<std::mutex> lock(mu_);
    ranges_[begin] = std::move(alloc);
    epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  void erase(std::uintptr_t begin) noexcept {
    const std::lock_guard<std::mutex> lock(mu_);
    ranges_.erase(begin);
    epoch_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Returns the allocation containing [addr, addr + bytes), or an empty
  /// range when the access lies in no live allocation.
  [[nodiscard]] DeviceRange find(std::uintptr_t addr,
                                 std::size_t bytes) const {
    const std::lock_guard<std::mutex> lock(mu_);
    auto it = ranges_.upper_bound(addr);
    if (it == ranges_.begin()) return {};
    --it;
    if (addr >= it->first && addr + bytes <= it->second.end)
      return {it->first, it->second.end, it->second.shadow};
    return {};
  }

  /// Bumped on every insert/erase; validates mark_device_initialized's
  /// thread-local allocation cache.
  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }

  /// Marks the union of per-launch kernel write masks defined. Called from
  /// LaunchChecker::finalize on the launching thread, after every block of
  /// the launch has completed.
  void define_written(
      const std::unordered_map<std::uintptr_t, std::uint8_t>& granules) {
    if (granules.empty()) return;
    std::vector<std::uintptr_t> keys;
    keys.reserve(granules.size());
    for (const auto& [granule, mask] : granules)
      if (mask != 0) keys.push_back(granule);
    std::sort(keys.begin(), keys.end());

    const std::lock_guard<std::mutex> lock(mu_);
    std::uintptr_t begin = 0;
    const Allocation* alloc = nullptr;
    for (const std::uintptr_t granule : keys) {
      const std::uintptr_t base = granule * kGranuleBytes;
      if (alloc == nullptr || base < begin || base >= alloc->end) {
        auto it = ranges_.upper_bound(base);
        if (it == ranges_.begin()) continue;
        --it;
        if (base >= it->second.end) continue;
        begin = it->first;
        alloc = &it->second;
      }
      DeviceShadow* shadow = alloc->shadow.get();
      if (shadow == nullptr || shadow->undefined_count.load(
                                   std::memory_order_relaxed) == 0)
        continue;
      const std::uint8_t mask = granules.at(granule);
      std::uint64_t newly = 0;
      for (std::uintptr_t byte = 0; byte < kGranuleBytes; ++byte) {
        if ((mask & (1u << byte)) == 0) continue;
        const std::uintptr_t addr = base + byte;
        if (addr < begin || addr >= alloc->end) continue;
        std::uint8_t& flag = shadow->defined[addr - begin];
        if (flag == 0) {
          flag = 1;
          ++newly;
        }
      }
      if (newly != 0)
        shadow->undefined_count.fetch_sub(newly, std::memory_order_relaxed);
    }
  }

  /// Marks [addr, addr + bytes) defined; tolerates ranges outside any live
  /// allocation (portion ignored — the memcheck layer owns OOB reporting).
  void define_range(std::uintptr_t addr, std::size_t bytes) {
    const std::lock_guard<std::mutex> lock(mu_);
    auto it = ranges_.upper_bound(addr);
    if (it == ranges_.begin()) return;
    --it;
    if (addr >= it->second.end) return;
    DeviceShadow* shadow = it->second.shadow.get();
    if (shadow == nullptr) return;
    const std::uintptr_t begin = it->first;
    const std::uintptr_t end = std::min<std::uintptr_t>(
        addr + bytes, it->second.end);
    std::uint64_t newly = 0;
    for (std::uintptr_t a = addr; a < end; ++a) {
      std::uint8_t& flag = shadow->defined[a - begin];
      if (flag == 0) {
        flag = 1;
        ++newly;
      }
    }
    if (newly != 0)
      shadow->undefined_count.fetch_sub(newly, std::memory_order_relaxed);
  }

  [[nodiscard]] DeviceAllocationStats stats() const {
    DeviceAllocationStats out;
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [begin, alloc] : ranges_) {
      const std::uint64_t bytes = alloc.end - begin;
      ++out.live_allocations;
      out.live_bytes += bytes;
      if (alloc.resident) {
        ++out.resident_allocations;
        out.resident_bytes += bytes;
      }
    }
    return out;
  }

  struct LeakSite {
    std::string site;
    std::uint64_t allocations = 0;
    std::uint64_t bytes = 0;
  };
  /// Live non-resident allocations with generation >= min_generation,
  /// grouped by site and sorted by site name (deterministic reports).
  [[nodiscard]] std::vector<LeakSite> leak_scan(
      std::uint64_t min_generation) const {
    std::map<std::string, LeakSite> by_site;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [begin, alloc] : ranges_) {
        if (alloc.resident || alloc.generation < min_generation) continue;
        const char* site = alloc.site != nullptr ? alloc.site : "untagged";
        LeakSite& entry = by_site[site];
        entry.site = site;
        ++entry.allocations;
        entry.bytes += alloc.end - begin;
      }
    }
    std::vector<LeakSite> out;
    out.reserve(by_site.size());
    for (auto& [site, entry] : by_site) out.push_back(std::move(entry));
    return out;
  }

  static constexpr std::uintptr_t kGranuleBytes = 8;

 private:
  mutable std::mutex mu_;
  std::map<std::uintptr_t, Allocation> ranges_;
  std::atomic<std::uint64_t> epoch_{0};
};

constexpr std::uintptr_t kGranuleBytes = 8;

}  // namespace

const char* hazard_kind_name(HazardKind kind) {
  switch (kind) {
    case HazardKind::kSharedRace: return "shared-race";
    case HazardKind::kGlobalRace: return "global-race";
    case HazardKind::kDivergentCollective: return "divergent-collective";
    case HazardKind::kDivergentBarrier: return "divergent-barrier";
    case HazardKind::kSharedOutOfBounds: return "shared-oob";
    case HazardKind::kSharedUseAfterReset: return "shared-use-after-reset";
    case HazardKind::kGlobalOutOfBounds: return "global-oob";
    case HazardKind::kSharedUninitRead: return "shared-uninit-read";
    case HazardKind::kGlobalUninitRead: return "global-uninit-read";
    case HazardKind::kDeviceLeak: return "device-leak";
    case HazardKind::kLockOrderInversion: return "lock-order-inversion";
    case HazardKind::kBlockedWhileLocked: return "blocked-while-locked";
    case HazardKind::kCheckpointGap: return "checkpoint-gap";
  }
  return "unknown";
}

void HazardReport::add(HazardRecord record) {
  ++total;
  ++by_kind[static_cast<std::size_t>(record.kind)];
  if (!record.kernel.empty()) ++by_kernel[record.kernel];
  if (records.size() < kMaxRecords) records.push_back(std::move(record));
}

void HazardReport::merge(const HazardReport& other) {
  total += other.total;
  for (int k = 0; k < kNumHazardKinds; ++k)
    by_kind[static_cast<std::size_t>(k)] +=
        other.by_kind[static_cast<std::size_t>(k)];
  for (const auto& [kernel, count] : other.by_kernel)
    by_kernel[kernel] += count;
  collectives_checked += other.collectives_checked;
  for (const HazardRecord& record : other.records) {
    if (records.size() >= kMaxRecords) break;
    records.push_back(record);
  }
}

void HazardReport::clear() {
  total = 0;
  by_kind.fill(0);
  by_kernel.clear();
  records.clear();
  collectives_checked = 0;
}

std::string HazardReport::summary() const {
  std::ostringstream out;
  if (total == 0) {
    out << "simtcheck: 0 hazards (" << collectives_checked
        << " collectives checked)";
    return out.str();
  }
  out << "simtcheck: " << total << " hazard" << (total == 1 ? "" : "s");
  const char* sep = " (";
  for (int k = 0; k < kNumHazardKinds; ++k) {
    if (by_kind[static_cast<std::size_t>(k)] == 0) continue;
    out << sep << hazard_kind_name(static_cast<HazardKind>(k)) << " "
        << by_kind[static_cast<std::size_t>(k)];
    sep = ", ";
  }
  out << ")";
  for (const auto& [kernel, count] : by_kernel)
    out << "\n  kernel '" << kernel << "': " << count;
  const std::size_t shown = records.size();
  for (std::size_t i = 0; i < shown; ++i) {
    const HazardRecord& r = records[i];
    out << "\n  [" << hazard_kind_name(r.kind) << "] kernel '" << r.kernel
        << "' block " << r.block;
    if (r.warp >= 0) out << " warp " << r.warp;
    if (r.other_warp >= 0) out << " vs warp " << r.other_warp;
    if (r.other_block >= 0) out << " vs block " << r.other_block;
    switch (r.kind) {
      case HazardKind::kSharedRace:
      case HazardKind::kSharedOutOfBounds:
      case HazardKind::kSharedUseAfterReset:
      case HazardKind::kSharedUninitRead:
        out << " epoch " << r.epoch << " shared+" << r.byte_offset << " ("
            << r.extent << " B)";
        break;
      case HazardKind::kGlobalRace:
      case HazardKind::kGlobalOutOfBounds:
      case HazardKind::kGlobalUninitRead:
        out << " addr 0x" << std::hex << r.address << std::dec << " ("
            << r.extent << " B)";
        break;
      case HazardKind::kDivergentCollective:
      case HazardKind::kDivergentBarrier:
        out << " mask 0x" << std::hex << r.active_mask << std::dec;
        if (r.width > 0) out << " width " << r.width;
        break;
      case HazardKind::kDeviceLeak:
        out << " (" << r.extent << " B)";
        break;
      case HazardKind::kLockOrderInversion:
      case HazardKind::kBlockedWhileLocked:
      case HazardKind::kCheckpointGap:
        break;  // the detail line carries everything
    }
    if (!r.detail.empty()) out << " [" << r.detail << "]";
  }
  if (total > shown)
    out << "\n  ... and " << (total - shown) << " more";
  return out.str();
}

void register_device_allocation(const void* p, std::size_t bytes) {
  const auto begin = reinterpret_cast<std::uintptr_t>(p);
  DeviceMemoryRegistry::instance().insert(begin, begin + bytes);
}

void unregister_device_allocation(const void* p) noexcept {
  DeviceMemoryRegistry::instance().erase(
      reinterpret_cast<std::uintptr_t>(p));
}

bool is_device_address(const void* p, std::size_t bytes) {
  return DeviceMemoryRegistry::instance()
             .find(reinterpret_cast<std::uintptr_t>(p), bytes)
             .end != 0;
}

bool simtcheck_env_enabled() {
  const char* value = std::getenv("REPRO_SIMTCHECK");
  if (value == nullptr) return false;
  const std::string v(value);
  return !(v.empty() || v == "0" || v == "false" || v == "off");
}

// ---------------------------------------------------------------------------
// Initcheck / leakcheck free functions

void set_device_shadow_enabled(bool enabled) {
  simtcheck_detail::device_shadow_flag.store(enabled,
                                             std::memory_order_relaxed);
}

bool device_shadow_enabled() {
  return simtcheck_detail::device_shadow_flag.load(std::memory_order_relaxed);
}

namespace {

/// Per-thread write-combining cache for mark_device_initialized: staging
/// loops define elements of one buffer back to back, so resolve the
/// allocation once and update its shadow lock-free until the registry
/// changes under us (epoch mismatch) or the range moves.
struct DefineCache {
  std::uintptr_t begin = 0;
  std::uintptr_t end = 0;
  std::shared_ptr<DeviceShadow> shadow;
  std::uint64_t epoch = ~std::uint64_t{0};
};
thread_local DefineCache tls_define_cache;

}  // namespace

void mark_device_initialized(const void* p, std::size_t bytes) {
  if (!device_shadow_enabled() || bytes == 0) return;
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  auto& registry = DeviceMemoryRegistry::instance();
  DefineCache& cache = tls_define_cache;
  const std::uint64_t epoch = registry.epoch();
  if (cache.epoch == epoch && addr >= cache.begin &&
      addr + bytes <= cache.end) {
    if (cache.shadow == nullptr) return;  // grandfathered: already defined
    std::uint64_t newly = 0;
    for (std::size_t i = 0; i < bytes; ++i) {
      std::uint8_t& flag = cache.shadow->defined[addr - cache.begin + i];
      if (flag == 0) {
        flag = 1;
        ++newly;
      }
    }
    if (newly != 0)
      cache.shadow->undefined_count.fetch_sub(newly,
                                              std::memory_order_relaxed);
    return;
  }
  const DeviceRange range = registry.find(addr, bytes);
  if (range.end == 0) {
    // Outside any single live allocation (or straddling): take the slow
    // per-range path and leave the cache alone.
    registry.define_range(addr, bytes);
    return;
  }
  cache.begin = range.begin;
  cache.end = range.end;
  cache.shadow = range.shadow;
  cache.epoch = epoch;
  if (cache.shadow == nullptr) return;
  std::uint64_t newly = 0;
  for (std::size_t i = 0; i < bytes; ++i) {
    std::uint8_t& flag = cache.shadow->defined[addr - cache.begin + i];
    if (flag == 0) {
      flag = 1;
      ++newly;
    }
  }
  if (newly != 0)
    cache.shadow->undefined_count.fetch_sub(newly, std::memory_order_relaxed);
}

DeviceAllocSite::DeviceAllocSite(const char* site) : prev_(tls_alloc_site) {
  tls_alloc_site = site;
}
DeviceAllocSite::~DeviceAllocSite() { tls_alloc_site = prev_; }

DeviceResidentScope::DeviceResidentScope() : prev_(tls_resident) {
  tls_resident = true;
}
DeviceResidentScope::~DeviceResidentScope() { tls_resident = prev_; }

std::uint64_t begin_device_generation() {
  return g_device_generation.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::uint64_t current_device_generation() {
  return g_device_generation.load(std::memory_order_relaxed);
}

DeviceAllocationStats device_allocation_stats() {
  return DeviceMemoryRegistry::instance().stats();
}

std::uint64_t device_leak_check(HazardReport& sink,
                                std::uint64_t min_generation) {
  const auto sites =
      DeviceMemoryRegistry::instance().leak_scan(min_generation);
  std::uint64_t leaked_bytes = 0;
  for (const auto& site : sites) {
    HazardRecord record;
    record.kind = HazardKind::kDeviceLeak;
    record.extent = site.bytes;
    std::ostringstream detail;
    detail << site.site << ": " << site.allocations
           << " live device allocation"
           << (site.allocations == 1 ? "" : "s")
           << " outlived the query/session";
    record.detail = detail.str();
    sink.add(std::move(record));
    leaked_bytes += site.bytes;
  }
  return leaked_bytes;
}

// ---------------------------------------------------------------------------
// BlockChecker

HazardRecord BlockChecker::make_record(HazardKind kind, int warp) const {
  HazardRecord record;
  record.kind = kind;
  record.block = block_id_;
  record.warp = warp;
  record.epoch = epoch_;
  return record;
}

void BlockChecker::on_barrier(int warp, std::uint32_t mask) {
  if (mask == 0xffffffffu) return;
  HazardRecord record = make_record(HazardKind::kDivergentBarrier, warp);
  record.active_mask = mask;
  record.detail = "warp reached the implicit par() barrier divergent";
  report(std::move(record));
}

void BlockChecker::on_collective(int warp, std::uint32_t mask, int width,
                                 const char* what) {
  ++local_.collectives_checked;
  // Window collectives read peer lanes within each width-lane window
  // (warp.hpp documents the window-uniform mask assumption), so a window
  // that is neither fully active nor fully inactive makes an active lane
  // read an inactive peer — undefined on hardware. Fully inactive windows
  // are fine: none of their lanes execute.
  if (width <= 0) return;
  const auto m = static_cast<std::uint64_t>(mask);
  bool divergent = false;
  for (int base = 0; base < kWarpSize; base += width) {
    const std::uint64_t full =
        (std::uint64_t{1} << std::min(width, kWarpSize - base)) - 1;
    const std::uint64_t window = (m >> base) & full;
    if (window != 0 && window != full) {
      divergent = true;
      break;
    }
  }
  if (!divergent) return;
  HazardRecord record = make_record(HazardKind::kDivergentCollective, warp);
  record.active_mask = mask;
  record.width = width;
  record.detail = what;
  report(std::move(record));
}

void BlockChecker::on_shared_alloc(std::size_t old_used, std::size_t new_used,
                                   bool zeroed) {
  shared_used_ = new_used;
  // Initcheck: the fresh range (alignment padding included) starts with a
  // clean race shadow and the alloc's declared definedness. alloc() models
  // __shared__ garbage (undefined until a lane writes); alloc_zeroed()
  // models a kernel-prologue cooperative memset (defined at alloc) —
  // physically both are zero-filled, only the shadow differs.
  if (shadow_.empty()) shadow_.resize(shared_capacity_);
  for (std::size_t i = old_used; i < new_used && i < shadow_.size(); ++i) {
    shadow_[i] = ShadowByte{};
    shadow_[i].defined = zeroed;
  }
}

void BlockChecker::shared_access(int warp, std::uintptr_t addr,
                                 std::size_t bytes, AccessKind kind,
                                 bool span_oob) {
  const std::uint64_t offset = addr - shared_base_;
  // Memcheck first: indexing past the owning span, or touching arena space
  // that is not currently allocated (past used_, or released by reset()).
  if (span_oob || offset + bytes > shared_used_) {
    const bool after_reset = !span_oob && shared_reset_seen_;
    HazardRecord record = make_record(
        after_reset ? HazardKind::kSharedUseAfterReset
                    : HazardKind::kSharedOutOfBounds,
        warp);
    record.byte_offset = offset;
    record.extent = bytes;
    record.detail = span_oob ? "index past the shared span"
                             : (after_reset ? "arena released by reset()"
                                            : "access past the live arena");
    report(std::move(record));
    return;  // don't feed out-of-bounds bytes into the race shadow
  }

  if (shadow_.empty()) shadow_.resize(shared_capacity_);
  const auto w = static_cast<std::int8_t>(warp);

  // Initcheck: a read (or atomic RMW) of a byte no lane has written since
  // its alloc() reads __shared__ garbage on hardware — the simulator's
  // zero-fill is an artifact unless alloc_zeroed() declared the memset.
  if (kind != AccessKind::kWrite) {
    std::uint64_t first_undef = 0;
    std::size_t undef = 0;
    for (std::size_t i = 0; i < bytes; ++i) {
      const ShadowByte& s = shadow_[static_cast<std::size_t>(offset) + i];
      if (s.defined) continue;
      if (undef == 0) first_undef = offset + i;
      ++undef;
    }
    if (undef != 0) {
      HazardRecord record = make_record(HazardKind::kSharedUninitRead, warp);
      record.byte_offset = first_undef;
      record.extent = undef;
      record.detail = kind == AccessKind::kAtomic
                          ? "atomic RMW of never-written shared bytes"
                          : "read of never-written shared bytes";
      report(std::move(record));
    }
  }

  bool raced = false;
  int other = -1;
  for (std::size_t i = 0; i < bytes; ++i) {
    ShadowByte& s = shadow_[static_cast<std::size_t>(offset) + i];
    if (kind == AccessKind::kRead) {
      // Read vs same-epoch other-warp write (atomic or plain): the read is
      // unordered with the write until the next barrier.
      if (!raced && s.write_epoch == epoch_ && s.write_warp >= 0 &&
          s.write_warp != w) {
        raced = true;
        other = s.write_warp;
      }
      s.read_epoch = epoch_;
      s.read_warp = w;
    } else {
      const bool atomic = kind == AccessKind::kAtomic;
      // Write vs same-epoch other-warp write — unless both are atomic,
      // which hardware orders. Then write vs same-epoch other-warp read.
      if (!raced && s.write_epoch == epoch_ && s.write_warp >= 0 &&
          s.write_warp != w && !(atomic && s.write_atomic)) {
        raced = true;
        other = s.write_warp;
      }
      if (!raced && s.read_epoch == epoch_ && s.read_warp >= 0 &&
          s.read_warp != w) {
        raced = true;
        other = s.read_warp;
      }
      s.write_epoch = epoch_;
      s.write_warp = w;
      s.write_atomic = atomic;
      s.defined = true;
    }
  }
  if (!raced) return;
  HazardRecord record = make_record(HazardKind::kSharedRace, warp);
  record.other_warp = other;
  record.byte_offset = offset;
  record.extent = bytes;
  report(std::move(record));
}

void BlockChecker::global_access(int warp, std::uintptr_t addr,
                                 std::size_t bytes, AccessKind kind) {
  // Memcheck: the access must sit inside one live device allocation. The
  // one-entry cache makes the common (coalesced, same-buffer) case lock-free.
  if (addr < bounds_cache_begin_ || addr + bytes > bounds_cache_end_) {
    const DeviceRange range =
        DeviceMemoryRegistry::instance().find(addr, bytes);
    if (range.end == 0) {
      HazardRecord record = make_record(HazardKind::kGlobalOutOfBounds, warp);
      record.address = addr;
      record.extent = bytes;
      record.detail = "no registered device allocation covers this access";
      report(std::move(record));
      return;
    }
    bounds_cache_begin_ = range.begin;
    bounds_cache_end_ = range.end;
    bounds_cache_shadow_ = range.shadow;
  }

  // Initcheck: a read (or atomic RMW) of bytes undefined at launch entry
  // that this block has not written itself reads cudaMalloc garbage on
  // hardware. The registry shadow is immutable for the whole launch
  // (kernel writes are unioned in at finalize), so the verdict depends
  // only on pre-launch state + this block's own writes — deterministic for
  // any worker schedule. An all-defined allocation short-circuits on its
  // cached undefined_count.
  if (kind != AccessKind::kWrite && bounds_cache_shadow_ != nullptr &&
      bounds_cache_shadow_->undefined_count.load(std::memory_order_relaxed) !=
          0) {
    std::uintptr_t first_undef = 0;
    std::size_t undef = 0;
    for (std::size_t i = 0; i < bytes; ++i) {
      const std::uintptr_t byte = addr + i;
      if (bounds_cache_shadow_->defined[byte - bounds_cache_begin_] != 0)
        continue;
      const auto it = global_writes_.find(byte / kGranuleBytes);
      if (it != global_writes_.end()) {
        const auto bit =
            static_cast<std::uint8_t>(1u << (byte % kGranuleBytes));
        if (((it->second.plain | it->second.atomic) & bit) != 0) continue;
      }
      if (undef == 0) first_undef = byte;
      ++undef;
    }
    if (undef != 0) {
      HazardRecord record = make_record(HazardKind::kGlobalUninitRead, warp);
      record.address = first_undef;
      record.extent = undef;
      record.detail =
          kind == AccessKind::kAtomic
              ? "atomic RMW of device bytes never written or transferred"
              : "read of device bytes never written or transferred";
      report(std::move(record));
    }
  }

  if (kind == AccessKind::kRead) return;
  // Racecheck (global): remember which bytes this block wrote, and how.
  // Cross-block collisions are found after the launch, in block-id order.
  const std::uint8_t bit_kind = kind == AccessKind::kAtomic ? 1 : 0;
  for (std::size_t i = 0; i < bytes; ++i) {
    const std::uintptr_t byte = addr + i;
    GranuleWrites& g = global_writes_[byte / kGranuleBytes];
    const auto bit = static_cast<std::uint8_t>(1u << (byte % kGranuleBytes));
    if (bit_kind != 0)
      g.atomic |= bit;
    else
      g.plain |= bit;
  }
}

// ---------------------------------------------------------------------------
// LaunchChecker

LaunchChecker::LaunchChecker(std::string kernel, int grid_blocks)
    : kernel_(std::move(kernel)) {
  blocks_.reserve(static_cast<std::size_t>(grid_blocks));
  for (int b = 0; b < grid_blocks; ++b) blocks_.emplace_back(b);
}

std::uint64_t LaunchChecker::finalize(HazardReport& sink) {
  std::uint64_t found = 0;
  for (BlockChecker& block : blocks_) {
    HazardReport& local = block.local_;
    found += local.total;
    sink.collectives_checked += local.collectives_checked;
    if (!kernel_.empty()) sink.by_kernel[kernel_] += local.total;
    sink.total += local.total;
    for (int k = 0; k < kNumHazardKinds; ++k)
      sink.by_kind[static_cast<std::size_t>(k)] +=
          local.by_kind[static_cast<std::size_t>(k)];
    for (HazardRecord& record : local.records) {
      if (sink.records.size() >= HazardReport::kMaxRecords) break;
      record.kernel = kernel_;
      sink.records.push_back(std::move(record));
    }
  }
  find_cross_block_races(sink, found);

  // Initcheck: the launch's writes (plain or atomic, any block) define the
  // written device bytes for every later launch. Applied after the per-
  // block analysis so verdicts inside this launch never depended on it.
  if (device_shadow_enabled()) {
    std::unordered_map<std::uintptr_t, std::uint8_t> written;
    for (const BlockChecker& block : blocks_)
      for (const auto& [granule, writes] : block.global_writes_)
        written[granule] |=
            static_cast<std::uint8_t>(writes.plain | writes.atomic);
    DeviceMemoryRegistry::instance().define_written(written);
  }
  return found;
}

void LaunchChecker::find_cross_block_races(HazardReport& sink,
                                           std::uint64_t& found) {
  // Per byte (tracked per 8-byte granule with byte masks): the first two
  // distinct plain-writer blocks and the first two distinct atomic-writer
  // blocks, discovered in block-id order so attribution is deterministic.
  struct ByteWriters {
    std::array<std::int32_t, 8> plain0;
    std::array<std::int32_t, 8> plain1;
    std::array<std::int32_t, 8> atomic0;
    std::array<std::int32_t, 8> atomic1;
    ByteWriters() {
      plain0.fill(-1);
      plain1.fill(-1);
      atomic0.fill(-1);
      atomic1.fill(-1);
    }
  };
  std::unordered_map<std::uintptr_t, ByteWriters> merged;
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    const auto block = static_cast<std::int32_t>(b);
    for (const auto& [granule, writes] : blocks_[b].global_writes_) {
      ByteWriters& w = merged[granule];
      for (std::size_t byte = 0; byte < 8; ++byte) {
        const auto bit = static_cast<std::uint8_t>(1u << byte);
        if ((writes.plain & bit) != 0) {
          if (w.plain0[byte] < 0)
            w.plain0[byte] = block;
          else if (w.plain1[byte] < 0 && w.plain0[byte] != block)
            w.plain1[byte] = block;
        }
        if ((writes.atomic & bit) != 0) {
          if (w.atomic0[byte] < 0)
            w.atomic0[byte] = block;
          else if (w.atomic1[byte] < 0 && w.atomic0[byte] != block)
            w.atomic1[byte] = block;
        }
      }
    }
  }

  // Collect the offending bytes with their block pair, sort by address, and
  // coalesce adjacent bytes with the same pair into one record each — a
  // racing uint32 store reports once, not four times.
  struct Offender {
    std::uintptr_t addr;
    std::int32_t block_a;
    std::int32_t block_b;
  };
  std::vector<Offender> offenders;
  for (const auto& [granule, w] : merged) {
    for (std::size_t byte = 0; byte < 8; ++byte) {
      const std::int32_t p0 = w.plain0[byte];
      if (p0 < 0) continue;  // atomic-only (or unwritten) byte: no hazard
      std::int32_t other = -1;
      if (w.plain1[byte] >= 0) {
        other = w.plain1[byte];
      } else if (w.atomic0[byte] >= 0 && w.atomic0[byte] != p0) {
        other = w.atomic0[byte];
      } else if (w.atomic1[byte] >= 0 && w.atomic1[byte] != p0) {
        other = w.atomic1[byte];
      }
      if (other < 0) continue;
      offenders.push_back({granule * kGranuleBytes + byte, p0, other});
    }
  }
  std::sort(offenders.begin(), offenders.end(),
            [](const Offender& a, const Offender& b) {
              return a.addr < b.addr;
            });
  std::size_t i = 0;
  while (i < offenders.size()) {
    std::size_t j = i + 1;
    while (j < offenders.size() &&
           offenders[j].addr == offenders[j - 1].addr + 1 &&
           offenders[j].block_a == offenders[i].block_a &&
           offenders[j].block_b == offenders[i].block_b)
      ++j;
    HazardRecord record;
    record.kind = HazardKind::kGlobalRace;
    record.kernel = kernel_;
    record.block = offenders[i].block_b;
    record.other_block = offenders[i].block_a;
    record.address = offenders[i].addr;
    record.extent = j - i;
    record.detail = "plain stores from different blocks overlap";
    sink.add(std::move(record));
    ++found;
    i = j;
  }
}

}  // namespace repro::simt
