#include "simt/simtcheck.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "simt/device.hpp"

namespace repro::simt {

namespace {

/// Process-wide table of live device allocations, keyed by begin address.
/// DeviceAllocator registers/unregisters under a mutex; BlockChecker reads
/// under the same mutex but caches the last hit, so steady-state kernel
/// accesses rarely take the lock.
class DeviceMemoryRegistry {
 public:
  static DeviceMemoryRegistry& instance() {
    static DeviceMemoryRegistry registry;
    return registry;
  }

  void insert(std::uintptr_t begin, std::uintptr_t end) {
    const std::lock_guard<std::mutex> lock(mu_);
    ranges_[begin] = end;
  }
  void erase(std::uintptr_t begin) noexcept {
    const std::lock_guard<std::mutex> lock(mu_);
    ranges_.erase(begin);
  }
  /// Returns the [begin, end) allocation containing [addr, addr + bytes),
  /// or {0, 0} when the access lies in no live allocation.
  [[nodiscard]] std::pair<std::uintptr_t, std::uintptr_t> find(
      std::uintptr_t addr, std::size_t bytes) const {
    const std::lock_guard<std::mutex> lock(mu_);
    auto it = ranges_.upper_bound(addr);
    if (it == ranges_.begin()) return {0, 0};
    --it;
    if (addr >= it->first && addr + bytes <= it->second)
      return {it->first, it->second};
    return {0, 0};
  }

 private:
  mutable std::mutex mu_;
  std::map<std::uintptr_t, std::uintptr_t> ranges_;
};

constexpr std::uintptr_t kGranuleBytes = 8;

}  // namespace

const char* hazard_kind_name(HazardKind kind) {
  switch (kind) {
    case HazardKind::kSharedRace: return "shared-race";
    case HazardKind::kGlobalRace: return "global-race";
    case HazardKind::kDivergentCollective: return "divergent-collective";
    case HazardKind::kDivergentBarrier: return "divergent-barrier";
    case HazardKind::kSharedOutOfBounds: return "shared-oob";
    case HazardKind::kSharedUseAfterReset: return "shared-use-after-reset";
    case HazardKind::kGlobalOutOfBounds: return "global-oob";
  }
  return "unknown";
}

void HazardReport::add(HazardRecord record) {
  ++total;
  ++by_kind[static_cast<std::size_t>(record.kind)];
  if (!record.kernel.empty()) ++by_kernel[record.kernel];
  if (records.size() < kMaxRecords) records.push_back(std::move(record));
}

void HazardReport::clear() {
  total = 0;
  by_kind.fill(0);
  by_kernel.clear();
  records.clear();
  collectives_checked = 0;
}

std::string HazardReport::summary() const {
  std::ostringstream out;
  if (total == 0) {
    out << "simtcheck: 0 hazards (" << collectives_checked
        << " collectives checked)";
    return out.str();
  }
  out << "simtcheck: " << total << " hazard" << (total == 1 ? "" : "s");
  const char* sep = " (";
  for (int k = 0; k < kNumHazardKinds; ++k) {
    if (by_kind[static_cast<std::size_t>(k)] == 0) continue;
    out << sep << hazard_kind_name(static_cast<HazardKind>(k)) << " "
        << by_kind[static_cast<std::size_t>(k)];
    sep = ", ";
  }
  out << ")";
  for (const auto& [kernel, count] : by_kernel)
    out << "\n  kernel '" << kernel << "': " << count;
  const std::size_t shown = records.size();
  for (std::size_t i = 0; i < shown; ++i) {
    const HazardRecord& r = records[i];
    out << "\n  [" << hazard_kind_name(r.kind) << "] kernel '" << r.kernel
        << "' block " << r.block;
    if (r.warp >= 0) out << " warp " << r.warp;
    if (r.other_warp >= 0) out << " vs warp " << r.other_warp;
    if (r.other_block >= 0) out << " vs block " << r.other_block;
    switch (r.kind) {
      case HazardKind::kSharedRace:
      case HazardKind::kSharedOutOfBounds:
      case HazardKind::kSharedUseAfterReset:
        out << " epoch " << r.epoch << " shared+" << r.byte_offset << " ("
            << r.extent << " B)";
        break;
      case HazardKind::kGlobalRace:
      case HazardKind::kGlobalOutOfBounds:
        out << " addr 0x" << std::hex << r.address << std::dec << " ("
            << r.extent << " B)";
        break;
      case HazardKind::kDivergentCollective:
      case HazardKind::kDivergentBarrier:
        out << " mask 0x" << std::hex << r.active_mask << std::dec;
        if (r.width > 0) out << " width " << r.width;
        break;
    }
    if (!r.detail.empty()) out << " [" << r.detail << "]";
  }
  if (total > shown)
    out << "\n  ... and " << (total - shown) << " more";
  return out.str();
}

void register_device_allocation(const void* p, std::size_t bytes) {
  const auto begin = reinterpret_cast<std::uintptr_t>(p);
  DeviceMemoryRegistry::instance().insert(begin, begin + bytes);
}

void unregister_device_allocation(const void* p) noexcept {
  DeviceMemoryRegistry::instance().erase(
      reinterpret_cast<std::uintptr_t>(p));
}

bool is_device_address(const void* p, std::size_t bytes) {
  return DeviceMemoryRegistry::instance()
             .find(reinterpret_cast<std::uintptr_t>(p), bytes)
             .second != 0;
}

bool simtcheck_env_enabled() {
  const char* value = std::getenv("REPRO_SIMTCHECK");
  if (value == nullptr) return false;
  const std::string v(value);
  return !(v.empty() || v == "0" || v == "false" || v == "off");
}

// ---------------------------------------------------------------------------
// BlockChecker

HazardRecord BlockChecker::make_record(HazardKind kind, int warp) const {
  HazardRecord record;
  record.kind = kind;
  record.block = block_id_;
  record.warp = warp;
  record.epoch = epoch_;
  return record;
}

void BlockChecker::on_barrier(int warp, std::uint32_t mask) {
  if (mask == 0xffffffffu) return;
  HazardRecord record = make_record(HazardKind::kDivergentBarrier, warp);
  record.active_mask = mask;
  record.detail = "warp reached the implicit par() barrier divergent";
  report(std::move(record));
}

void BlockChecker::on_collective(int warp, std::uint32_t mask, int width,
                                 const char* what) {
  ++local_.collectives_checked;
  // Window collectives read peer lanes within each width-lane window
  // (warp.hpp documents the window-uniform mask assumption), so a window
  // that is neither fully active nor fully inactive makes an active lane
  // read an inactive peer — undefined on hardware. Fully inactive windows
  // are fine: none of their lanes execute.
  if (width <= 0) return;
  const auto m = static_cast<std::uint64_t>(mask);
  bool divergent = false;
  for (int base = 0; base < kWarpSize; base += width) {
    const std::uint64_t full =
        (std::uint64_t{1} << std::min(width, kWarpSize - base)) - 1;
    const std::uint64_t window = (m >> base) & full;
    if (window != 0 && window != full) {
      divergent = true;
      break;
    }
  }
  if (!divergent) return;
  HazardRecord record = make_record(HazardKind::kDivergentCollective, warp);
  record.active_mask = mask;
  record.width = width;
  record.detail = what;
  report(std::move(record));
}

void BlockChecker::shared_access(int warp, std::uintptr_t addr,
                                 std::size_t bytes, AccessKind kind,
                                 bool span_oob) {
  const std::uint64_t offset = addr - shared_base_;
  // Memcheck first: indexing past the owning span, or touching arena space
  // that is not currently allocated (past used_, or released by reset()).
  if (span_oob || offset + bytes > shared_used_) {
    const bool after_reset = !span_oob && shared_reset_seen_;
    HazardRecord record = make_record(
        after_reset ? HazardKind::kSharedUseAfterReset
                    : HazardKind::kSharedOutOfBounds,
        warp);
    record.byte_offset = offset;
    record.extent = bytes;
    record.detail = span_oob ? "index past the shared span"
                             : (after_reset ? "arena released by reset()"
                                            : "access past the live arena");
    report(std::move(record));
    return;  // don't feed out-of-bounds bytes into the race shadow
  }

  if (shadow_.empty()) shadow_.resize(shared_capacity_);
  const auto w = static_cast<std::int8_t>(warp);
  bool raced = false;
  int other = -1;
  for (std::size_t i = 0; i < bytes; ++i) {
    ShadowByte& s = shadow_[static_cast<std::size_t>(offset) + i];
    if (kind == AccessKind::kRead) {
      // Read vs same-epoch other-warp write (atomic or plain): the read is
      // unordered with the write until the next barrier.
      if (!raced && s.write_epoch == epoch_ && s.write_warp >= 0 &&
          s.write_warp != w) {
        raced = true;
        other = s.write_warp;
      }
      s.read_epoch = epoch_;
      s.read_warp = w;
    } else {
      const bool atomic = kind == AccessKind::kAtomic;
      // Write vs same-epoch other-warp write — unless both are atomic,
      // which hardware orders. Then write vs same-epoch other-warp read.
      if (!raced && s.write_epoch == epoch_ && s.write_warp >= 0 &&
          s.write_warp != w && !(atomic && s.write_atomic)) {
        raced = true;
        other = s.write_warp;
      }
      if (!raced && s.read_epoch == epoch_ && s.read_warp >= 0 &&
          s.read_warp != w) {
        raced = true;
        other = s.read_warp;
      }
      s.write_epoch = epoch_;
      s.write_warp = w;
      s.write_atomic = atomic;
    }
  }
  if (!raced) return;
  HazardRecord record = make_record(HazardKind::kSharedRace, warp);
  record.other_warp = other;
  record.byte_offset = offset;
  record.extent = bytes;
  report(std::move(record));
}

void BlockChecker::global_access(int warp, std::uintptr_t addr,
                                 std::size_t bytes, AccessKind kind) {
  // Memcheck: the access must sit inside one live device allocation. The
  // one-entry cache makes the common (coalesced, same-buffer) case lock-free.
  if (addr < bounds_cache_begin_ || addr + bytes > bounds_cache_end_) {
    const auto range = DeviceMemoryRegistry::instance().find(addr, bytes);
    if (range.second == 0) {
      HazardRecord record = make_record(HazardKind::kGlobalOutOfBounds, warp);
      record.address = addr;
      record.extent = bytes;
      record.detail = "no registered device allocation covers this access";
      report(std::move(record));
      return;
    }
    bounds_cache_begin_ = range.first;
    bounds_cache_end_ = range.second;
  }

  if (kind == AccessKind::kRead) return;
  // Racecheck (global): remember which bytes this block wrote, and how.
  // Cross-block collisions are found after the launch, in block-id order.
  const std::uint8_t bit_kind = kind == AccessKind::kAtomic ? 1 : 0;
  for (std::size_t i = 0; i < bytes; ++i) {
    const std::uintptr_t byte = addr + i;
    GranuleWrites& g = global_writes_[byte / kGranuleBytes];
    const auto bit = static_cast<std::uint8_t>(1u << (byte % kGranuleBytes));
    if (bit_kind != 0)
      g.atomic |= bit;
    else
      g.plain |= bit;
  }
}

// ---------------------------------------------------------------------------
// LaunchChecker

LaunchChecker::LaunchChecker(std::string kernel, int grid_blocks)
    : kernel_(std::move(kernel)) {
  blocks_.reserve(static_cast<std::size_t>(grid_blocks));
  for (int b = 0; b < grid_blocks; ++b) blocks_.emplace_back(b);
}

std::uint64_t LaunchChecker::finalize(HazardReport& sink) {
  std::uint64_t found = 0;
  for (BlockChecker& block : blocks_) {
    HazardReport& local = block.local_;
    found += local.total;
    sink.collectives_checked += local.collectives_checked;
    if (!kernel_.empty()) sink.by_kernel[kernel_] += local.total;
    sink.total += local.total;
    for (int k = 0; k < kNumHazardKinds; ++k)
      sink.by_kind[static_cast<std::size_t>(k)] +=
          local.by_kind[static_cast<std::size_t>(k)];
    for (HazardRecord& record : local.records) {
      if (sink.records.size() >= HazardReport::kMaxRecords) break;
      record.kernel = kernel_;
      sink.records.push_back(std::move(record));
    }
  }
  find_cross_block_races(sink, found);
  return found;
}

void LaunchChecker::find_cross_block_races(HazardReport& sink,
                                           std::uint64_t& found) {
  // Per byte (tracked per 8-byte granule with byte masks): the first two
  // distinct plain-writer blocks and the first two distinct atomic-writer
  // blocks, discovered in block-id order so attribution is deterministic.
  struct ByteWriters {
    std::array<std::int32_t, 8> plain0;
    std::array<std::int32_t, 8> plain1;
    std::array<std::int32_t, 8> atomic0;
    std::array<std::int32_t, 8> atomic1;
    ByteWriters() {
      plain0.fill(-1);
      plain1.fill(-1);
      atomic0.fill(-1);
      atomic1.fill(-1);
    }
  };
  std::unordered_map<std::uintptr_t, ByteWriters> merged;
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    const auto block = static_cast<std::int32_t>(b);
    for (const auto& [granule, writes] : blocks_[b].global_writes_) {
      ByteWriters& w = merged[granule];
      for (std::size_t byte = 0; byte < 8; ++byte) {
        const auto bit = static_cast<std::uint8_t>(1u << byte);
        if ((writes.plain & bit) != 0) {
          if (w.plain0[byte] < 0)
            w.plain0[byte] = block;
          else if (w.plain1[byte] < 0 && w.plain0[byte] != block)
            w.plain1[byte] = block;
        }
        if ((writes.atomic & bit) != 0) {
          if (w.atomic0[byte] < 0)
            w.atomic0[byte] = block;
          else if (w.atomic1[byte] < 0 && w.atomic0[byte] != block)
            w.atomic1[byte] = block;
        }
      }
    }
  }

  // Collect the offending bytes with their block pair, sort by address, and
  // coalesce adjacent bytes with the same pair into one record each — a
  // racing uint32 store reports once, not four times.
  struct Offender {
    std::uintptr_t addr;
    std::int32_t block_a;
    std::int32_t block_b;
  };
  std::vector<Offender> offenders;
  for (const auto& [granule, w] : merged) {
    for (std::size_t byte = 0; byte < 8; ++byte) {
      const std::int32_t p0 = w.plain0[byte];
      if (p0 < 0) continue;  // atomic-only (or unwritten) byte: no hazard
      std::int32_t other = -1;
      if (w.plain1[byte] >= 0) {
        other = w.plain1[byte];
      } else if (w.atomic0[byte] >= 0 && w.atomic0[byte] != p0) {
        other = w.atomic0[byte];
      } else if (w.atomic1[byte] >= 0 && w.atomic1[byte] != p0) {
        other = w.atomic1[byte];
      }
      if (other < 0) continue;
      offenders.push_back({granule * kGranuleBytes + byte, p0, other});
    }
  }
  std::sort(offenders.begin(), offenders.end(),
            [](const Offender& a, const Offender& b) {
              return a.addr < b.addr;
            });
  std::size_t i = 0;
  while (i < offenders.size()) {
    std::size_t j = i + 1;
    while (j < offenders.size() &&
           offenders[j].addr == offenders[j - 1].addr + 1 &&
           offenders[j].block_a == offenders[i].block_a &&
           offenders[j].block_b == offenders[i].block_b)
      ++j;
    HazardRecord record;
    record.kind = HazardKind::kGlobalRace;
    record.kernel = kernel_;
    record.block = offenders[i].block_b;
    record.other_block = offenders[i].block_a;
    record.address = offenders[i].addr;
    record.extent = j - i;
    record.detail = "plain stores from different blocks overlap";
    sink.add(std::move(record));
    ++found;
    i = j;
  }
}

}  // namespace repro::simt
