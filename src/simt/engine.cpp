#include "simt/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace repro::simt {

Engine::Engine(DeviceSpec spec, CostModel cost)
    : spec_(spec), cost_(cost),
      simtcheck_enabled_(simtcheck_env_enabled()) {
  if (simtcheck_enabled_) set_device_shadow_enabled(true);
  sm_caches_.reserve(static_cast<std::size_t>(spec_.num_sms));
  for (int i = 0; i < spec_.num_sms; ++i)
    sm_caches_.emplace_back(spec_.readonly_cache_bytes,
                            spec_.memory_transaction_bytes);
}

void Engine::set_readonly_cache_enabled(bool enabled) {
  rocache_enabled_ = enabled;
}

void Engine::set_workers(int workers) {
  workers_ = std::clamp(workers, 1, spec_.num_sms);
  if (workers_ > 1) {
    if (!pool_ || pool_->size() != static_cast<std::size_t>(workers_))
      pool_ = std::make_unique<util::ThreadPool>(
          static_cast<std::size_t>(workers_), "engine");
  } else {
    pool_.reset();
  }
}

void Engine::reset_caches() {
  for (auto& cache : sm_caches_) cache.clear();
}

int Engine::validate_launch(const LaunchConfig& config) const {
  // "simt.launch" models a launch-time device error (cudaErrorLaunchFailure).
  if (util::fault_point("simt.launch"))
    throw DeviceError("injected launch failure in kernel '" + config.name +
                      "'");
  if (config.block_threads <= 0 || config.block_threads % kWarpSize != 0)
    throw std::invalid_argument(
        "Engine::launch: block_threads must be a positive multiple of 32");
  if (config.grid_blocks <= 0)
    throw std::invalid_argument("Engine::launch: grid_blocks must be > 0");
  if (config.block_threads > spec_.max_threads_per_block)
    throw std::invalid_argument(
        "Engine::launch: block_threads exceeds device limit");
  return config.block_threads / kWarpSize;
}

KernelStats Engine::begin_stats(const LaunchConfig& config) const {
  KernelStats stats;
  stats.name = config.name;
  stats.block_threads = config.block_threads;
  stats.regs_per_thread = config.regs_per_thread;
  stats.num_blocks = static_cast<std::uint64_t>(config.grid_blocks);
  return stats;
}

KernelStats Engine::finalize_launch(const LaunchConfig& config,
                                    KernelStats stats,
                                    std::size_t shared_high_water) {
  stats.shared_bytes = shared_high_water;
  stats.occupancy =
      compute_occupancy(spec_, config.block_threads, shared_high_water,
                        config.regs_per_thread)
          .occupancy;
  cost_.apply(spec_, stats);
  profile_.add(stats);

  // Export-side observability only: these counters feed the metrics
  // registry, never back into KernelStats or the cost model.
  static auto& launches =
      util::metrics::Registry::instance().counter("engine.launches");
  static auto& blocks =
      util::metrics::Registry::instance().counter("engine.blocks_executed");
  static auto& modeled_ms = util::metrics::Registry::instance().histogram(
      "engine.modeled_kernel_ms");
  launches.add(1);
  blocks.add(stats.num_blocks);
  modeled_ms.observe(stats.time_ms);
  return stats;
}

double Engine::transfer(const std::string& label, std::uint64_t bytes) {
  util::TraceSpan span(label, "pcie");
  // "simt.transfer" models a failed cudaMemcpy.
  if (util::fault_point("simt.transfer"))
    throw DeviceError("injected transfer failure for '" + label + "'");
  const double ms = cost_.transfer_ms(spec_, bytes);
  KernelStats stats;
  stats.name = label;
  stats.st_bytes_requested = bytes;
  stats.time_ms = ms;
  profile_.add(stats);
  if (span.active()) {
    span.arg("bytes", bytes);
    span.arg("modeled_ms", ms);
  }
  static auto& transfers =
      util::metrics::Registry::instance().counter("engine.transfers");
  static auto& transfer_bytes =
      util::metrics::Registry::instance().counter("engine.transfer_bytes");
  transfers.add(1);
  transfer_bytes.add(bytes);
  return ms;
}

}  // namespace repro::simt
