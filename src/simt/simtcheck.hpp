// simtcheck: a racecheck/synccheck/memcheck-style hazard analyzer for the
// software SIMT engine (the cuda-memcheck tool family, re-homed).
//
// The engine executes the warps of a block *serially* inside BlockCtx::par,
// so a kernel with a genuine inter-warp shared-memory race, a collective
// under a divergent mask, or an un-atomic cross-block global store produces
// correct results here while being broken on a real GPU. This analyzer
// makes those latent hazards visible:
//
//  - Racecheck (shared): every byte of the shared-memory arena carries
//    shadow state (last writer/reader warp, last access epoch, atomicity).
//    BlockCtx::par advances a barrier epoch per region; a write paired with
//    any other-warp access to the same byte in the same epoch is a race —
//    the two accesses are unordered between barriers on hardware.
//  - Racecheck (global): plain (non-atomic) stores are tracked per block at
//    byte granularity; after the launch, bytes written plainly by two
//    different blocks (or plainly by one and atomically by another) are
//    cross-block races. Atomic/atomic collisions are fine.
//  - Synccheck: window collectives record the active mask; a window that is
//    partially active reads inactive peers' registers — undefined on
//    hardware (warp.hpp documents the window-uniform assumption). The
//    implicit par() barrier likewise flags a warp arriving divergent.
//  - Memcheck: accesses past a shared span, into a released (reset())
//    arena, or outside any registered DeviceAllocator allocation.
//  - Initcheck: every byte of a device allocation (and of a plain shared
//    alloc()) starts *undefined* — the simulator's physical zero-fill is an
//    artifact cudaMalloc and __shared__ do not grant. Bytes become defined
//    when real host data is staged in (DeviceAllocator's construct hook,
//    mark_device_initialized), when a kernel writes them, or when the
//    kernel declares a cooperative memset with SharedMemory::alloc_zeroed.
//    A read (or atomic RMW) of a still-undefined byte is garbage on
//    hardware and is flagged. Per block the verdict depends only on the
//    registry state at launch entry plus the block's own prior writes, so
//    reports stay bit-identical for any worker count.
//  - Leakcheck: allocations carry a thread-local site tag, a session
//    generation, and a resident flag; device_leak_check() reports live
//    non-resident allocations that outlived their query or session.
//
// Determinism: hazards are detected per block (blocks run on exactly one
// worker each; warps within a block run serially in warp order) and merged
// in block-id order after the launch, so counts and records are
// bit-identical for any engine worker count. When the checker is disabled,
// every instrumentation site is a single `if (check_ != nullptr)` test on
// the hot path and no counter changes — metrics and the cost model stay
// bit-identical to an unchecked build.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace repro::simt {

enum class HazardKind {
  kSharedRace = 0,        ///< same-epoch inter-warp shared conflict
  kGlobalRace,            ///< cross-block plain-store collision
  kDivergentCollective,   ///< window collective under a partial window mask
  kDivergentBarrier,      ///< warp reached the par() barrier divergent
  kSharedOutOfBounds,     ///< access past a shared span / the live arena
  kSharedUseAfterReset,   ///< access into arena space released by reset()
  kGlobalOutOfBounds,     ///< access outside every registered device buffer
  kSharedUninitRead,      ///< read of a never-written shared byte (initcheck)
  kGlobalUninitRead,      ///< read of an undefined device byte (initcheck)
  kDeviceLeak,            ///< allocation outlived its query (leakcheck)
  kLockOrderInversion,    ///< host lock-order cycle (svccheck)
  kBlockedWhileLocked,    ///< host wait holding another lock (svccheck)
  kCheckpointGap,         ///< cancellation checkpoint never polled (svccheck)
};
inline constexpr int kNumHazardKinds = 13;

[[nodiscard]] const char* hazard_kind_name(HazardKind kind);

/// How an instrumented access touches memory (shadow-state input).
enum class AccessKind : std::uint8_t { kRead = 0, kWrite, kAtomic };

/// One detailed hazard: enough to point at the offending kernel source.
struct HazardRecord {
  HazardKind kind = HazardKind::kSharedRace;
  std::string kernel;
  int block = -1;       ///< block that detected the hazard (second accessor)
  int warp = -1;        ///< warp of the detecting access (-1 if n/a)
  int other_warp = -1;  ///< conflicting warp (shared races)
  int other_block = -1; ///< conflicting block (global races)
  std::uint32_t epoch = 0;        ///< barrier epoch (shared hazards)
  std::uint64_t byte_offset = 0;  ///< shared-arena byte offset
  std::uintptr_t address = 0;     ///< global address (0 for shared hazards)
  std::size_t extent = 0;         ///< bytes covered by the hazard
  std::uint32_t active_mask = 0;  ///< divergence hazards: the mask seen
  int width = 0;                  ///< collective window width
  std::string detail;             ///< e.g. the collective's name
};

/// Accumulated hazards: per-kind and per-kernel counts plus the first few
/// detailed records (the cuda-memcheck "first N errors" contract).
struct HazardReport {
  static constexpr std::size_t kMaxRecords = 64;

  std::uint64_t total = 0;
  std::array<std::uint64_t, kNumHazardKinds> by_kind{};
  std::map<std::string, std::uint64_t> by_kernel;
  std::vector<HazardRecord> records;  ///< first kMaxRecords, in detection order
  std::uint64_t collectives_checked = 0;  ///< synccheck coverage counter

  [[nodiscard]] std::uint64_t count(HazardKind kind) const {
    return by_kind[static_cast<std::size_t>(kind)];
  }
  void add(HazardRecord record);
  /// Folds `other` into this report (counts sum, records append up to
  /// kMaxRecords) — how the service aggregates per-request reports.
  void merge(const HazardReport& other);
  void clear();
  /// Human-readable multi-line summary (empty-report safe).
  [[nodiscard]] std::string summary() const;
};

/// Registers a live DeviceAllocator allocation with the memcheck range
/// table. Called by DeviceAllocator for every allocation, checker or not
/// (the cost is one mutex-guarded map update per cudaMalloc analogue).
/// The entry also captures the thread's DeviceAllocSite tag, the current
/// device generation, the DeviceResidentScope flag, and — when the sticky
/// initcheck switch is on — a per-byte definedness shadow.
void register_device_allocation(const void* p, std::size_t bytes);
void unregister_device_allocation(const void* p) noexcept;

/// True iff [p, p + bytes) lies inside one live device allocation. Lets
/// host-side launchers decide whether a caller's buffer needs staging into
/// a DeviceVector before kernels may touch it.
[[nodiscard]] bool is_device_address(const void* p, std::size_t bytes);

/// Reads REPRO_SIMTCHECK from the environment ("1"/"true"/"on" enable).
[[nodiscard]] bool simtcheck_env_enabled();

// ---------------------------------------------------------------------------
// Initcheck: per-allocation definedness shadows.

/// Per-allocation definedness shadow. Allocated at registration when the
/// device-shadow switch is on (allocations made before the switch carry no
/// shadow and are grandfathered all-defined). Bytes flip to defined on
/// transfer-style construction (DeviceAllocator::construct with a value),
/// explicit mark_device_initialized calls, and kernel writes (unioned into
/// the shadow at launch finalize). During a launch the `defined` bytes are
/// immutable — workers read them lock-free through a cached shared_ptr.
struct DeviceShadow {
  std::vector<std::uint8_t> defined;  ///< one flag byte per buffer byte
  std::atomic<std::uint64_t> undefined_count{0};
};

/// [begin, end) of the allocation covering an access, plus its shadow
/// (null: no live allocation, or a pre-switch/grandfathered one).
struct DeviceRange {
  std::uintptr_t begin = 0;
  std::uintptr_t end = 0;
  std::shared_ptr<DeviceShadow> shadow;
};

/// Sticky process-wide initcheck switch. Engine::set_simtcheck_enabled(true)
/// turns it on so every allocation made from then on carries a shadow;
/// turning it off stops shadowing new allocations but existing shadows keep
/// tracking (they are still correct, just no longer reported).
void set_device_shadow_enabled(bool enabled);
[[nodiscard]] bool device_shadow_enabled();

/// Marks [p, p + bytes) of a live device allocation defined — the analogue
/// of cudaMemcpy/cudaMemset landing real bytes in device memory. Use after
/// host-side element-loop staging (operator[] writes bypass the allocator's
/// construct hook). No-op while the shadow switch is off.
void mark_device_initialized(const void* p, std::size_t bytes);

// ---------------------------------------------------------------------------
// Leakcheck: allocation sites, generations, residency.

/// RAII allocation-site tag: device allocations made on this thread while
/// the scope is alive are attributed to `site` (a string literal; the
/// registry stores the pointer). Scopes nest; the innermost wins.
class DeviceAllocSite {
 public:
  explicit DeviceAllocSite(const char* site);
  ~DeviceAllocSite();
  DeviceAllocSite(const DeviceAllocSite&) = delete;
  DeviceAllocSite& operator=(const DeviceAllocSite&) = delete;

 private:
  const char* prev_;
};

/// RAII residency scope: allocations made on this thread while the scope is
/// alive are session-resident (the device DB image, uploaded once and
/// legitimately outliving every query) and excluded from leak scans.
class DeviceResidentScope {
 public:
  DeviceResidentScope();
  ~DeviceResidentScope();
  DeviceResidentScope(const DeviceResidentScope&) = delete;
  DeviceResidentScope& operator=(const DeviceResidentScope&) = delete;

 private:
  bool prev_;
};

/// Bumps the process-wide device generation and returns the new value.
/// Allocations stamp the generation current at their creation; a leak scan
/// with `min_generation` set to a query/session entry value sees exactly
/// the allocations made since that point.
std::uint64_t begin_device_generation();
[[nodiscard]] std::uint64_t current_device_generation();

/// Live-allocation accounting, for "destroyed session holds nothing" tests.
struct DeviceAllocationStats {
  std::uint64_t live_allocations = 0;
  std::uint64_t live_bytes = 0;
  std::uint64_t resident_allocations = 0;
  std::uint64_t resident_bytes = 0;
};
[[nodiscard]] DeviceAllocationStats device_allocation_stats();

/// Leakcheck scan: appends one kDeviceLeak record per allocation site that
/// still owns live non-resident allocations of generation >=
/// `min_generation`, in site-name order (deterministic; record addresses
/// are left 0 so reports compare bit-identical across runs). Returns the
/// total leaked bytes.
std::uint64_t device_leak_check(HazardReport& sink,
                                std::uint64_t min_generation);

/// Per-block analyzer state. Each block runs on exactly one worker and its
/// warps run serially, so no locking is needed; results merge in block-id
/// order inside LaunchChecker::finalize.
class BlockChecker {
 public:
  explicit BlockChecker(int block_id) : block_id_(block_id) {}

  // -- wiring (BlockCtx / SharedMemory) ----------------------------------
  void attach_shared(const std::uint8_t* base, std::size_t capacity) {
    shared_base_ = reinterpret_cast<std::uintptr_t>(base);
    shared_capacity_ = capacity;
  }
  /// A shared alloc grew the arena from `old_used` to `new_used` bytes.
  /// `zeroed` distinguishes alloc_zeroed (a declared cooperative memset:
  /// bytes start defined) from plain alloc (__shared__ garbage: bytes start
  /// undefined until some lane writes them).
  void on_shared_alloc(std::size_t old_used, std::size_t new_used,
                       bool zeroed);
  void on_shared_reset() {
    shared_used_ = 0;
    shared_reset_seen_ = true;
  }

  // -- synccheck ---------------------------------------------------------
  void begin_region() { ++epoch_; }
  void on_barrier(int warp, std::uint32_t mask);
  void on_collective(int warp, std::uint32_t mask, int width,
                     const char* what);

  // -- racecheck + memcheck: shared arena --------------------------------
  /// An active lane touched [addr, addr + bytes) of the shared arena.
  /// `span_oob` marks an index already past the owning span's extent.
  void shared_access(int warp, std::uintptr_t addr, std::size_t bytes,
                     AccessKind kind, bool span_oob);

  // -- racecheck + memcheck: global buffers ------------------------------
  void global_access(int warp, std::uintptr_t addr, std::size_t bytes,
                     AccessKind kind);

 private:
  friend class LaunchChecker;

  struct ShadowByte {
    std::uint32_t write_epoch = 0;
    std::uint32_t read_epoch = 0;
    std::int8_t write_warp = -1;
    std::int8_t read_warp = -1;
    bool write_atomic = false;
    bool defined = true;  ///< initcheck; alloc() poisons its range to false
  };

  /// Per-8-byte-granule plain/atomic write masks (one bit per byte).
  /// DeviceAllocator aligns to 128 bytes, so a granule never spans two
  /// allocations; byte masks keep adjacent-element writes from aliasing.
  struct GranuleWrites {
    std::uint8_t plain = 0;
    std::uint8_t atomic = 0;
  };

  HazardRecord make_record(HazardKind kind, int warp) const;
  void report(HazardRecord record) { local_.add(std::move(record)); }

  int block_id_;
  std::uint32_t epoch_ = 0;
  std::uintptr_t shared_base_ = 0;
  std::size_t shared_capacity_ = 0;
  std::size_t shared_used_ = 0;
  bool shared_reset_seen_ = false;
  std::vector<ShadowByte> shadow_;  ///< lazily sized to the arena capacity

  std::unordered_map<std::uintptr_t, GranuleWrites> global_writes_;
  std::uintptr_t bounds_cache_begin_ = 0;  ///< last allocation hit
  std::uintptr_t bounds_cache_end_ = 0;
  std::shared_ptr<DeviceShadow> bounds_cache_shadow_;  ///< of the last hit

  HazardReport local_;
};

/// Per-launch analyzer: one BlockChecker slot per block (workers touch
/// disjoint slots), plus the post-launch cross-block store analysis.
class LaunchChecker {
 public:
  LaunchChecker(std::string kernel, int grid_blocks);

  [[nodiscard]] BlockChecker& block(int b) {
    return blocks_[static_cast<std::size_t>(b)];
  }

  /// Merges per-block hazards in block-id order, runs the cross-block
  /// global race analysis, and appends everything into `sink`. Returns the
  /// number of hazards this launch contributed.
  std::uint64_t finalize(HazardReport& sink);

 private:
  void find_cross_block_races(HazardReport& sink, std::uint64_t& found);

  std::string kernel_;
  std::vector<BlockChecker> blocks_;
};

}  // namespace repro::simt
