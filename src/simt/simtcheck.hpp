// simtcheck: a racecheck/synccheck/memcheck-style hazard analyzer for the
// software SIMT engine (the cuda-memcheck tool family, re-homed).
//
// The engine executes the warps of a block *serially* inside BlockCtx::par,
// so a kernel with a genuine inter-warp shared-memory race, a collective
// under a divergent mask, or an un-atomic cross-block global store produces
// correct results here while being broken on a real GPU. This analyzer
// makes those latent hazards visible:
//
//  - Racecheck (shared): every byte of the shared-memory arena carries
//    shadow state (last writer/reader warp, last access epoch, atomicity).
//    BlockCtx::par advances a barrier epoch per region; a write paired with
//    any other-warp access to the same byte in the same epoch is a race —
//    the two accesses are unordered between barriers on hardware.
//  - Racecheck (global): plain (non-atomic) stores are tracked per block at
//    byte granularity; after the launch, bytes written plainly by two
//    different blocks (or plainly by one and atomically by another) are
//    cross-block races. Atomic/atomic collisions are fine.
//  - Synccheck: window collectives record the active mask; a window that is
//    partially active reads inactive peers' registers — undefined on
//    hardware (warp.hpp documents the window-uniform assumption). The
//    implicit par() barrier likewise flags a warp arriving divergent.
//  - Memcheck: accesses past a shared span, into a released (reset())
//    arena, or outside any registered DeviceAllocator allocation.
//
// Determinism: hazards are detected per block (blocks run on exactly one
// worker each; warps within a block run serially in warp order) and merged
// in block-id order after the launch, so counts and records are
// bit-identical for any engine worker count. When the checker is disabled,
// every instrumentation site is a single `if (check_ != nullptr)` test on
// the hot path and no counter changes — metrics and the cost model stay
// bit-identical to an unchecked build.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace repro::simt {

enum class HazardKind {
  kSharedRace = 0,        ///< same-epoch inter-warp shared conflict
  kGlobalRace,            ///< cross-block plain-store collision
  kDivergentCollective,   ///< window collective under a partial window mask
  kDivergentBarrier,      ///< warp reached the par() barrier divergent
  kSharedOutOfBounds,     ///< access past a shared span / the live arena
  kSharedUseAfterReset,   ///< access into arena space released by reset()
  kGlobalOutOfBounds,     ///< access outside every registered device buffer
};
inline constexpr int kNumHazardKinds = 7;

[[nodiscard]] const char* hazard_kind_name(HazardKind kind);

/// How an instrumented access touches memory (shadow-state input).
enum class AccessKind : std::uint8_t { kRead = 0, kWrite, kAtomic };

/// One detailed hazard: enough to point at the offending kernel source.
struct HazardRecord {
  HazardKind kind = HazardKind::kSharedRace;
  std::string kernel;
  int block = -1;       ///< block that detected the hazard (second accessor)
  int warp = -1;        ///< warp of the detecting access (-1 if n/a)
  int other_warp = -1;  ///< conflicting warp (shared races)
  int other_block = -1; ///< conflicting block (global races)
  std::uint32_t epoch = 0;        ///< barrier epoch (shared hazards)
  std::uint64_t byte_offset = 0;  ///< shared-arena byte offset
  std::uintptr_t address = 0;     ///< global address (0 for shared hazards)
  std::size_t extent = 0;         ///< bytes covered by the hazard
  std::uint32_t active_mask = 0;  ///< divergence hazards: the mask seen
  int width = 0;                  ///< collective window width
  std::string detail;             ///< e.g. the collective's name
};

/// Accumulated hazards: per-kind and per-kernel counts plus the first few
/// detailed records (the cuda-memcheck "first N errors" contract).
struct HazardReport {
  static constexpr std::size_t kMaxRecords = 64;

  std::uint64_t total = 0;
  std::array<std::uint64_t, kNumHazardKinds> by_kind{};
  std::map<std::string, std::uint64_t> by_kernel;
  std::vector<HazardRecord> records;  ///< first kMaxRecords, in detection order
  std::uint64_t collectives_checked = 0;  ///< synccheck coverage counter

  [[nodiscard]] std::uint64_t count(HazardKind kind) const {
    return by_kind[static_cast<std::size_t>(kind)];
  }
  void add(HazardRecord record);
  void clear();
  /// Human-readable multi-line summary (empty-report safe).
  [[nodiscard]] std::string summary() const;
};

/// Registers a live DeviceAllocator allocation with the memcheck range
/// table. Called by DeviceAllocator for every allocation, checker or not
/// (the cost is one mutex-guarded map update per cudaMalloc analogue).
void register_device_allocation(const void* p, std::size_t bytes);
void unregister_device_allocation(const void* p) noexcept;

/// True iff [p, p + bytes) lies inside one live device allocation. Lets
/// host-side launchers decide whether a caller's buffer needs staging into
/// a DeviceVector before kernels may touch it.
[[nodiscard]] bool is_device_address(const void* p, std::size_t bytes);

/// Reads REPRO_SIMTCHECK from the environment ("1"/"true"/"on" enable).
[[nodiscard]] bool simtcheck_env_enabled();

/// Per-block analyzer state. Each block runs on exactly one worker and its
/// warps run serially, so no locking is needed; results merge in block-id
/// order inside LaunchChecker::finalize.
class BlockChecker {
 public:
  explicit BlockChecker(int block_id) : block_id_(block_id) {}

  // -- wiring (BlockCtx / SharedMemory) ----------------------------------
  void attach_shared(const std::uint8_t* base, std::size_t capacity) {
    shared_base_ = reinterpret_cast<std::uintptr_t>(base);
    shared_capacity_ = capacity;
  }
  void on_shared_alloc(std::size_t used) { shared_used_ = used; }
  void on_shared_reset() {
    shared_used_ = 0;
    shared_reset_seen_ = true;
  }

  // -- synccheck ---------------------------------------------------------
  void begin_region() { ++epoch_; }
  void on_barrier(int warp, std::uint32_t mask);
  void on_collective(int warp, std::uint32_t mask, int width,
                     const char* what);

  // -- racecheck + memcheck: shared arena --------------------------------
  /// An active lane touched [addr, addr + bytes) of the shared arena.
  /// `span_oob` marks an index already past the owning span's extent.
  void shared_access(int warp, std::uintptr_t addr, std::size_t bytes,
                     AccessKind kind, bool span_oob);

  // -- racecheck + memcheck: global buffers ------------------------------
  void global_access(int warp, std::uintptr_t addr, std::size_t bytes,
                     AccessKind kind);

 private:
  friend class LaunchChecker;

  struct ShadowByte {
    std::uint32_t write_epoch = 0;
    std::uint32_t read_epoch = 0;
    std::int8_t write_warp = -1;
    std::int8_t read_warp = -1;
    bool write_atomic = false;
  };

  /// Per-8-byte-granule plain/atomic write masks (one bit per byte).
  /// DeviceAllocator aligns to 128 bytes, so a granule never spans two
  /// allocations; byte masks keep adjacent-element writes from aliasing.
  struct GranuleWrites {
    std::uint8_t plain = 0;
    std::uint8_t atomic = 0;
  };

  HazardRecord make_record(HazardKind kind, int warp) const;
  void report(HazardRecord record) { local_.add(std::move(record)); }

  int block_id_;
  std::uint32_t epoch_ = 0;
  std::uintptr_t shared_base_ = 0;
  std::size_t shared_capacity_ = 0;
  std::size_t shared_used_ = 0;
  bool shared_reset_seen_ = false;
  std::vector<ShadowByte> shadow_;  ///< lazily sized to the arena capacity

  std::unordered_map<std::uintptr_t, GranuleWrites> global_writes_;
  std::uintptr_t bounds_cache_begin_ = 0;  ///< last allocation hit
  std::uintptr_t bounds_cache_end_ = 0;

  HazardReport local_;
};

/// Per-launch analyzer: one BlockChecker slot per block (workers touch
/// disjoint slots), plus the post-launch cross-block store analysis.
class LaunchChecker {
 public:
  LaunchChecker(std::string kernel, int grid_blocks);

  [[nodiscard]] BlockChecker& block(int b) {
    return blocks_[static_cast<std::size_t>(b)];
  }

  /// Merges per-block hazards in block-id order, runs the cross-block
  /// global race analysis, and appends everything into `sink`. Returns the
  /// number of hazards this launch contributed.
  std::uint64_t finalize(HazardReport& sink);

 private:
  void find_cross_block_races(HazardReport& sink, std::uint64_t& found);

  std::string kernel_;
  std::vector<BlockChecker> blocks_;
};

}  // namespace repro::simt
