// 128-byte-aligned host vectors standing in for cudaMalloc'd device
// buffers. cudaMalloc guarantees at least 256-byte alignment; without it a
// perfectly coalesced warp access straddles two 128-byte segments and load
// efficiency is halved — the same artifact appears in this simulation if
// device data lives in ordinary std::vector storage, so use DeviceVector
// for anything kernels index.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>
#include <vector>

#include "util/fault.hpp"

namespace repro::simt {

// Memcheck range table (simtcheck.cpp). Declared here, not included, to
// keep this header light; every allocation is registered so the hazard
// analyzer can validate kernel accesses against live buffer extents.
void register_device_allocation(const void* p, std::size_t bytes);
void unregister_device_allocation(const void* p) noexcept;

// Initcheck definedness (simtcheck.cpp; see simtcheck.hpp for the model).
void mark_device_initialized(const void* p, std::size_t bytes);

namespace simtcheck_detail {
// Sticky initcheck switch, defined in simtcheck.cpp. Declared extern so
// the construct hook's disabled cost is one inlined relaxed load.
extern std::atomic<bool> device_shadow_flag;
}  // namespace simtcheck_detail

template <class T>
struct DeviceAllocator {
  using value_type = T;
  static constexpr std::size_t kAlignment = 128;

  DeviceAllocator() = default;
  template <class U>
  DeviceAllocator(const DeviceAllocator<U>&) {}  // NOLINT(google-explicit-constructor)

  T* allocate(std::size_t n) {
    // "simt.alloc" models cudaMalloc returning cudaErrorMemoryAllocation.
    if (util::fault_point("simt.alloc")) throw std::bad_alloc();
    const std::size_t bytes =
        (n * sizeof(T) + kAlignment - 1) / kAlignment * kAlignment;
    void* p = std::aligned_alloc(kAlignment, bytes);
    if (p == nullptr) throw std::bad_alloc();
    // Register the requested extent (not the rounded one): an off-by-one
    // past the buffer is then a memcheck hazard, while the physical padding
    // keeps the simulated access itself memory-safe.
    register_device_allocation(p, n * sizeof(T));
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept {
    unregister_device_allocation(p);
    std::free(p);
  }

  /// Initcheck hook: constructing an element *with* a value models staging
  /// real host data into the buffer (the cudaMemcpy/cudaMemset analogue),
  /// so those bytes become defined. Value-construction (vector(n), resize)
  /// models cudaMalloc leaving garbage — physically the element is still
  /// zeroed (results never change), but the definedness shadow keeps it
  /// poisoned until a kernel write or mark_device_initialized defines it.
  template <class U, class... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
    if constexpr (sizeof...(Args) > 0) {
      if (simtcheck_detail::device_shadow_flag.load(std::memory_order_relaxed))
        mark_device_initialized(p, sizeof(U));
    }
  }

  template <class U>
  bool operator==(const DeviceAllocator<U>&) const {
    return true;
  }
};

/// A host-side stand-in for a device global-memory buffer.
template <class T>
using DeviceVector = std::vector<T, DeviceAllocator<T>>;

}  // namespace repro::simt
