#include "simt/simtprof.hpp"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/json.hpp"
#include "util/table.hpp"

namespace repro::simt::prof {

namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// Display order for phases that tie on modeled time (typically all-zero):
/// pipeline order, so the table reads like Fig. 12.
int phase_rank(const std::string& phase) {
  static constexpr const char* kOrder[] = {
      "prefilter", "coarse",    "hit_detection", "sorting", "filtering",
      "extension", "gapped",    "h2d",           "d2h",     "other"};
  for (int i = 0; i < static_cast<int>(std::size(kOrder)); ++i)
    if (phase == kOrder[i]) return i;
  return static_cast<int>(std::size(kOrder));
}

void append_kernel_json(std::string& out, const std::string& name,
                        const KernelStats& k, double cycles_per_ms) {
  using util::json_num;
  using util::json_str;
  out += "{\"name\": ";
  out += json_str(name);
  out += ", \"modeled_ms\": ";
  out += json_num(k.time_ms);
  out += ", \"modeled_cycles\": ";
  out += json_num(k.time_ms * cycles_per_ms);
  out += ", \"vec_ops\": ";
  out += json_num(k.vec_ops);
  out += ", \"blocks\": ";
  out += json_num(k.num_blocks);
  out += ", \"occupancy\": ";
  out += json_num(k.occupancy);
  out += ", \"divergence_overhead\": ";
  out += json_num(k.divergence_overhead());
  out += ", \"load_efficiency\": ";
  out += json_num(k.global_load_efficiency());
  out += ", \"store_efficiency\": ";
  out += json_num(k.global_store_efficiency());
  out += ", \"rocache_hit_ratio\": ";
  out += json_num(k.rocache_hit_ratio());
  out += ", \"ld_transactions\": ";
  out += json_num(k.ld_transactions);
  out += ", \"st_transactions\": ";
  out += json_num(k.st_transactions);
  out += ", \"shared_ops\": ";
  out += json_num(k.shared_ops);
  out += ", \"shared_conflict_passes\": ";
  out += json_num(k.shared_conflict_passes);
  out += ", \"atomic_ops\": ";
  out += json_num(k.atomic_ops);
  out += ", \"atomic_serial_passes\": ";
  out += json_num(k.atomic_serial_passes);
  out += "}";
}

}  // namespace

const char* phase_for_kernel(const std::string& kernel_name) {
  if (kernel_name == "hit_detection") return "hit_detection";
  if (kernel_name == "bin_scan" || kernel_name == "hit_assemble" ||
      kernel_name == "hit_sort")
    return "sorting";
  if (kernel_name == "hit_filter") return "filtering";
  if (kernel_name == "ungapped_extension") return "extension";
  if (kernel_name == "gapped_extension_gpu") return "gapped";
  if (kernel_name == "ssv_prefilter") return "prefilter";
  if (kernel_name == "coarse_fused") return "coarse";
  if (starts_with(kernel_name, "h2d_")) return "h2d";
  if (starts_with(kernel_name, "d2h_")) return "d2h";
  return "other";
}

void ContinuousProfiler::set_device(const DeviceSpec& spec) {
  std::lock_guard lock(mutex_);
  spec_ = spec;
}

void ContinuousProfiler::record_search(const ProfileRegistry& delta,
                                       double wall_ms) {
  std::lock_guard lock(mutex_);
  for (const auto& [name, stats] : delta.kernels()) {
    auto [it, inserted] = kernels_.try_emplace(name, stats);
    if (!inserted) it->second.merge(stats);
  }
  ++searches_;
  wall_ms_total_ += wall_ms;
}

std::uint64_t ContinuousProfiler::searches() const {
  std::lock_guard lock(mutex_);
  return searches_;
}

double ContinuousProfiler::total_modeled_ms() const {
  std::lock_guard lock(mutex_);
  double total = 0.0;
  for (const auto& [name, stats] : kernels_) total += stats.time_ms;
  return total;
}

std::vector<PhaseProfile> ContinuousProfiler::phases_locked() const {
  std::map<std::string, PhaseProfile> by_phase;
  double total_ms = 0.0;
  for (const auto& [name, stats] : kernels_) {
    const std::string phase = phase_for_kernel(name);
    PhaseProfile& p = by_phase[phase];
    p.phase = phase;
    p.stats.merge(stats);
    p.kernel_names.push_back(name);
    total_ms += stats.time_ms;
  }
  const double cycles_per_ms =
      static_cast<double>(spec_.num_sms) * spec_.clock_ghz * 1e6;
  std::vector<PhaseProfile> out;
  out.reserve(by_phase.size());
  for (auto& [phase, p] : by_phase) {
    p.modeled_cycles = p.stats.time_ms * cycles_per_ms;
    p.share = total_ms > 0.0 ? p.stats.time_ms / total_ms : 0.0;
    out.push_back(std::move(p));
  }
  std::sort(out.begin(), out.end(),
            [](const PhaseProfile& a, const PhaseProfile& b) {
              if (a.stats.time_ms != b.stats.time_ms)
                return a.stats.time_ms > b.stats.time_ms;
              return phase_rank(a.phase) < phase_rank(b.phase);
            });
  return out;
}

std::vector<PhaseProfile> ContinuousProfiler::phases() const {
  std::lock_guard lock(mutex_);
  return phases_locked();
}

std::string ContinuousProfiler::to_json() const {
  using util::json_num;
  using util::json_str;
  std::lock_guard lock(mutex_);
  const auto phases = phases_locked();
  double total_ms = 0.0;
  for (const auto& [name, stats] : kernels_) total_ms += stats.time_ms;
  const double cycles_per_ms =
      static_cast<double>(spec_.num_sms) * spec_.clock_ghz * 1e6;

  std::string out;
  out.reserve(1 << 14);
  out += "{\n  \"schema\": \"cublastp.profile.v1\",\n";
  out += "  \"device\": {\"name\": ";
  out += json_str(spec_.name);
  out += ", \"num_sms\": ";
  out += json_num(static_cast<std::int64_t>(spec_.num_sms));
  out += ", \"clock_ghz\": ";
  out += json_num(spec_.clock_ghz);
  out += "},\n";
  out += "  \"searches\": ";
  out += json_num(searches_);
  out += ",\n  \"measured\": {\"host_wall_ms_total\": ";
  out += json_num(wall_ms_total_);
  out += "},\n";
  out += "  \"modeled_total_ms\": ";
  out += json_num(total_ms);
  out += ",\n  \"modeled_total_cycles\": ";
  out += json_num(total_ms * cycles_per_ms);
  out += ",\n  \"phases\": [\n";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseProfile& p = phases[i];
    out += "    {\"phase\": ";
    out += json_str(p.phase);
    out += ", \"modeled_ms\": ";
    out += json_num(p.stats.time_ms);
    out += ", \"modeled_cycles\": ";
    out += json_num(p.modeled_cycles);
    out += ", \"share\": ";
    out += json_num(p.share);
    out += ", \"occupancy\": ";
    out += json_num(p.stats.occupancy);
    out += ", \"divergence_overhead\": ";
    out += json_num(p.stats.divergence_overhead());
    out += ", \"load_efficiency\": ";
    out += json_num(p.stats.global_load_efficiency());
    out += ", \"rocache_hit_ratio\": ";
    out += json_num(p.stats.rocache_hit_ratio());
    out += ", \"shared_conflict_passes\": ";
    out += json_num(p.stats.shared_conflict_passes);
    out += ",\n     \"kernels\": [";
    for (std::size_t k = 0; k < p.kernel_names.size(); ++k) {
      if (k != 0) out += ", ";
      append_kernel_json(out, p.kernel_names[k],
                         kernels_.at(p.kernel_names[k]), cycles_per_ms);
    }
    out += "]}";
    out += i + 1 == phases.size() ? "\n" : ",\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string ContinuousProfiler::to_table() const {
  std::lock_guard lock(mutex_);
  const auto phases = phases_locked();
  util::Table table({"phase", "kernel", "modeled ms", "share %", "occupancy",
                     "divergence %", "gld eff %", "rocache %", "bank passes"});
  for (const PhaseProfile& p : phases) {
    table.add_row({p.phase, "(all)", util::Table::num(p.stats.time_ms, 3),
                   util::Table::num(p.share * 100.0, 1),
                   util::Table::num(p.stats.occupancy, 2),
                   util::Table::num(p.stats.divergence_overhead() * 100.0, 1),
                   util::Table::num(p.stats.global_load_efficiency() * 100.0,
                                    1),
                   util::Table::num(p.stats.rocache_hit_ratio() * 100.0, 1),
                   std::to_string(p.stats.shared_conflict_passes)});
    if (p.kernel_names.size() < 2) continue;
    for (const std::string& name : p.kernel_names) {
      const KernelStats& k = kernels_.at(name);
      table.add_row({"", name, util::Table::num(k.time_ms, 3), "",
                     util::Table::num(k.occupancy, 2),
                     util::Table::num(k.divergence_overhead() * 100.0, 1),
                     util::Table::num(k.global_load_efficiency() * 100.0, 1),
                     util::Table::num(k.rocache_hit_ratio() * 100.0, 1),
                     std::to_string(k.shared_conflict_passes)});
    }
  }
  std::string out = "simtprof hotspots (";
  out += std::to_string(searches_);
  out += searches_ == 1 ? " search)\n" : " searches)\n";
  out += table.render();
  return out;
}

std::string ContinuousProfiler::summary_json() const {
  using util::json_num;
  using util::json_str;
  std::lock_guard lock(mutex_);
  const auto phases = phases_locked();
  double total_ms = 0.0;
  for (const auto& [name, stats] : kernels_) total_ms += stats.time_ms;
  std::string out = "{\"searches\": ";
  out += json_num(searches_);
  out += ", \"modeled_total_ms\": ";
  out += json_num(total_ms);
  out += ", \"host_wall_ms_total\": ";
  out += json_num(wall_ms_total_);
  if (!phases.empty()) {
    out += ", \"top_phase\": ";
    out += json_str(phases.front().phase);
    out += ", \"top_phase_share\": ";
    out += json_num(phases.front().share);
  }
  out += "}";
  return out;
}

bool ContinuousProfiler::write_file(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.extension().string() != ".json")
    throw std::invalid_argument(
        "simtprof: profile path must end in .json, got '" + path + "'");
  std::error_code dir_error;
  if (p.has_parent_path())
    std::filesystem::create_directories(p.parent_path(), dir_error);
  std::ofstream out(p);
  if (dir_error || !out) {
    std::fprintf(stderr, "simtprof: cannot write %s\n", path.c_str());
    return false;
  }
  out << to_json();
  return static_cast<bool>(out);
}

void ContinuousProfiler::reset() {
  std::lock_guard lock(mutex_);
  kernels_.clear();
  searches_ = 0;
  wall_ms_total_ = 0.0;
}

}  // namespace repro::simt::prof
