// Kernel-time cost model (DESIGN.md §5).
//
// Inputs are *measured* per launch by the SIMT engine: warp instruction
// steps, memory transactions (after the read-only cache), shared/atomic
// serialization passes, and the occupancy achieved by the launch shape.
// The model converts them to milliseconds on the modeled device:
//
//   issue_cycles = kIssueCyclesPerOp  * (vec_ops + conflict/atomic passes)
//   mem_cycles   = kCyclesPerTransaction * transactions / latency_hiding
//   rocache_cycles = kCyclesPerRoHit * rocache_hits
//   time = (issue + mem + rocache) / (num_sms * clock)
//
// latency_hiding = clamp(occupancy / kOccupancyKnee, kMinHiding, 1): a
// kernel below the knee cannot keep the memory pipeline busy, which is the
// mechanism behind the paper's occupancy-driven effects (Fig. 14/15).
// The constants are calibrated once, here, and never per-experiment.
#pragma once

#include "simt/device.hpp"
#include "simt/metrics.hpp"

namespace repro::simt {

struct CostModel {
  // Physically derived for the K20c, then derated 2x for effects the
  // model does not represent (issue-slot contention, replay, ECC):
  // each SM dual-issues from 4 schedulers (~4 warp-instructions/cycle), so
  // one warp-level step costs ~0.25 SM-cycles; DRAM sustains ~208 GB/s =
  // 6.5 G 32-byte sectors/s against 13 x 0.706 GHz SM-cycles, i.e. ~1.4
  // SM-cycles per sector; shared memory and the read-only cache sit in
  // between. All constants carry the same 2x derate so intra-GPU ratios
  // are unaffected.
  double issue_cycles_per_op = 0.5;
  double cycles_per_transaction = 2.8;
  double cycles_per_rocache_hit = 0.7;
  double cycles_per_shared_op = 0.25;
  double occupancy_knee = 0.3;
  double min_latency_hiding = 0.1;

  /// Fills stats.time_ms from the measured counters.
  void apply(const DeviceSpec& spec, KernelStats& stats) const;

  /// PCIe transfer time (ms) for `bytes` in one direction.
  [[nodiscard]] double transfer_ms(const DeviceSpec& spec,
                                   std::uint64_t bytes) const;
};

}  // namespace repro::simt
