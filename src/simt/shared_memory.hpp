// Per-block shared-memory arena.
//
// Kernels allocate their shared buffers from this arena at block start; the
// high-water mark feeds the occupancy calculation, which is how the paper's
// shared-memory/occupancy trade-offs (bins in Fig. 14, PSSM vs BLOSUM62 in
// Fig. 15) become measurable here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace repro::simt {

class SharedMemory {
 public:
  explicit SharedMemory(std::size_t capacity_bytes)
      : storage_(capacity_bytes) {}

  /// Allocates n elements of T, aligned; value-initialized.
  /// Throws std::bad_alloc-like logic_error when the block's shared budget
  /// is exceeded (a real kernel would fail to launch).
  template <class T>
  std::span<T> alloc(std::size_t n) {
    const std::size_t align = alignof(T);
    std::size_t offset = (used_ + align - 1) / align * align;
    const std::size_t bytes = n * sizeof(T);
    if (offset + bytes > storage_.size())
      throw std::length_error("SharedMemory: block shared-memory budget "
                              "exceeded");
    used_ = offset + bytes;
    high_water_ = std::max(high_water_, used_);
    T* base = reinterpret_cast<T*>(storage_.data() + offset);
    for (std::size_t i = 0; i < n; ++i) base[i] = T{};
    return {base, n};
  }

  [[nodiscard]] std::size_t used() const { return used_; }
  [[nodiscard]] std::size_t high_water() const { return high_water_; }
  [[nodiscard]] std::size_t capacity() const { return storage_.size(); }

  /// Releases all allocations (block end); high-water survives.
  void reset() { used_ = 0; }

 private:
  std::vector<std::uint8_t> storage_;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace repro::simt
