// Per-block shared-memory arena.
//
// Kernels allocate their shared buffers from this arena at block start; the
// high-water mark feeds the occupancy calculation, which is how the paper's
// shared-memory/occupancy trade-offs (bins in Fig. 14, PSSM vs BLOSUM62 in
// Fig. 15) become measurable here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "simt/simtcheck.hpp"

namespace repro::simt {

class SharedMemory {
 public:
  explicit SharedMemory(std::size_t capacity_bytes)
      : storage_(capacity_bytes + alignof(std::max_align_t) - 1),
        capacity_(capacity_bytes) {
    // Align the arena base to max_align_t so every offset that alloc()
    // rounds to alignof(T) is genuinely T-aligned, whatever T is.
    void* p = storage_.data();
    std::size_t space = storage_.size();
    base_ = static_cast<std::uint8_t*>(
        std::align(alignof(std::max_align_t), capacity_bytes, p, space));
  }

  /// Allocates n elements of T, aligned. Models raw `__shared__` storage:
  /// the arena zero-fills (so simulated results are reproducible), but the
  /// initcheck shadow treats every byte as *undefined* until some lane
  /// writes it — on hardware this memory is garbage at block start. Use
  /// alloc_zeroed() for buffers whose kernel contract is "starts at zero".
  /// Throws std::bad_alloc-like logic_error when the block's shared budget
  /// is exceeded (a real kernel would fail to launch).
  template <class T>
  std::span<T> alloc(std::size_t n) {
    return alloc_impl<T>(n, /*zeroed=*/false);
  }

  /// Like alloc(), but declares a cooperative prologue memset: the span is
  /// defined-at-alloc for initcheck, modeling a kernel that zeroes the
  /// buffer before first use (a CUDA port must emit that memset — the
  /// simulator's zero-fill is what this overload makes explicit).
  /// Physically identical to alloc(), so results, metrics, and occupancy
  /// never depend on which overload a kernel calls.
  template <class T>
  std::span<T> alloc_zeroed(std::size_t n) {
    return alloc_impl<T>(n, /*zeroed=*/true);
  }

  [[nodiscard]] std::size_t used() const { return used_; }
  [[nodiscard]] std::size_t high_water() const { return high_water_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] const std::uint8_t* base() const { return base_; }

  /// Attaches the hazard analyzer (nullptr detaches; see simtcheck.hpp).
  void set_checker(BlockChecker* check) { check_ = check; }

  /// Releases all allocations (block end); high-water survives.
  void reset() {
    used_ = 0;
    if (check_ != nullptr) check_->on_shared_reset();
  }

 private:
  template <class T>
  std::span<T> alloc_impl(std::size_t n, bool zeroed) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "shared memory holds trivially-copyable device types");
    const std::size_t align = alignof(T);
    const std::size_t offset = (used_ + align - 1) / align * align;
    const std::size_t bytes = n * sizeof(T);
    if (offset + bytes > capacity_)
      throw std::length_error("SharedMemory: block shared-memory budget "
                              "exceeded");
    const std::size_t old_used = used_;
    used_ = offset + bytes;
    high_water_ = std::max(high_water_, used_);
    std::uint8_t* raw = base_ + offset;
    T* base;
    if constexpr (std::is_trivially_default_constructible_v<T>) {
      // Implicit-lifetime T: zero the bytes; the array is implicitly
      // created in the arena's storage ([intro.object]/10) and launder
      // yields a usable pointer to it.
      std::memset(raw, 0, bytes);
      base = std::launder(reinterpret_cast<T*>(raw));
    } else {
      // Non-trivial default construction: start each lifetime explicitly.
      base = reinterpret_cast<T*>(static_cast<void*>(raw));
      std::uninitialized_value_construct_n(base, n);
    }
    if (check_ != nullptr) check_->on_shared_alloc(old_used, used_, zeroed);
    return {base, n};
  }

  std::vector<std::uint8_t> storage_;
  std::size_t capacity_;
  std::uint8_t* base_ = nullptr;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
  BlockChecker* check_ = nullptr;
};

}  // namespace repro::simt
