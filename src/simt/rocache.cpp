#include "simt/rocache.hpp"

#include <bit>

namespace repro::simt {

ReadOnlyCache::ReadOnlyCache(std::size_t capacity_bytes,
                             std::size_t line_bytes)
    : line_shift_(static_cast<std::size_t>(
          std::countr_zero(line_bytes == 0 ? 128 : line_bytes))),
      tags_(std::max<std::size_t>(1, capacity_bytes / (line_bytes ? line_bytes
                                                                  : 128)),
            0) {}

bool ReadOnlyCache::access(std::uintptr_t address) {
  const std::uintptr_t line = address >> line_shift_;
  const std::size_t slot = static_cast<std::size_t>(line) % tags_.size();
  if (tags_[slot] == line + 1) return true;
  tags_[slot] = line + 1;  // +1 so line 0 is distinguishable from empty
  return false;
}

void ReadOnlyCache::clear() { tags_.assign(tags_.size(), 0); }

}  // namespace repro::simt
