#include "simt/cost_model.hpp"

#include <algorithm>

namespace repro::simt {

void CostModel::apply(const DeviceSpec& spec, KernelStats& stats) const {
  // A grid smaller than the SM count leaves SMs idle.
  const int utilized_sms = std::min<int>(
      spec.num_sms,
      std::max<std::uint64_t>(1, stats.num_blocks));
  const double issue_ops =
      static_cast<double>(stats.vec_ops + stats.atomic_serial_passes +
                          stats.shared_conflict_passes);
  const double issue_cycles =
      issue_cycles_per_op * issue_ops +
      cycles_per_shared_op * static_cast<double>(stats.shared_ops);

  const double hiding =
      std::clamp(stats.occupancy / occupancy_knee, min_latency_hiding, 1.0);
  const double transactions =
      static_cast<double>(stats.ld_transactions + stats.st_transactions);
  const double mem_cycles = cycles_per_transaction * transactions / hiding;
  const double rocache_cycles =
      cycles_per_rocache_hit * static_cast<double>(stats.rocache_hits);

  const double cycles_total = issue_cycles + mem_cycles + rocache_cycles;
  const double cycles_per_ms =
      static_cast<double>(utilized_sms) * spec.clock_ghz * 1e6;
  stats.time_ms = cycles_total / cycles_per_ms;
}

double CostModel::transfer_ms(const DeviceSpec& spec,
                              std::uint64_t bytes) const {
  const double gb = static_cast<double>(bytes) / 1e9;
  return gb / spec.pcie_gbytes_per_sec * 1e3;
}

}  // namespace repro::simt
