// simtprof: the always-on continuous profiler (DESIGN.md §16).
//
// The paper's methodology is profile-first: Figure 19's per-kernel hotspot
// table (load efficiency, divergence, occupancy, bank conflicts) is what
// justified the fine-grained decomposition. This module turns that one-off
// analysis into a standing service facility: every search's per-kernel
// ProfileRegistry delta is folded into a process-lifetime aggregate, grouped
// into pipeline *phases*, and exported as versioned JSON
// (`cublastp.profile.v1`) plus a Fig. 19-style table.
//
// Cost contract: collection reuses the KernelStats the engine already
// measures — recording one search is a mutex acquisition and a map merge
// per kernel, far off the lane-level hot path. Emission allocates; callers
// emit at search/batch/drain boundaries only.
//
// Determinism: every aggregated quantity derives from KernelStats counters
// and the cost model, none from the wall clock, so the JSON's "modeled"
// section is bit-stable across runs and under VirtualClockScope; host wall
// time is carried separately and clearly marked measured.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "simt/device.hpp"
#include "simt/metrics.hpp"

namespace repro::simt::prof {

/// Maps a kernel / transfer label to its pipeline phase. Unknown names land
/// in "other" rather than being dropped, so the per-phase modeled-ms totals
/// sum *exactly* to ProfileRegistry::total_time_ms() — the reconciliation
/// invariant the acceptance tests pin.
[[nodiscard]] const char* phase_for_kernel(const std::string& kernel_name);

/// Aggregated view of one phase at emission time.
struct PhaseProfile {
  std::string phase;
  KernelStats stats;            ///< merged counters across kernels
  double modeled_cycles = 0.0;  ///< stats.time_ms on the modeled device
  double share = 0.0;           ///< fraction of total modeled time
  std::vector<std::string> kernel_names;
};

/// Process-lifetime per-kernel aggregate with phase grouping. One instance
/// lives in each SearchSession; SearchService reads it for /statusz.
/// Thread-safe: record() and the emitters may race (worker thread vs. the
/// statusz dump thread).
class ContinuousProfiler {
 public:
  /// Device used to convert modeled milliseconds to modeled cycles.
  void set_device(const DeviceSpec& spec);

  /// Folds one search's ProfileRegistry delta (and its measured host wall
  /// time) into the aggregate.
  void record_search(const ProfileRegistry& delta, double wall_ms);

  [[nodiscard]] std::uint64_t searches() const;
  [[nodiscard]] double total_modeled_ms() const;

  /// Phase-grouped snapshot, ordered by descending modeled time.
  [[nodiscard]] std::vector<PhaseProfile> phases() const;

  /// Full export, schema "cublastp.profile.v1".
  [[nodiscard]] std::string to_json() const;

  /// Fig. 19-style hotspot table (phases + per-kernel rows).
  [[nodiscard]] std::string to_table() const;

  /// One-object summary for embedding in service status snapshots:
  /// searches, totals, and the hottest phase.
  [[nodiscard]] std::string summary_json() const;

  /// Writes to_json() to `path` (creating parent directories). The path
  /// must end in ".json" — like util::metrics::Registry::write_file, an
  /// unrecognized extension throws std::invalid_argument rather than
  /// guessing a format. Returns false on I/O error.
  bool write_file(const std::string& path) const;

  void reset();

 private:
  [[nodiscard]] std::vector<PhaseProfile> phases_locked() const;

  mutable std::mutex mutex_;
  std::map<std::string, KernelStats> kernels_;
  std::uint64_t searches_ = 0;
  double wall_ms_total_ = 0.0;
  DeviceSpec spec_;
};

}  // namespace repro::simt::prof
