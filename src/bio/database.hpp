// The subject-sequence database, stored GPU-style: one concatenated residue
// buffer plus per-sequence offsets, so device kernels index it with plain
// pointer arithmetic and memory-coalescing behaviour is faithful.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bio/sequence.hpp"

namespace repro::bio {

class SequenceDatabase {
 public:
  SequenceDatabase() = default;
  explicit SequenceDatabase(std::vector<Sequence> seqs);

  [[nodiscard]] std::size_t size() const { return offsets_.size() - 1; }
  [[nodiscard]] bool empty() const { return size() == 0; }

  [[nodiscard]] std::span<const std::uint8_t> residues(std::size_t i) const {
    return {buffer_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]};
  }
  [[nodiscard]] std::size_t length(std::size_t i) const {
    return offsets_[i + 1] - offsets_[i];
  }
  [[nodiscard]] const std::string& id(std::size_t i) const { return ids_[i]; }
  [[nodiscard]] const std::string& description(std::size_t i) const {
    return descriptions_[i];
  }

  /// The flat concatenated residue buffer (device view).
  [[nodiscard]] std::span<const std::uint8_t> buffer() const {
    return buffer_;
  }
  /// size()+1 offsets into buffer(); sequence i spans
  /// [offsets()[i], offsets()[i+1]).
  [[nodiscard]] std::span<const std::uint64_t> offsets() const {
    return offsets_;
  }

  [[nodiscard]] std::uint64_t total_residues() const {
    return buffer_.size();
  }
  [[nodiscard]] double average_length() const {
    return empty() ? 0.0
                   : static_cast<double>(total_residues()) /
                         static_cast<double>(size());
  }
  [[nodiscard]] std::size_t max_length() const;

  /// Reconstructs a Sequence record (copies the residues).
  [[nodiscard]] Sequence sequence(std::size_t i) const;

  /// A new database containing the same sequences ordered by descending
  /// length — the load-balancing preprocessing step CUDA-BLASTP applies.
  [[nodiscard]] SequenceDatabase sorted_by_length_desc() const;

  /// Splits the database into `blocks` contiguous chunks of roughly equal
  /// residue volume; returns [start, end) sequence-index pairs. Used by the
  /// CPU/GPU pipeline (paper Fig. 12).
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
  split_blocks(std::size_t blocks) const;

 private:
  std::vector<std::uint8_t> buffer_;
  std::vector<std::uint64_t> offsets_{0};
  std::vector<std::string> ids_;
  std::vector<std::string> descriptions_;
};

}  // namespace repro::bio
