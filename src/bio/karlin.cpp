#include "bio/karlin.hpp"

#include <cmath>
#include <stdexcept>

namespace repro::bio {

KarlinParams blosum62_ungapped() { return {0.3176, 0.134, 0.4012}; }

KarlinParams blosum62_gapped_11_1() { return {0.267, 0.041, 0.14}; }

namespace {

/// sum_ij p_i p_j exp(lambda * s_ij) over the standard amino acids.
double restriction_sum(const Blosum62& matrix,
                       const std::array<double, kAlphabetSize>& freqs,
                       double lambda) {
  double sum = 0.0;
  for (int i = 0; i < kNumRealAminoAcids; ++i)
    for (int j = 0; j < kNumRealAminoAcids; ++j)
      sum += freqs[static_cast<std::size_t>(i)] *
             freqs[static_cast<std::size_t>(j)] *
             std::exp(lambda * matrix.score(static_cast<std::uint8_t>(i),
                                            static_cast<std::uint8_t>(j)));
  return sum;
}

}  // namespace

double solve_ungapped_lambda(
    const Blosum62& matrix, const std::array<double, kAlphabetSize>& freqs) {
  // Validate preconditions: E[s] < 0 and max s > 0.
  double expected = 0.0;
  int max_score = -1000;
  for (int i = 0; i < kNumRealAminoAcids; ++i)
    for (int j = 0; j < kNumRealAminoAcids; ++j) {
      const int s = matrix.score(static_cast<std::uint8_t>(i),
                                 static_cast<std::uint8_t>(j));
      expected += freqs[static_cast<std::size_t>(i)] *
                  freqs[static_cast<std::size_t>(j)] * s;
      max_score = std::max(max_score, s);
    }
  if (expected >= 0.0 || max_score <= 0)
    throw std::domain_error(
        "Karlin-Altschul lambda undefined: need E[s] < 0 and max s > 0");

  // f(lambda) = sum p_i p_j e^{lambda s_ij} - 1 is convex with f(0)=0,
  // f'(0)=E[s]<0 and f(+inf)=+inf, so the positive root is unique; bracket
  // then bisect.
  double hi = 0.5;
  while (restriction_sum(matrix, freqs, hi) < 1.0) hi *= 2.0;
  double lo = 0.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (restriction_sum(matrix, freqs, mid) < 1.0)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

double relative_entropy(const Blosum62& matrix,
                        const std::array<double, kAlphabetSize>& freqs,
                        double lambda) {
  double h = 0.0;
  for (int i = 0; i < kNumRealAminoAcids; ++i)
    for (int j = 0; j < kNumRealAminoAcids; ++j) {
      const int s = matrix.score(static_cast<std::uint8_t>(i),
                                 static_cast<std::uint8_t>(j));
      const double q = freqs[static_cast<std::size_t>(i)] *
                       freqs[static_cast<std::size_t>(j)] *
                       std::exp(lambda * s);
      h += q * lambda * s;
    }
  return h;
}

EvalueCalculator::EvalueCalculator(KarlinParams params,
                                   std::size_t query_length,
                                   std::uint64_t db_residues,
                                   std::size_t db_sequences)
    : params_(params) {
  // BLAST's length adjustment: expected HSP length l = ln(K m n) / H;
  // subtract it from the query and (per sequence) from the database.
  const double m = static_cast<double>(query_length);
  const double n = static_cast<double>(db_residues);
  const double num_seqs = static_cast<double>(db_sequences ? db_sequences : 1);
  double l = 0.0;
  if (m > 0 && n > 0 && params_.h > 0)
    l = std::log(params_.k * m * n) / params_.h;
  l = std::max(0.0, l);
  eff_m_ = std::max(1.0, m - l);
  eff_n_ = std::max(num_seqs, n - num_seqs * l);
}

EvalueCalculator::EvalueCalculator(KarlinParams params,
                                   std::size_t query_length,
                                   const SearchSpace& space)
    : EvalueCalculator(params, query_length, space.db_residues,
                       space.db_sequences) {}

double EvalueCalculator::bit_score(int raw_score) const {
  return (params_.lambda * raw_score - std::log(params_.k)) / std::log(2.0);
}

double EvalueCalculator::evalue(int raw_score) const {
  return params_.k * eff_m_ * eff_n_ *
         std::exp(-params_.lambda * raw_score);
}

int EvalueCalculator::min_significant_score(double max_evalue) const {
  // Solve K m' n' e^{-lambda S} <= E for the smallest integer S.
  const double rhs =
      std::log(params_.k * eff_m_ * eff_n_ / max_evalue) / params_.lambda;
  return static_cast<int>(std::ceil(std::max(0.0, rhs)));
}

}  // namespace repro::bio
