// The amino-acid alphabet used throughout the library.
//
// We use the 24-symbol BLAST protein alphabet: the 20 standard amino acids,
// the ambiguity codes B (Asx) and Z (Glx), the unknown residue X, and the
// stop/gap sentinel '*'. Rare letters (U, O, J) map to X on encode, as NCBI
// BLAST does. Sequences are stored as dense uint8_t codes in [0, 24).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace repro::bio {

/// Number of symbols in the encoded alphabet.
inline constexpr int kAlphabetSize = 24;

/// Number of *standard* amino acids (codes [0, 20)); neighborhood-word
/// enumeration for seeding only ranges over these, as in NCBI/FSA BLAST.
inline constexpr int kNumRealAminoAcids = 20;

/// Code of the unknown residue 'X'.
inline constexpr std::uint8_t kCodeX = 22;

/// Canonical letter order. Codes [0,20) are the standard amino acids in
/// alphabetical one-letter order; then B, Z, X, *.
inline constexpr std::string_view kLetters = "ACDEFGHIKLMNPQRSTVWYBZX*";

/// Encodes one residue letter (case-insensitive). Unknown letters, U, O and
/// J become X; digits/punctuation return nullopt.
[[nodiscard]] std::optional<std::uint8_t> encode_letter(char c);

/// Decodes a residue code back to its letter ('?' for out-of-range codes).
[[nodiscard]] char decode_letter(std::uint8_t code);

/// Encodes a whole string, skipping whitespace; throws std::invalid_argument
/// on non-residue characters.
[[nodiscard]] std::vector<std::uint8_t> encode_string(std::string_view s);

/// Decodes a code vector to a letter string.
[[nodiscard]] std::string decode_string(const std::vector<std::uint8_t>& v);

/// Robinson & Robinson (1991) background amino-acid frequencies, indexed by
/// residue code; ambiguity codes carry zero mass. Used by the synthetic
/// database generator and by the Karlin–Altschul parameter solver.
[[nodiscard]] const std::array<double, kAlphabetSize>&
background_frequencies();

}  // namespace repro::bio
