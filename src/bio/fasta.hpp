// FASTA reading and writing.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "bio/sequence.hpp"

namespace repro::bio {

/// Parses all records from a FASTA stream. Throws std::invalid_argument on
/// malformed input (sequence data before the first header, bad residues).
[[nodiscard]] std::vector<Sequence> read_fasta(std::istream& in);

/// Convenience: parse from a string.
[[nodiscard]] std::vector<Sequence> read_fasta_string(const std::string& s);

/// Loads a FASTA file from disk. Throws std::runtime_error if unreadable.
[[nodiscard]] std::vector<Sequence> read_fasta_file(const std::string& path);

/// Writes records, wrapping residue lines at `width` letters.
void write_fasta(std::ostream& out, const std::vector<Sequence>& seqs,
                 std::size_t width = 70);

/// Writes records to a file. Throws std::runtime_error if unwritable.
void write_fasta_file(const std::string& path,
                      const std::vector<Sequence>& seqs,
                      std::size_t width = 70);

}  // namespace repro::bio
