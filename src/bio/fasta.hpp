// FASTA reading and writing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "bio/sequence.hpp"

namespace repro::bio {

/// How read_fasta treats malformed input.
enum class FastaPolicy {
  kStrict,   ///< throw std::invalid_argument (bad residues, empty ids)
  kLenient,  ///< map unknown residues to X, skip empty records, count both
};

/// What lenient parsing papered over. total() == 0 means the input was
/// clean and both policies would have produced identical records.
struct FastaWarnings {
  std::uint64_t unknown_residues = 0;       ///< non-residue chars mapped to X
  std::uint64_t empty_records_skipped = 0;  ///< headers with no residues
  std::uint64_t empty_ids = 0;              ///< '>' lines with a blank id

  [[nodiscard]] std::uint64_t total() const {
    return unknown_residues + empty_records_skipped + empty_ids;
  }
};

/// Parses all records from a FASTA stream. Under kStrict (the default),
/// throws std::invalid_argument on malformed input: sequence data before
/// the first header, bad residues, or a '>' line with an empty id. Under
/// kLenient, unknown residue characters become X, records left without
/// residues are dropped, and `warnings` (if given) counts what happened.
[[nodiscard]] std::vector<Sequence> read_fasta(
    std::istream& in, FastaPolicy policy = FastaPolicy::kStrict,
    FastaWarnings* warnings = nullptr);

/// Convenience: parse from a string.
[[nodiscard]] std::vector<Sequence> read_fasta_string(
    const std::string& s, FastaPolicy policy = FastaPolicy::kStrict,
    FastaWarnings* warnings = nullptr);

/// Loads a FASTA file from disk. Throws std::runtime_error if unreadable.
[[nodiscard]] std::vector<Sequence> read_fasta_file(
    const std::string& path, FastaPolicy policy = FastaPolicy::kStrict,
    FastaWarnings* warnings = nullptr);

/// Writes records, wrapping residue lines at `width` letters.
void write_fasta(std::ostream& out, const std::vector<Sequence>& seqs,
                 std::size_t width = 70);

/// Writes records to a file. Throws std::runtime_error if unwritable.
void write_fasta_file(const std::string& path,
                      const std::vector<Sequence>& seqs,
                      std::size_t width = 70);

}  // namespace repro::bio
