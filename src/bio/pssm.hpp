// Position-specific scoring matrix (PSS matrix) built from the query.
//
// As in the paper (Fig. 2b, §3.5): one column per query position, 32 rows
// (the padded alphabet) of 2-byte scores, i.e. 64 bytes per column. Device
// kernels index it column-major — score(pos, residue) is a single load —
// which is exactly why the paper prefers it to the scoring matrix for short
// queries and why it stops fitting in 48 kB shared memory past length 768.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bio/blosum.hpp"

namespace repro::bio {

class Pssm {
 public:
  /// Builds the PSSM for a query from a substitution matrix.
  Pssm(std::span<const std::uint8_t> query, const Blosum62& matrix);

  [[nodiscard]] std::size_t query_length() const { return length_; }

  /// Score of aligning `residue` against query position `pos`.
  [[nodiscard]] Score score(std::size_t pos, std::uint8_t residue) const {
    return data_[pos * kPaddedMatrixDim + residue];
  }

  /// Raw column-major device buffer: column `pos` occupies the 32 scores at
  /// [pos*32, pos*32+32).
  [[nodiscard]] std::span<const Score> device_buffer() const { return data_; }

  /// Size in bytes of the device buffer — the quantity compared against the
  /// 48 kB shared-memory budget (paper §3.5: query longer than 768 residues
  /// no longer fits).
  [[nodiscard]] std::size_t device_bytes() const {
    return data_.size() * sizeof(Score);
  }

 private:
  std::size_t length_;
  std::vector<Score> data_;
};

}  // namespace repro::bio
