// A single protein sequence: an identifier, a free-form description, and
// the encoded residues.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace repro::bio {

struct Sequence {
  std::string id;           ///< accession-like identifier
  std::string description;  ///< rest of the FASTA header line
  std::vector<std::uint8_t> residues;  ///< encoded codes, see alphabet.hpp

  [[nodiscard]] std::size_t length() const { return residues.size(); }
};

}  // namespace repro::bio
