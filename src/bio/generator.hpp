// Synthetic protein database generation.
//
// The paper evaluates on NCBI swissprot (300 k sequences, average length
// ~370) and env_nr (~6 M sequences, average length ~200). Those databases
// are not available offline, so this generator produces databases with the
// same governing statistics — length distribution, residue composition, and
// homology density — scaled to a size this machine can search. DESIGN.md §1
// documents the substitution.
//
// Sequences are sampled from the Robinson–Robinson background; lengths from
// a gamma distribution matching the reported averages. A configurable
// fraction of sequences receives a "planted homolog": a mutated (point
// substitutions + rare indels) fragment of the query inserted at a random
// position, so that hit detection, ungapped extension, gapped extension and
// traceback all receive realistic work, with realistic survivor ratios.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "bio/database.hpp"
#include "util/rng.hpp"

namespace repro::bio {

struct DatabaseProfile {
  std::string name;
  std::size_t num_sequences = 1000;
  double mean_length = 300.0;
  double length_shape = 2.2;     ///< gamma shape; scale = mean/shape
  std::size_t min_length = 20;   ///< shorter draws are clamped up
  std::size_t max_length = 20000;
  double homolog_fraction = 0.02;  ///< sequences with a planted query fragment
  double mutation_rate = 0.25;     ///< substitutions inside a planted region
  double indel_rate = 0.02;        ///< indels inside a planted region

  /// swissprot-like: average length 370 (paper §4: 300 k seqs, 150 MB).
  static DatabaseProfile swissprot_like(std::size_t num_sequences);
  /// env_nr-like: average length 200 (paper §4: ~6 M seqs, 1.7 GB).
  static DatabaseProfile env_nr_like(std::size_t num_sequences);
};

class DatabaseGenerator {
 public:
  DatabaseGenerator(DatabaseProfile profile, std::uint64_t seed);

  /// Generates the database. When `query` is non-empty,
  /// profile.homolog_fraction of the sequences embed a mutated fragment of
  /// it (so a search for `query` finds real alignments).
  [[nodiscard]] SequenceDatabase generate(
      std::span<const std::uint8_t> query = {});

 private:
  DatabaseProfile profile_;
  util::Rng rng_;
};

/// One random residue from the Robinson–Robinson background.
[[nodiscard]] std::uint8_t random_residue(util::Rng& rng);

/// A random protein of the given length.
[[nodiscard]] std::vector<std::uint8_t> random_protein(std::size_t length,
                                                       util::Rng& rng);

/// Applies point mutations and indels to a fragment; used for planting
/// homologs and directly by tests.
[[nodiscard]] std::vector<std::uint8_t> mutate_fragment(
    std::span<const std::uint8_t> fragment, double mutation_rate,
    double indel_rate, util::Rng& rng);

/// The benchmark queries of the paper: "query127", "query517", "query1054".
/// Deterministic in (length, seed).
[[nodiscard]] Sequence make_benchmark_query(std::size_t length,
                                            std::uint64_t seed = 0x9e37);

}  // namespace repro::bio
