#include "bio/fasta.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "bio/alphabet.hpp"

namespace repro::bio {

std::vector<Sequence> read_fasta(std::istream& in) {
  std::vector<Sequence> records;
  std::string line;
  bool have_record = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '>') {
      Sequence seq;
      const auto header = line.substr(1);
      const auto space = header.find_first_of(" \t");
      seq.id = header.substr(0, space);
      if (space != std::string::npos) {
        const auto start = header.find_first_not_of(" \t", space);
        if (start != std::string::npos) seq.description = header.substr(start);
      }
      records.push_back(std::move(seq));
      have_record = true;
    } else {
      if (!have_record)
        throw std::invalid_argument("FASTA: sequence data before '>' header");
      auto& res = records.back().residues;
      for (const char c : line) {
        if (std::isspace(static_cast<unsigned char>(c))) continue;
        const auto code = encode_letter(c);
        if (!code)
          throw std::invalid_argument(
              std::string("FASTA: invalid residue '") + c + "' in record " +
              records.back().id);
        res.push_back(*code);
      }
    }
  }
  return records;
}

std::vector<Sequence> read_fasta_string(const std::string& s) {
  std::istringstream in(s);
  return read_fasta(in);
}

std::vector<Sequence> read_fasta_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open FASTA file: " + path);
  return read_fasta(in);
}

void write_fasta(std::ostream& out, const std::vector<Sequence>& seqs,
                 std::size_t width) {
  if (width == 0) width = 70;
  for (const auto& seq : seqs) {
    out << '>' << seq.id;
    if (!seq.description.empty()) out << ' ' << seq.description;
    out << '\n';
    for (std::size_t i = 0; i < seq.residues.size(); i += width) {
      const std::size_t end = std::min(seq.residues.size(), i + width);
      for (std::size_t j = i; j < end; ++j)
        out << decode_letter(seq.residues[j]);
      out << '\n';
    }
  }
}

void write_fasta_file(const std::string& path,
                      const std::vector<Sequence>& seqs, std::size_t width) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write FASTA file: " + path);
  write_fasta(out, seqs, width);
}

}  // namespace repro::bio
