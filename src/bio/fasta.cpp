#include "bio/fasta.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "bio/alphabet.hpp"
#include "util/fault.hpp"

namespace repro::bio {

std::vector<Sequence> read_fasta(std::istream& in, FastaPolicy policy,
                                 FastaWarnings* warnings) {
  // "bio.fasta" models ingest-layer failures (truncated reads, bad media).
  util::fault_point_throw("bio.fasta");

  const bool lenient = policy == FastaPolicy::kLenient;
  FastaWarnings local;
  FastaWarnings& warn = warnings ? *warnings : local;

  std::vector<Sequence> records;
  std::string line;
  bool have_record = false;

  // Lenient mode drops a record that ended with no residues.
  const auto close_record = [&] {
    if (lenient && have_record && records.back().residues.empty()) {
      records.pop_back();
      ++warn.empty_records_skipped;
    }
  };

  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '>') {
      close_record();
      Sequence seq;
      const auto header = line.substr(1);
      const auto space = header.find_first_of(" \t");
      seq.id = header.substr(0, space);
      if (seq.id.empty()) {
        if (!lenient)
          throw std::invalid_argument("FASTA: '>' line with an empty id");
        ++warn.empty_ids;
      }
      if (space != std::string::npos) {
        const auto start = header.find_first_not_of(" \t", space);
        if (start != std::string::npos) seq.description = header.substr(start);
      }
      records.push_back(std::move(seq));
      have_record = true;
    } else {
      // Data before any header is structural corruption, not residue
      // noise — both policies reject it.
      if (!have_record)
        throw std::invalid_argument("FASTA: sequence data before '>' header");
      auto& res = records.back().residues;
      for (const char c : line) {
        if (std::isspace(static_cast<unsigned char>(c))) continue;
        const auto code = encode_letter(c);
        if (!code) {
          if (!lenient)
            throw std::invalid_argument(
                std::string("FASTA: invalid residue '") + c + "' in record " +
                records.back().id);
          ++warn.unknown_residues;
          res.push_back(kCodeX);
          continue;
        }
        res.push_back(*code);
      }
    }
  }
  close_record();
  return records;
}

std::vector<Sequence> read_fasta_string(const std::string& s,
                                        FastaPolicy policy,
                                        FastaWarnings* warnings) {
  std::istringstream in(s);
  return read_fasta(in, policy, warnings);
}

std::vector<Sequence> read_fasta_file(const std::string& path,
                                      FastaPolicy policy,
                                      FastaWarnings* warnings) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open FASTA file: " + path);
  return read_fasta(in, policy, warnings);
}

void write_fasta(std::ostream& out, const std::vector<Sequence>& seqs,
                 std::size_t width) {
  if (width == 0) width = 70;
  for (const auto& seq : seqs) {
    out << '>' << seq.id;
    if (!seq.description.empty()) out << ' ' << seq.description;
    out << '\n';
    for (std::size_t i = 0; i < seq.residues.size(); i += width) {
      const std::size_t end = std::min(seq.residues.size(), i + width);
      for (std::size_t j = i; j < end; ++j)
        out << decode_letter(seq.residues[j]);
      out << '\n';
    }
  }
}

void write_fasta_file(const std::string& path,
                      const std::vector<Sequence>& seqs, std::size_t width) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write FASTA file: " + path);
  write_fasta(out, seqs, width);
}

}  // namespace repro::bio
