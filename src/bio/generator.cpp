#include "bio/generator.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "bio/alphabet.hpp"

namespace repro::bio {

namespace {

const std::array<double, kAlphabetSize>& background_cdf() {
  static const std::array<double, kAlphabetSize> cdf = [] {
    std::array<double, kAlphabetSize> out{};
    const auto& f = background_frequencies();
    double acc = 0.0;
    for (int i = 0; i < kAlphabetSize; ++i) {
      acc += f[static_cast<std::size_t>(i)];
      out[static_cast<std::size_t>(i)] = acc;
    }
    return out;
  }();
  return cdf;
}

}  // namespace

DatabaseProfile DatabaseProfile::swissprot_like(std::size_t num_sequences) {
  DatabaseProfile p;
  p.name = "swissprot_like";
  p.num_sequences = num_sequences;
  p.mean_length = 370.0;
  p.length_shape = 2.2;
  p.max_length = 5000;
  p.homolog_fraction = 0.02;
  return p;
}

DatabaseProfile DatabaseProfile::env_nr_like(std::size_t num_sequences) {
  DatabaseProfile p;
  p.name = "env_nr_like";
  p.num_sequences = num_sequences;
  p.mean_length = 200.0;
  p.length_shape = 2.8;  // env_nr reads are more uniform in length
  p.max_length = 2000;
  p.homolog_fraction = 0.01;
  return p;
}

std::uint8_t random_residue(util::Rng& rng) {
  return static_cast<std::uint8_t>(rng.sample_cdf(background_cdf()));
}

std::vector<std::uint8_t> random_protein(std::size_t length,
                                         util::Rng& rng) {
  std::vector<std::uint8_t> out(length);
  for (auto& r : out) r = random_residue(rng);
  return out;
}

std::vector<std::uint8_t> mutate_fragment(
    std::span<const std::uint8_t> fragment, double mutation_rate,
    double indel_rate, util::Rng& rng) {
  std::vector<std::uint8_t> out;
  out.reserve(fragment.size() + 8);
  for (const std::uint8_t residue : fragment) {
    const double roll = rng.uniform();
    if (roll < indel_rate / 2) {
      continue;  // deletion
    }
    if (roll < indel_rate) {
      out.push_back(random_residue(rng));  // insertion before the residue
    }
    out.push_back(rng.uniform() < mutation_rate ? random_residue(rng)
                                                : residue);
  }
  return out;
}

DatabaseGenerator::DatabaseGenerator(DatabaseProfile profile,
                                     std::uint64_t seed)
    : profile_(std::move(profile)), rng_(seed) {}

SequenceDatabase DatabaseGenerator::generate(
    std::span<const std::uint8_t> query) {
  std::vector<Sequence> seqs;
  seqs.reserve(profile_.num_sequences);
  const double scale = profile_.mean_length / profile_.length_shape;
  for (std::size_t i = 0; i < profile_.num_sequences; ++i) {
    auto len = static_cast<std::size_t>(
        std::lround(rng_.gamma(profile_.length_shape, scale)));
    len = std::clamp(len, profile_.min_length, profile_.max_length);
    auto residues = random_protein(len, rng_);

    const bool plant = !query.empty() && query.size() >= 10 &&
                       rng_.uniform() < profile_.homolog_fraction;
    if (plant) {
      // Take a random query fragment covering at least 30 residues (or the
      // whole query if shorter), mutate it, and splice it in.
      const std::size_t min_frag = std::min<std::size_t>(30, query.size());
      const std::size_t frag_len = static_cast<std::size_t>(
          rng_.range(static_cast<std::int64_t>(min_frag),
                     static_cast<std::int64_t>(query.size())));
      const auto frag_start = static_cast<std::size_t>(
          rng_.below(query.size() - frag_len + 1));
      auto mutated =
          mutate_fragment(query.subspan(frag_start, frag_len),
                          profile_.mutation_rate, profile_.indel_rate, rng_);
      const auto insert_at =
          static_cast<std::size_t>(rng_.below(residues.size() + 1));
      residues.insert(
          residues.begin() + static_cast<std::ptrdiff_t>(insert_at),
          mutated.begin(), mutated.end());
    }

    Sequence s;
    s.id = profile_.name + "_" + std::to_string(i);
    if (plant) s.description = "planted_homolog";
    s.residues = std::move(residues);
    seqs.push_back(std::move(s));
  }
  return SequenceDatabase(std::move(seqs));
}

Sequence make_benchmark_query(std::size_t length, std::uint64_t seed) {
  util::Rng rng(seed ^ (0xabcd0000ULL + length));
  Sequence q;
  q.id = "query" + std::to_string(length);
  q.description = "synthetic benchmark query";
  q.residues = random_protein(length, rng);
  return q;
}

}  // namespace repro::bio
