#include "bio/database.hpp"

#include <algorithm>
#include <numeric>

namespace repro::bio {

SequenceDatabase::SequenceDatabase(std::vector<Sequence> seqs) {
  std::size_t total = 0;
  for (const auto& s : seqs) total += s.residues.size();
  buffer_.reserve(total);
  offsets_.reserve(seqs.size() + 1);
  ids_.reserve(seqs.size());
  descriptions_.reserve(seqs.size());
  for (auto& s : seqs) {
    buffer_.insert(buffer_.end(), s.residues.begin(), s.residues.end());
    offsets_.push_back(buffer_.size());
    ids_.push_back(std::move(s.id));
    descriptions_.push_back(std::move(s.description));
  }
}

std::size_t SequenceDatabase::max_length() const {
  std::size_t best = 0;
  for (std::size_t i = 0; i < size(); ++i) best = std::max(best, length(i));
  return best;
}

Sequence SequenceDatabase::sequence(std::size_t i) const {
  const auto span = residues(i);
  return Sequence{ids_[i], descriptions_[i], {span.begin(), span.end()}};
}

SequenceDatabase SequenceDatabase::sorted_by_length_desc() const {
  std::vector<std::size_t> order(size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return length(a) > length(b);
                   });
  std::vector<Sequence> seqs;
  seqs.reserve(size());
  for (const auto i : order) seqs.push_back(sequence(i));
  return SequenceDatabase(std::move(seqs));
}

std::vector<std::pair<std::size_t, std::size_t>>
SequenceDatabase::split_blocks(std::size_t blocks) const {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  if (empty() || blocks == 0) return out;
  blocks = std::min(blocks, size());
  const std::uint64_t target =
      (total_residues() + blocks - 1) / blocks;
  std::size_t start = 0;
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < size(); ++i) {
    acc += length(i);
    const bool last = i + 1 == size();
    if (acc >= target || last) {
      out.emplace_back(start, i + 1);
      start = i + 1;
      acc = 0;
    }
  }
  return out;
}

}  // namespace repro::bio
