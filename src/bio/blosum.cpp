#include "bio/blosum.hpp"

#include <algorithm>
#include <cassert>
#include <string_view>

namespace repro::bio {

namespace {

// BLOSUM62 exactly as distributed by NCBI, in NCBI's letter order. Keeping
// the table in its published order (and remapping programmatically) avoids
// transcription errors.
constexpr std::string_view kNcbiOrder = "ARNDCQEGHILKMFPSTWYVBZX*";

constexpr std::int8_t kNcbiTable[24][24] = {
    /*A*/ {4, -1, -2, -2, 0, -1, -1, 0, -2, -1, -1, -1, -1, -2, -1, 1, 0, -3, -2, 0, -2, -1, 0, -4},
    /*R*/ {-1, 5, 0, -2, -3, 1, 0, -2, 0, -3, -2, 2, -1, -3, -2, -1, -1, -3, -2, -3, -1, 0, -1, -4},
    /*N*/ {-2, 0, 6, 1, -3, 0, 0, 0, 1, -3, -3, 0, -2, -3, -2, 1, 0, -4, -2, -3, 3, 0, -1, -4},
    /*D*/ {-2, -2, 1, 6, -3, 0, 2, -1, -1, -3, -4, -1, -3, -3, -1, 0, -1, -4, -3, -3, 4, 1, -1, -4},
    /*C*/ {0, -3, -3, -3, 9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1, -3, -3, -2, -4},
    /*Q*/ {-1, 1, 0, 0, -3, 5, 2, -2, 0, -3, -2, 1, 0, -3, -1, 0, -1, -2, -1, -2, 0, 3, -1, -4},
    /*E*/ {-1, 0, 0, 2, -4, 2, 5, -2, 0, -3, -3, 1, -2, -3, -1, 0, -1, -3, -2, -2, 1, 4, -1, -4},
    /*G*/ {0, -2, 0, -1, -3, -2, -2, 6, -2, -4, -4, -2, -3, -3, -2, 0, -2, -2, -3, -3, -1, -2, -1, -4},
    /*H*/ {-2, 0, 1, -1, -3, 0, 0, -2, 8, -3, -3, -1, -2, -1, -2, -1, -2, -2, 2, -3, 0, 0, -1, -4},
    /*I*/ {-1, -3, -3, -3, -1, -3, -3, -4, -3, 4, 2, -3, 1, 0, -3, -2, -1, -3, -1, 3, -3, -3, -1, -4},
    /*L*/ {-1, -2, -3, -4, -1, -2, -3, -4, -3, 2, 4, -2, 2, 0, -3, -2, -1, -2, -1, 1, -4, -3, -1, -4},
    /*K*/ {-1, 2, 0, -1, -3, 1, 1, -2, -1, -3, -2, 5, -1, -3, -1, 0, -1, -3, -2, -2, 0, 1, -1, -4},
    /*M*/ {-1, -1, -2, -3, -1, 0, -2, -3, -2, 1, 2, -1, 5, 0, -2, -1, -1, -1, -1, 1, -3, -1, -1, -4},
    /*F*/ {-2, -3, -3, -3, -2, -3, -3, -3, -1, 0, 0, -3, 0, 6, -4, -2, -2, 1, 3, -1, -3, -3, -1, -4},
    /*P*/ {-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4, 7, -1, -1, -4, -3, -2, -2, -1, -2, -4},
    /*S*/ {1, -1, 1, 0, -1, 0, 0, 0, -1, -2, -2, 0, -1, -2, -1, 4, 1, -3, -2, -2, 0, 0, 0, -4},
    /*T*/ {0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 1, 5, -2, -2, 0, -1, -1, 0, -4},
    /*W*/ {-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1, 1, -4, -3, -2, 11, 2, -3, -4, -3, -2, -4},
    /*Y*/ {-2, -2, -2, -3, -2, -1, -2, -3, 2, -1, -1, -2, -1, 3, -3, -2, -2, 2, 7, -1, -3, -2, -1, -4},
    /*V*/ {0, -3, -3, -3, -1, -2, -2, -3, -3, 3, 1, -2, 1, -1, -2, -2, 0, -3, -1, 4, -3, -2, -1, -4},
    /*B*/ {-2, -1, 3, 4, -3, 0, 1, -1, 0, -3, -4, 0, -3, -3, -2, 0, -1, -4, -3, -3, 4, 1, -1, -4},
    /*Z*/ {-1, 0, 0, 1, -3, 3, 4, -2, 0, -3, -3, 1, -1, -3, -1, 0, -1, -3, -2, -2, 1, 4, -1, -4},
    /*X*/ {0, -1, -1, -1, -2, -1, -1, -1, -1, -1, -1, -1, -1, -1, -2, 0, 0, -2, -1, -1, -1, -1, -1, -4},
    /***/ {-4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, 1},
};

}  // namespace

Blosum62::Blosum62() {
  // Map NCBI row/column order into this library's alphabet order.
  std::array<std::uint8_t, 24> ncbi_to_ours{};
  for (int i = 0; i < 24; ++i) {
    const auto code = encode_letter(kNcbiOrder[static_cast<std::size_t>(i)]);
    assert(code.has_value());
    ncbi_to_ours[static_cast<std::size_t>(i)] = *code;
  }
  for (int i = 0; i < 24; ++i)
    for (int j = 0; j < 24; ++j)
      scores_[ncbi_to_ours[static_cast<std::size_t>(i)]]
             [ncbi_to_ours[static_cast<std::size_t>(j)]] =
          kNcbiTable[i][j];

  // Padded 32x32 device layout; padding cells score like '*' mismatches so
  // that an out-of-alphabet access is strongly penalized, never rewarded.
  padded_.fill(-4);
  for (int a = 0; a < kAlphabetSize; ++a)
    for (int b = 0; b < kAlphabetSize; ++b)
      padded_[static_cast<std::size_t>(a) * kPaddedMatrixDim +
              static_cast<std::size_t>(b)] =
          scores_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];

  max_score_ = 0;
  for (const auto& row : scores_)
    max_score_ = std::max(max_score_, *std::max_element(row.begin(),
                                                        row.end()));
}

const Blosum62& Blosum62::instance() {
  static const Blosum62 matrix;
  return matrix;
}

}  // namespace repro::bio
