#include "bio/alphabet.hpp"

#include <cctype>
#include <stdexcept>

namespace repro::bio {

namespace {

constexpr std::array<std::int8_t, 128> build_encode_table() {
  std::array<std::int8_t, 128> table{};
  for (auto& e : table) e = -1;
  for (int i = 0; i < kAlphabetSize; ++i) {
    const char c = kLetters[static_cast<std::size_t>(i)];
    table[static_cast<std::size_t>(c)] = static_cast<std::int8_t>(i);
    if (c >= 'A' && c <= 'Z')
      table[static_cast<std::size_t>(c - 'A' + 'a')] =
          static_cast<std::int8_t>(i);
  }
  // Rare residues map to X.
  for (const char c : {'U', 'u', 'O', 'o', 'J', 'j'})
    table[static_cast<std::size_t>(c)] = static_cast<std::int8_t>(kCodeX);
  return table;
}

constexpr auto kEncodeTable = build_encode_table();

}  // namespace

std::optional<std::uint8_t> encode_letter(char c) {
  const auto u = static_cast<unsigned char>(c);
  if (u >= 128) return std::nullopt;
  const std::int8_t code = kEncodeTable[u];
  if (code < 0) return std::nullopt;
  return static_cast<std::uint8_t>(code);
}

char decode_letter(std::uint8_t code) {
  return code < kAlphabetSize ? kLetters[code] : '?';
}

std::vector<std::uint8_t> encode_string(std::string_view s) {
  std::vector<std::uint8_t> out;
  out.reserve(s.size());
  for (const char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    const auto code = encode_letter(c);
    if (!code)
      throw std::invalid_argument(std::string("not a residue letter: ") + c);
    out.push_back(*code);
  }
  return out;
}

std::string decode_string(const std::vector<std::uint8_t>& v) {
  std::string out;
  out.reserve(v.size());
  for (const auto code : v) out.push_back(decode_letter(code));
  return out;
}

const std::array<double, kAlphabetSize>& background_frequencies() {
  // Robinson & Robinson 1991 frequencies in our ACDEFGHIKLMNPQRSTVWY order.
  static const std::array<double, kAlphabetSize> kFreqs = [] {
    std::array<double, kAlphabetSize> f{};
    f[0] = 0.07805;   // A
    f[1] = 0.01925;   // C
    f[2] = 0.05364;   // D
    f[3] = 0.06295;   // E
    f[4] = 0.03856;   // F
    f[5] = 0.07377;   // G
    f[6] = 0.02199;   // H
    f[7] = 0.05142;   // I
    f[8] = 0.05744;   // K
    f[9] = 0.09019;   // L
    f[10] = 0.02243;  // M
    f[11] = 0.04487;  // N
    f[12] = 0.05203;  // P
    f[13] = 0.04264;  // Q
    f[14] = 0.05129;  // R
    f[15] = 0.07120;  // S
    f[16] = 0.05841;  // T
    f[17] = 0.06441;  // V
    f[18] = 0.01330;  // W
    f[19] = 0.03216;  // Y
    return f;
  }();
  return kFreqs;
}

}  // namespace repro::bio
