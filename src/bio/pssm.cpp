#include "bio/pssm.hpp"

namespace repro::bio {

Pssm::Pssm(std::span<const std::uint8_t> query, const Blosum62& matrix)
    : length_(query.size()),
      data_(query.size() * kPaddedMatrixDim, Score{-4}) {
  for (std::size_t pos = 0; pos < length_; ++pos)
    for (int aa = 0; aa < kAlphabetSize; ++aa)
      data_[pos * kPaddedMatrixDim + static_cast<std::size_t>(aa)] =
          matrix.score(query[pos], static_cast<std::uint8_t>(aa));
}

}  // namespace repro::bio
