// The BLOSUM62 substitution matrix, the default scoring matrix of BLASTP.
//
// The matrix is exposed both as a 24x24 table in this library's alphabet
// order and as the 32x32 zero-padded layout the paper stores in GPU shared
// memory ("BLOSUM62 matrix, which consists of 32 * 32 = 1024 elements and
// has a fixed size of only 2 kB, i.e. 2 bytes per element", §3.5).
#pragma once

#include <array>
#include <cstdint>

#include "bio/alphabet.hpp"

namespace repro::bio {

/// Score type used by all alignment code. 16-bit everywhere on the device
/// path (matching the paper's 2-bytes-per-element layout); widened to int
/// in accumulators.
using Score = std::int16_t;

/// Dimension of the padded device-layout matrix.
inline constexpr int kPaddedMatrixDim = 32;

class Blosum62 {
 public:
  /// Singleton accessor (the matrix is immutable global data).
  static const Blosum62& instance();

  /// Substitution score for two residue codes.
  [[nodiscard]] Score score(std::uint8_t a, std::uint8_t b) const {
    return scores_[a][b];
  }

  /// The 32x32 padded row-major layout (2 kB) used by the GPU kernels;
  /// element (a, b) lives at index a * 32 + b.
  [[nodiscard]] const std::array<Score, kPaddedMatrixDim * kPaddedMatrixDim>&
  padded() const {
    return padded_;
  }

  /// Highest score in the matrix (used by seeding heuristics and tests).
  [[nodiscard]] Score max_score() const { return max_score_; }

 private:
  Blosum62();

  std::array<std::array<Score, kAlphabetSize>, kAlphabetSize> scores_{};
  std::array<Score, kPaddedMatrixDim * kPaddedMatrixDim> padded_{};
  Score max_score_ = 0;
};

}  // namespace repro::bio
