// Karlin–Altschul statistics: the E-value / bit-score machinery BLAST uses
// to rank alignments.
//
// We ship the published BLOSUM62 constants (the ones every BLASTP uses) and
// additionally implement the ungapped lambda/H solver from first principles
// (Karlin & Altschul, PNAS 1990); a test verifies the solved lambda matches
// the published 0.3176 for BLOSUM62 over Robinson–Robinson frequencies.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "bio/alphabet.hpp"
#include "bio/blosum.hpp"

namespace repro::bio {

struct KarlinParams {
  double lambda;  ///< scale of the score distribution
  double k;       ///< size-correction constant
  double h;       ///< relative entropy per aligned pair (nats)
};

/// Published values for ungapped BLOSUM62.
[[nodiscard]] KarlinParams blosum62_ungapped();

/// Published values for gapped BLOSUM62 with gap open 11 / extend 1.
[[nodiscard]] KarlinParams blosum62_gapped_11_1();

/// Solves the ungapped lambda for an arbitrary substitution matrix and
/// residue background: the unique positive root of
///   sum_ij p_i p_j exp(lambda * s_ij) = 1.
/// Requires a negative expected score and at least one positive score.
/// Throws std::domain_error otherwise.
[[nodiscard]] double solve_ungapped_lambda(
    const Blosum62& matrix, const std::array<double, kAlphabetSize>& freqs);

/// Relative entropy H for a matrix/background at a given lambda.
[[nodiscard]] double relative_entropy(
    const Blosum62& matrix, const std::array<double, kAlphabetSize>& freqs,
    double lambda);

/// An explicit search space: the database statistics the effective-length
/// adjustment is computed over. Normally derived from the database handed
/// to the calculator, but a sharded search (core::ShardedSession) must pin
/// these to the *aggregate* fleet-wide values so every shard derives the
/// same `min_significant_score` and pre-filter threshold regardless of
/// which database slice it holds — merged results are then bit-identical
/// to a single-engine search over the whole database.
struct SearchSpace {
  std::uint64_t db_residues = 0;  ///< total residues across every shard
  std::size_t db_sequences = 0;   ///< total sequences across every shard
};

/// Statistics context for one search: query length m, database residue count
/// n, database sequence count num_seqs.
class EvalueCalculator {
 public:
  EvalueCalculator(KarlinParams params, std::size_t query_length,
                   std::uint64_t db_residues, std::size_t db_sequences);

  /// Search-space override: identical to the four-argument constructor with
  /// `space.db_residues` / `space.db_sequences` — the form shard workers
  /// use so cutoffs come from aggregate statistics, not their local slice.
  EvalueCalculator(KarlinParams params, std::size_t query_length,
                   const SearchSpace& space);

  /// Bit score: S' = (lambda*S - ln K) / ln 2.
  [[nodiscard]] double bit_score(int raw_score) const;

  /// Expect value with BLAST's effective-length adjustment.
  [[nodiscard]] double evalue(int raw_score) const;

  /// Smallest raw score whose e-value is <= `max_evalue`.
  [[nodiscard]] int min_significant_score(double max_evalue) const;

  [[nodiscard]] const KarlinParams& params() const { return params_; }
  [[nodiscard]] double effective_query_length() const { return eff_m_; }
  [[nodiscard]] double effective_db_length() const { return eff_n_; }

 private:
  KarlinParams params_;
  double eff_m_;
  double eff_n_;
};

}  // namespace repro::bio
