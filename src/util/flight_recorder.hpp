// Per-query flight recorder: a bounded in-memory ring of trace events for
// the query currently in flight (DESIGN.md §16).
//
// Tail-based retention inverts the tracing cost model: util::trace records
// everything while a session is active and always writes one file;
// production services cannot afford that for every request, but the
// queries worth debugging — the ones that finish degraded, errored,
// cancelled, or past the latency objective — are only identifiable *after*
// they finish. So the recorder keeps the most recent `capacity` events per
// thread in a ring while a query runs, and the owner (SearchService)
// decides at completion whether to dump or discard them.
//
// Plumbing: the recorder taps the existing util::trace instrumentation
// sites. While a query is being recorded, trace_enabled() reads true (so
// spans/instants are built) and Tracer::record() forwards a copy of every
// event here, whether or not a trace session is also active. Disabled cost
// is unchanged: the same single relaxed load per site.
//
// Threading: record() appends to a TLS ring (registration takes the mutex
// once per thread per query). begin_query()/end_query()/dump are owner-side
// operations: the owner runs queries one at a time and joins all worker
// threads before ending a query, the same contract Tracer::stop_*() has.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/trace.hpp"

namespace repro::util {

class FlightRecorder {
 public:
  static FlightRecorder& instance();

  /// Per-thread ring capacity (events). Applies from the next
  /// begin_query(); the bound is what keeps a pathological query from
  /// growing memory without limit.
  void configure(std::size_t max_events_per_thread);

  /// Starts recording a query: clears prior rings and turns the shared
  /// trace gate on. Queries are recorded one at a time.
  void begin_query(std::uint64_t query_id);

  /// Stops recording (the rings keep the captured events until the next
  /// begin_query or reset, so the owner can still dump them).
  void end_query();

  [[nodiscard]] bool active() const {
    return active_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t query_id() const;

  /// Appends to the calling thread's ring, evicting the oldest event when
  /// full. Called by Tracer::record() while a query is being recorded.
  void record(const TraceEvent& event);

  /// Chrome-trace JSON of the captured rings (oldest to newest per
  /// thread), annotated with query id, retained/dropped counts, and any
  /// caller-provided fields under "otherData".
  [[nodiscard]] std::string dump_json(
      std::initializer_list<TraceArg> annotations = {}) const;

  /// dump_json() to `path`, creating parent directories. False on I/O
  /// error.
  bool dump_to_file(const std::string& path,
                    std::initializer_list<TraceArg> annotations = {}) const;

  /// Events currently retained across all rings.
  [[nodiscard]] std::size_t event_count() const;

  /// Events evicted from full rings since begin_query.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Drops all rings and stops recording.
  void reset();

 private:
  FlightRecorder() = default;

  struct Ring {
    std::uint32_t tid = 0;
    std::string name;
    std::size_t capacity = 0;
    std::uint64_t pushed = 0;  ///< total events offered this query
    std::vector<TraceEvent> events;
  };

  Ring* ring_for_this_thread();

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::size_t capacity_ = 4096;
  std::uint64_t query_id_ = 0;
  std::uint64_t base_ns_ = 0;
  /// Bumped by begin_query so stale TLS ring pointers are re-registered,
  /// mirroring Tracer::session_gen_.
  std::atomic<std::uint64_t> gen_{0};
  std::atomic<bool> active_{false};
};

}  // namespace repro::util
