#include "util/fault.hpp"

#include <cstdlib>
#include <string>

namespace repro::util {

namespace {

/// splitmix64: the per-hit hash behind prob= triggers. Mixing the seed, a
/// hash of the point name, and the hit index makes the decision a pure
/// function of (seed, point, hit number) — independent of thread timing.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t parse_u64(const std::string& text, const std::string& entry) {
  try {
    return std::stoull(text);
  } catch (const std::exception&) {
    throw std::invalid_argument("fault schedule: bad integer in '" + entry +
                                "'");
  }
}

double parse_prob(const std::string& text, const std::string& entry) {
  double p = 0.0;
  try {
    p = std::stod(text);
  } catch (const std::exception&) {
    throw std::invalid_argument("fault schedule: bad probability in '" +
                                entry + "'");
  }
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("fault schedule: probability outside [0,1] "
                                "in '" + entry + "'");
  return p;
}

}  // namespace

std::uint64_t default_fault_seed() {
  if (const char* env = std::getenv("REPRO_FAULT_SEED")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && v != 0) return v;
  }
  return 1;
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::configure(const std::string& schedule,
                              std::uint64_t seed) {
  std::map<std::string, PointState, std::less<>> points;
  std::size_t pos = 0;
  while (pos < schedule.size()) {
    std::size_t end = schedule.find(';', pos);
    if (end == std::string::npos) end = schedule.size();
    const std::string entry = schedule.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0)
      throw std::invalid_argument("fault schedule: expected 'point:trigger' "
                                  "in '" + entry + "'");
    PointState state;
    std::size_t tpos = colon + 1;
    while (tpos <= entry.size()) {
      std::size_t tend = entry.find(',', tpos);
      if (tend == std::string::npos) tend = entry.size();
      const std::string trigger = entry.substr(tpos, tend - tpos);
      tpos = tend + 1;
      if (trigger.empty()) continue;
      if (trigger.starts_with("nth="))
        state.rule.nth = parse_u64(trigger.substr(4), entry);
      else if (trigger.starts_with("every="))
        state.rule.every = parse_u64(trigger.substr(6), entry);
      else if (trigger.starts_with("prob="))
        state.rule.probability = parse_prob(trigger.substr(5), entry);
      else if (trigger.starts_with("max="))
        state.rule.max_fires = parse_u64(trigger.substr(4), entry);
      else
        throw std::invalid_argument("fault schedule: unknown trigger '" +
                                    trigger + "' in '" + entry + "'");
    }
    points[entry.substr(0, colon)] = state;
  }

  std::lock_guard lock(mutex_);
  points_ = std::move(points);
  seed_ = seed;
  total_fires_.store(0, std::memory_order_relaxed);
  enabled_.store(!points_.empty(), std::memory_order_relaxed);
}

void FaultInjector::configure_from_env() {
  const char* schedule = std::getenv("REPRO_FAULTS");
  configure(schedule ? schedule : "", default_fault_seed());
}

void FaultInjector::clear() { configure("", default_fault_seed()); }

bool FaultInjector::fire(std::string_view point) {
  std::lock_guard lock(mutex_);
  const auto it = points_.find(point);
  if (it == points_.end()) return false;
  PointState& state = it->second;
  const std::uint64_t hit = ++state.hits;
  if (state.fires >= state.rule.max_fires) return false;

  bool fires = false;
  if (state.rule.nth != 0 && hit == state.rule.nth) fires = true;
  if (state.rule.every != 0 && hit % state.rule.every == 0) fires = true;
  if (state.rule.probability > 0.0) {
    const std::uint64_t draw = mix64(seed_ ^ hash_name(point) ^ hit);
    // Top 53 bits as a uniform double in [0, 1).
    const double u =
        static_cast<double>(draw >> 11) * (1.0 / 9007199254740992.0);
    if (u < state.rule.probability) fires = true;
  }
  if (fires) {
    ++state.fires;
    total_fires_.fetch_add(1, std::memory_order_relaxed);
  }
  return fires;
}

std::uint64_t FaultInjector::hits(std::string_view point) const {
  std::lock_guard lock(mutex_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

std::uint64_t FaultInjector::fires(std::string_view point) const {
  std::lock_guard lock(mutex_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

std::uint64_t FaultInjector::seed() const {
  std::lock_guard lock(mutex_);
  return seed_;
}

}  // namespace repro::util
