#include "util/log.hpp"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>

#include "util/json.hpp"
#include "util/timer.hpp"

namespace repro::util::log {

namespace {

struct LogState {
  std::mutex mutex;
  std::ofstream out;
  std::uint64_t seq = 0;
  std::atomic<bool> enabled{false};
};

LogState& state() {
  static LogState s;
  return s;
}

}  // namespace

void open(const std::string& path) {
  LogState& s = state();
  std::lock_guard lock(s.mutex);
  if (s.out.is_open()) s.out.close();
  s.enabled.store(false, std::memory_order_relaxed);
  if (path.empty()) return;
  const std::filesystem::path p(path);
  std::error_code dir_error;
  if (p.has_parent_path())
    std::filesystem::create_directories(p.parent_path(), dir_error);
  s.out.open(p, std::ios::app);
  if (dir_error || !s.out) {
    std::fprintf(stderr, "log: cannot open %s\n", path.c_str());
    s.out = std::ofstream();
    return;
  }
  s.enabled.store(true, std::memory_order_relaxed);
}

void close() {
  LogState& s = state();
  std::lock_guard lock(s.mutex);
  s.enabled.store(false, std::memory_order_relaxed);
  if (s.out.is_open()) {
    s.out.flush();
    s.out.close();
  }
}

bool enabled() {
  return state().enabled.load(std::memory_order_relaxed);
}

void event(std::string_view name, std::initializer_list<TraceArg> fields) {
  LogState& s = state();
  if (!s.enabled.load(std::memory_order_relaxed)) [[likely]]
    return;
  // Build the suffix outside the lock; the mutex only serializes the
  // sequence number and the append.
  std::string tail;
  tail.reserve(128);
  tail += ",\"ts_ns\":";
  tail += std::to_string(MonotonicClock::now_ns());
  tail += ",\"event\":";
  tail += json_str(name);
  for (const TraceArg& a : fields) {
    tail += ',';
    tail += json_str(a.key);
    tail += ':';
    tail += a.number ? a.value : json_str(a.value);
  }
  tail += "}\n";
  std::lock_guard lock(s.mutex);
  if (!s.out.is_open()) return;
  s.out << "{\"seq\":" << s.seq++ << tail;
  s.out.flush();
}

}  // namespace repro::util::log
