// Structured JSONL event log (DESIGN.md §16).
//
// One JSON object per line, append-only, machine-greppable: the service
// emits admission, dispatch, completion, degradation, and drain events here
// so an operator can reconstruct what the service did without replaying a
// trace. Complements the other observability surfaces: metrics aggregate,
// traces sample one run, statusz shows "now" — the event log is the
// durable sequence of discrete decisions.
//
// Cost contract: one relaxed atomic load per call site when disabled (the
// same contract as util::trace). Enabled emission takes a mutex and writes
// one line; callers log per-request decisions, not per-lane work.
//
// Timestamps come from util::MonotonicClock, so a VirtualClockScope makes
// the `ts_ns` column deterministic too; `seq` is a process-lifetime line
// counter that orders events even across reopen.
#pragma once

#include <initializer_list>
#include <string>
#include <string_view>

#include "util/trace.hpp"

namespace repro::util::log {

/// Opens (appending to) the JSONL log at `path` and enables emission.
/// An empty path — or a failed open — disables. Reopening to a new path
/// closes the previous one.
void open(const std::string& path);

/// Flushes and disables.
void close();

[[nodiscard]] bool enabled();

/// Emits one line: {"seq":N,"ts_ns":T,"event":"<name>", <fields>...}.
/// No-op (one relaxed load) when disabled. Reuses TraceArg/targ so call
/// sites share the trace annotation vocabulary.
void event(std::string_view name,
           std::initializer_list<TraceArg> fields = {});

}  // namespace repro::util::log
