#include "util/options.hpp"

#include <cstdlib>
#include <vector>

namespace repro::util {

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        kv_[arg.substr(2)] = "1";
      } else {
        kv_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool Options::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string Options::get(const std::string& key,
                         const std::string& fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : std::strtoll(it->second.c_str(),
                                                   nullptr, 10);
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback
                         : std::strtod(it->second.c_str(), nullptr);
}

}  // namespace repro::util
