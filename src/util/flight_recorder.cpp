#include "util/flight_recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/json.hpp"
#include "util/timer.hpp"

namespace repro::util {

namespace {

/// Per-thread cache of (generation, ring) so steady-state record() takes no
/// lock — the same scheme Tracer uses for its session buffers.
struct FlightTls {
  std::uint64_t gen = 0;
  void* ring = nullptr;  // FlightRecorder::Ring*, type-erased for the TLS
};

FlightTls& flight_tls() {
  thread_local FlightTls state;
  return state;
}

}  // namespace

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::configure(std::size_t max_events_per_thread) {
  std::lock_guard lock(mutex_);
  capacity_ = max_events_per_thread == 0 ? 1 : max_events_per_thread;
}

void FlightRecorder::begin_query(std::uint64_t query_id) {
  std::lock_guard lock(mutex_);
  rings_.clear();
  query_id_ = query_id;
  base_ns_ = MonotonicClock::now_ns();
  gen_.fetch_add(1, std::memory_order_relaxed);
  active_.store(true, std::memory_order_relaxed);
  trace_internal::flight_active.store(true, std::memory_order_relaxed);
  trace_internal::refresh_enabled();
}

void FlightRecorder::end_query() {
  std::lock_guard lock(mutex_);
  active_.store(false, std::memory_order_relaxed);
  trace_internal::flight_active.store(false, std::memory_order_relaxed);
  trace_internal::refresh_enabled();
}

std::uint64_t FlightRecorder::query_id() const {
  std::lock_guard lock(mutex_);
  return query_id_;
}

FlightRecorder::Ring* FlightRecorder::ring_for_this_thread() {
  FlightTls& state = flight_tls();
  std::lock_guard lock(mutex_);
  if (!active_.load(std::memory_order_relaxed)) return nullptr;
  const std::uint64_t gen = gen_.load(std::memory_order_relaxed);
  if (state.gen == gen && state.ring != nullptr)
    return static_cast<Ring*>(state.ring);
  auto ring = std::make_unique<Ring>();
  ring->tid = static_cast<std::uint32_t>(rings_.size() + 1);
  ring->name = trace_internal::current_thread_track_name();
  ring->capacity = capacity_;
  ring->events.reserve(std::min<std::size_t>(capacity_, 256));
  state.gen = gen;
  state.ring = ring.get();
  rings_.push_back(std::move(ring));
  return static_cast<Ring*>(state.ring);
}

void FlightRecorder::record(const TraceEvent& event) {
  FlightTls& state = flight_tls();
  Ring* ring =
      state.gen == gen_.load(std::memory_order_relaxed) &&
              state.ring != nullptr
          ? static_cast<Ring*>(state.ring)
          : ring_for_this_thread();
  if (ring == nullptr) return;
  if (ring->events.size() < ring->capacity) {
    ring->events.push_back(event);
  } else {
    // Ring is full: overwrite the oldest slot, keeping the tail — for a
    // slow query the events *near the end* are the ones that explain it.
    ring->events[ring->pushed % ring->capacity] = event;
  }
  ++ring->pushed;
}

std::string FlightRecorder::dump_json(
    std::initializer_list<TraceArg> annotations) const {
  std::lock_guard lock(mutex_);
  std::string out;
  out.reserve(1 << 14);
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"query_id\":";
  out += std::to_string(query_id_);
  std::size_t retained = 0;
  std::uint64_t evicted = 0;
  for (const auto& ring : rings_) {
    retained += ring->events.size();
    if (ring->pushed > ring->events.size())
      evicted += ring->pushed - ring->events.size();
  }
  out += ",\"events_retained\":";
  out += std::to_string(retained);
  out += ",\"events_dropped\":";
  out += std::to_string(evicted);
  for (const TraceArg& a : annotations) {
    out += ',';
    out += json_str(a.key);
    out += ':';
    out += a.number ? a.value : json_str(a.value);
  }
  out += "},\"traceEvents\":[\n";
  bool first = true;
  const auto emit = [&out, &first](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  };
  std::string line;
  for (const auto& ring : rings_) {
    line.clear();
    const std::string name =
        ring->name.empty()
            ? (ring->tid == 1 ? "main"
                              : "thread-" + std::to_string(ring->tid))
            : ring->name;
    trace_internal::append_thread_name_json(line, 1, ring->tid, name);
    emit(line);
    // Oldest-to-newest: when the ring wrapped, the logical head sits at
    // pushed % capacity.
    const std::size_t n = ring->events.size();
    const std::size_t head =
        ring->pushed > n ? ring->pushed % ring->capacity : 0;
    for (std::size_t i = 0; i < n; ++i) {
      const TraceEvent& e = ring->events[(head + i) % n];
      line.clear();
      trace_internal::append_event_json(line, e, 1, ring->tid, base_ns_);
      emit(line);
    }
  }
  out += "\n]}\n";
  return out;
}

bool FlightRecorder::dump_to_file(
    const std::string& path,
    std::initializer_list<TraceArg> annotations) const {
  const std::string json = dump_json(annotations);
  const std::filesystem::path p(path);
  std::error_code dir_error;
  if (p.has_parent_path())
    std::filesystem::create_directories(p.parent_path(), dir_error);
  std::ofstream out(p);
  if (dir_error || !out) {
    std::fprintf(stderr, "flight: cannot write %s\n", path.c_str());
    return false;
  }
  out << json;
  return static_cast<bool>(out);
}

std::size_t FlightRecorder::event_count() const {
  std::lock_guard lock(mutex_);
  std::size_t total = 0;
  for (const auto& ring : rings_) total += ring->events.size();
  return total;
}

std::uint64_t FlightRecorder::dropped() const {
  std::lock_guard lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_)
    if (ring->pushed > ring->events.size())
      total += ring->pushed - ring->events.size();
  return total;
}

void FlightRecorder::reset() {
  std::lock_guard lock(mutex_);
  active_.store(false, std::memory_order_relaxed);
  trace_internal::flight_active.store(false, std::memory_order_relaxed);
  trace_internal::refresh_enabled();
  rings_.clear();
  gen_.fetch_add(1, std::memory_order_relaxed);
  query_id_ = 0;
}

}  // namespace repro::util
