// Tiny JSON emission helpers shared by the observability exporters (the
// Chrome-trace writer, the metrics registry, and SearchReport::to_json).
// Emission only — parsing for validation lives in the tests, which use a
// deliberately strict parser so a sloppy writer cannot self-certify.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace repro::util {

/// Escapes a string for inclusion inside JSON double quotes.
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// A quoted, escaped JSON string token.
inline std::string json_str(std::string_view s) {
  return '"' + json_escape(s) + '"';
}

/// A finite JSON number token. NaN/inf are not representable in JSON, so
/// they serialize as null (strict parsers treat that as "absent").
inline std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

inline std::string json_num(std::uint64_t v) { return std::to_string(v); }
inline std::string json_num(std::int64_t v) { return std::to_string(v); }

}  // namespace repro::util
