// Deterministic fault injection for the search pipeline.
//
// A fault point is a named site that can be told to fail on a seeded,
// reproducible schedule: on the nth time it is reached, on every kth time,
// or with a per-hit probability decided by a counter-indexed hash (so the
// same seed always fails the same hits, regardless of how many threads are
// racing through the point). Schedules come from the environment
// (REPRO_FAULTS / REPRO_FAULT_SEED) or from code (core::Config, tests).
//
// When no schedule is installed — the production configuration — a fault
// point is one relaxed atomic load; nothing else happens. Sites on hot
// paths therefore stay hot, and the chaos CI job can flip the same binary
// into a hostile environment with an environment variable.
//
// Schedule grammar (';'-separated entries, ','-separated triggers):
//   "simt.alloc:nth=5;core.bin_overflow:every=2;simt.transfer:prob=0.25"
//   nth=N    fire on the Nth hit only (1-based; 0 = count hits, never fire)
//   every=K  fire on hits K, 2K, 3K, ...
//   prob=P   fire each hit with probability P (seeded hash of the hit index)
//   max=M    stop firing after M fires (combines with any trigger)
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>

namespace repro::util {

/// What a fired fault point throws when the site does not translate the
/// failure into a domain-specific error itself.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(std::string point)
      : std::runtime_error("injected fault at '" + point + "'"),
        point_(std::move(point)) {}
  [[nodiscard]] const std::string& point() const { return point_; }

 private:
  std::string point_;
};

/// Trigger rule for one named fault point. All-zero = observe only.
struct FaultRule {
  std::uint64_t nth = 0;         ///< fire on this hit exactly (1-based)
  std::uint64_t every = 0;       ///< fire on every multiple of this hit
  double probability = 0.0;      ///< per-hit Bernoulli, seeded hash
  std::uint64_t max_fires = ~0ULL;  ///< stop firing after this many
};

/// The process-wide registry of fault points and their schedules.
class FaultInjector {
 public:
  /// The singleton; first use installs any environment schedule.
  static FaultInjector& instance();

  /// Replaces the current schedule (see the grammar above). An empty
  /// schedule disables injection. Throws std::invalid_argument on a
  /// malformed schedule. Resets all hit/fire counters.
  void configure(const std::string& schedule, std::uint64_t seed);

  /// Installs REPRO_FAULTS under REPRO_FAULT_SEED (default_seed()).
  void configure_from_env();

  /// Removes the schedule; fault points return to the disabled fast path.
  void clear();

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Counts a hit of `point` and decides whether its fault fires. Only
  /// reached when a schedule is installed.
  bool fire(std::string_view point);

  [[nodiscard]] std::uint64_t hits(std::string_view point) const;
  [[nodiscard]] std::uint64_t fires(std::string_view point) const;
  /// Total fires across all points since the last configure(); monotone, so
  /// callers can delta it around a region to count faults they absorbed.
  [[nodiscard]] std::uint64_t total_fires() const {
    return total_fires_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t seed() const;

 private:
  FaultInjector() { configure_from_env(); }

  struct PointState {
    FaultRule rule;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, PointState, std::less<>> points_;
  std::uint64_t seed_ = 1;
  std::atomic<std::uint64_t> total_fires_{0};
  std::atomic<bool> enabled_{false};
};

/// Seed for schedules that don't pin their own: REPRO_FAULT_SEED, else 1.
[[nodiscard]] std::uint64_t default_fault_seed();

/// The hot-path check every instrumented site calls. Disabled injection
/// costs a single relaxed load.
inline bool fault_point(std::string_view point) {
  FaultInjector& injector = FaultInjector::instance();
  if (!injector.enabled()) [[likely]]
    return false;
  return injector.fire(point);
}

/// Convenience for sites whose failure mode is simply "throw".
inline void fault_point_throw(std::string_view point) {
  if (fault_point(point)) throw FaultInjectedError(std::string(point));
}

/// RAII schedule installation for tests and Config-driven searches:
/// configures on construction, restores the environment baseline (usually
/// the disabled state) on destruction.
class FaultScope {
 public:
  FaultScope(const std::string& schedule, std::uint64_t seed) {
    FaultInjector::instance().configure(schedule, seed);
  }
  ~FaultScope() { FaultInjector::instance().configure_from_env(); }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;
};

}  // namespace repro::util
