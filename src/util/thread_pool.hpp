// A small fixed-size thread pool used by the CPU-side BLASTP phases
// (gapped extension and alignment-with-traceback) and the NCBI-style
// multithreaded baseline.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/svccheck.hpp"

namespace repro::util {

/// Fixed-size pool of worker threads with a shared FIFO task queue.
///
/// The pool is deliberately simple: the workloads we schedule (per-sequence
/// gapped extensions) are coarse enough that a single mutex-protected queue
/// is never the bottleneck, and simplicity keeps the makespan model (see
/// makespan.hpp) honest about what the real scheduler does.
class ThreadPool {
 public:
  /// `name` labels the pool's worker tracks in traces ("<name>-worker-N"),
  /// its task spans ("<name>.task"), and its queue lock in the svccheck
  /// lock-order graph ("util.thread_pool.<name>"); it has no scheduling
  /// effect.
  explicit ThreadPool(std::size_t num_threads, std::string name = "pool");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Work is distributed in contiguous chunks (static schedule). Every
  /// chunk is joined before returning even if one throws; the exception of
  /// the first failing chunk (submission order) is then rethrown.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Runs fn(i) with a dynamic (work-queue) schedule: each worker repeatedly
  /// grabs the next index. This mirrors NCBI BLAST's per-sequence dispatch.
  /// Same join-then-rethrow exception contract as parallel_for.
  void parallel_for_dynamic(std::size_t n,
                            const std::function<void(std::size_t)>& fn);

  /// Runs fn(shard) for shard in [0, n), one task per shard, and waits for
  /// ALL shards to finish before returning — even when some of them throw.
  /// If any shard threw, shards that have not yet started are cancelled
  /// (skipped), and the exception of the lowest-numbered failing shard is
  /// rethrown after the barrier, so error reporting is deterministic and
  /// no shard can still be touching caller state during unwinding. This is
  /// the join the SM-sharded SIMT engine uses.
  ///
  /// `external_cancel`, when non-null, is a caller-owned stop flag checked
  /// (acquire) before each shard starts: once it reads true, not-yet-started
  /// shards are skipped silently. The shards that already ran still joined,
  /// so the caller sees a normal (partial) return and is expected to abort
  /// at its own next cancellation checkpoint — this is how service-layer
  /// cancellation (core/cancellation.hpp) reaches shard granularity without
  /// the util layer knowing about tokens. A flag that never fires leaves
  /// behaviour bit-identical to the two-argument overload.
  void run_shards(std::size_t n, const std::function<void(std::size_t)>& fn,
                  const std::atomic<bool>* external_cancel = nullptr);

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

 private:
  void worker_loop(std::size_t worker_index);

  std::string name_;
  std::string task_span_name_;  ///< precomputed: tracing must not allocate
                                ///< per task while disabled
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  // CheckedMutex + condition_variable_any: identical semantics to a plain
  // mutex/condvar pair, plus svccheck lock-order tracking (one relaxed
  // load per operation when the analyzer is off).
  svc::CheckedMutex mutex_;
  std::condition_variable_any cv_;
  std::condition_variable_any idle_cv_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace repro::util
