// Deterministic, seedable random number generation.
//
// All synthetic data in this repository (databases, queries, planted
// homologies) is generated through this RNG so that every test and bench is
// reproducible bit-for-bit across runs and machines.
#pragma once

#include <cstdint>
#include <limits>
#include <span>

namespace repro::util {

/// splitmix64: used to expand a user seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, deterministic PRNG.
/// Satisfies UniformRandomBitGenerator so it can drive <random> if needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x5eedULL) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Samples an index from a discrete distribution given cumulative weights
  /// (cdf.back() is the total mass).
  std::size_t sample_cdf(std::span<const double> cdf) {
    const double u = uniform() * cdf.back();
    std::size_t lo = 0, hi = cdf.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf[mid] <= u)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo;
  }

  /// Marsaglia–Tsang gamma(shape, scale) sampler (shape >= 1 fast path; the
  /// shape < 1 boost uses the standard u^(1/shape) trick).
  double gamma(double shape, double scale);

  /// Standard normal via Box–Muller (no cached spare; deterministic order).
  double normal() ;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

inline double Rng::normal() {
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
         __builtin_cos(6.283185307179586 * u2);
}

inline double Rng::gamma(double shape, double scale) {
  if (shape < 1.0) {
    const double u = uniform();
    return gamma(shape + 1.0, scale) *
           __builtin_pow(u <= 0 ? 1e-300 : u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / __builtin_sqrt(9.0 * d);
  for (;;) {
    double x = normal();
    double v = 1.0 + c * x;
    if (v <= 0) continue;
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (__builtin_log(u <= 0 ? 1e-300 : u) <
        0.5 * x * x + d * (1.0 - v + __builtin_log(v)))
      return d * v * scale;
  }
}

}  // namespace repro::util
