// Monotonic wall-clock timers used by every phase of the search engines,
// and the single process-wide clock seam shared with the tracer
// (util/trace.hpp): everything that needs "now" on a monotonic timeline —
// Timer, TraceSpan timestamps, counter samples — reads MonotonicClock, so
// there is exactly one clock abstraction to swap for the deterministic
// virtual mode tests use.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <ctime>

namespace repro::util {

/// Process-wide monotonic nanosecond clock. Two modes:
///  - wall (default): std::chrono::steady_clock — monotonic, unaffected by
///    system-time adjustments (never system_clock, which can jump).
///  - virtual: an atomic tick counter that advances by one microsecond per
///    read. Timestamps then depend only on the number and per-thread order
///    of clock reads, which makes trace *structure* (names, nesting,
///    counts) reproducible in tests regardless of scheduling jitter.
class MonotonicClock {
 public:
  [[nodiscard]] static std::uint64_t now_ns() {
    if (virtual_mode().load(std::memory_order_relaxed)) [[unlikely]]
      return virtual_ticks().fetch_add(1, std::memory_order_relaxed) * 1000;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Switches between wall and virtual mode; entering virtual mode resets
  /// the tick counter so traces start near t=0.
  static void set_virtual(bool on) {
    if (on) virtual_ticks().store(0, std::memory_order_relaxed);
    virtual_mode().store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] static bool is_virtual() {
    return virtual_mode().load(std::memory_order_relaxed);
  }

 private:
  static std::atomic<bool>& virtual_mode() {
    static std::atomic<bool> mode{false};
    return mode;
  }
  static std::atomic<std::uint64_t>& virtual_ticks() {
    static std::atomic<std::uint64_t> ticks{0};
    return ticks;
  }
};

/// RAII virtual-clock mode for tests: deterministic tick clock inside the
/// scope, wall clock restored on exit.
class VirtualClockScope {
 public:
  VirtualClockScope() { MonotonicClock::set_virtual(true); }
  ~VirtualClockScope() { MonotonicClock::set_virtual(false); }
  VirtualClockScope(const VirtualClockScope&) = delete;
  VirtualClockScope& operator=(const VirtualClockScope&) = delete;
};

/// Simple monotonic stopwatch. Starts running on construction. Reads
/// MonotonicClock, so it follows the virtual mode in tests.
class Timer {
 public:
  Timer() : start_ns_(MonotonicClock::now_ns()) {}

  void reset() { start_ns_ = MonotonicClock::now_ns(); }

  /// Elapsed time in seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return static_cast<double>(MonotonicClock::now_ns() - start_ns_) * 1e-9;
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  std::uint64_t start_ns_;
};

/// Per-thread CPU-time stopwatch (CLOCK_THREAD_CPUTIME_ID). Use this to
/// cost a task that runs inside a thread pool: unlike wall-clock, it is
/// not inflated by time-slicing against the pool's other workers (which
/// matters on machines with fewer cores than workers). This is a CPU-time
/// clock, not a second monotonic-timeline abstraction — timeline reads
/// stay on MonotonicClock.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(now()) {}

  void reset() { start_ = now(); }

  [[nodiscard]] double seconds() const { return now() - start_; }

 private:
  static double now() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
  double start_;
};

/// Accumulates elapsed time into a double on destruction; used to attribute
/// wall-clock to named phases without sprinkling Timer bookkeeping around.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double& sink) : sink_(sink) {}
  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;
  ~ScopedAccumulator() { sink_ += timer_.seconds(); }

 private:
  double& sink_;
  Timer timer_;
};

}  // namespace repro::util
