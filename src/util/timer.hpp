// Monotonic wall-clock timers used by every phase of the search engines.
#pragma once

#include <chrono>
#include <cstdint>
#include <ctime>

namespace repro::util {

/// Simple monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Per-thread CPU-time stopwatch (CLOCK_THREAD_CPUTIME_ID). Use this to
/// cost a task that runs inside a thread pool: unlike wall-clock, it is
/// not inflated by time-slicing against the pool's other workers (which
/// matters on machines with fewer cores than workers).
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(now()) {}

  void reset() { start_ = now(); }

  [[nodiscard]] double seconds() const { return now() - start_; }

 private:
  static double now() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
  double start_;
};

/// Accumulates elapsed time into a double on destruction; used to attribute
/// wall-clock to named phases without sprinkling Timer bookkeeping around.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double& sink) : sink_(sink) {}
  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;
  ~ScopedAccumulator() { sink_ += timer_.seconds(); }

 private:
  double& sink_;
  Timer timer_;
};

}  // namespace repro::util
