// svccheck: a runtime concurrency analyzer for the *host* layer — the
// sibling of the device-side simtcheck suite (simt/simtcheck.hpp).
//
// The device checkers watch warps and shared memory; svccheck watches the
// locks, condition-variable waits, and cancellation checkpoints of the
// service layer (core/service.*, util/thread_pool.*). Three checks:
//
//  - lock-order inversion: every blocking CheckedMutex::lock() records the
//    edges held-lock -> acquired-lock in a global, name-keyed lock-order
//    graph. An acquisition that would close a cycle (A held while taking B
//    after B was ever held while taking A) is a potential deadlock and is
//    reported once per lock pair.
//  - blocked-while-locked: a condition wait or join that parks the thread
//    while it still holds *another* CheckedMutex (beyond the one the wait
//    releases) can starve every contender of that lock; note_blocking_wait
//    flags it.
//  - checkpoint gaps: a CheckpointScope collects the cancellation
//    checkpoints the current thread actually polled (cancellation.hpp
//    routes every throw_if_stopped through note_checkpoint); the session
//    layer asserts its required stage-boundary set against it, so a
//    refactor that silently stops polling a stage turns into a reported
//    hazard instead of an uncancellable request.
//
// Layering: util cannot see simt, so hazards are recorded here as
// SvcHazardRecords in a process-wide log; the core layer translates them
// into simt::HazardReport entries for the shared report schema. Records
// carry names only (never addresses), so reports compare bit-identical
// across runs and worker counts.
//
// Cost when disabled (the default): one relaxed atomic load per lock /
// unlock / wait / checkpoint — the exact discipline simtcheck uses for its
// one-null-check contract. No allocation, no extra synchronization.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace repro::util::svc {

/// What a host-side hazard record describes.
enum class SvcHazardKind : std::uint8_t {
  kLockOrderInversion,  ///< cyclic lock-order graph edge
  kBlockedWhileLocked,  ///< blocking wait while holding another lock
  kCheckpointGap,       ///< required cancellation checkpoint never polled
};

[[nodiscard]] const char* svc_hazard_kind_name(SvcHazardKind kind);

/// One host-side hazard. `name` identifies the subject (the "A -> B" lock
/// edge or the checkpoint name); `detail` is the human-readable diagnosis.
struct SvcHazardRecord {
  SvcHazardKind kind = SvcHazardKind::kLockOrderInversion;
  std::string name;
  std::string detail;
};

namespace svc_detail {
/// Process-wide enable switch, inline so the disabled fast path in
/// note_checkpoint()/CheckedMutex compiles to a single relaxed load.
inline std::atomic<bool> enabled_flag{false};
void note_checkpoint_slow(const char* name);
}  // namespace svc_detail

/// Turns the analyzer on or off process-wide. Enabling is cheap and safe
/// mid-run; disabling stops recording but keeps the log.
void set_svccheck_enabled(bool enabled);
[[nodiscard]] inline bool svccheck_enabled() {
  return svc_detail::enabled_flag.load(std::memory_order_relaxed);
}
/// True when the REPRO_SVCCHECK environment variable asks for the analyzer
/// (unset, empty, or "0" = off).
[[nodiscard]] bool svccheck_env_enabled();

/// Process-wide hazard log. Appends dedupe per subject, so a hot lock pair
/// reports once, not once per acquisition; the log additionally caps at
/// kMaxRecords appends as a runaway backstop (total() keeps counting).
class SvcHazardLog {
 public:
  static constexpr std::size_t kMaxRecords = 64;

  static SvcHazardLog& instance();

  void record(SvcHazardRecord record);
  [[nodiscard]] std::vector<SvcHazardRecord> snapshot() const;
  [[nodiscard]] std::uint64_t total() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<SvcHazardRecord> records_;
  std::uint64_t total_ = 0;
};

/// Drop-in std::mutex replacement that participates in the lock-order
/// graph. Satisfies Lockable, so it works with std::lock_guard,
/// std::unique_lock, and std::condition_variable_any. `name` keys the
/// graph: two mutexes with the same name are the same graph node (a pool's
/// queue lock keeps one identity across pool instances), and self-edges
/// (re-acquiring the same name on another instance) are never reported.
class CheckedMutex {
 public:
  explicit CheckedMutex(std::string name) : name_(std::move(name)) {}

  CheckedMutex(const CheckedMutex&) = delete;
  CheckedMutex& operator=(const CheckedMutex&) = delete;

  void lock();
  void unlock();
  bool try_lock();

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::mutex mu_;
};

/// Call immediately before a blocking wait (condition variable, join,
/// future::get) that releases `about_to_release`. Reports
/// kBlockedWhileLocked when the calling thread still holds any *other*
/// CheckedMutex across the park. Pass nullptr for waits that release
/// nothing (joins, future waits).
void note_blocking_wait(const CheckedMutex* about_to_release);

/// Records that the current thread polled a cancellation checkpoint.
/// CancellationToken::throw_if_stopped calls this unconditionally — the
/// disabled cost is the one relaxed load below.
inline void note_checkpoint(const char* name) {
  if (svc_detail::enabled_flag.load(std::memory_order_relaxed))
    svc_detail::note_checkpoint_slow(name);
}

/// Collects the checkpoints polled on the current thread between
/// construction and destruction. Nestable (the innermost scope records);
/// the session layer opens one around a search and asserts its required
/// stage-boundary checkpoints with missing().
class CheckpointScope {
 public:
  CheckpointScope();
  ~CheckpointScope();

  CheckpointScope(const CheckpointScope&) = delete;
  CheckpointScope& operator=(const CheckpointScope&) = delete;

  [[nodiscard]] bool polled(const char* name) const;
  /// The subset of `required` never polled in this scope, in input order.
  [[nodiscard]] std::vector<std::string> missing(
      std::span<const char* const> required) const;

 private:
  friend void svc_detail::note_checkpoint_slow(const char* name);
  CheckpointScope* prev_;
  std::vector<std::string> polled_;
};

}  // namespace repro::util::svc
