#include "util/trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "util/flight_recorder.hpp"
#include "util/json.hpp"

namespace repro::util {

namespace trace_internal {
std::atomic<bool> enabled{false};
std::atomic<bool> session_active{false};
std::atomic<bool> flight_active{false};

void refresh_enabled() {
  enabled.store(session_active.load(std::memory_order_relaxed) ||
                    flight_active.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
}
}  // namespace trace_internal

namespace {

/// Sticky per-thread track name (applied at buffer registration) and the
/// per-session buffer cache: `gen` tells whether `buffer` belongs to the
/// current session or a finished one.
struct ThreadTraceState {
  std::string track_name;
  std::uint64_t gen = 0;
  void* buffer = nullptr;  // Tracer::ThreadBuffer*, type-erased for the TLS
};

ThreadTraceState& tls() {
  thread_local ThreadTraceState state;
  return state;
}

/// Chrome trace "ts"/"dur" are microseconds; we keep nanoseconds
/// internally and emit a fractional microsecond value.
std::string micros(std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  return buf;
}

void append_args(std::string& out, const std::vector<TraceArg>& args) {
  if (args.empty()) return;
  out += ",\"args\":{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) out += ',';
    out += json_str(args[i].key);
    out += ':';
    out += args[i].number ? args[i].value : json_str(args[i].value);
  }
  out += '}';
}

/// One serialized trace event. `base_ns` rebases measured timestamps to the
/// session start; modeled events pass base_ns = 0 (their timestamps are
/// already offsets).
void append_event(std::string& out, const TraceEvent& e, int pid,
                  std::uint32_t tid, std::uint64_t base_ns) {
  const std::uint64_t ts = e.ts_ns >= base_ns ? e.ts_ns - base_ns : 0;
  out += "{\"name\":";
  out += json_str(e.name);
  if (!e.category.empty()) {
    out += ",\"cat\":";
    out += json_str(e.category);
  }
  out += ",\"ph\":\"";
  out += e.phase;
  out += "\",\"ts\":";
  out += micros(ts);
  if (e.phase == 'X') {
    out += ",\"dur\":";
    out += micros(e.dur_ns);
  }
  if (e.phase == 'i') out += ",\"s\":\"t\"";
  out += ",\"pid\":";
  out += std::to_string(pid);
  out += ",\"tid\":";
  out += std::to_string(tid);
  append_args(out, e.args);
  out += '}';
}

void append_metadata(std::string& out, const char* what, int pid,
                     std::uint32_t tid, bool thread_level,
                     const std::string& value, bool numeric = false) {
  out += "{\"name\":\"";
  out += what;
  out += "\",\"ph\":\"M\",\"pid\":";
  out += std::to_string(pid);
  if (thread_level) {
    out += ",\"tid\":";
    out += std::to_string(tid);
  }
  out += ",\"args\":{\"";
  out += numeric ? "sort_index" : "name";
  out += "\":";
  out += numeric ? value : json_str(value);
  out += "}}";
}

}  // namespace

namespace trace_internal {

void append_event_json(std::string& out, const TraceEvent& e, int pid,
                       std::uint32_t tid, std::uint64_t base_ns) {
  append_event(out, e, pid, tid, base_ns);
}

void append_thread_name_json(std::string& out, int pid, std::uint32_t tid,
                             const std::string& name) {
  append_metadata(out, "thread_name", pid, tid, true, name);
}

std::string current_thread_track_name() { return tls().track_name; }

}  // namespace trace_internal

TraceArg targ(std::string_view key, std::string_view value) {
  return TraceArg{std::string(key), std::string(value), false};
}
TraceArg targ(std::string_view key, double value) {
  return TraceArg{std::string(key), json_num(value), true};
}
TraceArg targ(std::string_view key, std::uint64_t value) {
  return TraceArg{std::string(key), std::to_string(value), true};
}
TraceArg targ(std::string_view key, std::int64_t value) {
  return TraceArg{std::string(key), std::to_string(value), true};
}
TraceArg targ(std::string_view key, int value) {
  return targ(key, static_cast<std::int64_t>(value));
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

bool Tracer::start() {
  std::lock_guard lock(mutex_);
  if (trace_internal::session_active.load(std::memory_order_relaxed))
    return false;
  buffers_.clear();
  modeled_.clear();
  session_gen_.fetch_add(1, std::memory_order_relaxed);
  base_ns_ = MonotonicClock::now_ns();
  trace_internal::session_active.store(true, std::memory_order_relaxed);
  trace_internal::refresh_enabled();
  return true;
}

Tracer::ThreadBuffer* Tracer::buffer_for_this_thread() {
  ThreadTraceState& state = tls();
  std::lock_guard lock(mutex_);
  if (!trace_internal::session_active.load(std::memory_order_relaxed))
    return nullptr;
  const std::uint64_t gen = session_gen_.load(std::memory_order_relaxed);
  if (state.gen == gen && state.buffer != nullptr)
    return static_cast<ThreadBuffer*>(state.buffer);
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->tid = static_cast<std::uint32_t>(buffers_.size() + 1);
  buffer->name = state.track_name;
  state.gen = gen;
  state.buffer = buffer.get();
  buffers_.push_back(std::move(buffer));
  return static_cast<ThreadBuffer*>(state.buffer);
}

void Tracer::record(TraceEvent event) {
  if (!trace_enabled()) return;
  // Tee to the flight recorder first: it may be the only consumer (no
  // session), and when both are active each keeps its own copy.
  if (trace_internal::flight_active.load(std::memory_order_relaxed))
    FlightRecorder::instance().record(event);
  if (!trace_internal::session_active.load(std::memory_order_relaxed))
    return;
  ThreadTraceState& state = tls();
  ThreadBuffer* buffer =
      state.gen == session_gen_.load(std::memory_order_relaxed) &&
              state.buffer != nullptr
          ? static_cast<ThreadBuffer*>(state.buffer)
          : buffer_for_this_thread();
  if (buffer != nullptr) buffer->events.push_back(std::move(event));
}

void Tracer::record_modeled(std::string_view track, TraceEvent event) {
  // Modeled tracks reconstruct one search's schedule for a written trace;
  // the flight recorder has no use for them.
  if (!trace_internal::session_active.load(std::memory_order_relaxed))
    return;
  std::lock_guard lock(mutex_);
  for (auto& [name, events] : modeled_)
    if (name == track) {
      events.push_back(std::move(event));
      return;
    }
  modeled_.emplace_back(std::string(track),
                        std::vector<TraceEvent>{std::move(event)});
}

void Tracer::set_thread_name(std::string name) {
  ThreadTraceState& state = tls();
  state.track_name = std::move(name);
  if (state.buffer != nullptr && trace_enabled()) {
    Tracer& tracer = instance();
    std::lock_guard lock(tracer.mutex_);
    if (state.gen == tracer.session_gen_.load(std::memory_order_relaxed))
      static_cast<ThreadBuffer*>(state.buffer)->name = state.track_name;
  }
}

std::string Tracer::serialize_locked() {
  std::string out;
  out.reserve(1 << 16);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  const auto emit = [&out, &first](const std::string& event) {
    if (!first) out += ",\n";
    first = false;
    out += event;
  };

  std::string line;
  append_metadata(line, "process_name", 1, 0, false, "measured");
  emit(line);
  line.clear();
  append_metadata(line, "process_sort_index", 1, 0, false, "0", true);
  emit(line);
  if (!modeled_.empty()) {
    line.clear();
    append_metadata(line, "process_name", 2, 0, false,
                    "modeled pipeline (Fig. 12)");
    emit(line);
    line.clear();
    append_metadata(line, "process_sort_index", 2, 0, false, "1", true);
    emit(line);
  }

  for (const auto& buffer : buffers_) {
    line.clear();
    const std::string name =
        buffer->name.empty()
            ? (buffer->tid == 1 ? "main" : "thread-" + std::to_string(
                                               buffer->tid))
            : buffer->name;
    append_metadata(line, "thread_name", 1, buffer->tid, true, name);
    emit(line);
    for (const TraceEvent& e : buffer->events) {
      line.clear();
      append_event(line, e, 1, buffer->tid, base_ns_);
      emit(line);
    }
  }

  for (std::size_t t = 0; t < modeled_.size(); ++t) {
    const auto tid = static_cast<std::uint32_t>(t + 1);
    line.clear();
    append_metadata(line, "thread_name", 2, tid, true, modeled_[t].first);
    emit(line);
    for (const TraceEvent& e : modeled_[t].second) {
      line.clear();
      append_event(line, e, 2, tid, /*base_ns=*/0);
      emit(line);
    }
  }

  out += "\n]}\n";
  return out;
}

std::string Tracer::stop_json() {
  std::lock_guard lock(mutex_);
  trace_internal::session_active.store(false, std::memory_order_relaxed);
  trace_internal::refresh_enabled();
  std::string json = serialize_locked();
  buffers_.clear();
  modeled_.clear();
  return json;
}

bool Tracer::stop_to_file(const std::string& path) {
  const std::string json = stop_json();
  const std::filesystem::path p(path);
  std::error_code dir_error;
  if (p.has_parent_path())
    std::filesystem::create_directories(p.parent_path(), dir_error);
  std::ofstream out(p);
  if (dir_error || !out) {
    std::fprintf(stderr, "trace: cannot write %s\n", path.c_str());
    return false;
  }
  out << json;
  return static_cast<bool>(out);
}

void TraceSpan::open(std::string_view name, std::string_view category) {
  if (active_ || !trace_enabled()) return;
  active_ = true;
  event_.phase = 'X';
  event_.name.assign(name);
  event_.category.assign(category);
  event_.ts_ns = MonotonicClock::now_ns();
}

void TraceSpan::arg(std::string_view key, std::string_view value) {
  if (!active_) return;
  event_.args.push_back(targ(key, value));
}

void TraceSpan::close() {
  active_ = false;
  event_.dur_ns = MonotonicClock::now_ns() - event_.ts_ns;
  Tracer::instance().record(std::move(event_));
}

void trace_instant(std::string_view name, std::string_view category,
                   std::initializer_list<TraceArg> args) {
  if (!trace_enabled()) [[likely]]
    return;
  TraceEvent event;
  event.phase = 'i';
  event.name.assign(name);
  event.category.assign(category);
  event.ts_ns = MonotonicClock::now_ns();
  event.args.assign(args);
  Tracer::instance().record(std::move(event));
}

void trace_counter(std::string_view name, double value) {
  if (!trace_enabled()) [[likely]]
    return;
  TraceEvent event;
  event.phase = 'C';
  event.name.assign(name);
  event.ts_ns = MonotonicClock::now_ns();
  event.args.push_back(targ("value", value));
  Tracer::instance().record(std::move(event));
}

}  // namespace repro::util
