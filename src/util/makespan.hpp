// Deterministic multi-worker makespan model.
//
// The paper's CPU-side scaling figures (Fig. 11, Fig. 13) were measured on a
// quad-core CPU. This reproduction runs on a single core, so a T-thread
// wall-clock measurement cannot show real scaling. Instead, the benches
// measure each independent task's cost sequentially and compute the makespan
// a T-worker pool would achieve. Two schedules are provided:
//
//  * list_schedule   — greedy online list scheduling in submission order;
//                      this matches what ThreadPool::parallel_for_dynamic
//                      actually does (each worker grabs the next task).
//  * lpt_schedule    — Longest-Processing-Time-first; an upper-bound
//                      "well-balanced" schedule used for sensitivity checks.
//
// DESIGN.md §1 documents this substitution.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace repro::util {

/// One task's placement in a modeled schedule (used by the tracer to draw
/// the Fig. 12 CPU-side timeline).
struct ScheduledTask {
  std::size_t index = 0;   ///< position in the input cost list
  std::size_t worker = 0;  ///< worker the greedy schedule placed it on
  double start = 0.0;      ///< seconds from the schedule's zero
  double finish = 0.0;
};

/// Greedy online list schedule of `costs` (in submission order) onto
/// `workers` identical workers: each task goes to the earliest-finishing
/// worker (ties to the lowest worker id, so placements are deterministic).
/// This is the schedule whose makespan list_schedule_makespan reports.
[[nodiscard]] std::vector<ScheduledTask> list_schedule(
    std::span<const double> costs, std::size_t workers);

/// Makespan (seconds) of greedy list scheduling of `costs` (in submission
/// order) onto `workers` identical workers.
[[nodiscard]] double list_schedule_makespan(std::span<const double> costs,
                                            std::size_t workers);

/// Makespan of Longest-Processing-Time-first scheduling.
[[nodiscard]] double lpt_schedule_makespan(std::span<const double> costs,
                                           std::size_t workers);

/// Sum of all task costs (the single-worker makespan).
[[nodiscard]] double total_cost(std::span<const double> costs);

}  // namespace repro::util
