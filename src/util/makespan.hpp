// Deterministic multi-worker makespan model.
//
// The paper's CPU-side scaling figures (Fig. 11, Fig. 13) were measured on a
// quad-core CPU. This reproduction runs on a single core, so a T-thread
// wall-clock measurement cannot show real scaling. Instead, the benches
// measure each independent task's cost sequentially and compute the makespan
// a T-worker pool would achieve. Two schedules are provided:
//
//  * list_schedule   — greedy online list scheduling in submission order;
//                      this matches what ThreadPool::parallel_for_dynamic
//                      actually does (each worker grabs the next task).
//  * lpt_schedule    — Longest-Processing-Time-first; an upper-bound
//                      "well-balanced" schedule used for sensitivity checks.
//
// DESIGN.md §1 documents this substitution.
#pragma once

#include <cstddef>
#include <span>

namespace repro::util {

/// Makespan (seconds) of greedy list scheduling of `costs` (in submission
/// order) onto `workers` identical workers.
[[nodiscard]] double list_schedule_makespan(std::span<const double> costs,
                                            std::size_t workers);

/// Makespan of Longest-Processing-Time-first scheduling.
[[nodiscard]] double lpt_schedule_makespan(std::span<const double> costs,
                                           std::size_t workers);

/// Sum of all task costs (the single-worker makespan).
[[nodiscard]] double total_cost(std::span<const double> costs);

}  // namespace repro::util
