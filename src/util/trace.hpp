// Low-overhead span tracer emitting Chrome trace-event JSON.
//
// The output loads directly in chrome://tracing and Perfetto: one track per
// real thread (pid 1, "measured"), plus synthetic tracks (pid 2, "modeled
// pipeline") that reconstruct the paper's Fig. 12 CPU/GPU overlap timeline
// from the makespan schedule. Event kinds used:
//   'X' complete   — a span with start + duration (nesting by containment)
//   'i' instant    — a point event (degradation-ladder transitions, retries)
//   'C' counter    — a sampled counter track (bin capacity, hit totals)
//   'M' metadata   — process/thread names (emitted by the serializer)
//
// Cost contract: with no session active, every instrumentation site is ONE
// relaxed atomic load and a branch — no allocation, no clock read, no lock.
// Tracing must therefore never perturb KernelStats or BLAST results; it
// only observes. Timestamps come from util::MonotonicClock (timer.hpp), the
// single clock seam, so the virtual-clock mode tests use applies here too.
//
// Threading contract: spans/instants/counters may be recorded from any
// thread (each thread appends to its own buffer; registration takes a lock
// once per thread per session). start()/stop_*() are not thread-safe
// against in-flight recording: callers stop a session only after joining
// the work it traced, which every session owner in this repo (CLI, search,
// tests) does anyway.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/timer.hpp"

namespace repro::util {

struct TraceEvent;

namespace trace_internal {
/// OR of the two event consumers: a Tracer session and/or an active
/// FlightRecorder query. Instrumentation sites only check this combined
/// flag, so adding the flight recorder kept the disabled cost at one
/// relaxed load.
extern std::atomic<bool> enabled;
extern std::atomic<bool> session_active;
extern std::atomic<bool> flight_active;

/// Recomputes `enabled` from the two consumer bits. Callers flip their bit
/// first, then refresh.
void refresh_enabled();

/// Serializers shared with the flight recorder so both writers emit the
/// same Chrome-trace dialect (trace.cpp owns the format).
void append_event_json(std::string& out, const TraceEvent& e, int pid,
                       std::uint32_t tid, std::uint64_t base_ns);
void append_thread_name_json(std::string& out, int pid, std::uint32_t tid,
                             const std::string& name);

/// The calling thread's sticky track name (set via Tracer::set_thread_name),
/// empty if unnamed.
std::string current_thread_track_name();
}  // namespace trace_internal

/// The hot-path toggle every instrumented site checks first. Disabled
/// tracing costs this single relaxed load.
inline bool trace_enabled() {
  return trace_internal::enabled.load(std::memory_order_relaxed);
}

/// One "key": value annotation on an event. `number` emits the value
/// unquoted (it must already be a valid JSON number token).
struct TraceArg {
  std::string key;
  std::string value;
  bool number = false;
};

[[nodiscard]] TraceArg targ(std::string_view key, std::string_view value);
[[nodiscard]] TraceArg targ(std::string_view key, double value);
[[nodiscard]] TraceArg targ(std::string_view key, std::uint64_t value);
[[nodiscard]] TraceArg targ(std::string_view key, std::int64_t value);
[[nodiscard]] TraceArg targ(std::string_view key, int value);

struct TraceEvent {
  char phase = 'X';  ///< 'X' complete, 'i' instant, 'C' counter
  std::string name;
  std::string category;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;  ///< complete events only
  std::vector<TraceArg> args;
};

/// The process-wide trace collector (singleton, like FaultInjector).
class Tracer {
 public:
  static Tracer& instance();

  /// Begins a session (clears prior events). Returns false — and changes
  /// nothing — if a session is already active, so nested owners (CLI around
  /// search) compose: the outermost start wins and the inner one joins it.
  bool start();

  /// Ends the session and returns the serialized Chrome trace JSON.
  [[nodiscard]] std::string stop_json();

  /// Ends the session and writes the JSON to `path` (false on I/O error).
  bool stop_to_file(const std::string& path);

  [[nodiscard]] bool enabled() const { return trace_enabled(); }

  /// Appends an event to the calling thread's track. Timestamps are filled
  /// by the caller (TraceSpan & friends). Dropped when no session is
  /// active.
  void record(TraceEvent event);

  /// Appends an event to a synthetic "modeled" track (pid 2). ts_ns/dur_ns
  /// are offsets from the modeled timeline's zero, not clock readings.
  void record_modeled(std::string_view track, TraceEvent event);

  /// Names the calling thread's track ("engine-worker-0"). Sticky: applies
  /// to the current and any later session this thread records into.
  static void set_thread_name(std::string name);

 private:
  Tracer() = default;

  struct ThreadBuffer {
    std::uint32_t tid = 0;
    std::string name;
    std::vector<TraceEvent> events;
  };

  ThreadBuffer* buffer_for_this_thread();
  std::string serialize_locked();

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::vector<std::pair<std::string, std::vector<TraceEvent>>> modeled_;
  std::uint64_t base_ns_ = 0;
  /// Atomic so record()'s lock-free fast path may compare it against the
  /// thread-local cached generation without taking the registry mutex.
  std::atomic<std::uint64_t> session_gen_{0};
};

/// RAII duration span ('X' event on the calling thread's track). The
/// default constructor plus open() defers the (allocating) name build to an
/// explicitly trace_enabled()-guarded block:
///
///   util::TraceSpan span;                       // inactive, free
///   if (util::trace_enabled())
///     span.open("block " + std::to_string(b), "core");
class TraceSpan {
 public:
  TraceSpan() = default;
  explicit TraceSpan(std::string_view name, std::string_view category = "") {
    if (trace_enabled()) [[unlikely]]
      open(name, category);
  }
  ~TraceSpan() {
    if (active_) close();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Starts the span now (no-op if already open or no session is active).
  void open(std::string_view name, std::string_view category = "");

  /// Ends the span before destruction (no-op if inactive) — for spans
  /// whose natural scope outlives the phase they measure.
  void end() {
    if (active_) close();
  }

  [[nodiscard]] bool active() const { return active_; }

  /// Attaches an annotation (no-op when inactive).
  void arg(std::string_view key, std::string_view value);
  void arg(std::string_view key, const char* value) {
    arg(key, std::string_view(value));
  }
  template <class T>
    requires std::is_arithmetic_v<T>
  void arg(std::string_view key, T value);

 private:
  void close();

  bool active_ = false;
  TraceEvent event_;
};

template <class T>
  requires std::is_arithmetic_v<T>
void TraceSpan::arg(std::string_view key, T value) {
  if (!active_) return;
  if constexpr (std::is_floating_point_v<T>)
    event_.args.push_back(targ(key, static_cast<double>(value)));
  else if constexpr (std::is_signed_v<T>)
    event_.args.push_back(targ(key, static_cast<std::int64_t>(value)));
  else
    event_.args.push_back(targ(key, static_cast<std::uint64_t>(value)));
}

/// Records an instant event (thread scope) on the calling thread's track.
void trace_instant(std::string_view name, std::string_view category,
                   std::initializer_list<TraceArg> args = {});

/// Samples a counter track.
void trace_counter(std::string_view name, double value);

/// RAII session for CLI / Config-driven tracing: starts a session on
/// construction (unless one is already active — then this scope is a
/// passive participant) and writes the trace to `path` on destruction.
class TraceSession {
 public:
  explicit TraceSession(std::string path)
      : path_(std::move(path)), owned_(Tracer::instance().start()) {}
  ~TraceSession() {
    if (owned_) Tracer::instance().stop_to_file(path_);
  }
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// True when this scope started (and will write) the session.
  [[nodiscard]] bool owned() const { return owned_; }

 private:
  std::string path_;
  bool owned_;
};

}  // namespace repro::util
