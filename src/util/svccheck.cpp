#include "util/svccheck.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <utility>

namespace repro::util::svc {

namespace {

/// Name-keyed lock-order graph shared by every CheckedMutex. Guarded by its
/// own plain std::mutex — the graph lock is a leaf (nothing is acquired
/// under it), so it cannot itself create an inversion.
struct LockGraph {
  std::mutex mu;
  /// edges[a] contains b  <=>  some thread acquired b while holding a.
  std::map<std::string, std::set<std::string>> edges;
  /// Lock pairs already reported (unordered), so a hot inversion reports
  /// once, not once per acquisition.
  std::set<std::pair<std::string, std::string>> reported_pairs;
  /// Wait sites already reported for blocked-while-locked.
  std::set<std::pair<std::string, std::string>> reported_waits;

  /// True when the graph already contains a path from -> ... -> to.
  /// Iterative DFS; the graph has one node per distinct lock *name*, so it
  /// stays tiny (single digits in this codebase).
  bool path_exists(const std::string& from, const std::string& to) {
    std::vector<const std::string*> stack{&from};
    std::set<std::string> seen;
    while (!stack.empty()) {
      const std::string& node = *stack.back();
      stack.pop_back();
      if (node == to) return true;
      if (!seen.insert(node).second) continue;
      auto it = edges.find(node);
      if (it == edges.end()) continue;
      for (const auto& next : it->second) stack.push_back(&next);
    }
    return false;
  }
};

LockGraph& lock_graph() {
  static LockGraph graph;
  return graph;
}

/// Locks the calling thread currently holds, in acquisition order.
thread_local std::vector<const CheckedMutex*> tls_held;

thread_local CheckpointScope* tls_checkpoint_scope = nullptr;

std::pair<std::string, std::string> unordered_pair(const std::string& a,
                                                   const std::string& b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

const char* svc_hazard_kind_name(SvcHazardKind kind) {
  switch (kind) {
    case SvcHazardKind::kLockOrderInversion: return "lock-order-inversion";
    case SvcHazardKind::kBlockedWhileLocked: return "blocked-while-locked";
    case SvcHazardKind::kCheckpointGap: return "checkpoint-gap";
  }
  return "unknown";
}

void set_svccheck_enabled(bool enabled) {
  svc_detail::enabled_flag.store(enabled, std::memory_order_relaxed);
}

bool svccheck_env_enabled() {
  const char* value = std::getenv("REPRO_SVCCHECK");
  return value != nullptr && *value != '\0' && std::strcmp(value, "0") != 0;
}

SvcHazardLog& SvcHazardLog::instance() {
  static SvcHazardLog log;
  return log;
}

void SvcHazardLog::record(SvcHazardRecord record) {
  std::lock_guard lock(mu_);
  ++total_;
  if (records_.size() < kMaxRecords) records_.push_back(std::move(record));
}

std::vector<SvcHazardRecord> SvcHazardLog::snapshot() const {
  std::lock_guard lock(mu_);
  return records_;
}

std::uint64_t SvcHazardLog::total() const {
  std::lock_guard lock(mu_);
  return total_;
}

void SvcHazardLog::clear() {
  std::lock_guard lock(mu_);
  records_.clear();
  total_ = 0;
  // Forget reported pairs too: a cleared log is a fresh analysis window
  // (tests clear between cases and expect redetection).
  LockGraph& graph = lock_graph();
  std::lock_guard graph_lock(graph.mu);
  graph.edges.clear();
  graph.reported_pairs.clear();
  graph.reported_waits.clear();
}

void CheckedMutex::lock() {
  if (svccheck_enabled() && !tls_held.empty()) {
    LockGraph& graph = lock_graph();
    std::lock_guard graph_lock(graph.mu);
    for (const CheckedMutex* held : tls_held) {
      if (held->name_ == name_) continue;  // same graph node: never an edge
      const bool new_edge = graph.edges[held->name_].insert(name_).second;
      if (!new_edge) continue;
      // Adding held -> this closes a cycle iff this ->* held already holds.
      if (graph.path_exists(name_, held->name_) &&
          graph.reported_pairs.insert(unordered_pair(held->name_, name_))
              .second) {
        SvcHazardRecord record;
        record.kind = SvcHazardKind::kLockOrderInversion;
        record.name = held->name_ + " -> " + name_;
        record.detail = "lock-order inversion: '" + name_ +
                        "' acquired while holding '" + held->name_ +
                        "', but the opposite order also occurs — a "
                        "potential deadlock";
        SvcHazardLog::instance().record(std::move(record));
      }
    }
  }
  mu_.lock();
  tls_held.push_back(this);
}

void CheckedMutex::unlock() {
  // Tolerant reverse-scan pop: unique_lock may release out of LIFO order.
  for (auto it = tls_held.rbegin(); it != tls_held.rend(); ++it) {
    if (*it == this) {
      tls_held.erase(std::next(it).base());
      break;
    }
  }
  mu_.unlock();
}

bool CheckedMutex::try_lock() {
  // A non-blocking acquire cannot deadlock, so it adds no graph edges.
  if (!mu_.try_lock()) return false;
  tls_held.push_back(this);
  return true;
}

void note_blocking_wait(const CheckedMutex* about_to_release) {
  if (!svccheck_enabled()) return;
  std::string held_names;
  for (const CheckedMutex* held : tls_held) {
    if (held == about_to_release) continue;
    if (!held_names.empty()) held_names += ", ";
    held_names += held->name();
  }
  if (held_names.empty()) return;
  const std::string wait_name =
      about_to_release != nullptr ? about_to_release->name() : "<join>";
  LockGraph& graph = lock_graph();
  {
    std::lock_guard graph_lock(graph.mu);
    if (!graph.reported_waits.insert({wait_name, held_names}).second) return;
  }
  SvcHazardRecord record;
  record.kind = SvcHazardKind::kBlockedWhileLocked;
  record.name = wait_name;
  record.detail = "blocking wait on '" + wait_name + "' while holding '" +
                  held_names + "' — contenders of the held lock stall for "
                  "the whole wait";
  SvcHazardLog::instance().record(std::move(record));
}

namespace svc_detail {

void note_checkpoint_slow(const char* name) {
  CheckpointScope* scope = tls_checkpoint_scope;
  if (scope == nullptr) return;
  for (const std::string& seen : scope->polled_)
    if (seen == name) return;
  scope->polled_.emplace_back(name);
}

}  // namespace svc_detail

CheckpointScope::CheckpointScope() : prev_(tls_checkpoint_scope) {
  tls_checkpoint_scope = this;
}

CheckpointScope::~CheckpointScope() { tls_checkpoint_scope = prev_; }

bool CheckpointScope::polled(const char* name) const {
  for (const std::string& seen : polled_)
    if (seen == name) return true;
  return false;
}

std::vector<std::string> CheckpointScope::missing(
    std::span<const char* const> required) const {
  std::vector<std::string> gaps;
  for (const char* name : required)
    if (!polled(name)) gaps.emplace_back(name);
  return gaps;
}

}  // namespace repro::util::svc
