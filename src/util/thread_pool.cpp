#include "util/thread_pool.hpp"

#include <atomic>
#include <cassert>
#include <memory>
#include <utility>

#include "util/fault.hpp"
#include "util/trace.hpp"

namespace repro::util {

namespace {

/// Joins every future (so no task can still be touching caller state when
/// we unwind), then rethrows the exception of the first failing future in
/// submission order — the deterministic-join contract all the parallel_*
/// entry points share.
void join_all(std::vector<std::future<void>>& futures) {
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      svc::note_blocking_wait(nullptr);  // future join parks this thread
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads, std::string name)
    : name_(std::move(name)),
      task_span_name_(name_ + ".task"),
      mutex_("util.thread_pool." + name_) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  svc::note_blocking_wait(nullptr);  // joining while holding a lock stalls it
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  // Sticky: names this thread's trace track for every session it records
  // into, even ones started after the pool was built.
  Tracer::set_thread_name(name_ + "-worker-" + std::to_string(worker_index));
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      svc::note_blocking_wait(&mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    {
      TraceSpan span(task_span_name_, "pool");
      task();
    }
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0 && tasks_.empty()) idle_cv_.notify_all();
    }
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  auto future = packaged->get_future();
  {
    std::lock_guard lock(mutex_);
    assert(!stop_);
    tasks_.emplace([packaged] { (*packaged)(); });
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, workers_.size());
  const std::size_t per = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * per;
    const std::size_t hi = std::min(n, lo + per);
    if (lo >= hi) break;
    futures.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  join_all(futures);
}

void ThreadPool::parallel_for_dynamic(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t chunks = std::min(n, workers_.size());
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    futures.push_back(submit([next, n, &fn] {
      for (;;) {
        const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    }));
  }
  join_all(futures);
}

void ThreadPool::run_shards(std::size_t n,
                            const std::function<void(std::size_t)>& fn,
                            const std::atomic<bool>* external_cancel) {
  if (n == 0) return;
  // Once any shard throws, shards that have not started yet are skipped —
  // their results would be discarded during unwinding anyway, and skipping
  // them bounds the damage a poisoned launch can do. The store/load pair is
  // release/acquire: a shard that observes the flag and skips must also
  // observe everything the failing (or cancelling) thread wrote before
  // raising it, so the skip decision is never based on a torn view of the
  // caller's state.
  auto cancelled = std::make_shared<std::atomic<bool>>(false);
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t shard = 0; shard < n; ++shard)
    futures.push_back(submit([shard, &fn, cancelled, external_cancel] {
      if (cancelled->load(std::memory_order_acquire)) return;
      if (external_cancel != nullptr &&
          external_cancel->load(std::memory_order_acquire))
        return;
      try {
        // "util.worker" models a worker thread dying mid-shard.
        fault_point_throw("util.worker");
        fn(shard);
      } catch (...) {
        cancelled->store(true, std::memory_order_release);
        throw;
      }
    }));
  join_all(futures);
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  svc::note_blocking_wait(&mutex_);
  idle_cv_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

}  // namespace repro::util
