#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace repro::util {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets ? buckets : 1, 0) {}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(
      t * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::mode_bucket() const {
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

std::string Histogram::render(std::size_t width) const {
  const std::uint64_t peak =
      *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream out;
  const double step = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = peak
        ? static_cast<std::size_t>(static_cast<double>(counts_[i]) * width /
                                   static_cast<double>(peak))
        : 0;
    out << "[" << lo_ + step * static_cast<double>(i) << ", "
        << lo_ + step * static_cast<double>(i + 1) << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return out.str();
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank =
      std::clamp(p, 0.0, 1.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace repro::util
