// Small statistics helpers shared by the database generator, the SIMT
// metrics, and the bench harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace repro::util {

/// Streaming mean / variance / min / max accumulator (Welford).
class Accumulator {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets. Used to validate the synthetic database length distribution.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::span<const std::uint64_t> buckets() const {
    return counts_;
  }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Bucket index with the largest count.
  [[nodiscard]] std::size_t mode_bucket() const;
  /// Render a terminal bar chart (one line per bucket).
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Percentile of a sample (copies and sorts; fine for bench-sized data).
[[nodiscard]] double percentile(std::span<const double> xs, double p);

}  // namespace repro::util
