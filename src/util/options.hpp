// Minimal --key=value command-line option parser for examples and benches.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace repro::util {

/// Parses "--key=value" and bare "--flag" arguments. Positional arguments
/// are collected in order. Unknown keys are kept (benches share a common
/// option vocabulary but don't all use every key).
class Options {
 public:
  Options(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace repro::util
