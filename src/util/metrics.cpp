#include "util/metrics.hpp"

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/json.hpp"

namespace repro::util::metrics {

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

namespace {

template <class Map, class Instrument>
Instrument& get_or_create(std::mutex& mutex, Map& map,
                          std::string_view name) {
  std::lock_guard lock(mutex);
  auto it = map.find(name);
  if (it == map.end())
    it = map.emplace(std::string(name), std::make_unique<Instrument>())
             .first;
  return *it->second;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  return get_or_create<decltype(counters_), Counter>(mutex_, counters_, name);
}

Gauge& Registry::gauge(std::string_view name) {
  return get_or_create<decltype(gauges_), Gauge>(mutex_, gauges_, name);
}

Histogram& Registry::histogram(std::string_view name) {
  return get_or_create<decltype(histograms_), Histogram>(mutex_, histograms_,
                                                         name);
}

std::string Registry::to_json() const {
  std::lock_guard lock(mutex_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + json_str(name) + ": " + std::to_string(c->value());
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + json_str(name) + ": " + json_num(g->value());
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + json_str(name) + ": {\"count\": " +
           std::to_string(h->count()) + ", \"sum\": " + json_num(h->sum()) +
           ", \"buckets\": [";
    bool first_bucket = true;
    for (int i = 0; i <= Histogram::kBuckets; ++i) {
      const std::uint64_t n = h->bucket_count(i);
      if (n == 0) continue;  // sparse: only occupied buckets
      out += first_bucket ? "" : ", ";
      first_bucket = false;
      out += "{\"le\": ";
      out += i == Histogram::kBuckets ? "\"+Inf\""
                                      : json_num(Histogram::upper_bound(i));
      out += ", \"count\": " + std::to_string(n) + "}";
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string prometheus_name(std::string_view name) {
  std::string out = "repro_";
  for (const char c : name)
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
            c == ':')
               ? c
               : '_';
  return out;
}

std::string Registry::to_prometheus() const {
  std::lock_guard lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    const std::string pname = prometheus_name(name);
    out << "# TYPE " << pname << " counter\n"
        << pname << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string pname = prometheus_name(name);
    out << "# TYPE " << pname << " gauge\n"
        << pname << " " << json_num(g->value()) << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string pname = prometheus_name(name);
    out << "# TYPE " << pname << " histogram\n";
    std::uint64_t cumulative = 0;
    for (int i = 0; i <= Histogram::kBuckets; ++i) {
      cumulative += h->bucket_count(i);
      // Prometheus requires every bucket line to be cumulative and the
      // last one to be le="+Inf"; empty interior buckets may be elided as
      // long as the cumulative sequence stays correct, which keeps the
      // text small.
      if (h->bucket_count(i) == 0 && i != Histogram::kBuckets) continue;
      out << pname << "_bucket{le=\"";
      if (i == Histogram::kBuckets)
        out << "+Inf";
      else
        out << json_num(Histogram::upper_bound(i));
      out << "\"} " << cumulative << "\n";
    }
    out << pname << "_sum " << json_num(h->sum()) << "\n"
        << pname << "_count " << h->count() << "\n";
  }
  return out.str();
}

bool Registry::write_file(const std::string& path) const {
  const std::filesystem::path p(path);
  std::error_code dir_error;
  if (p.has_parent_path())
    std::filesystem::create_directories(p.parent_path(), dir_error);
  std::ofstream out(p);
  if (dir_error || !out) {
    std::fprintf(stderr, "metrics: cannot write %s\n", path.c_str());
    return false;
  }
  const std::string ext = p.extension().string();
  out << (ext == ".prom" || ext == ".txt" ? to_prometheus() : to_json());
  return static_cast<bool>(out);
}

void Registry::reset_values() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace repro::util::metrics
