#include "util/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/json.hpp"

namespace repro::util::metrics {

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

namespace {

template <class Map, class Instrument>
Instrument& get_or_create(std::mutex& mutex, Map& map,
                          std::string_view name) {
  std::lock_guard lock(mutex);
  auto it = map.find(name);
  if (it == map.end())
    it = map.emplace(std::string(name), std::make_unique<Instrument>())
             .first;
  return *it->second;
}

}  // namespace

double Histogram::quantile(double q) const {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Snapshot the counts once: observe() may race with us, and a consistent
  // (if slightly stale) snapshot keeps rank arithmetic coherent.
  std::array<std::uint64_t, kBuckets + 1> counts;
  std::uint64_t total = 0;
  for (int i = 0; i <= kBuckets; ++i) {
    counts[static_cast<std::size_t>(i)] = bucket_count(i);
    total += counts[static_cast<std::size_t>(i)];
  }
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (int i = 0; i <= kBuckets; ++i) {
    const std::uint64_t n = counts[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    cumulative += n;
    if (static_cast<double>(cumulative) < rank) continue;
    if (i == kBuckets) return upper_bound(kBuckets - 1);
    const double hi = upper_bound(i);
    const double lo = i == 0 ? 0.0 : upper_bound(i - 1);
    // Fraction of this bucket's mass below the target rank.
    const double into =
        (rank - static_cast<double>(cumulative - n)) / static_cast<double>(n);
    return lo + (hi - lo) * std::clamp(into, 0.0, 1.0);
  }
  return upper_bound(kBuckets - 1);
}

Counter& Registry::counter(std::string_view name) {
  return get_or_create<decltype(counters_), Counter>(mutex_, counters_, name);
}

Gauge& Registry::gauge(std::string_view name) {
  return get_or_create<decltype(gauges_), Gauge>(mutex_, gauges_, name);
}

Histogram& Registry::histogram(std::string_view name) {
  return get_or_create<decltype(histograms_), Histogram>(mutex_, histograms_,
                                                         name);
}

std::string Registry::to_json() const {
  std::lock_guard lock(mutex_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + json_str(name) + ": " + std::to_string(c->value());
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + json_str(name) + ": " + json_num(g->value());
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + json_str(name) + ": {\"count\": " +
           std::to_string(h->count()) + ", \"sum\": " + json_num(h->sum()) +
           ", \"buckets\": [";
    bool first_bucket = true;
    for (int i = 0; i <= Histogram::kBuckets; ++i) {
      const std::uint64_t n = h->bucket_count(i);
      if (n == 0) continue;  // sparse: only occupied buckets
      out += first_bucket ? "" : ", ";
      first_bucket = false;
      out += "{\"le\": ";
      out += i == Histogram::kBuckets ? "\"+Inf\""
                                      : json_num(Histogram::upper_bound(i));
      out += ", \"count\": " + std::to_string(n) + "}";
    }
    out += "], \"quantiles\": {\"p50\": " + json_num(h->quantile(0.50)) +
           ", \"p95\": " + json_num(h->quantile(0.95)) +
           ", \"p99\": " + json_num(h->quantile(0.99)) + "}}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string prometheus_name(std::string_view name) {
  std::string out = "repro_";
  for (const char c : name)
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
            c == ':')
               ? c
               : '_';
  return out;
}

std::string Registry::to_prometheus() const {
  std::lock_guard lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    const std::string pname = prometheus_name(name);
    out << "# TYPE " << pname << " counter\n"
        << pname << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string pname = prometheus_name(name);
    out << "# TYPE " << pname << " gauge\n"
        << pname << " " << json_num(g->value()) << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string pname = prometheus_name(name);
    out << "# TYPE " << pname << " histogram\n";
    std::uint64_t cumulative = 0;
    for (int i = 0; i <= Histogram::kBuckets; ++i) {
      cumulative += h->bucket_count(i);
      // Prometheus requires every bucket line to be cumulative and the
      // last one to be le="+Inf"; empty interior buckets may be elided as
      // long as the cumulative sequence stays correct, which keeps the
      // text small.
      if (h->bucket_count(i) == 0 && i != Histogram::kBuckets) continue;
      out << pname << "_bucket{le=\"";
      if (i == Histogram::kBuckets)
        out << "+Inf";
      else
        out << json_num(Histogram::upper_bound(i));
      out << "\"} " << cumulative << "\n";
    }
    out << pname << "_sum " << json_num(h->sum()) << "\n"
        << pname << "_count " << h->count() << "\n";
    // Bucket-interpolated quantile estimates. A separate gauge family:
    // mixing quantile-labeled series into the histogram family itself
    // would violate the exposition format.
    out << "# TYPE " << pname << "_approx_quantile gauge\n";
    for (const auto& [label, q] :
         {std::pair<const char*, double>{"0.5", 0.50},
          {"0.95", 0.95},
          {"0.99", 0.99}}) {
      out << pname << "_approx_quantile{quantile=\"" << label << "\"} "
          << json_num(h->quantile(q)) << "\n";
    }
  }
  return out.str();
}

bool Registry::write_file(const std::string& path) const {
  const std::filesystem::path p(path);
  const std::string ext = p.extension().string();
  const bool prometheus = ext == ".prom" || ext == ".txt";
  // Fail loudly on an unrecognized extension: silently "defaulting to
  // JSON" meant a typo'd --metrics path fed Prometheus scrapers JSON.
  if (!prometheus && ext != ".json")
    throw std::invalid_argument(
        "metrics: unrecognized extension '" + ext + "' for '" + path +
        "' (expected .json, .prom, or .txt)");
  std::error_code dir_error;
  if (p.has_parent_path())
    std::filesystem::create_directories(p.parent_path(), dir_error);
  std::ofstream out(p);
  if (dir_error || !out) {
    std::fprintf(stderr, "metrics: cannot write %s\n", path.c_str());
    return false;
  }
  out << (prometheus ? to_prometheus() : to_json());
  return static_cast<bool>(out);
}

void Registry::reset_values() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace repro::util::metrics
