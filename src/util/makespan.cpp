#include "util/makespan.hpp"

#include <algorithm>
#include <functional>
#include <numeric>
#include <queue>
#include <utility>
#include <vector>

namespace repro::util {

namespace {

double schedule(std::span<const double> costs, std::size_t workers,
                bool sort_desc) {
  if (costs.empty() || workers == 0) return 0.0;
  std::vector<double> order(costs.begin(), costs.end());
  if (sort_desc) std::sort(order.begin(), order.end(), std::greater<>());
  // Min-heap of worker finish times.
  std::priority_queue<double, std::vector<double>, std::greater<>> finish;
  for (std::size_t w = 0; w < workers; ++w) finish.push(0.0);
  double makespan = 0.0;
  for (const double c : order) {
    const double start = finish.top();
    finish.pop();
    const double end = start + c;
    finish.push(end);
    makespan = std::max(makespan, end);
  }
  return makespan;
}

}  // namespace

std::vector<ScheduledTask> list_schedule(std::span<const double> costs,
                                         std::size_t workers) {
  std::vector<ScheduledTask> placed;
  if (costs.empty() || workers == 0) return placed;
  placed.reserve(costs.size());
  // Min-heap of (finish time, worker); the worker id breaks ties so the
  // assignment — not just the makespan — is deterministic.
  using Slot = std::pair<double, std::size_t>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> finish;
  for (std::size_t w = 0; w < workers; ++w) finish.emplace(0.0, w);
  for (std::size_t i = 0; i < costs.size(); ++i) {
    const auto [start, worker] = finish.top();
    finish.pop();
    const double end = start + costs[i];
    finish.emplace(end, worker);
    placed.push_back(ScheduledTask{i, worker, start, end});
  }
  return placed;
}

double list_schedule_makespan(std::span<const double> costs,
                              std::size_t workers) {
  return schedule(costs, workers, /*sort_desc=*/false);
}

double lpt_schedule_makespan(std::span<const double> costs,
                             std::size_t workers) {
  return schedule(costs, workers, /*sort_desc=*/true);
}

double total_cost(std::span<const double> costs) {
  return std::accumulate(costs.begin(), costs.end(), 0.0);
}

}  // namespace repro::util
