// Aligned ASCII table printer used by every bench binary to emit the rows a
// paper figure reports, side by side with the paper's expectation.
#pragma once

#include <string>
#include <vector>

namespace repro::util {

/// Collects rows of cells and renders them with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row. Missing cells render empty; extra cells widen the table.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace repro::util
