// Process-wide metrics registry: named counters, gauges, and histograms
// with JSON and Prometheus-text exporters.
//
// Recording is always on and lock-free (one relaxed atomic RMW per
// observation); the registry mutex is only taken on the first lookup of a
// name — hot sites cache the returned reference in a function-local static
// — and during export. Metrics observe; they never feed back into
// KernelStats, results, or timing models, so recording cannot perturb the
// quantities the tests pin.
//
// Instrument names use dotted lowercase ("engine.launches"); the
// Prometheus exporter sanitizes them ('.' -> '_') and prefixes "repro_".
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace repro::util::metrics {

/// Monotonically increasing counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed exponential-bucket histogram: bucket i counts observations
/// <= 1e-6 * 2^i (1 µs … ~33 s when observing seconds; the bounds are
/// unitless, callers pick the unit), plus a +Inf bucket. Bucket counts are
/// NON-cumulative internally; the Prometheus exporter emits the cumulative
/// form that format requires.
class Histogram {
 public:
  static constexpr int kBuckets = 26;

  void observe(double v) {
    counts_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] static int bucket_index(double v) {
    for (int i = 0; i < kBuckets; ++i)
      if (v <= upper_bound(i)) return i;
    return kBuckets;  // +Inf
  }
  /// Upper bound of bucket i; i == kBuckets is the +Inf bucket.
  [[nodiscard]] static double upper_bound(int i) {
    return 1e-6 * static_cast<double>(1ULL << i);
  }

  [[nodiscard]] std::uint64_t bucket_count(int i) const {
    return counts_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const {
    std::uint64_t total = 0;
    for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
    return total;
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }

  /// Estimated q-quantile (q in [0,1]) by linear interpolation inside the
  /// exponential bucket that crosses rank q*count. Returns 0 when empty.
  /// Observations in the +Inf bucket pin the estimate to the largest
  /// finite bound — the estimator never invents mass beyond what the
  /// buckets resolve.
  [[nodiscard]] double quantile(double q) const;
  void reset() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets + 1> counts_{};
  std::atomic<double> sum_{0.0};
};

/// The process-wide registry. Instruments are created on first use and
/// live for the process (pointers returned by the accessors are stable).
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// {"counters":{...},"gauges":{...},"histograms":{...}} — names sorted.
  [[nodiscard]] std::string to_json() const;

  /// Prometheus text exposition format (counter/gauge/histogram families,
  /// cumulative "le" buckets, +Inf, _sum/_count).
  [[nodiscard]] std::string to_prometheus() const;

  /// Writes to `path`: ".prom"/".txt" pick the Prometheus format, ".json"
  /// the JSON one. Any other extension throws std::invalid_argument — a
  /// typo'd path must not silently export the wrong format (the core layer
  /// translates the throw into SearchError{kInvalidArgument}). Returns
  /// false on I/O error.
  bool write_file(const std::string& path) const;

  /// Zeroes every instrument (names and identities persist). For tests and
  /// per-run exports.
  void reset_values();

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// "repro_" + name with every character outside [a-zA-Z0-9_:] mapped to
/// '_': a valid Prometheus metric name.
[[nodiscard]] std::string prometheus_name(std::string_view name);

}  // namespace repro::util::metrics
