#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace repro::util {

Table::Table(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  return out.str();
}

std::string Table::render() const {
  std::size_t cols = 0;
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  std::vector<std::size_t> width(cols, 0);
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  auto rule = [&] {
    for (std::size_t c = 0; c < cols; ++c)
      out << "+" << std::string(width[c] + 2, '-');
    out << "+\n";
  };
  rule();
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out << "|";
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < rows_[r].size() ? rows_[r][c] : "";
      out << " " << std::left << std::setw(static_cast<int>(width[c]))
          << cell << " |";
    }
    out << "\n";
    if (r == 0) rule();
  }
  rule();
  return out.str();
}

}  // namespace repro::util
