// Ablation: the two-hit heuristic (paper §2.1 / Algorithm 1's distance
// threshold) vs one-hit seeding. Not a paper figure; quantifies the design
// choice DESIGN.md calls out — two-hit trades a little sensitivity setup
// for a large reduction in ungapped-extension work.
#include <cstdio>
#include <sstream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  util::Options options(argc, argv);
  const auto setup = benchx::BenchSetup::from_options(options);
  benchx::print_banner(
      "Ablation: two-hit vs one-hit seeding (query517, swissprot)",
      "(not a paper figure) the two-hit method is why hit filtering pays "
      "off: it prunes most extension work at equal final output quality",
      setup);

  const auto w = benchx::make_workload(setup, 517, /*env_nr=*/false);

  util::Table table({"seeding", "ungapped extensions", "filter survivors",
                     "GPU kernels (ms)", "alignments", "top-hit score"});
  std::ostringstream runs;
  runs << "[";
  for (const bool one_hit : {false, true}) {
    auto config = benchx::default_cublastp_config();
    config.params.one_hit = one_hit;
    const auto report = core::CuBlastp(config).search(w.query, w.db);
    table.add_row(
        {one_hit ? "one-hit" : "two-hit",
         std::to_string(report.result.counters.ungapped_extensions),
         std::to_string(report.result.counters.hits_after_filter),
         util::Table::num(report.gpu_critical_ms(), 2),
         std::to_string(report.result.alignments.size()),
         report.result.alignments.empty()
             ? "-"
             : std::to_string(report.result.alignments.front().score)});
    if (one_hit) runs << ", ";
    runs << "{\"seeding\": \"" << (one_hit ? "one-hit" : "two-hit")
         << "\", \"ungapped_extensions\": "
         << report.result.counters.ungapped_extensions
         << ", \"filter_survivors\": "
         << report.result.counters.hits_after_filter
         << ", \"gpu_kernels_ms\": " << report.gpu_critical_ms()
         << ", \"alignments\": " << report.result.alignments.size() << "}";
  }
  runs << "]";
  std::printf("%s", table.render().c_str());

  benchx::BenchResult json("ablation_twohit",
                           benchx::default_cublastp_config(), setup);
  json.set_workload(w);
  json.deterministic_raw("runs", runs.str());
  return json.write(options, "bench_results/ablation_twohit.json");
}
