// Figure 18 (a-h): cuBLASTP speedups over FSA-BLAST, 4-thread NCBI-BLAST,
// CUDA-BLASTP and GPU-BLASTP — critical phases (hit detection + ungapped
// extension) and overall — for query127/517/1054 on both databases.
//
// Paper (maximum speedups): vs FSA-BLAST up to 7.9x critical / 6x overall;
// vs NCBI-BLAST(4T) up to 3.1x critical / 3.4x overall; vs CUDA-BLASTP up
// to 2.9x critical / 2.8x overall; vs GPU-BLASTP up to 1.6x critical /
// 1.9x overall. Absolute ratios here depend on the cost-model calibration
// (simulated GPU vs measured host CPU); the reproduced claims are the
// orderings: cuBLASTP fastest everywhere, FSA slowest, GPU-BLASTP the
// closest competitor.
#include <cstdio>
#include <sstream>

#include "common.hpp"

namespace {

using namespace repro;

struct EngineTimes {
  double critical_s = 0.0;
  double overall_s = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  util::Options options(argc, argv);
  const auto setup = benchx::BenchSetup::from_options(options);
  if (options.has("json"))
    return benchx::run_engine_wallclock_json(options, setup,
                                             "fig18_speedup");
  benchx::print_banner(
      "Figure 18: cuBLASTP speedup over FSA-BLAST / NCBI-BLAST(4T) / "
      "CUDA-BLASTP / GPU-BLASTP",
      "cuBLASTP wins everywhere; max critical speedups 7.9x/3.1x/2.9x/1.6x "
      "and overall 6x/3.4x/2.8x/1.9x respectively",
      setup);

  const blast::SearchParams params;
  util::Table critical_table({"db", "query", "vs FSA", "vs NCBI-4T",
                              "vs CUDA-BLASTP", "vs GPU-BLASTP"});
  util::Table overall_table({"db", "query", "vs FSA", "vs NCBI-4T",
                             "vs CUDA-BLASTP", "vs GPU-BLASTP"});
  std::ostringstream modeled, ratios;
  modeled << "[";
  ratios << "[";
  bool first = true;

  for (const bool env_nr : {false, true}) {
    for (const std::size_t qlen : benchx::kQueryLengths) {
      const auto w = benchx::make_workload(setup, qlen, env_nr);

      const auto fsa = baselines::fsa_blast_search(w.query, w.db, params);
      const EngineTimes fsa_t{fsa.timings.critical(), fsa.timings.total()};

      const auto ncbi = baselines::ncbi_mt_search(w.query, w.db, params, 4);
      const EngineTimes ncbi_t{ncbi.timings.critical(),
                               ncbi.timings.total()};

      const auto cuda = baselines::cuda_blastp_search(
          w.query, w.db, benchx::default_coarse_config());
      const EngineTimes cuda_t{cuda.critical_ms() / 1e3,
                               cuda.total_seconds};

      const auto gpu = baselines::gpu_blastp_search(
          w.query, w.db, benchx::default_coarse_config());
      const EngineTimes gpu_t{gpu.critical_ms() / 1e3, gpu.total_seconds};

      const auto cu = core::CuBlastp(benchx::default_cublastp_config())
                          .search(w.query, w.db);
      const EngineTimes cu_t{cu.gpu_critical_ms() / 1e3,
                             cu.overlapped_total_seconds};

      auto ratio = [&](const EngineTimes& other, bool critical) {
        const double mine = critical ? cu_t.critical_s : cu_t.overall_s;
        const double theirs = critical ? other.critical_s : other.overall_s;
        return util::Table::num(theirs / mine, 2) + "x";
      };
      const std::string db_name = env_nr ? "env_nr" : "swissprot";
      critical_table.add_row({db_name, w.query_name, ratio(fsa_t, true),
                              ratio(ncbi_t, true), ratio(cuda_t, true),
                              ratio(gpu_t, true)});
      overall_table.add_row({db_name, w.query_name, ratio(fsa_t, false),
                             ratio(ncbi_t, false), ratio(cuda_t, false),
                             ratio(gpu_t, false)});

      if (!first) {
        modeled << ", ";
        ratios << ", ";
      }
      first = false;
      // Modeled kernel times are bit-stable; the speedup ratios fold in
      // host-measured CPU phases, so they live in "measured".
      modeled << "{\"db\": \"" << db_name << "\", \"query\": \""
              << w.query_name
              << "\", \"cu_critical_ms\": " << cu.gpu_critical_ms()
              << ", \"cuda_critical_ms\": " << cuda.critical_ms()
              << ", \"gpu_critical_ms\": " << gpu.critical_ms()
              << ", \"alignments\": " << cu.result.alignments.size() << "}";
      ratios << "{\"db\": \"" << db_name << "\", \"query\": \""
             << w.query_name
             << "\", \"critical_vs_fsa\": "
             << fsa_t.critical_s / cu_t.critical_s
             << ", \"critical_vs_ncbi4\": "
             << ncbi_t.critical_s / cu_t.critical_s
             << ", \"critical_vs_cuda\": "
             << cuda_t.critical_s / cu_t.critical_s
             << ", \"critical_vs_gpu\": " << gpu_t.critical_s / cu_t.critical_s
             << ", \"overall_vs_fsa\": " << fsa_t.overall_s / cu_t.overall_s
             << ", \"overall_vs_ncbi4\": "
             << ncbi_t.overall_s / cu_t.overall_s
             << ", \"overall_vs_cuda\": " << cuda_t.overall_s / cu_t.overall_s
             << ", \"overall_vs_gpu\": " << gpu_t.overall_s / cu_t.overall_s
             << "}";

      // Sanity: every engine must agree on the biology.
      if (fsa.alignments != cu.result.alignments ||
          fsa.alignments != ncbi.alignments ||
          fsa.alignments != cuda.result.alignments ||
          fsa.alignments != gpu.result.alignments) {
        std::printf("ERROR: engines disagree on %s/%s output!\n",
                    db_name.c_str(), w.query_name.c_str());
        return 1;
      }
    }
  }

  std::printf("Critical phases (hit detection + ungapped extension), "
              "cuBLASTP speedup:\n%s\n",
              critical_table.render().c_str());
  std::printf("Overall search, cuBLASTP speedup:\n%s\n",
              overall_table.render().c_str());
  std::printf("All engines produced identical alignments on every "
              "workload (paper §4.3).\n");
  modeled << "]";
  ratios << "]";

  benchx::BenchResult json("fig18_speedup",
                           benchx::default_cublastp_config(), setup);
  json.deterministic_raw("modeled", modeled.str());
  json.deterministic("engines_agree", static_cast<std::uint64_t>(1));
  json.measured_raw("speedups", ratios.str());
  return json.write(options, "bench_results/fig18_speedup.json");
}
