// Micro-benchmarks of the building blocks: lookup-table construction, DFA
// scan, ungapped/gapped extension, the SIMT primitives (device scan,
// segmented sort), and the makespan scheduler.
//
// Emits bench_results/micro_primitives.json (schema cublastp.bench.v1):
// each primitive contributes a deterministic work checksum — lookup entry
// counts, scan hit counts, extension scores, sort checksums — gated by
// scripts/check_bench_regression.py, plus its host wall-clock per
// iteration in the ungated measured section.
//
//   ./micro_primitives [--reps=N] [--quick] [--json_out=PATH]
#include <cstdint>
#include <cstdio>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "bio/generator.hpp"
#include "bio/karlin.hpp"
#include "bio/pssm.hpp"
#include "blast/gapped.hpp"
#include "blast/seeding.hpp"
#include "blast/ungapped.hpp"
#include "blast/wordlookup.hpp"
#include "common.hpp"
#include "gpualgo/scan.hpp"
#include "gpualgo/segsort.hpp"
#include "simt/device_buffer.hpp"
#include "util/makespan.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace repro;

/// Keeps the optimizer from deleting a benchmarked computation.
template <typename T>
inline void do_not_optimize(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

struct Timing {
  util::Table& table;
  benchx::BenchResult& json;
  std::size_t reps;

  /// Times `reps` iterations of `body`, prints a table row, and records
  /// the per-iteration wall clock under `name` in the measured section.
  void run(const std::string& name, const std::function<void()>& body) {
    body();  // warm-up: first-touch allocations, lazy tables
    util::Timer timer;
    for (std::size_t i = 0; i < reps; ++i) body();
    const double ns_per_op =
        timer.seconds() * 1e9 / static_cast<double>(reps);
    table.add_row({name, util::Table::num(ns_per_op / 1e3, 2)});
    json.measured(name + "_us", ns_per_op / 1e3);
  }
};

}  // namespace

int main(int argc, char** argv) {
  util::Options options(argc, argv);
  const auto setup = benchx::BenchSetup::from_options(options);
  benchx::print_banner(
      "micro_primitives: host wall-clock of the building blocks",
      "not a paper figure: lookup build, DFA scan, extensions, device "
      "scan/segmented sort, makespan scheduler",
      setup);

  const auto reps = static_cast<std::size_t>(
      options.get_int("reps", options.has("quick") ? 10 : 40));

  benchx::BenchResult json("micro_primitives",
                           benchx::default_cublastp_config(), setup);
  util::Table table({"primitive", "us/op"});
  Timing timing{table, json, reps};
  const blast::SearchParams params;

  // --- word-lookup construction (short / medium / long query) ------------
  for (const std::size_t len : benchx::kQueryLengths) {
    const auto query = bio::make_benchmark_query(len).residues;
    std::uint64_t entries = 0;
    timing.run("wordlookup_build_q" + std::to_string(len), [&] {
      const blast::WordLookup lookup(query, bio::Blosum62::instance(),
                                     params);
      entries = lookup.total_entries();
      do_not_optimize(entries);
    });
    json.deterministic("wordlookup_entries_q" + std::to_string(len),
                       entries);
  }

  // --- DFA subject scan --------------------------------------------------
  {
    const auto query = bio::make_benchmark_query(517).residues;
    const blast::WordLookup lookup(query, bio::Blosum62::instance(), params);
    const blast::Dfa dfa(lookup);
    util::Rng rng(7);
    for (const std::size_t subject_len : {370u, 2000u}) {
      const auto subject = bio::random_protein(subject_len, rng);
      std::uint64_t hits = 0;
      timing.run("dfa_scan_s" + std::to_string(subject_len), [&] {
        hits = 0;
        blast::scan_subject_dfa(dfa, subject,
                                [&](std::uint32_t, std::uint32_t) { ++hits; });
        do_not_optimize(hits);
      });
      json.deterministic("dfa_hits_s" + std::to_string(subject_len), hits);
    }
  }

  // --- ungapped extension (self-alignment diagonal: a real homologous
  // seed, so the extension runs long and the score checksum is nonzero) --
  {
    const auto query = bio::make_benchmark_query(517).residues;
    const bio::Pssm pssm(query, bio::Blosum62::instance());
    std::int64_t score = 0;
    timing.run("ungapped_extension", [&] {
      const auto ext = blast::extend_ungapped(pssm, query, 0, 100, 100,
                                              params);
      score = ext.score;
      do_not_optimize(score);
    });
    json.deterministic("ungapped_score",
                       static_cast<std::uint64_t>(score < 0 ? 0 : score));
  }

  // --- gapped extension: score-only and full traceback -------------------
  {
    util::Rng rng(13);
    auto query = bio::random_protein(400, rng);
    auto subject = bio::random_protein(80, rng);
    auto fragment = bio::mutate_fragment(std::span(query).subspan(100, 200),
                                         0.2, 0.03, rng);
    subject.insert(subject.begin() + 40, fragment.begin(), fragment.end());
    const bio::Pssm pssm(query, bio::Blosum62::instance());

    std::int64_t score = 0;
    timing.run("gapped_score", [&] {
      const auto out = blast::gapped_score(pssm, subject, 200, 140, params);
      score = out.score;
      do_not_optimize(score);
    });
    json.deterministic("gapped_score",
                       static_cast<std::uint64_t>(score < 0 ? 0 : score));

    std::int64_t tb_score = 0;
    std::uint64_t tb_length = 0;
    timing.run("gapped_traceback", [&] {
      const auto alignment =
          blast::gapped_traceback(pssm, subject, 0, 200, 140, params);
      tb_score = alignment.score;
      tb_length = alignment.q_end - alignment.q_start;
      do_not_optimize(tb_score);
    });
    json.deterministic(
        "traceback_score",
        static_cast<std::uint64_t>(tb_score < 0 ? 0 : tb_score));
    json.deterministic("traceback_query_span", tb_length);
  }

  // --- device exclusive scan ---------------------------------------------
  for (const std::size_t n : {1024u, 16384u}) {
    simt::DeviceVector<std::uint32_t> input(n, 3);
    std::uint64_t back = 0;
    timing.run("device_scan_n" + std::to_string(n), [&] {
      simt::Engine engine;
      const auto out = gpualgo::exclusive_scan_device(engine, input);
      back = out.back();
      do_not_optimize(back);
    });
    json.deterministic("device_scan_back_n" + std::to_string(n), back);
  }

  // --- device segmented sort ---------------------------------------------
  for (const int segments : {64, 512}) {
    util::Rng rng(19);
    std::vector<std::uint64_t> master;
    std::vector<std::uint32_t> offsets{0};
    for (int s = 0; s < segments; ++s) {
      const std::size_t n = rng.below(128);
      const std::uint32_t padded =
          n == 0 ? 0 : gpualgo::next_pow2(static_cast<std::uint32_t>(n));
      for (std::size_t i = 0; i < padded; ++i)
        master.push_back(i < n ? (rng() >> 1) : gpualgo::kSortPad);
      offsets.push_back(static_cast<std::uint32_t>(master.size()));
    }
    std::uint64_t checksum = 0;
    timing.run("segmented_sort_seg" + std::to_string(segments), [&] {
      auto data = master;
      simt::Engine engine;
      gpualgo::segmented_sort_u64(engine, data, offsets);
      checksum = 0;
      for (std::size_t i = 0; i < data.size(); ++i)
        checksum += data[i] * (i + 1);  // order-sensitive: pins sortedness
      do_not_optimize(checksum);
    });
    json.deterministic("segsort_checksum_seg" + std::to_string(segments),
                       checksum);
  }

  // --- makespan list scheduler -------------------------------------------
  {
    util::Rng rng(23);
    std::vector<double> costs(10000);
    for (auto& c : costs) c = rng.uniform();
    double makespan = 0.0;
    timing.run("makespan_schedule", [&] {
      makespan = util::list_schedule_makespan(costs, 4);
      do_not_optimize(makespan);
    });
    json.deterministic("makespan_4workers", makespan);
  }

  // --- PSSM build ---------------------------------------------------------
  {
    const auto query = bio::make_benchmark_query(1054).residues;
    std::uint64_t bytes = 0;
    timing.run("pssm_build_q1054", [&] {
      bio::Pssm pssm(query, bio::Blosum62::instance());
      bytes = pssm.device_bytes();
      do_not_optimize(bytes);
    });
    json.deterministic("pssm_device_bytes_q1054", bytes);
  }

  // --- Karlin-Altschul lambda solve ---------------------------------------
  {
    double lambda = 0.0;
    timing.run("karlin_lambda_solve", [&] {
      lambda = bio::solve_ungapped_lambda(bio::Blosum62::instance(),
                                          bio::background_frequencies());
      do_not_optimize(lambda);
    });
    json.deterministic("karlin_ungapped_lambda", lambda);
  }

  std::printf("%s", table.render().c_str());
  return json.write(options, "bench_results/micro_primitives.json");
}
