// Micro-benchmarks (google-benchmark) of the building blocks: lookup-table
// construction, DFA scan, ungapped/gapped extension, the SIMT primitives
// (device scan, segmented sort), and the makespan scheduler. These are
// host wall-clock benchmarks of the implementation itself (not modeled
// device time).
#include <benchmark/benchmark.h>

#include "bio/generator.hpp"
#include "bio/karlin.hpp"
#include "bio/pssm.hpp"
#include "blast/gapped.hpp"
#include "blast/seeding.hpp"
#include "blast/ungapped.hpp"
#include "blast/wordlookup.hpp"
#include "gpualgo/scan.hpp"
#include "gpualgo/segsort.hpp"
#include "simt/device_buffer.hpp"
#include "util/makespan.hpp"
#include "util/rng.hpp"

namespace {

using namespace repro;

void BM_WordLookupBuild(benchmark::State& state) {
  const auto query =
      bio::make_benchmark_query(static_cast<std::size_t>(state.range(0)))
          .residues;
  const blast::SearchParams params;
  for (auto _ : state) {
    blast::WordLookup lookup(query, bio::Blosum62::instance(), params);
    benchmark::DoNotOptimize(lookup.total_entries());
  }
}
BENCHMARK(BM_WordLookupBuild)->Arg(127)->Arg(517)->Arg(1054);

void BM_DfaScan(benchmark::State& state) {
  const auto query = bio::make_benchmark_query(517).residues;
  const blast::SearchParams params;
  const blast::WordLookup lookup(query, bio::Blosum62::instance(), params);
  const blast::Dfa dfa(lookup);
  util::Rng rng(7);
  const auto subject =
      bio::random_protein(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    std::uint64_t hits = 0;
    blast::scan_subject_dfa(dfa, subject,
                            [&](std::uint32_t, std::uint32_t) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(subject.size()));
}
BENCHMARK(BM_DfaScan)->Arg(370)->Arg(2000);

void BM_UngappedExtension(benchmark::State& state) {
  const auto query = bio::make_benchmark_query(517).residues;
  const bio::Pssm pssm(query, bio::Blosum62::instance());
  const blast::SearchParams params;
  util::Rng rng(11);
  const auto subject = bio::random_protein(370, rng);
  for (auto _ : state) {
    const auto ext = blast::extend_ungapped(
        pssm, subject, 0,
        static_cast<std::uint32_t>(rng.below(query.size() - 3)),
        static_cast<std::uint32_t>(rng.below(subject.size() - 3)), params);
    benchmark::DoNotOptimize(ext.score);
  }
}
BENCHMARK(BM_UngappedExtension);

void BM_GappedExtension(benchmark::State& state) {
  util::Rng rng(13);
  auto query = bio::random_protein(400, rng);
  auto subject = bio::random_protein(80, rng);
  auto fragment = bio::mutate_fragment(std::span(query).subspan(100, 200),
                                       0.2, 0.03, rng);
  subject.insert(subject.begin() + 40, fragment.begin(), fragment.end());
  const bio::Pssm pssm(query, bio::Blosum62::instance());
  const blast::SearchParams params;
  for (auto _ : state) {
    const auto score = blast::gapped_score(pssm, subject, 200, 140, params);
    benchmark::DoNotOptimize(score.score);
  }
}
BENCHMARK(BM_GappedExtension);

void BM_GappedTraceback(benchmark::State& state) {
  util::Rng rng(17);
  auto query = bio::random_protein(400, rng);
  auto subject = bio::random_protein(80, rng);
  auto fragment = bio::mutate_fragment(std::span(query).subspan(100, 200),
                                       0.2, 0.03, rng);
  subject.insert(subject.begin() + 40, fragment.begin(), fragment.end());
  const bio::Pssm pssm(query, bio::Blosum62::instance());
  const blast::SearchParams params;
  for (auto _ : state) {
    const auto alignment =
        blast::gapped_traceback(pssm, subject, 0, 200, 140, params);
    benchmark::DoNotOptimize(alignment.score);
  }
}
BENCHMARK(BM_GappedTraceback);

void BM_DeviceScan(benchmark::State& state) {
  simt::DeviceVector<std::uint32_t> input(
      static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    simt::Engine engine;
    const auto out = gpualgo::exclusive_scan_device(engine, input);
    benchmark::DoNotOptimize(out.back());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DeviceScan)->Arg(1024)->Arg(16384);

void BM_SegmentedSort(benchmark::State& state) {
  util::Rng rng(19);
  std::vector<std::uint64_t> master;
  std::vector<std::uint32_t> offsets{0};
  for (int s = 0; s < static_cast<int>(state.range(0)); ++s) {
    const std::size_t n = rng.below(128);
    const std::uint32_t padded =
        n == 0 ? 0 : gpualgo::next_pow2(static_cast<std::uint32_t>(n));
    for (std::size_t i = 0; i < padded; ++i)
      master.push_back(i < n ? (rng() >> 1) : gpualgo::kSortPad);
    offsets.push_back(static_cast<std::uint32_t>(master.size()));
  }
  for (auto _ : state) {
    auto data = master;
    simt::Engine engine;
    gpualgo::segmented_sort_u64(engine, data, offsets);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(master.size()));
}
BENCHMARK(BM_SegmentedSort)->Arg(64)->Arg(512);

void BM_MakespanSchedule(benchmark::State& state) {
  util::Rng rng(23);
  std::vector<double> costs(10000);
  for (auto& c : costs) c = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::list_schedule_makespan(costs, 4));
  }
}
BENCHMARK(BM_MakespanSchedule);

void BM_PssmBuild(benchmark::State& state) {
  const auto query = bio::make_benchmark_query(1054).residues;
  for (auto _ : state) {
    bio::Pssm pssm(query, bio::Blosum62::instance());
    benchmark::DoNotOptimize(pssm.device_bytes());
  }
}
BENCHMARK(BM_PssmBuild);

void BM_KarlinLambdaSolve(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(bio::solve_ungapped_lambda(
        bio::Blosum62::instance(), bio::background_frequencies()));
  }
}
BENCHMARK(BM_KarlinLambdaSolve);

}  // namespace

BENCHMARK_MAIN();
