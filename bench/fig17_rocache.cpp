// Figure 17: hierarchical buffering — kernel time with and without the
// Kepler read-only cache holding the DFA query positions.
//
// Paper: cuBLASTP improves for every query length when the read-only
// cache is enabled.
#include <cstdio>
#include <sstream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  util::Options options(argc, argv);
  const auto setup = benchx::BenchSetup::from_options(options);
  benchx::print_banner(
      "Figure 17: read-only cache on/off (hierarchical buffering, "
      "swissprot)",
      "enabling the read-only cache for the DFA improves every query",
      setup);

  util::Table table({"query", "without ro-cache (ms)", "with ro-cache (ms)",
                     "improvement", "ro-cache hit ratio"});
  std::ostringstream runs;
  runs << "[";
  bool first = true;
  for (const std::size_t qlen : benchx::kQueryLengths) {
    const auto w = benchx::make_workload(setup, qlen, /*env_nr=*/false);

    auto off = benchx::default_cublastp_config();
    off.use_readonly_cache = false;
    const auto without = core::CuBlastp(off).search(w.query, w.db);

    auto on = benchx::default_cublastp_config();
    on.use_readonly_cache = true;
    const auto with = core::CuBlastp(on).search(w.query, w.db);

    table.add_row(
        {w.query_name, util::Table::num(without.gpu_critical_ms(), 2),
         util::Table::num(with.gpu_critical_ms(), 2),
         util::Table::num((without.gpu_critical_ms() /
                               with.gpu_critical_ms() -
                           1.0) *
                              100.0,
                          1) +
             "%",
         util::Table::num(
             with.profile.at(core::kKernelDetection).rocache_hit_ratio(),
             3)});
    if (!first) runs << ", ";
    first = false;
    runs << "{\"query\": \"" << w.query_name
         << "\", \"without_ms\": " << without.gpu_critical_ms()
         << ", \"with_ms\": " << with.gpu_critical_ms()
         << ", \"improvement\": "
         << without.gpu_critical_ms() / with.gpu_critical_ms() - 1.0
         << ", \"rocache_hit_ratio\": "
         << with.profile.at(core::kKernelDetection).rocache_hit_ratio()
         << "}";
  }
  runs << "]";
  std::printf("%s", table.render().c_str());

  benchx::BenchResult json("fig17_rocache",
                           benchx::default_cublastp_config(), setup);
  json.deterministic_raw("runs", runs.str());
  return json.write(options, "bench_results/fig17_rocache.json");
}
