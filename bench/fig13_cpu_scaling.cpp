// Figure 13: strong scaling of the CPU phases (gapped extension and
// alignment with traceback) across 1, 2 and 4 threads.
//
// Paper: both phases exhibit strong scaling — speedups approach 2x at two
// threads and continue climbing to ~2.5-3.5x at four threads.
#include <cstdio>
#include <sstream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  util::Options options(argc, argv);
  const auto setup = benchx::BenchSetup::from_options(options);
  benchx::print_banner(
      "Figure 13: strong scaling of gapped extension + traceback",
      "near-linear speedup to 2 threads, ~2.5-3.5x at 4 threads",
      setup);

  const auto w = benchx::make_workload(setup, 517, /*env_nr=*/false);

  double gapped1 = 0.0, traceback1 = 0.0;
  std::uint64_t alignments = 0;
  std::ostringstream runs;
  runs << "[";
  util::Table table({"threads", "gapped (ms)", "gapped speedup",
                     "traceback (ms)", "traceback speedup"});
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    auto config = benchx::default_cublastp_config();
    config.cpu_threads = threads;
    const auto report = core::CuBlastp(config).search(w.query, w.db);
    if (threads == 1) {
      gapped1 = report.gapped_seconds;
      traceback1 = report.traceback_seconds;
    }
    alignments = report.result.alignments.size();
    table.add_row(
        {std::to_string(threads),
         util::Table::num(report.gapped_seconds * 1e3, 2),
         util::Table::num(gapped1 / report.gapped_seconds, 2) + "x",
         util::Table::num(report.traceback_seconds * 1e3, 2),
         util::Table::num(traceback1 / report.traceback_seconds, 2) + "x"});
    if (threads != 1) runs << ", ";
    runs << "{\"threads\": " << threads
         << ", \"gapped_s\": " << report.gapped_seconds
         << ", \"traceback_s\": " << report.traceback_seconds
         << ", \"gapped_speedup\": " << gapped1 / report.gapped_seconds
         << ", \"traceback_speedup\": "
         << traceback1 / report.traceback_seconds << "}";
  }
  runs << "]";
  std::printf("%s", table.render().c_str());
  std::printf("\n(8-thread row extends the paper's 1/2/4 sweep; scaling is\n"
              " the T-worker makespan of measured per-seed task costs,\n"
              " see DESIGN.md on the single-core substitution.)\n");

  benchx::BenchResult json("fig13_cpu_scaling",
                           benchx::default_cublastp_config(), setup);
  json.set_workload(w);
  json.deterministic("alignments", alignments);
  json.measured_raw("runs", runs.str());
  return json.write(options, "bench_results/fig13_cpu_scaling.json");
}
