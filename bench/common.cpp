#include "common.hpp"

#include <cstdio>

namespace repro::benchx {

BenchSetup BenchSetup::from_options(const util::Options& options) {
  BenchSetup setup;
  setup.swissprot_seqs = static_cast<std::size_t>(
      options.get_int("swissprot", static_cast<std::int64_t>(
                                       setup.swissprot_seqs)));
  setup.env_nr_seqs = static_cast<std::size_t>(
      options.get_int("env_nr", static_cast<std::int64_t>(
                                    setup.env_nr_seqs)));
  setup.seed = static_cast<std::uint64_t>(options.get_int(
      "seed", static_cast<std::int64_t>(setup.seed)));
  if (options.has("quick")) {
    setup.swissprot_seqs = std::max<std::size_t>(50, setup.swissprot_seqs / 4);
    setup.env_nr_seqs = std::max<std::size_t>(100, setup.env_nr_seqs / 4);
  }
  return setup;
}

Workload make_workload(const BenchSetup& setup, std::size_t query_length,
                       bool env_nr) {
  Workload w;
  const auto query = bio::make_benchmark_query(query_length);
  w.query_name = query.id;
  w.query = query.residues;
  auto profile =
      env_nr ? bio::DatabaseProfile::env_nr_like(setup.env_nr_seqs)
             : bio::DatabaseProfile::swissprot_like(setup.swissprot_seqs);
  // Benchmark workloads use a sparser homology density than the generator
  // default so that, as on the paper's real NCBI data, the critical phases
  // dominate the profile rather than the gapped stage.
  profile.homolog_fraction = env_nr ? 0.002 : 0.004;
  w.db_name = profile.name;
  bio::DatabaseGenerator gen(profile,
                             setup.seed ^ (env_nr ? 0xE01ULL : 0x501ULL) ^
                                 query_length);
  w.db = gen.generate(w.query);
  return w;
}

core::Config default_cublastp_config() {
  core::Config config;
  config.num_bins_per_warp = 128;
  config.strategy = core::ExtensionStrategy::kWindow;
  config.scoring = core::ScoringMode::kAuto;
  config.use_readonly_cache = true;
  config.db_blocks = 4;
  config.cpu_threads = 4;
  config.detection_blocks = 8;
  config.detection_block_threads = 256;
  return config;
}

baselines::CoarseConfig default_coarse_config() {
  baselines::CoarseConfig config;
  config.grid_blocks = 8;
  config.block_threads = 128;
  config.db_blocks = 4;
  config.block_output_capacity = 1 << 15;
  return config;
}

void print_banner(const std::string& figure, const std::string& paper_claim,
                  const BenchSetup& setup) {
  std::printf("================================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("Paper reports: %s\n", paper_claim.c_str());
  std::printf("Workload scale: swissprot-like %zu seqs, env_nr-like %zu seqs, "
              "seed %llu\n",
              setup.swissprot_seqs, setup.env_nr_seqs,
              static_cast<unsigned long long>(setup.seed));
  std::printf("(GPU times are modeled on a simulated K20c; CPU times are\n"
              " host-measured with T-worker makespan scheduling. Compare\n"
              " shapes and ratios, not absolute values. See EXPERIMENTS.md.)\n");
  std::printf("================================================================\n");
}

}  // namespace repro::benchx
